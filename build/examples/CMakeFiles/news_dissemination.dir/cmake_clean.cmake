file(REMOVE_RECURSE
  "CMakeFiles/news_dissemination.dir/news_dissemination.cpp.o"
  "CMakeFiles/news_dissemination.dir/news_dissemination.cpp.o.d"
  "news_dissemination"
  "news_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
