# Empty compiler generated dependencies file for news_dissemination.
# This may be replaced when dependencies are built.
