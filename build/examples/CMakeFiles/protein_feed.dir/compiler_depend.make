# Empty compiler generated dependencies file for protein_feed.
# This may be replaced when dependencies are built.
