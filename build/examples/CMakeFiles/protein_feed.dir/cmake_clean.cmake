file(REMOVE_RECURSE
  "CMakeFiles/protein_feed.dir/protein_feed.cpp.o"
  "CMakeFiles/protein_feed.dir/protein_feed.cpp.o.d"
  "protein_feed"
  "protein_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
