# Empty compiler generated dependencies file for covering_explorer.
# This may be replaced when dependencies are built.
