file(REMOVE_RECURSE
  "CMakeFiles/covering_explorer.dir/covering_explorer.cpp.o"
  "CMakeFiles/covering_explorer.dir/covering_explorer.cpp.o.d"
  "covering_explorer"
  "covering_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
