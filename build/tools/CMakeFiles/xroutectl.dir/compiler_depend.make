# Empty compiler generated dependencies file for xroutectl.
# This may be replaced when dependencies are built.
