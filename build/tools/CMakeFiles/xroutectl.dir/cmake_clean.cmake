file(REMOVE_RECURSE
  "CMakeFiles/xroutectl.dir/xroutectl.cpp.o"
  "CMakeFiles/xroutectl.dir/xroutectl.cpp.o.d"
  "xroutectl"
  "xroutectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xroutectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
