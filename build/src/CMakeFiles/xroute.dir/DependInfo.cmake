
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adv/advertisement.cpp" "src/CMakeFiles/xroute.dir/adv/advertisement.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/adv/advertisement.cpp.o.d"
  "/root/repo/src/adv/derive.cpp" "src/CMakeFiles/xroute.dir/adv/derive.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/adv/derive.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/xroute.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/CMakeFiles/xroute.dir/core/network.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/core/network.cpp.o.d"
  "/root/repo/src/dtd/dtd.cpp" "src/CMakeFiles/xroute.dir/dtd/dtd.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/dtd/dtd.cpp.o.d"
  "/root/repo/src/dtd/graph.cpp" "src/CMakeFiles/xroute.dir/dtd/graph.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/dtd/graph.cpp.o.d"
  "/root/repo/src/dtd/parser.cpp" "src/CMakeFiles/xroute.dir/dtd/parser.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/dtd/parser.cpp.o.d"
  "/root/repo/src/dtd/universe.cpp" "src/CMakeFiles/xroute.dir/dtd/universe.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/dtd/universe.cpp.o.d"
  "/root/repo/src/index/merging.cpp" "src/CMakeFiles/xroute.dir/index/merging.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/index/merging.cpp.o.d"
  "/root/repo/src/index/subscription_tree.cpp" "src/CMakeFiles/xroute.dir/index/subscription_tree.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/index/subscription_tree.cpp.o.d"
  "/root/repo/src/match/adv_automaton.cpp" "src/CMakeFiles/xroute.dir/match/adv_automaton.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/adv_automaton.cpp.o.d"
  "/root/repo/src/match/adv_match.cpp" "src/CMakeFiles/xroute.dir/match/adv_match.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/adv_match.cpp.o.d"
  "/root/repo/src/match/covering.cpp" "src/CMakeFiles/xroute.dir/match/covering.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/covering.cpp.o.d"
  "/root/repo/src/match/pub_match.cpp" "src/CMakeFiles/xroute.dir/match/pub_match.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/pub_match.cpp.o.d"
  "/root/repo/src/match/rec_adv_match.cpp" "src/CMakeFiles/xroute.dir/match/rec_adv_match.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/rec_adv_match.cpp.o.d"
  "/root/repo/src/match/yfilter.cpp" "src/CMakeFiles/xroute.dir/match/yfilter.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/match/yfilter.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/CMakeFiles/xroute.dir/net/simulator.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/net/simulator.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/xroute.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/net/topology.cpp.o.d"
  "/root/repo/src/router/broker.cpp" "src/CMakeFiles/xroute.dir/router/broker.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/router/broker.cpp.o.d"
  "/root/repo/src/router/message.cpp" "src/CMakeFiles/xroute.dir/router/message.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/router/message.cpp.o.d"
  "/root/repo/src/router/routing_tables.cpp" "src/CMakeFiles/xroute.dir/router/routing_tables.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/router/routing_tables.cpp.o.d"
  "/root/repo/src/router/snapshot.cpp" "src/CMakeFiles/xroute.dir/router/snapshot.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/router/snapshot.cpp.o.d"
  "/root/repo/src/workload/dtd_corpus.cpp" "src/CMakeFiles/xroute.dir/workload/dtd_corpus.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/workload/dtd_corpus.cpp.o.d"
  "/root/repo/src/workload/dtd_gen.cpp" "src/CMakeFiles/xroute.dir/workload/dtd_gen.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/workload/dtd_gen.cpp.o.d"
  "/root/repo/src/workload/set_builder.cpp" "src/CMakeFiles/xroute.dir/workload/set_builder.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/workload/set_builder.cpp.o.d"
  "/root/repo/src/workload/xml_gen.cpp" "src/CMakeFiles/xroute.dir/workload/xml_gen.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/workload/xml_gen.cpp.o.d"
  "/root/repo/src/workload/xpath_gen.cpp" "src/CMakeFiles/xroute.dir/workload/xpath_gen.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/workload/xpath_gen.cpp.o.d"
  "/root/repo/src/xml/document.cpp" "src/CMakeFiles/xroute.dir/xml/document.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xml/document.cpp.o.d"
  "/root/repo/src/xml/parser.cpp" "src/CMakeFiles/xroute.dir/xml/parser.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xml/parser.cpp.o.d"
  "/root/repo/src/xml/paths.cpp" "src/CMakeFiles/xroute.dir/xml/paths.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xml/paths.cpp.o.d"
  "/root/repo/src/xpath/parser.cpp" "src/CMakeFiles/xroute.dir/xpath/parser.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xpath/parser.cpp.o.d"
  "/root/repo/src/xpath/predicate.cpp" "src/CMakeFiles/xroute.dir/xpath/predicate.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xpath/predicate.cpp.o.d"
  "/root/repo/src/xpath/xpe.cpp" "src/CMakeFiles/xroute.dir/xpath/xpe.cpp.o" "gcc" "src/CMakeFiles/xroute.dir/xpath/xpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
