file(REMOVE_RECURSE
  "libxroute.a"
)
