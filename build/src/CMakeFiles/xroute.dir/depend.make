# Empty dependencies file for xroute.
# This may be replaced when dependencies are built.
