# Empty dependencies file for xroute_tests.
# This may be replaced when dependencies are built.
