
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adv_test.cpp" "tests/CMakeFiles/xroute_tests.dir/adv_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/adv_test.cpp.o.d"
  "/root/repo/tests/covering_test.cpp" "tests/CMakeFiles/xroute_tests.dir/covering_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/covering_test.cpp.o.d"
  "/root/repo/tests/derive_test.cpp" "tests/CMakeFiles/xroute_tests.dir/derive_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/derive_test.cpp.o.d"
  "/root/repo/tests/dtd_test.cpp" "tests/CMakeFiles/xroute_tests.dir/dtd_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/dtd_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/xroute_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/fuzz_dtd_test.cpp" "tests/CMakeFiles/xroute_tests.dir/fuzz_dtd_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/fuzz_dtd_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/xroute_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/match_test.cpp" "tests/CMakeFiles/xroute_tests.dir/match_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/match_test.cpp.o.d"
  "/root/repo/tests/merging_test.cpp" "tests/CMakeFiles/xroute_tests.dir/merging_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/merging_test.cpp.o.d"
  "/root/repo/tests/predicate_test.cpp" "tests/CMakeFiles/xroute_tests.dir/predicate_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/predicate_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/xroute_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/roundtrip_fuzz_test.cpp" "tests/CMakeFiles/xroute_tests.dir/roundtrip_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/roundtrip_fuzz_test.cpp.o.d"
  "/root/repo/tests/router_test.cpp" "tests/CMakeFiles/xroute_tests.dir/router_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/router_test.cpp.o.d"
  "/root/repo/tests/set_builder_test.cpp" "tests/CMakeFiles/xroute_tests.dir/set_builder_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/set_builder_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/xroute_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/snapshot_test.cpp" "tests/CMakeFiles/xroute_tests.dir/snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/snapshot_test.cpp.o.d"
  "/root/repo/tests/soak_test.cpp" "tests/CMakeFiles/xroute_tests.dir/soak_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/soak_test.cpp.o.d"
  "/root/repo/tests/subscription_tree_test.cpp" "tests/CMakeFiles/xroute_tests.dir/subscription_tree_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/subscription_tree_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/xroute_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/xroute_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/workload_test.cpp.o.d"
  "/root/repo/tests/xml_test.cpp" "tests/CMakeFiles/xroute_tests.dir/xml_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/xml_test.cpp.o.d"
  "/root/repo/tests/xpath_test.cpp" "tests/CMakeFiles/xroute_tests.dir/xpath_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/xpath_test.cpp.o.d"
  "/root/repo/tests/yfilter_test.cpp" "tests/CMakeFiles/xroute_tests.dir/yfilter_test.cpp.o" "gcc" "tests/CMakeFiles/xroute_tests.dir/yfilter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xroute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
