file(REMOVE_RECURSE
  "CMakeFiles/table1_pub_routing.dir/table1_pub_routing.cpp.o"
  "CMakeFiles/table1_pub_routing.dir/table1_pub_routing.cpp.o.d"
  "table1_pub_routing"
  "table1_pub_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pub_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
