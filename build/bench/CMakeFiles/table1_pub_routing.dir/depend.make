# Empty dependencies file for table1_pub_routing.
# This may be replaced when dependencies are built.
