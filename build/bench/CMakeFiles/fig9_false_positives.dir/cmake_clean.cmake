file(REMOVE_RECURSE
  "CMakeFiles/fig9_false_positives.dir/fig9_false_positives.cpp.o"
  "CMakeFiles/fig9_false_positives.dir/fig9_false_positives.cpp.o.d"
  "fig9_false_positives"
  "fig9_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
