file(REMOVE_RECURSE
  "CMakeFiles/table2_network7.dir/table2_network7.cpp.o"
  "CMakeFiles/table2_network7.dir/table2_network7.cpp.o.d"
  "table2_network7"
  "table2_network7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_network7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
