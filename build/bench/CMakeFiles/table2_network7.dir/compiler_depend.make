# Empty compiler generated dependencies file for table2_network7.
# This may be replaced when dependencies are built.
