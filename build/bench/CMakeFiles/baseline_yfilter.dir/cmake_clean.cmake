file(REMOVE_RECURSE
  "CMakeFiles/baseline_yfilter.dir/baseline_yfilter.cpp.o"
  "CMakeFiles/baseline_yfilter.dir/baseline_yfilter.cpp.o.d"
  "baseline_yfilter"
  "baseline_yfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_yfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
