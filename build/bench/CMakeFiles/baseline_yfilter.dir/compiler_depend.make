# Empty compiler generated dependencies file for baseline_yfilter.
# This may be replaced when dependencies are built.
