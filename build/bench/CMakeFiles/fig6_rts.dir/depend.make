# Empty dependencies file for fig6_rts.
# This may be replaced when dependencies are built.
