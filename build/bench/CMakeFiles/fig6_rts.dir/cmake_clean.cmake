file(REMOVE_RECURSE
  "CMakeFiles/fig6_rts.dir/fig6_rts.cpp.o"
  "CMakeFiles/fig6_rts.dir/fig6_rts.cpp.o.d"
  "fig6_rts"
  "fig6_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
