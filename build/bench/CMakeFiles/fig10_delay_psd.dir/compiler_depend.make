# Empty compiler generated dependencies file for fig10_delay_psd.
# This may be replaced when dependencies are built.
