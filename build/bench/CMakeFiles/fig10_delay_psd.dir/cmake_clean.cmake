file(REMOVE_RECURSE
  "CMakeFiles/fig10_delay_psd.dir/fig10_delay_psd.cpp.o"
  "CMakeFiles/fig10_delay_psd.dir/fig10_delay_psd.cpp.o.d"
  "fig10_delay_psd"
  "fig10_delay_psd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_delay_psd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
