# Empty dependencies file for fig11_delay_news.
# This may be replaced when dependencies are built.
