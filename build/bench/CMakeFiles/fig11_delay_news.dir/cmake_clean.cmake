file(REMOVE_RECURSE
  "CMakeFiles/fig11_delay_news.dir/fig11_delay_news.cpp.o"
  "CMakeFiles/fig11_delay_news.dir/fig11_delay_news.cpp.o.d"
  "fig11_delay_news"
  "fig11_delay_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_delay_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
