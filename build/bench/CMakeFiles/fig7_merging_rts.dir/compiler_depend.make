# Empty compiler generated dependencies file for fig7_merging_rts.
# This may be replaced when dependencies are built.
