file(REMOVE_RECURSE
  "CMakeFiles/fig7_merging_rts.dir/fig7_merging_rts.cpp.o"
  "CMakeFiles/fig7_merging_rts.dir/fig7_merging_rts.cpp.o.d"
  "fig7_merging_rts"
  "fig7_merging_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_merging_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
