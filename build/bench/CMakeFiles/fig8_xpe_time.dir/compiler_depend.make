# Empty compiler generated dependencies file for fig8_xpe_time.
# This may be replaced when dependencies are built.
