file(REMOVE_RECURSE
  "CMakeFiles/table3_network127.dir/table3_network127.cpp.o"
  "CMakeFiles/table3_network127.dir/table3_network127.cpp.o.d"
  "table3_network127"
  "table3_network127.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_network127.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
