# Empty compiler generated dependencies file for table3_network127.
# This may be replaced when dependencies are built.
