#include "obs/trace.hpp"

namespace xroute {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInject: return "inject";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kLink: return "link";
    case SpanKind::kBroker: return "broker";
    case SpanKind::kStageParse: return "parse";
    case SpanKind::kStageSrtCheck: return "srt_check";
    case SpanKind::kStagePrtMatch: return "prt_match";
    case SpanKind::kStageMerge: return "merge";
    case SpanKind::kStageForward: return "forward";
    case SpanKind::kDeliver: return "deliver";
  }
  return "unknown";
}

std::vector<Span> Tracer::spans_of(std::uint64_t trace) const {
  std::vector<Span> out;
  for (const Span& span : spans_) {
    if (span.trace == trace) out.push_back(span);
  }
  return out;
}

}  // namespace xroute
