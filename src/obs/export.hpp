// Trace exporters.
//
//   write_trace_json   — one trace as a JSON span list (parent ids intact,
//                        so the span tree can be rebuilt by any consumer);
//   write_chrome_trace — the whole tracer as a Chrome trace_event file:
//                        load it in about:tracing or https://ui.perfetto.dev
//                        (complete "X" events; pid = broker / network lane,
//                        tid = trace id; timestamps in microseconds of
//                        simulated time).
//
// The metrics JSON dump lives on MetricsRegistry::write_json.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "obs/trace.hpp"

namespace xroute {

void write_trace_json(const Tracer& tracer, std::uint64_t trace,
                      std::ostream& os);

void write_chrome_trace(const Tracer& tracer, std::ostream& os);

}  // namespace xroute
