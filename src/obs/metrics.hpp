// MetricsRegistry — named counters, gauges and histograms with labelled
// series (per-broker, per-link, per-message-type).
//
// Naming scheme (DESIGN.md "Observability architecture"):
//
//   <subsystem>.<noun>[_<unit>]     e.g. broker.messages, link.retransmits,
//                                        client.delay_ms
//
// A series is (name, labels); the same name may carry several label sets
// (broker.messages{type=publish} and broker.messages{broker=3} are
// distinct series). Series objects live in node-based maps, so references
// returned by counter()/gauge()/histogram() stay valid for the registry's
// lifetime — hot paths resolve a series once and increment through the
// cached reference (NetworkStats does exactly this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace xroute {

using MetricLabels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Sample-keeping histogram. Samples stay in observation order (callers
/// may expose them as an event sequence); percentiles sort a copy and use
/// the shared nearest-rank helper (obs/percentile.hpp).
class Histogram {
 public:
  void observe(double v) {
    samples_.push_back(v);
    sum_ += v;
  }
  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  /// Nearest-rank percentile, `q` in [0, 1].
  double percentile(double q) const;
  /// Samples in observation order.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the series; the returned reference stays valid for
  /// the registry's lifetime.
  Counter& counter(const std::string& name, const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name,
                       const MetricLabels& labels = {});

  /// Read-only lookups; nullptr when the series does not exist.
  const Counter* find_counter(const std::string& name,
                              const MetricLabels& labels = {}) const;
  const Gauge* find_gauge(const std::string& name,
                          const MetricLabels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  const MetricLabels& labels = {}) const;

  /// Sum of every counter series sharing `name` (across all label sets).
  std::uint64_t counter_total(const std::string& name) const;

  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// JSON metrics dump: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} with name, labels and values per series
  /// (histograms emit count/sum/min/max/mean/p50/p95).
  void write_json(std::ostream& os) const;

 private:
  using SeriesKey = std::pair<std::string, MetricLabels>;

  std::map<SeriesKey, Counter> counters_;
  std::map<SeriesKey, Gauge> gauges_;
  std::map<SeriesKey, Histogram> histograms_;
};

/// Escapes `text` for inclusion in a JSON string literal.
std::string json_escape(const std::string& text);

}  // namespace xroute
