// Shared percentile computation for every summary in the system.
//
// Nearest-rank definition (the one the paper's tables imply for small
// sample counts): the p-th percentile of n ascending samples is the value
// at rank ceil(p * n), 1-based. For n = 1 every percentile is the sample
// itself; for duplicated values the duplicate is returned as-is rather
// than an interpolated midpoint. NetworkStats::delay_summary() and
// obs::Histogram::percentile() both route through this helper so the
// metrics registry and the legacy accessors can never disagree.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace xroute {

/// Nearest-rank percentile of `sorted` (ascending). `q` in [0, 1];
/// q <= 0 returns the minimum, q >= 1 the maximum, empty input 0.
inline double percentile_nearest_rank(const std::vector<double>& sorted,
                                      double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace xroute
