// Causal tracer for the dissemination overlay.
//
// Every injected advertisement / subscription / publication (and every
// simulator-originated recovery message) gets a trace id; as the message
// and its causal descendants move through the network, the transport and
// the brokers append spans: inject, enqueue (processing + queueing before
// a forward departs), link (one transmission attempt, flagged when it is
// a retransmission or was dropped), broker processing (split into parse /
// SRT check / PRT match / merge / forward stage sub-spans) and deliver
// (arrival at a client, flagged when it is a suppressed duplicate).
//
// All timestamps are *simulated* milliseconds, so traces are deterministic
// for a seeded run (stage sub-spans apportion the broker's measured
// processing time; with processing_scale = 0 they are zero-width markers).
//
// Span trees are well-formed by construction: each span's parent is
// recorded before it, belongs to the same trace, and starts no later —
// tests/trace_test.cpp asserts exactly this, and reconstructs every
// publication's delivery set from deliver spans as an oracle against the
// simulator's own records.
//
// Overhead contract: tracing is off unless Simulator::enable_tracing() is
// called, carries no wire bytes (TraceContext is out-of-band metadata,
// like PublishMsg::publish_time), and the hooks compile out entirely with
// -DXROUTE_TRACING=OFF — clean-run message/byte counts are bit-identical
// either way (tests/obs_test.cpp pins them against a pre-tracing golden).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef XROUTE_TRACING_ENABLED
#define XROUTE_TRACING_ENABLED 1
#endif

namespace xroute {

/// Carried on every Message. Zero-initialised = untraced. Excluded from
/// Message::wire_bytes(): observability metadata does not ride the
/// simulated wire.
struct TraceContext {
  std::uint64_t trace = 0;   ///< trace id (0 = untraced)
  std::uint64_t parent = 0;  ///< span id the next hop's spans attach to
  explicit operator bool() const { return trace != 0; }
};

enum class SpanKind : unsigned char {
  kInject,         ///< client/simulator injected the root message
  kEnqueue,        ///< forward scheduled: broker done -> departure
  kLink,           ///< one transmission attempt: departure -> arrival
  kBroker,         ///< broker processed the message (handle())
  kStageParse,     ///< decode + dispatch remainder of the broker span
  kStageSrtCheck,  ///< SRT overlap checks (routing decisions)
  kStagePrtMatch,  ///< PRT insert/match work
  kStageMerge,     ///< merge pass triggered by this message
  kStageForward,   ///< assembling the outgoing forwards
  kDeliver,        ///< publication arrived at a client
};

struct Span {
  std::uint64_t trace = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = trace root
  SpanKind kind = SpanKind::kInject;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int broker = -1;    ///< kBroker / kStage* spans
  int endpoint = -1;  ///< sending endpoint of kLink / kEnqueue spans
  int client = -1;    ///< kInject (origin) / kDeliver (destination)
  /// MessageType of the message this span observed, as its underlying
  /// integer; kMsgTypeNone for spans without a message (stage spans).
  unsigned char msg_type = 0xff;
  std::uint64_t doc_id = 0;   ///< kInject/kDeliver of publications
  std::uint32_t path_id = 0;  ///< publication path within the document
  std::uint64_t bytes = 0;    ///< wire bytes (kLink / kBroker)
  bool retransmit = false;    ///< kLink: a retransmission attempt
  bool dropped = false;       ///< kLink: lost (fault or crash flush)
  bool duplicate = false;     ///< kDeliver: suppressed duplicate arrival
};

inline constexpr unsigned char kMsgTypeNone = 0xff;

const char* to_string(SpanKind kind);

/// Append-only span store. Trace and span ids start at 1; 0 means "none".
class Tracer {
 public:
  std::uint64_t new_trace() { return next_trace_++; }

  /// Assigns the span an id, appends it, and returns the id.
  std::uint64_t add(Span span) {
    span.id = next_span_++;
    spans_.push_back(span);
    return span.id;
  }

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t trace_count() const { return next_trace_ - 1; }

  /// Spans of one trace, in record order.
  std::vector<Span> spans_of(std::uint64_t trace) const;

 private:
  std::vector<Span> spans_;
  std::uint64_t next_trace_ = 1;
  std::uint64_t next_span_ = 1;
};

}  // namespace xroute
