#include "obs/export.hpp"

#include <ostream>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "router/message.hpp"

namespace xroute {

namespace {

std::string msg_type_name(unsigned char msg_type) {
  if (msg_type == kMsgTypeNone || msg_type >= kMessageTypeCount) return "";
  return to_string(static_cast<MessageType>(msg_type));
}

void write_span_json(const Span& span, std::ostream& os) {
  os << "{\"id\": " << span.id << ", \"parent\": " << span.parent
     << ", \"kind\": \"" << to_string(span.kind) << "\", \"start_ms\": "
     << span.start_ms << ", \"end_ms\": " << span.end_ms;
  if (span.broker >= 0) os << ", \"broker\": " << span.broker;
  if (span.endpoint >= 0) os << ", \"endpoint\": " << span.endpoint;
  if (span.client >= 0) os << ", \"client\": " << span.client;
  std::string type = msg_type_name(span.msg_type);
  if (!type.empty()) os << ", \"msg_type\": \"" << type << "\"";
  if (span.doc_id != 0) {
    os << ", \"doc_id\": " << span.doc_id << ", \"path_id\": " << span.path_id;
  }
  if (span.bytes != 0) os << ", \"bytes\": " << span.bytes;
  if (span.retransmit) os << ", \"retransmit\": true";
  if (span.dropped) os << ", \"dropped\": true";
  if (span.duplicate) os << ", \"duplicate\": true";
  os << "}";
}

/// Chrome trace_event lanes: pid 0 is the network (inject, enqueue, link,
/// deliver); pid 1+b is broker b (processing + stage spans).
int lane_of(const Span& span) {
  switch (span.kind) {
    case SpanKind::kBroker:
    case SpanKind::kStageParse:
    case SpanKind::kStageSrtCheck:
    case SpanKind::kStagePrtMatch:
    case SpanKind::kStageMerge:
    case SpanKind::kStageForward:
      return 1 + span.broker;
    default:
      return 0;
  }
}

}  // namespace

void write_trace_json(const Tracer& tracer, std::uint64_t trace,
                      std::ostream& os) {
  os << "{\n  \"trace\": " << trace << ",\n  \"spans\": [";
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (span.trace != trace) continue;
    os << (first ? "\n    " : ",\n    ");
    write_span_json(span, os);
    first = false;
  }
  os << "\n  ]\n}\n";
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  os << "{\"traceEvents\": [\n";
  // Process-name metadata so Perfetto labels the lanes.
  std::set<int> lanes;
  for (const Span& span : tracer.spans()) lanes.insert(lane_of(span));
  bool first = true;
  for (int lane : lanes) {
    if (!first) os << ",\n";
    os << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << lane
       << ", \"tid\": 0, \"args\": {\"name\": \""
       << (lane == 0 ? std::string("network")
                     : "broker " + std::to_string(lane - 1))
       << "\"}}";
    first = false;
  }
  for (const Span& span : tracer.spans()) {
    if (!first) os << ",\n";
    std::string name = to_string(span.kind);
    std::string type = msg_type_name(span.msg_type);
    if (!type.empty() && span.kind != SpanKind::kDeliver) {
      name += " " + type;
    }
    if (span.retransmit) name += " (rexmit)";
    if (span.dropped) name += " (dropped)";
    if (span.duplicate) name += " (dup)";
    // Simulated ms -> trace_event microseconds.
    os << "  {\"ph\": \"X\", \"name\": \"" << json_escape(name)
       << "\", \"cat\": \"" << to_string(span.kind)
       << "\", \"ts\": " << span.start_ms * 1000.0
       << ", \"dur\": " << (span.end_ms - span.start_ms) * 1000.0
       << ", \"pid\": " << lane_of(span) << ", \"tid\": " << span.trace
       << ", \"args\": {\"span\": " << span.id
       << ", \"parent\": " << span.parent;
    if (span.doc_id != 0) os << ", \"doc\": " << span.doc_id;
    if (span.bytes != 0) os << ", \"bytes\": " << span.bytes;
    os << "}}";
    first = false;
  }
  os << "\n]}\n";
}

}  // namespace xroute
