#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "obs/percentile.hpp"

namespace xroute {

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double q) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_nearest_rank(sorted, q);
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  return counters_[SeriesKey{name, labels}];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  return gauges_[SeriesKey{name, labels}];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels) {
  return histograms_[SeriesKey{name, labels}];
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const MetricLabels& labels) const {
  auto it = counters_.find(SeriesKey{name, labels});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const MetricLabels& labels) const {
  auto it = gauges_.find(SeriesKey{name, labels});
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name, const MetricLabels& labels) const {
  auto it = histograms_.find(SeriesKey{name, labels});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.first == name) total += counter.value();
  }
  return total;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_series_head(std::ostream& os, const std::string& name,
                       const MetricLabels& labels) {
  os << "{\"name\": \"" << json_escape(name) << "\", \"labels\": {";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ", ";
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
    first = false;
  }
  os << "}";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    write_series_head(os, key.first, key.second);
    os << ", \"value\": " << counter.value() << "}";
    first = false;
  }
  os << "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    write_series_head(os, key.first, key.second);
    os << ", \"value\": " << gauge.value() << "}";
    first = false;
  }
  os << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    write_series_head(os, key.first, key.second);
    os << ", \"count\": " << histogram.count()
       << ", \"sum\": " << histogram.sum() << ", \"min\": " << histogram.min()
       << ", \"max\": " << histogram.max()
       << ", \"mean\": " << histogram.mean()
       << ", \"p50\": " << histogram.percentile(0.50)
       << ", \"p95\": " << histogram.percentile(0.95) << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace xroute
