// Exponential backoff policy, shared by the simulator's retransmission
// timers (net/reliable_link) and the real transport's reconnect logic
// (transport/transport). One policy object answers "how long until attempt
// n retries" and "has attempt n exhausted the budget".
#pragma once

#include <cmath>
#include <limits>

namespace xroute {

struct BackoffPolicy {
  /// Delay before the first retry; attempt n waits base_ms * multiplier^n.
  double base_ms = 50.0;
  double multiplier = 2.0;
  /// Ceiling on any single delay (infinity = uncapped, the simulator's
  /// historical retransmission behaviour).
  double max_ms = std::numeric_limits<double>::infinity();
  /// Attempts before giving up (< 0 = retry forever).
  int max_attempts = -1;

  double delay_ms(int attempt) const {
    double delay = base_ms * std::pow(multiplier, attempt);
    return delay < max_ms ? delay : max_ms;
  }

  bool exhausted(int attempt) const {
    return max_attempts >= 0 && attempt >= max_attempts;
  }
};

}  // namespace xroute
