#include "net/reliable_link.hpp"

namespace xroute {

std::uint64_t ReliableChannel::stage(Message msg) {
  std::uint64_t seq = next_seq_++;
  unacked_.emplace(seq, Pending{std::move(msg), 0});
  return seq;
}

const Message* ReliableChannel::pending_message(std::uint64_t seq) const {
  auto it = unacked_.find(seq);
  return it == unacked_.end() ? nullptr : &it->second.msg;
}

int ReliableChannel::retries(std::uint64_t seq) const {
  auto it = unacked_.find(seq);
  return it == unacked_.end() ? 0 : it->second.retries;
}

int ReliableChannel::bump_retries(std::uint64_t seq) {
  auto it = unacked_.find(seq);
  return it == unacked_.end() ? 0 : ++it->second.retries;
}

void ReliableChannel::ack_up_to(std::uint64_t cum) {
  unacked_.erase(unacked_.begin(), unacked_.upper_bound(cum));
}

std::vector<std::uint64_t> ReliableChannel::pending_seqs() const {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(unacked_.size());
  for (const auto& [seq, pending] : unacked_) seqs.push_back(seq);
  return seqs;
}

ReliableChannel::Arrival ReliableChannel::accept(std::uint64_t seq,
                                                 Message msg) {
  Arrival arrival;
  if (seq < next_expected_ || reorder_.count(seq)) {
    // Already delivered or already parked: a retransmission racing its own
    // (lost) ack, or an injected duplicate.
    arrival.duplicate = true;
  } else if (seq == next_expected_) {
    arrival.deliver.push_back(std::move(msg));
    ++next_expected_;
    // Release any parked successors the gap was blocking.
    auto it = reorder_.begin();
    while (it != reorder_.end() && it->first == next_expected_) {
      arrival.deliver.push_back(std::move(it->second));
      it = reorder_.erase(it);
      ++next_expected_;
    }
  } else {
    arrival.out_of_order = true;
    reorder_.emplace(seq, std::move(msg));
  }
  arrival.cumulative_ack = next_expected_ - 1;
  return arrival;
}

void ReliableChannel::reset() {
  next_seq_ = 1;
  unacked_.clear();
  next_expected_ = 1;
  reorder_.clear();
  ++epoch_;
}

}  // namespace xroute
