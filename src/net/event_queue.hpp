// Discrete-event core: a time-ordered queue of closures. Ties break by
// insertion order, which gives FIFO behaviour on equal-latency links.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace xroute {

class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(double time, Action action) {
    queue_.push(Event{time, next_seq_++, std::move(action)});
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Pops and returns the earliest event; advances now().
  Action pop(double* time) {
    Event event = queue_.top();
    queue_.pop();
    *time = event.time;
    return std::move(event.action);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace xroute
