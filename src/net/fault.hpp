// Fault model for the overlay simulator.
//
// The paper deploys on PlanetLab, where links drop, duplicate and reorder
// messages and brokers fail; the simulator reproduces those conditions
// deterministically. A FaultProfile describes one link's misbehaviour
// (applied per transmission attempt, drawn from the simulator's seeded
// fault Rng), and a FaultPlan scripts a whole scenario: per-link profiles,
// scheduled link down windows, and broker crash/restart events with or
// without a snapshot. Plans have a line-oriented text form so scenarios
// can be replayed from a file (tools/xroutectl faultsim, bug repros).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace xroute {

/// Per-link fault behaviour. All probabilities are per transmission
/// attempt (retransmissions draw again).
struct FaultProfile {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  /// Probability that a frame is delayed by an extra uniform draw in
  /// [0, reorder_jitter_ms), scrambling arrival order on the link.
  double reorder_prob = 0.0;
  double reorder_jitter_ms = 0.0;
  /// Scheduled outage windows [from, to) in simulated ms: every frame
  /// departing inside a window is lost.
  std::vector<std::pair<double, double>> down_windows;

  /// Is the link up at `time` (outside every down window)?
  bool link_up(double time) const;
  /// Does this profile inject any fault at all?
  bool any() const;
};

/// How a scripted crash restarts the broker.
enum class RestartMode {
  kCold,        ///< all routing state lost, no recovery protocol
  kColdResync,  ///< state lost; neighbours replay link state (sync handshake)
  kSnapshot,    ///< state restored from a snapshot taken at crash time
};

struct CrashEvent {
  double time = 0.0;
  int broker = 0;
  RestartMode mode = RestartMode::kCold;
};

/// A scripted fault scenario: link profiles plus crash events, with
/// scenario hints (topology/workload/seed) used by the file-driven
/// harnesses so a plan file fully describes a repro.
struct FaultPlan {
  /// Applied to every broker-broker link without an override.
  FaultProfile default_profile;
  /// Per-link overrides, keyed by (min(a,b), max(a,b)) broker pair.
  std::map<std::pair<int, int>, FaultProfile> link_profiles;
  std::vector<CrashEvent> crashes;

  // -- Scenario hints (drivers: xroutectl faultsim, bench/fault_recovery) --
  std::string topology = "tree";  ///< tree | chain | star | random
  std::size_t topology_size = 3;  ///< levels for tree, broker count otherwise
  std::uint64_t seed = 42;
  std::size_t subscribers = 4;
  std::size_t documents = 10;
  /// Broker knobs (`option <key> <value>` lines), validated at parse time
  /// through apply_broker_option() — the same parser `xroutectl serve`
  /// flags and overlay files use — and applied to every broker the
  /// harness builds.
  std::vector<std::pair<std::string, std::string>> broker_options;
};

/// Parses the plan text format. One directive per line, '#' comments:
///
///   seed 7
///   topology tree 3          # tree <levels> | chain <n> | star <n> | random <n>
///   subscribers 4
///   documents 10
///   drop 0.10                # default-profile directives
///   dup 0.02
///   reorder 0.10 2.0         # probability, jitter ms
///   down 50.0 120.0          # outage window on every link
///   link 1 2 drop 0.30       # per-link override (same sub-directives)
///   link 1 2 down 10.0 90.0
///   crash 1 200.0 resync     # broker, time, cold | resync | snapshot
///   option merging on        # broker knob (router/broker_options.hpp)
///
/// Throws ParseError on malformed input.
FaultPlan parse_fault_plan(std::istream& in);
FaultPlan parse_fault_plan(const std::string& text);

const char* to_string(RestartMode mode);

}  // namespace xroute
