// Broker overlay topologies and link-latency profiles.
//
// The paper evaluates complete binary trees of 7 and 127 brokers (three
// and seven levels, subscribers at the leaves) plus PlanetLab chains of up
// to 7 hops; the builders here produce those shapes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace xroute {

struct Topology {
  std::size_t num_brokers = 0;
  std::vector<std::pair<int, int>> edges;

  /// Broker ids with exactly one link (subscriber attachment points in the
  /// tree experiments).
  std::vector<int> leaf_brokers() const;
};

/// Complete binary tree with `levels` levels: 2^levels - 1 brokers, root
/// id 0, children of i at 2i+1 / 2i+2. levels=3 -> the paper's 7-broker
/// overlay; levels=7 -> the 127-broker overlay.
Topology complete_binary_tree(std::size_t levels);

/// A chain of n brokers (ids 0..n-1): the hop-count experiments.
Topology chain(std::size_t n);

/// A star: broker 0 in the centre, `leaves` brokers around it.
Topology star(std::size_t leaves);

/// A random connected overlay: a random spanning tree plus `extra_edges`
/// additional random links (cycles). The paper evaluates trees. With
/// cycles, advertisement flooding, subscription forwarding and
/// publication routing remain exact for *static* subscription sets
/// (brokers deduplicate floods and publications); dynamic client
/// unsubscription additionally requires an acyclic overlay — a
/// subscribe/unsubscribe pair can otherwise chase each other around a
/// cycle indefinitely, the classic reason content-based routing protocols
/// run over spanning trees.
Topology random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// Per-link latency/bandwidth profile.
struct LinkConfig {
  double latency_ms = 0.5;
  double bytes_per_ms = 100000.0;  // 100 MB/s
};

enum class LatencyProfile {
  kCluster,    ///< the paper's 20-node cluster: sub-millisecond LAN
  kPlanetLab,  ///< heterogeneous WAN links, milliseconds each
};

/// Samples one link's configuration from a profile.
LinkConfig sample_link(LatencyProfile profile, Rng& rng);

}  // namespace xroute
