// Reliable transport over a lossy simulated link.
//
// When fault injection is on, broker-broker links stop being perfect:
// frames can be dropped, duplicated, delayed out of order, or lost to a
// down window. ReliableChannel supplies the transport guarantees the
// broker's exactly-once handle() contract needs back: per-link sequence
// numbers, a sender-side retransmission buffer drained by cumulative
// acks, and a receiver-side dedup/reorder buffer that releases messages
// in order. Timers (retransmission with exponential backoff and a retry
// cap) live in the simulator, which owns the event queue; the channel is
// pure link state so it can be reset wholesale when an adjacent broker
// crashes (the `epoch` counter invalidates in-flight frames and timers
// of the dead flow).
//
// With fault injection off the simulator bypasses this layer entirely:
// a clean network carries zero reliability overhead and the paper's
// Table 2/3 message counts are unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "net/backoff.hpp"
#include "router/message.hpp"

namespace xroute {

/// Retransmission policy knobs (simulator-wide).
struct ReliabilityOptions {
  /// Base retransmission timeout; the effective RTO is
  /// max(rto_ms, 4 * link latency) * backoff^attempt.
  double rto_ms = 8.0;
  double backoff = 1.6;
  /// Retransmissions per frame before the sender gives up (the frame is
  /// then counted as a retransmit failure — permanent loss).
  int max_retries = 16;
  /// Wire size charged to an ack frame (bandwidth model).
  std::size_t ack_bytes = 24;

  /// The knobs as the shared exponential-backoff policy (net/backoff.hpp),
  /// specialised to one link's latency. Uncapped: the historical RTO
  /// schedule grows geometrically until max_retries exhausts it.
  BackoffPolicy retransmit_policy(double link_latency_ms) const {
    return BackoffPolicy{std::max(rto_ms, 4.0 * link_latency_ms), backoff,
                         std::numeric_limits<double>::infinity(), max_retries};
  }
};

/// Transport state at one endpoint of a link: the sender half of the
/// outbound flow and the receiver half of the inbound flow.
class ReliableChannel {
 public:
  /// Assigns the next sequence number to `msg` and buffers it until acked.
  std::uint64_t stage(Message msg);

  bool unacked(std::uint64_t seq) const { return unacked_.count(seq) > 0; }
  /// Message buffered under `seq`, or nullptr once acked/abandoned.
  const Message* pending_message(std::uint64_t seq) const;
  /// Retransmissions already performed for `seq` (0 if unknown).
  int retries(std::uint64_t seq) const;
  /// Records one more retransmission attempt; returns the new count.
  int bump_retries(std::uint64_t seq);
  /// Abandons a frame (retry cap exceeded).
  void abandon(std::uint64_t seq) { unacked_.erase(seq); }
  /// Cumulative ack: everything <= `cum` is delivered.
  void ack_up_to(std::uint64_t cum);
  std::vector<std::uint64_t> pending_seqs() const;
  std::size_t in_flight() const { return unacked_.size(); }

  struct Arrival {
    /// In-order messages released by this frame (possibly several when it
    /// fills a gap, empty when it only parked out of order).
    std::vector<Message> deliver;
    bool duplicate = false;
    bool out_of_order = false;
    /// Highest in-order sequence received; sent back as a cumulative ack.
    std::uint64_t cumulative_ack = 0;
  };
  /// Processes an arriving frame: dedup, reorder buffering, in-order
  /// release.
  Arrival accept(std::uint64_t seq, Message msg);

  /// Crash handling: wipes both halves and bumps the epoch, so frames and
  /// timers belonging to the dead flow can detect they are stale.
  void reset();
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Pending {
    Message msg;
    int retries = 0;
  };
  // Sender half.
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Pending> unacked_;
  // Receiver half.
  std::uint64_t next_expected_ = 1;
  std::map<std::uint64_t, Message> reorder_;
  std::uint64_t epoch_ = 0;
};

}  // namespace xroute
