#include "net/golden.hpp"

#include <vector>

#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {

GoldenTotals golden_expected() {
  // Captured from the pre-observability tree (commit before src/obs
  // existed). If a routing change legitimately moves these numbers,
  // re-capture them with tracing compiled OFF — never to paper over an
  // overhead regression.
  GoldenTotals g;
  g.messages = 228;
  g.bytes = 45486;
  g.notifications = 84;
  g.publish_messages = 204;
  g.publish_bytes = 45000;
  g.subscribe_messages = 24;
  g.subscribe_bytes = 486;
  return g;
}

GoldenTotals run_golden_scenario(Simulator& sim) {
  Topology topology = complete_binary_tree(3);
  Broker::Config config;
  config.use_advertisements = false;
  for (std::size_t i = 0; i < topology.num_brokers; ++i) {
    sim.add_broker(config);
  }
  for (auto [a, b] : topology.edges) sim.connect(a, b, LinkConfig{});

  const char* xpes[] = {"/a", "/a/b", "//c", "/d//e"};
  std::vector<int> leaves = topology.leaf_brokers();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    int client = sim.attach_client(leaves[i]);
    sim.subscribe(client, parse_xpe(xpes[i % 4]));
  }
  int publisher = sim.attach_client(0);
  sim.run();

  const char* paths[] = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  for (std::size_t i = 0; i < 60; ++i) {
    sim.publish_paths(publisher, {parse_path(paths[i % 5])}, 200);
  }
  sim.run();

  GoldenTotals totals;
  totals.messages = sim.stats().total_broker_messages();
  totals.bytes = sim.stats().total_broker_bytes();
  totals.notifications = sim.stats().notifications();
  totals.publish_messages = sim.stats().broker_messages(MessageType::kPublish);
  totals.publish_bytes = sim.stats().broker_bytes(MessageType::kPublish);
  totals.subscribe_messages =
      sim.stats().broker_messages(MessageType::kSubscribe);
  totals.subscribe_bytes = sim.stats().broker_bytes(MessageType::kSubscribe);
  return totals;
}

GoldenTotals run_golden_scenario(bool tracing) {
  Simulator sim(Simulator::Options{0.0});
  if (tracing) sim.enable_tracing();
  return run_golden_scenario(sim);
}

}  // namespace xroute
