#include "net/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <variant>

#include "router/snapshot.hpp"
#include "xml/paths.hpp"

namespace xroute {

namespace {
/// Profile for endpoints without faults installed (clean link).
const FaultProfile kCleanLink{};
}  // namespace

Simulator::Simulator() : Simulator(Options{}) {}

Simulator::Simulator(Options options) : options_(options) {}

int Simulator::new_endpoint() {
  endpoints_.emplace_back();
  endpoint_faults_.emplace_back();
  channels_.emplace_back();
  return static_cast<int>(endpoints_.size()) - 1;
}

int Simulator::add_broker(const Broker::Config& config) {
  if (config.match_threads > 1) {
    // The simulator folds wall-clock processing time into simulated time;
    // a worker pool would perturb that measurement and the deterministic
    // event order. Parallel matching runs under the real transport
    // (transport/broker_node) instead.
    throw std::invalid_argument(
        "simulator brokers are single-threaded for determinism; "
        "match_threads must be 1");
  }
  int id = static_cast<int>(brokers_.size());
  brokers_.push_back(std::make_unique<Broker>(id, config));
  broker_configs_.push_back(config);
  incarnations_.push_back(0);
  resync_started_.push_back(-1.0);
  return id;
}

void Simulator::restart_broker(int broker, const std::string& snapshot,
                               bool resync) {
  // Invalidate events still in flight toward the dead instance: a message
  // addressed to the old incarnation must not reach the replacement as if
  // nothing happened (it is lost with the crash; the reliable transport or
  // the resync handshake recovers what can be recovered).
  ++incarnations_[static_cast<std::size_t>(broker)];
  stats_.count_broker_restart();

  auto fresh = std::make_unique<Broker>(broker, broker_configs_.at(
                                                    static_cast<std::size_t>(broker)));
  // Re-declare the interfaces from the wiring records, and reset the
  // transport state of adjacent broker links on both sides: the crashed
  // node's link stacks died with it, and the surviving peers' flows toward
  // it are meaningless against a fresh instance. Unacked frames are
  // permanent losses (counted), recovered only by the resync handshake.
  std::vector<int> neighbor_endpoints;
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const Endpoint& endpoint = endpoints_[e];
    if (endpoint.is_client || endpoint.broker != broker) continue;
    if (endpoint.client >= 0) {
      fresh->add_client(IfaceId{static_cast<int>(e)});
    } else {
      neighbor_endpoints.push_back(static_cast<int>(e));
      fresh->add_neighbor(IfaceId{static_cast<int>(e)});
      if (fault_rng_) {
        stats_.count_frames_lost_to_crash(
            channels_[e].in_flight() +
            channels_[static_cast<std::size_t>(endpoint.peer)].in_flight());
        channels_[e].reset();
        channels_[static_cast<std::size_t>(endpoint.peer)].reset();
      }
    }
  }
  if (!snapshot.empty()) snapshot_from_string(*fresh, snapshot);
  brokers_[static_cast<std::size_t>(broker)] = std::move(fresh);

  if (resync && snapshot.empty()) {
    brokers_[static_cast<std::size_t>(broker)]->begin_resync(
        neighbor_endpoints.size());
    resync_started_[static_cast<std::size_t>(broker)] = now_;
    if (neighbor_endpoints.empty()) {
      finish_resync(broker);
    } else {
      for (int endpoint : neighbor_endpoints) {
        Message msg = Message::sync_request();
        trace_inject(&msg, /*client=*/-1, broker);
        transmit(endpoint, std::move(msg), now_);
      }
    }
  }
}

void Simulator::connect(int broker_a, int broker_b, const LinkConfig& link) {
  int end_a = new_endpoint();
  int end_b = new_endpoint();
  endpoints_[end_a] = Endpoint{false, broker_a, -1, end_b, link};
  endpoints_[end_b] = Endpoint{false, broker_b, -1, end_a, link};
  brokers_[broker_a]->add_neighbor(IfaceId{end_a});
  brokers_[broker_b]->add_neighbor(IfaceId{end_b});
}

void Simulator::build(const Topology& topology, const Broker::Config& config,
                      LatencyProfile profile, Rng& rng) {
  for (std::size_t i = 0; i < topology.num_brokers; ++i) add_broker(config);
  for (auto [a, b] : topology.edges) {
    connect(a, b, sample_link(profile, rng));
  }
}

int Simulator::attach_client(int broker, const LinkConfig& link) {
  int client_id = static_cast<int>(clients_.size());
  int client_end = new_endpoint();
  int broker_end = new_endpoint();
  endpoints_[client_end] = Endpoint{true, -1, client_id, broker_end, link};
  endpoints_[broker_end] = Endpoint{false, broker, client_id, client_end, link};
  brokers_[broker]->add_client(IfaceId{broker_end});
  clients_.push_back(Client{broker, client_end, broker_end, {}, {}, {}, {}});
  return client_id;
}

// -- Causal tracing ----------------------------------------------------------

void Simulator::enable_tracing() {
#if XROUTE_TRACING_ENABLED
  if (!tracer_) tracer_ = std::make_unique<Tracer>();
#else
  throw std::logic_error(
      "enable_tracing: tracing compiled out (-DXROUTE_TRACING=OFF)");
#endif
}

void Simulator::trace_inject(Message* msg, int client, int broker) {
#if XROUTE_TRACING_ENABLED
  if (!tracer_) return;
  Span root;
  root.trace = tracer_->new_trace();
  root.kind = SpanKind::kInject;
  root.start_ms = now_;
  root.end_ms = now_;
  root.client = client;
  root.broker = broker;
  root.msg_type = static_cast<unsigned char>(msg->type());
  root.bytes = msg->wire_bytes();
  if (const auto* pub = std::get_if<PublishMsg>(&msg->payload)) {
    root.doc_id = pub->doc_id;
    root.path_id = pub->path_id;
  }
  msg->trace = TraceContext{root.trace, tracer_->add(root)};
#else
  (void)msg;
  (void)client;
  (void)broker;
#endif
}

void Simulator::trace_flush(const Message& msg, double time) {
#if XROUTE_TRACING_ENABLED
  if (!tracer_ || !msg.trace) return;
  Span span;
  span.trace = msg.trace.trace;
  span.parent = msg.trace.parent;
  span.kind = SpanKind::kLink;
  span.start_ms = time;
  span.end_ms = time;
  span.msg_type = static_cast<unsigned char>(msg.type());
  span.bytes = msg.wire_bytes();
  span.dropped = true;
  tracer_->add(span);
#else
  (void)msg;
  (void)time;
#endif
}

// -- Fault injection ---------------------------------------------------------

void Simulator::enable_fault_injection(std::uint64_t seed,
                                       const ReliabilityOptions& options) {
  fault_rng_ = std::make_unique<Rng>(seed);
  reliability_ = options;
}

void Simulator::set_default_link_faults(const FaultProfile& profile) {
  if (!fault_rng_) {
    throw std::logic_error("set_default_link_faults: call "
                           "enable_fault_injection first");
  }
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const Endpoint& endpoint = endpoints_[e];
    if (endpoint.is_client || endpoint.client >= 0) continue;  // broker links only
    endpoint_faults_[e] = profile;
    schedule_link_up_nudges(static_cast<int>(e), profile);
  }
}

void Simulator::set_link_faults(int broker_a, int broker_b,
                                const FaultProfile& profile) {
  if (!fault_rng_) {
    throw std::logic_error("set_link_faults: call enable_fault_injection "
                           "first");
  }
  bool found = false;
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const Endpoint& endpoint = endpoints_[e];
    if (endpoint.is_client || endpoint.client >= 0) continue;
    const Endpoint& peer = endpoints_[static_cast<std::size_t>(endpoint.peer)];
    if ((endpoint.broker == broker_a && peer.broker == broker_b) ||
        (endpoint.broker == broker_b && peer.broker == broker_a)) {
      endpoint_faults_[e] = profile;
      schedule_link_up_nudges(static_cast<int>(e), profile);
      found = true;
    }
  }
  if (!found) {
    throw std::logic_error("set_link_faults: no link between the brokers");
  }
}

void Simulator::apply_fault_plan(const FaultPlan& plan) {
  enable_fault_injection(plan.seed);
  set_default_link_faults(plan.default_profile);
  for (const auto& [pair, profile] : plan.link_profiles) {
    set_link_faults(pair.first, pair.second, profile);
  }
  for (const CrashEvent& event : plan.crashes) {
    queue_.schedule(event.time, [this, event]() {
      switch (event.mode) {
        case RestartMode::kCold:
          restart_broker(event.broker);
          break;
        case RestartMode::kColdResync:
          restart_broker(event.broker, "", /*resync=*/true);
          break;
        case RestartMode::kSnapshot:
          // Durable state: the snapshot reflects the broker at the moment
          // it went down.
          restart_broker(event.broker,
                         snapshot_to_string(*brokers_[static_cast<std::size_t>(
                             event.broker)]));
          break;
      }
    });
  }
}

void Simulator::schedule_link_up_nudges(int endpoint,
                                        const FaultProfile& profile) {
  for (const auto& [from, to] : profile.down_windows) {
    if (to <= now_) continue;
    queue_.schedule(to, [this, endpoint]() {
      // The link is back: retransmit everything still pending immediately
      // instead of waiting out the backed-off timers.
      for (std::uint64_t seq : channels_[endpoint].pending_seqs()) {
        stats_.count_retransmit(endpoint);
        send_frame(endpoint, seq,
                   channels_[endpoint].retries(seq), now_,
                   /*retransmission=*/true);
      }
    });
  }
}

const FaultProfile& Simulator::faults_of(int endpoint) const {
  return fault_rng_ ? endpoint_faults_[static_cast<std::size_t>(endpoint)]
                    : kCleanLink;
}

// -- Client actions ----------------------------------------------------------

void Simulator::send_from_client(int client, Message msg) {
  const Client& c = clients_.at(client);
  transmit(c.endpoint, std::move(msg), now_);
}

void Simulator::subscribe(int client, const Xpe& xpe) {
  clients_.at(client).subscriptions.push_back(xpe);
  Message msg = Message::subscribe(xpe);
  trace_inject(&msg, client, clients_.at(client).broker);
  send_from_client(client, std::move(msg));
}

void Simulator::unsubscribe(int client, const Xpe& xpe) {
  auto& subs = clients_.at(client).subscriptions;
  auto pos = std::find(subs.begin(), subs.end(), xpe);
  if (pos != subs.end()) subs.erase(pos);
  Message msg = Message::unsubscribe(xpe);
  trace_inject(&msg, client, clients_.at(client).broker);
  send_from_client(client, std::move(msg));
}

void Simulator::advertise(int client, const Advertisement& adv) {
  clients_.at(client).advertisements.push_back(adv);
  Message msg = Message::advertise(adv, clients_.at(client).broker);
  trace_inject(&msg, client, clients_.at(client).broker);
  send_from_client(client, std::move(msg));
}

void Simulator::unadvertise(int client, const Advertisement& adv) {
  auto& advs = clients_.at(client).advertisements;
  auto pos = std::find(advs.begin(), advs.end(), adv);
  if (pos != advs.end()) advs.erase(pos);
  Message msg = Message::unadvertise(adv, clients_.at(client).broker);
  trace_inject(&msg, client, clients_.at(client).broker);
  send_from_client(client, std::move(msg));
}

std::uint64_t Simulator::publish(int client, const XmlDocument& doc) {
  return publish_paths(client, extract_paths(doc), doc.byte_size());
}

std::uint64_t Simulator::publish_paths(int client,
                                       const std::vector<Path>& paths,
                                       std::size_t doc_bytes) {
  std::uint64_t doc_id = next_doc_id_++;
  std::uint32_t path_id = 0;
  for (const Path& path : paths) {
    PublishMsg msg;
    msg.path = path;
    msg.doc_id = doc_id;
    msg.path_id = path_id++;
    msg.doc_bytes = doc_bytes;
    msg.paths_in_doc = static_cast<std::uint32_t>(paths.size());
    msg.publish_time = now_;
    Message message{std::move(msg)};
    trace_inject(&message, client, clients_.at(client).broker);
    send_from_client(client, std::move(message));
  }
  return doc_id;
}

// -- Transport ---------------------------------------------------------------

void Simulator::transmit(int from_endpoint, Message msg,
                         double departure_time) {
  const Endpoint& from = endpoints_.at(from_endpoint);
  if (from.peer < 0) throw std::logic_error("endpoint has no peer");
  const Endpoint& to = endpoints_.at(static_cast<std::size_t>(from.peer));
  // Client links stay perfect (a client and its edge broker are one
  // administrative unit); broker links go through the reliable transport
  // once fault injection is on.
  if (!fault_rng_ || from.is_client || to.is_client) {
    transmit_direct(from_endpoint, std::move(msg), departure_time);
    return;
  }
  std::uint64_t seq = channels_[from_endpoint].stage(std::move(msg));
  send_frame(from_endpoint, seq, /*attempt=*/0, departure_time);
}

void Simulator::transmit_direct(int from_endpoint, Message msg,
                                double departure_time) {
  const Endpoint& from = endpoints_.at(from_endpoint);
  int peer = from.peer;
  const Endpoint& to = endpoints_.at(static_cast<std::size_t>(peer));
  double arrival = departure_time + from.link.latency_ms +
                   static_cast<double>(msg.wire_bytes()) / from.link.bytes_per_ms;
#if XROUTE_TRACING_ENABLED
  if (tracer_ && msg.trace) {
    Span span;
    span.trace = msg.trace.trace;
    span.parent = msg.trace.parent;
    span.kind = SpanKind::kLink;
    span.start_ms = departure_time;
    span.end_ms = arrival;
    span.endpoint = from_endpoint;
    span.msg_type = static_cast<unsigned char>(msg.type());
    span.bytes = msg.wire_bytes();
    msg.trace.parent = tracer_->add(span);
  }
#endif
  // A message addressed to a broker that crashes before arrival dies with
  // the old incarnation: the replacement must not receive pre-crash
  // traffic as if nothing happened.
  std::uint64_t incarnation =
      to.is_client ? 0 : incarnations_[static_cast<std::size_t>(to.broker)];
  queue_.schedule(arrival, [this, peer, to, incarnation,
                            msg = std::move(msg)]() mutable {
    if (to.is_client) {
      deliver_to_client(to.client, std::move(msg));
    } else {
      if (incarnations_[static_cast<std::size_t>(to.broker)] != incarnation) {
        stats_.count_event_flushed_on_crash();
        trace_flush(msg, now_);
        return;
      }
      deliver_to_broker(to.broker, peer, std::move(msg));
    }
  });
}

double Simulator::link_rto(int from_endpoint, int attempt) const {
  const Endpoint& from = endpoints_[static_cast<std::size_t>(from_endpoint)];
  return reliability_.retransmit_policy(from.link.latency_ms).delay_ms(attempt);
}

void Simulator::send_frame(int from_endpoint, std::uint64_t seq, int attempt,
                           double departure_time, bool retransmission) {
  ReliableChannel& channel = channels_[static_cast<std::size_t>(from_endpoint)];
  const Message* pending = channel.pending_message(seq);
  if (!pending) return;  // acked or abandoned in the meantime
  const Endpoint& from = endpoints_[static_cast<std::size_t>(from_endpoint)];
  const Endpoint& to = endpoints_[static_cast<std::size_t>(from.peer)];
  const FaultProfile& faults = faults_of(from_endpoint);

  double base_arrival =
      departure_time + from.link.latency_ms +
      static_cast<double>(pending->wire_bytes()) / from.link.bytes_per_ms;

  // Fault draws, one transmission attempt at a time (deterministic: the
  // draws happen in event order from the dedicated fault Rng).
  int copies = 1;
  if (!faults.link_up(departure_time)) {
    stats_.count_frame_dropped();
    copies = 0;
  } else if (faults.drop_prob > 0.0 && fault_rng_->chance(faults.drop_prob)) {
    stats_.count_frame_dropped();
    copies = 0;
  } else if (faults.dup_prob > 0.0 && fault_rng_->chance(faults.dup_prob)) {
    stats_.count_frame_duplicated();
    copies = 2;
  }
  // Draw the per-copy arrival times first (keeping the Rng call order of
  // the untraced code path), so the attempt span below can close at the
  // latest arrival before any receive event is scheduled.
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(copies));
  for (int copy = 0; copy < copies; ++copy) {
    double arrival = base_arrival + 0.01 * copy;
    if (faults.reorder_prob > 0.0 && fault_rng_->chance(faults.reorder_prob)) {
      stats_.count_reorder_injected();
      arrival += fault_rng_->uniform() * faults.reorder_jitter_ms;
    }
    arrivals.push_back(arrival);
  }

  // One link span per transmission attempt (not per duplicated copy), so
  // retransmit-flagged spans count exactly what stats_.retransmits() does.
  TraceContext attempt_ctx = pending->trace;
#if XROUTE_TRACING_ENABLED
  if (tracer_ && pending->trace) {
    Span span;
    span.trace = pending->trace.trace;
    span.parent = pending->trace.parent;
    span.kind = SpanKind::kLink;
    span.start_ms = departure_time;
    span.end_ms = arrivals.empty()
                      ? departure_time
                      : *std::max_element(arrivals.begin(), arrivals.end());
    span.endpoint = from_endpoint;
    span.msg_type = static_cast<unsigned char>(pending->type());
    span.bytes = pending->wire_bytes();
    span.retransmit = retransmission;
    span.dropped = arrivals.empty();
    attempt_ctx.parent = tracer_->add(span);
  }
#else
  (void)retransmission;
#endif

  std::uint64_t epoch = channel.epoch();
  std::uint64_t incarnation = incarnations_[static_cast<std::size_t>(to.broker)];
  for (double arrival : arrivals) {
    Message copy = *pending;
    copy.trace = attempt_ctx;
    queue_.schedule(arrival, [this, from_endpoint, seq, epoch, incarnation,
                              msg = std::move(copy)]() mutable {
      receive_frame(from_endpoint, seq, epoch, incarnation, std::move(msg));
    });
  }

  // Retransmission timer with exponential backoff and a retry cap. The
  // timer cannot be cancelled (the queue holds closures), so it re-checks
  // the channel when it fires: acked or stale-epoch timers are no-ops.
  double rto = link_rto(from_endpoint, attempt);
  queue_.schedule(departure_time + rto, [this, from_endpoint, seq, epoch,
                                         attempt]() {
    ReliableChannel& ch = channels_[static_cast<std::size_t>(from_endpoint)];
    if (ch.epoch() != epoch || !ch.unacked(seq)) return;
    if (attempt >= reliability_.max_retries) {
      ch.abandon(seq);
      stats_.count_retransmit_failure();
      return;
    }
    ch.bump_retries(seq);
    stats_.count_retransmit(from_endpoint);
    send_frame(from_endpoint, seq, attempt + 1, now_, /*retransmission=*/true);
  });
}

void Simulator::receive_frame(int from_endpoint, std::uint64_t seq,
                              std::uint64_t epoch,
                              std::uint64_t target_incarnation, Message msg) {
  ReliableChannel& sender = channels_[static_cast<std::size_t>(from_endpoint)];
  if (sender.epoch() != epoch) {
    // The flow this frame belonged to was reset (an adjacent broker
    // crashed): the frame is part of the wreckage.
    stats_.count_frames_lost_to_crash(1);
    trace_flush(msg, now_);
    return;
  }
  const Endpoint& from = endpoints_[static_cast<std::size_t>(from_endpoint)];
  int to_endpoint = from.peer;
  const Endpoint& to = endpoints_[static_cast<std::size_t>(to_endpoint)];
  if (incarnations_[static_cast<std::size_t>(to.broker)] !=
      target_incarnation) {
    stats_.count_event_flushed_on_crash();
    trace_flush(msg, now_);
    return;
  }

  ReliableChannel::Arrival arrival =
      channels_[static_cast<std::size_t>(to_endpoint)].accept(seq,
                                                              std::move(msg));
  if (arrival.duplicate) stats_.count_link_duplicate_suppressed();
  if (arrival.out_of_order) stats_.count_out_of_order_delivery();
  for (Message& released : arrival.deliver) {
    deliver_to_broker(to.broker, to_endpoint, std::move(released));
  }
  send_ack(to_endpoint, arrival.cumulative_ack);
}

void Simulator::send_ack(int from_endpoint, std::uint64_t cumulative) {
  const Endpoint& from = endpoints_[static_cast<std::size_t>(from_endpoint)];
  int peer = from.peer;
  const FaultProfile& faults = faults_of(from_endpoint);
  stats_.count_ack(reliability_.ack_bytes);
  // Acks traverse the same lossy link; a lost ack is repaired by the data
  // sender's retransmission, whose duplicate re-triggers the ack.
  if (!faults.link_up(now_) ||
      (faults.drop_prob > 0.0 && fault_rng_->chance(faults.drop_prob))) {
    stats_.count_frame_dropped();
    return;
  }
  double arrival = now_ + from.link.latency_ms +
                   static_cast<double>(reliability_.ack_bytes) /
                       from.link.bytes_per_ms;
  std::uint64_t epoch = channels_[static_cast<std::size_t>(peer)].epoch();
  queue_.schedule(arrival, [this, peer, cumulative, epoch]() {
    ReliableChannel& ch = channels_[static_cast<std::size_t>(peer)];
    if (ch.epoch() != epoch) return;
    ch.ack_up_to(cumulative);
  });
}

// -- Delivery ----------------------------------------------------------------

void Simulator::deliver_to_broker(int broker, int at_endpoint, Message msg) {
  stats_.count_broker_message(msg.type(), msg.wire_bytes(), broker);
  last_activity_ = now_;
  if (trace_) trace_(broker, at_endpoint, msg);

#if XROUTE_TRACING_ENABLED
  Broker::StageTimings stages;
  Broker::StageTimings* stage_sink = (tracer_ && msg.trace) ? &stages : nullptr;
#else
  Broker::StageTimings* stage_sink = nullptr;
#endif
  auto started = std::chrono::steady_clock::now();
  Broker::HandleResult result =
      brokers_[broker]->handle(IfaceId{at_endpoint}, msg, stage_sink);
  auto finished = std::chrono::steady_clock::now();
  double processing_ms =
      std::chrono::duration<double, std::milli>(finished - started).count() *
      options_.processing_scale;
  stats_.add_processing_time(processing_ms);
  stats_.count_suppressed_false_positive(result.suppressed_false_positives);
  if (result.publication_matched) stats_.count_publication_match();
  stats_.count_merger_false_matches(result.merger_false_matches);

  double departure = now_ + processing_ms;
#if XROUTE_TRACING_ENABLED
  std::uint64_t broker_span = 0;
  if (stage_sink) {
    Span span;
    span.trace = msg.trace.trace;
    span.parent = msg.trace.parent;
    span.kind = SpanKind::kBroker;
    span.start_ms = now_;
    span.end_ms = departure;
    span.broker = broker;
    span.endpoint = at_endpoint;
    span.msg_type = static_cast<unsigned char>(msg.type());
    span.bytes = msg.wire_bytes();
    if (const auto* pub = std::get_if<PublishMsg>(&msg.payload)) {
      span.doc_id = pub->doc_id;
      span.path_id = pub->path_id;
    }
    broker_span = tracer_->add(span);

    // Stage sub-spans: the timed leaf regions scaled like processing_ms,
    // laid back to back under the broker span; the unattributed remainder
    // (decode, dispatch, bookkeeping) leads as the "parse" stage. With
    // processing_scale = 0 they collapse to zero-width markers, still in
    // causal order.
    double scale = options_.processing_scale;
    double srt = stages.srt_check_ms * scale;
    double prt = stages.prt_match_ms * scale;
    double merge = stages.merge_ms * scale;
    double fwd_ms = stages.forward_ms * scale;
    double parse = std::max(0.0, processing_ms - (srt + prt + merge + fwd_ms));
    const std::pair<SpanKind, double> layout[] = {
        {SpanKind::kStageParse, parse},
        {SpanKind::kStageSrtCheck, srt},
        {SpanKind::kStagePrtMatch, prt},
        {SpanKind::kStageMerge, merge},
        {SpanKind::kStageForward, fwd_ms},
    };
    double cursor = now_;
    for (const auto& [kind, width] : layout) {
      Span stage;
      stage.trace = msg.trace.trace;
      stage.parent = broker_span;
      stage.kind = kind;
      stage.start_ms = cursor;
      cursor = std::min(departure, cursor + width);
      stage.end_ms = cursor;
      stage.broker = broker;
      tracer_->add(stage);
    }
  }
#endif
  for (Broker::Forward& fwd : result.forwards) {
#if XROUTE_TRACING_ENABLED
    if (stage_sink) {
      Span enq;
      enq.trace = msg.trace.trace;
      enq.parent = broker_span;
      enq.kind = SpanKind::kEnqueue;
      enq.start_ms = now_;
      enq.end_ms = departure;
      enq.broker = broker;
      enq.endpoint = fwd.interface.value();
      enq.msg_type = static_cast<unsigned char>(fwd.message.type());
      enq.bytes = fwd.message.wire_bytes();
      fwd.message.trace = TraceContext{msg.trace.trace, tracer_->add(enq)};
    }
#endif
    transmit(fwd.interface.value(), std::move(fwd.message), departure);
  }
  if (result.resync_completed) finish_resync(broker);
}

void Simulator::finish_resync(int broker) {
  double started = resync_started_[static_cast<std::size_t>(broker)];
  stats_.record_resync(started >= 0 ? now_ - started : 0.0);
  resync_started_[static_cast<std::size_t>(broker)] = -1.0;
  // The broker's link state is back; its own clients now replay their
  // control state (a real client re-issues interests on reconnect). The
  // restored forwarding records keep the replays local: anything the
  // neighbours already hold is not forwarded again.
  for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
    const Client& client = clients_[ci];
    if (client.broker != broker) continue;
    for (const Advertisement& adv : client.advertisements) {
      Message msg = Message::advertise(adv, broker);
      trace_inject(&msg, static_cast<int>(ci), broker);
      transmit(client.endpoint, std::move(msg), now_);
    }
    for (const Xpe& xpe : client.subscriptions) {
      Message msg = Message::subscribe(xpe);
      trace_inject(&msg, static_cast<int>(ci), broker);
      transmit(client.endpoint, std::move(msg), now_);
    }
  }
}

void Simulator::deliver_to_client(int client, Message msg) {
  if (msg.type() != MessageType::kPublish) return;
  last_activity_ = now_;
  const PublishMsg& pub = std::get<PublishMsg>(msg.payload);
  Client& c = clients_.at(client);
  auto [it, first] = c.first_arrival.emplace(pub.doc_id, now_);
  if (first) {
    stats_.count_notification(now_ - pub.publish_time);
    c.delays.push_back(now_ - pub.publish_time);
  } else {
    stats_.count_duplicate_notification();
  }
#if XROUTE_TRACING_ENABLED
  if (tracer_ && msg.trace) {
    Span span;
    span.trace = msg.trace.trace;
    span.parent = msg.trace.parent;
    span.kind = SpanKind::kDeliver;
    span.start_ms = now_;
    span.end_ms = now_;
    span.client = client;
    span.msg_type = static_cast<unsigned char>(msg.type());
    span.doc_id = pub.doc_id;
    span.path_id = pub.path_id;
    span.bytes = msg.wire_bytes();
    span.duplicate = !first;
    tracer_->add(span);
  }
#endif
}

// -- Execution ---------------------------------------------------------------

std::size_t Simulator::run() { return run_limited(0); }

std::size_t Simulator::run_limited(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (max_events != 0 && processed >= max_events) break;
    double time = now_;
    EventQueue::Action action = queue_.pop(&time);
    now_ = time;
    action();
    ++processed;
  }
  return processed;
}

Simulator::QuiesceReport Simulator::run_until_quiescent(
    std::size_t max_events) {
  QuiesceReport report;
  report.processed = run_limited(max_events);
  report.quiesced = queue_.empty();
  report.completed_at = now_;
  report.last_activity = last_activity_;
  return report;
}

std::size_t Simulator::notifications_of(int client) const {
  return clients_.at(client).first_arrival.size();
}

std::set<std::uint64_t> Simulator::delivered_docs(int client) const {
  std::set<std::uint64_t> docs;
  for (const auto& [doc_id, time] : clients_.at(client).first_arrival) {
    docs.insert(doc_id);
  }
  return docs;
}

const std::vector<double>& Simulator::delays_of(int client) const {
  return clients_.at(client).delays;
}

}  // namespace xroute
