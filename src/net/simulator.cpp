#include "net/simulator.hpp"

#include <chrono>
#include <stdexcept>

#include "router/snapshot.hpp"
#include "xml/paths.hpp"

namespace xroute {

Simulator::Simulator() : Simulator(Options{}) {}

Simulator::Simulator(Options options) : options_(options) {}

int Simulator::new_endpoint() {
  endpoints_.emplace_back();
  return static_cast<int>(endpoints_.size()) - 1;
}

int Simulator::add_broker(const Broker::Config& config) {
  int id = static_cast<int>(brokers_.size());
  brokers_.push_back(std::make_unique<Broker>(id, config));
  broker_configs_.push_back(config);
  return id;
}

void Simulator::restart_broker(int broker, const std::string& snapshot) {
  auto fresh = std::make_unique<Broker>(broker, broker_configs_.at(
                                                    static_cast<std::size_t>(broker)));
  // Re-declare the interfaces from the wiring records.
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const Endpoint& endpoint = endpoints_[e];
    if (endpoint.is_client || endpoint.broker != broker) continue;
    if (endpoint.client >= 0) {
      fresh->add_client(static_cast<int>(e));
    } else {
      fresh->add_neighbor(static_cast<int>(e));
    }
  }
  if (!snapshot.empty()) snapshot_from_string(*fresh, snapshot);
  brokers_[static_cast<std::size_t>(broker)] = std::move(fresh);
}

void Simulator::connect(int broker_a, int broker_b, const LinkConfig& link) {
  int end_a = new_endpoint();
  int end_b = new_endpoint();
  endpoints_[end_a] = Endpoint{false, broker_a, -1, end_b, link};
  endpoints_[end_b] = Endpoint{false, broker_b, -1, end_a, link};
  brokers_[broker_a]->add_neighbor(end_a);
  brokers_[broker_b]->add_neighbor(end_b);
}

void Simulator::build(const Topology& topology, const Broker::Config& config,
                      LatencyProfile profile, Rng& rng) {
  for (std::size_t i = 0; i < topology.num_brokers; ++i) add_broker(config);
  for (auto [a, b] : topology.edges) {
    connect(a, b, sample_link(profile, rng));
  }
}

int Simulator::attach_client(int broker, const LinkConfig& link) {
  int client_id = static_cast<int>(clients_.size());
  int client_end = new_endpoint();
  int broker_end = new_endpoint();
  endpoints_[client_end] = Endpoint{true, -1, client_id, broker_end, link};
  endpoints_[broker_end] = Endpoint{false, broker, client_id, client_end, link};
  brokers_[broker]->add_client(broker_end);
  clients_.push_back(Client{broker, client_end, broker_end, {}});
  return client_id;
}

void Simulator::send_from_client(int client, Message msg) {
  const Client& c = clients_.at(client);
  transmit(c.endpoint, std::move(msg), now_);
}

void Simulator::subscribe(int client, const Xpe& xpe) {
  send_from_client(client, Message::subscribe(xpe));
}

void Simulator::unsubscribe(int client, const Xpe& xpe) {
  send_from_client(client, Message::unsubscribe(xpe));
}

void Simulator::advertise(int client, const Advertisement& adv) {
  send_from_client(client, Message::advertise(adv, clients_.at(client).broker));
}

void Simulator::unadvertise(int client, const Advertisement& adv) {
  send_from_client(client,
                   Message::unadvertise(adv, clients_.at(client).broker));
}

std::uint64_t Simulator::publish(int client, const XmlDocument& doc) {
  return publish_paths(client, extract_paths(doc), doc.byte_size());
}

std::uint64_t Simulator::publish_paths(int client,
                                       const std::vector<Path>& paths,
                                       std::size_t doc_bytes) {
  std::uint64_t doc_id = next_doc_id_++;
  std::uint32_t path_id = 0;
  for (const Path& path : paths) {
    PublishMsg msg;
    msg.path = path;
    msg.doc_id = doc_id;
    msg.path_id = path_id++;
    msg.doc_bytes = doc_bytes;
    msg.paths_in_doc = static_cast<std::uint32_t>(paths.size());
    msg.publish_time = now_;
    send_from_client(client, Message{std::move(msg)});
  }
  return doc_id;
}

void Simulator::transmit(int from_endpoint, Message msg,
                         double departure_time) {
  const Endpoint& from = endpoints_.at(from_endpoint);
  int peer = from.peer;
  if (peer < 0) throw std::logic_error("endpoint has no peer");
  const Endpoint& to = endpoints_.at(peer);
  double arrival = departure_time + from.link.latency_ms +
                   static_cast<double>(msg.wire_bytes()) / from.link.bytes_per_ms;
  queue_.schedule(arrival, [this, peer, to, msg = std::move(msg)]() mutable {
    if (to.is_client) {
      deliver_to_client(to.client, std::move(msg));
    } else {
      deliver_to_broker(to.broker, peer, std::move(msg));
    }
  });
}

void Simulator::deliver_to_broker(int broker, int at_endpoint, Message msg) {
  stats_.count_broker_message(msg.type(), msg.wire_bytes());
  if (trace_) trace_(broker, at_endpoint, msg);

  auto started = std::chrono::steady_clock::now();
  Broker::HandleResult result = brokers_[broker]->handle(at_endpoint, msg);
  auto finished = std::chrono::steady_clock::now();
  double processing_ms =
      std::chrono::duration<double, std::milli>(finished - started).count() *
      options_.processing_scale;
  stats_.add_processing_time(processing_ms);
  stats_.count_suppressed_false_positive(result.suppressed_false_positives);
  if (result.publication_matched) stats_.count_publication_match();
  stats_.count_merger_false_matches(result.merger_false_matches);

  double departure = now_ + processing_ms;
  for (Broker::Forward& fwd : result.forwards) {
    transmit(fwd.interface, std::move(fwd.message), departure);
  }
}

void Simulator::deliver_to_client(int client, Message msg) {
  if (msg.type() != MessageType::kPublish) return;
  const PublishMsg& pub = std::get<PublishMsg>(msg.payload);
  Client& c = clients_.at(client);
  auto [it, first] = c.first_arrival.emplace(pub.doc_id, now_);
  if (first) {
    stats_.count_notification(now_ - pub.publish_time);
    c.delays.push_back(now_ - pub.publish_time);
  } else {
    stats_.count_duplicate_notification();
  }
}

std::size_t Simulator::run() { return run_limited(0); }

std::size_t Simulator::run_limited(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (max_events != 0 && processed >= max_events) break;
    double time = now_;
    EventQueue::Action action = queue_.pop(&time);
    now_ = time;
    action();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::notifications_of(int client) const {
  return clients_.at(client).first_arrival.size();
}

const std::vector<double>& Simulator::delays_of(int client) const {
  return clients_.at(client).delays;
}

}  // namespace xroute
