// Network-wide measurement aggregation for the evaluation experiments.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "router/message.hpp"

namespace xroute {

struct DelaySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

class NetworkStats {
 public:
  void count_broker_message(MessageType type, std::size_t wire_bytes) {
    ++broker_messages_[static_cast<std::size_t>(type)];
    broker_bytes_[static_cast<std::size_t>(type)] += wire_bytes;
  }
  void count_notification(double delay_ms) {
    ++notifications_;
    delays_.push_back(delay_ms);
  }
  void count_duplicate_notification() { ++duplicate_notifications_; }
  void count_suppressed_false_positive(std::size_t n) {
    suppressed_false_positives_ += n;
  }
  void count_publication_match() { ++publication_matches_; }
  void count_merger_false_matches(std::size_t n) {
    merger_false_matches_ += n;
  }
  void add_processing_time(double ms) { processing_ms_ += ms; }

  /// Paper Tables 2/3: "total number of messages ... received by all
  /// brokers ... including advertisements, publications and subscriptions".
  std::size_t total_broker_messages() const {
    std::size_t total = 0;
    for (std::size_t n : broker_messages_) total += n;
    return total;
  }
  std::size_t broker_messages(MessageType type) const {
    return broker_messages_[static_cast<std::size_t>(type)];
  }
  /// Bytes received by brokers, total and per message type.
  std::size_t total_broker_bytes() const {
    std::size_t total = 0;
    for (std::size_t n : broker_bytes_) total += n;
    return total;
  }
  std::size_t broker_bytes(MessageType type) const {
    return broker_bytes_[static_cast<std::size_t>(type)];
  }

  std::size_t notifications() const { return notifications_; }
  std::size_t duplicate_notifications() const {
    return duplicate_notifications_;
  }
  std::size_t suppressed_false_positives() const {
    return suppressed_false_positives_;
  }
  /// (broker, publication) pairs with at least one PRT match.
  std::size_t publication_matches() const { return publication_matches_; }
  /// Merger matches not backed by an original (in-network false positives).
  std::size_t merger_false_matches() const { return merger_false_matches_; }
  double total_processing_ms() const { return processing_ms_; }

  DelaySummary delay_summary() const {
    DelaySummary s;
    if (delays_.empty()) return s;
    s.count = delays_.size();
    std::vector<double> sorted = delays_;
    std::sort(sorted.begin(), sorted.end());
    s.min_ms = sorted.front();
    s.max_ms = sorted.back();
    double sum = 0.0;
    for (double d : sorted) sum += d;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    auto percentile = [&](double q) {
      std::size_t index = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[index];
    };
    s.p50_ms = percentile(0.50);
    s.p95_ms = percentile(0.95);
    return s;
  }
  const std::vector<double>& delays() const { return delays_; }

 private:
  std::array<std::size_t, kMessageTypeCount> broker_messages_{};
  std::array<std::size_t, kMessageTypeCount> broker_bytes_{};
  std::size_t notifications_ = 0;
  std::size_t duplicate_notifications_ = 0;
  std::size_t suppressed_false_positives_ = 0;
  std::size_t publication_matches_ = 0;
  std::size_t merger_false_matches_ = 0;
  double processing_ms_ = 0.0;
  std::vector<double> delays_;
};

}  // namespace xroute
