// Network-wide measurement aggregation for the evaluation experiments.
//
// Since the observability PR the counters live in a MetricsRegistry
// (obs/metrics.hpp) as labelled series — per message type, per broker,
// per link endpoint — and NetworkStats is the hot-path facade over it:
// every count_*() increments through a Counter/Histogram reference
// resolved once at construction (registry series have stable addresses),
// so the per-message cost stays one pointer-chase + add, and the original
// accessors keep their exact pre-registry semantics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "router/message.hpp"

namespace xroute {

struct DelaySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

class NetworkStats {
 public:
  NetworkStats();
  // The facade caches series pointers into its own registry; copying
  // would leave the copy incrementing the original's series.
  NetworkStats(const NetworkStats&) = delete;
  NetworkStats& operator=(const NetworkStats&) = delete;

  void count_broker_message(MessageType type, std::size_t wire_bytes) {
    std::size_t i = static_cast<std::size_t>(type);
    msgs_by_type_[i]->inc();
    bytes_by_type_[i]->inc(wire_bytes);
  }
  /// As above, plus the per-broker labelled series.
  void count_broker_message(MessageType type, std::size_t wire_bytes,
                            int broker);
  void count_notification(double delay_ms) {
    notifications_->inc();
    delay_ms_->observe(delay_ms);
  }
  void count_duplicate_notification() { duplicate_notifications_->inc(); }
  void count_suppressed_false_positive(std::size_t n) {
    suppressed_false_positives_->inc(n);
  }
  void count_publication_match() { publication_matches_->inc(); }
  void count_merger_false_matches(std::size_t n) {
    merger_false_matches_->inc(n);
  }
  void add_processing_time(double ms) { processing_ms_->add(ms); }

  // -- Fault-injection / reliability counters (all zero on a clean run) ----
  void count_frame_dropped() { frames_dropped_->inc(); }
  void count_frame_duplicated() { frames_duplicated_->inc(); }
  void count_reorder_injected() { reorders_injected_->inc(); }
  void count_retransmit() { retransmits_->inc(); }
  /// As above, plus the per-link labelled series (`endpoint` is the
  /// sending link endpoint).
  void count_retransmit(int endpoint);
  void count_retransmit_failure() { retransmit_failures_->inc(); }
  void count_link_duplicate_suppressed() { link_duplicates_suppressed_->inc(); }
  void count_out_of_order_delivery() { out_of_order_deliveries_->inc(); }
  void count_ack(std::size_t wire_bytes) {
    acks_sent_->inc();
    ack_bytes_->inc(wire_bytes);
  }
  void count_event_flushed_on_crash() { events_flushed_on_crash_->inc(); }
  void count_frames_lost_to_crash(std::size_t n) {
    frames_lost_to_crash_->inc(n);
  }
  void count_broker_restart() { broker_restarts_->inc(); }
  void record_resync(double duration_ms) {
    resyncs_completed_->inc();
    resync_ms_->observe(duration_ms);
  }

  /// Paper Tables 2/3: "total number of messages ... received by all
  /// brokers ... including advertisements, publications and subscriptions".
  std::size_t total_broker_messages() const {
    std::size_t total = 0;
    for (const Counter* c : msgs_by_type_) total += c->value();
    return total;
  }
  std::size_t broker_messages(MessageType type) const {
    return msgs_by_type_[static_cast<std::size_t>(type)]->value();
  }
  /// Bytes received by brokers, total and per message type.
  std::size_t total_broker_bytes() const {
    std::size_t total = 0;
    for (const Counter* c : bytes_by_type_) total += c->value();
    return total;
  }
  std::size_t broker_bytes(MessageType type) const {
    return bytes_by_type_[static_cast<std::size_t>(type)]->value();
  }

  std::size_t notifications() const { return notifications_->value(); }
  std::size_t duplicate_notifications() const {
    return duplicate_notifications_->value();
  }
  std::size_t suppressed_false_positives() const {
    return suppressed_false_positives_->value();
  }
  /// (broker, publication) pairs with at least one PRT match.
  std::size_t publication_matches() const {
    return publication_matches_->value();
  }
  /// Merger matches not backed by an original (in-network false positives).
  std::size_t merger_false_matches() const {
    return merger_false_matches_->value();
  }
  double total_processing_ms() const { return processing_ms_->value(); }

  // Fault-injection / reliability readouts.
  std::size_t frames_dropped() const { return frames_dropped_->value(); }
  std::size_t frames_duplicated() const { return frames_duplicated_->value(); }
  std::size_t reorders_injected() const { return reorders_injected_->value(); }
  std::size_t retransmits() const { return retransmits_->value(); }
  std::size_t retransmit_failures() const {
    return retransmit_failures_->value();
  }
  std::size_t link_duplicates_suppressed() const {
    return link_duplicates_suppressed_->value();
  }
  std::size_t out_of_order_deliveries() const {
    return out_of_order_deliveries_->value();
  }
  std::size_t acks_sent() const { return acks_sent_->value(); }
  std::size_t ack_bytes() const { return ack_bytes_->value(); }
  std::size_t events_flushed_on_crash() const {
    return events_flushed_on_crash_->value();
  }
  std::size_t frames_lost_to_crash() const {
    return frames_lost_to_crash_->value();
  }
  std::size_t broker_restarts() const { return broker_restarts_->value(); }
  std::size_t resyncs_completed() const { return resyncs_completed_->value(); }
  /// Per-resync handshake duration (restart to last SyncState processed).
  const std::vector<double>& resync_durations_ms() const {
    return resync_ms_->samples();
  }

  DelaySummary delay_summary() const;
  const std::vector<double>& delays() const { return delay_ms_->samples(); }

  /// The underlying registry (JSON export, labelled-series inspection).
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

 private:
  MetricsRegistry registry_;

  std::array<Counter*, kMessageTypeCount> msgs_by_type_{};
  std::array<Counter*, kMessageTypeCount> bytes_by_type_{};
  /// Per-broker series, indexed by broker id, grown on demand.
  std::vector<Counter*> msgs_by_broker_;
  std::vector<Counter*> bytes_by_broker_;

  Counter* notifications_;
  Counter* duplicate_notifications_;
  Counter* suppressed_false_positives_;
  Counter* publication_matches_;
  Counter* merger_false_matches_;
  Gauge* processing_ms_;
  Histogram* delay_ms_;
  Counter* frames_dropped_;
  Counter* frames_duplicated_;
  Counter* reorders_injected_;
  Counter* retransmits_;
  Counter* retransmit_failures_;
  Counter* link_duplicates_suppressed_;
  Counter* out_of_order_deliveries_;
  Counter* acks_sent_;
  Counter* ack_bytes_;
  Counter* events_flushed_on_crash_;
  Counter* frames_lost_to_crash_;
  Counter* broker_restarts_;
  Counter* resyncs_completed_;
  Histogram* resync_ms_;
};

}  // namespace xroute
