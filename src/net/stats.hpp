// Network-wide measurement aggregation for the evaluation experiments.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "router/message.hpp"

namespace xroute {

struct DelaySummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

class NetworkStats {
 public:
  void count_broker_message(MessageType type, std::size_t wire_bytes) {
    ++broker_messages_[static_cast<std::size_t>(type)];
    broker_bytes_[static_cast<std::size_t>(type)] += wire_bytes;
  }
  void count_notification(double delay_ms) {
    ++notifications_;
    delays_.push_back(delay_ms);
  }
  void count_duplicate_notification() { ++duplicate_notifications_; }
  void count_suppressed_false_positive(std::size_t n) {
    suppressed_false_positives_ += n;
  }
  void count_publication_match() { ++publication_matches_; }
  void count_merger_false_matches(std::size_t n) {
    merger_false_matches_ += n;
  }
  void add_processing_time(double ms) { processing_ms_ += ms; }

  // -- Fault-injection / reliability counters (all zero on a clean run) ----
  void count_frame_dropped() { ++frames_dropped_; }
  void count_frame_duplicated() { ++frames_duplicated_; }
  void count_reorder_injected() { ++reorders_injected_; }
  void count_retransmit() { ++retransmits_; }
  void count_retransmit_failure() { ++retransmit_failures_; }
  void count_link_duplicate_suppressed() { ++link_duplicates_suppressed_; }
  void count_out_of_order_delivery() { ++out_of_order_deliveries_; }
  void count_ack(std::size_t wire_bytes) {
    ++acks_sent_;
    ack_bytes_ += wire_bytes;
  }
  void count_event_flushed_on_crash() { ++events_flushed_on_crash_; }
  void count_frames_lost_to_crash(std::size_t n) { frames_lost_to_crash_ += n; }
  void count_broker_restart() { ++broker_restarts_; }
  void record_resync(double duration_ms) {
    ++resyncs_completed_;
    resync_ms_.push_back(duration_ms);
  }

  /// Paper Tables 2/3: "total number of messages ... received by all
  /// brokers ... including advertisements, publications and subscriptions".
  std::size_t total_broker_messages() const {
    std::size_t total = 0;
    for (std::size_t n : broker_messages_) total += n;
    return total;
  }
  std::size_t broker_messages(MessageType type) const {
    return broker_messages_[static_cast<std::size_t>(type)];
  }
  /// Bytes received by brokers, total and per message type.
  std::size_t total_broker_bytes() const {
    std::size_t total = 0;
    for (std::size_t n : broker_bytes_) total += n;
    return total;
  }
  std::size_t broker_bytes(MessageType type) const {
    return broker_bytes_[static_cast<std::size_t>(type)];
  }

  std::size_t notifications() const { return notifications_; }
  std::size_t duplicate_notifications() const {
    return duplicate_notifications_;
  }
  std::size_t suppressed_false_positives() const {
    return suppressed_false_positives_;
  }
  /// (broker, publication) pairs with at least one PRT match.
  std::size_t publication_matches() const { return publication_matches_; }
  /// Merger matches not backed by an original (in-network false positives).
  std::size_t merger_false_matches() const { return merger_false_matches_; }
  double total_processing_ms() const { return processing_ms_; }

  // Fault-injection / reliability readouts.
  std::size_t frames_dropped() const { return frames_dropped_; }
  std::size_t frames_duplicated() const { return frames_duplicated_; }
  std::size_t reorders_injected() const { return reorders_injected_; }
  std::size_t retransmits() const { return retransmits_; }
  std::size_t retransmit_failures() const { return retransmit_failures_; }
  std::size_t link_duplicates_suppressed() const {
    return link_duplicates_suppressed_;
  }
  std::size_t out_of_order_deliveries() const {
    return out_of_order_deliveries_;
  }
  std::size_t acks_sent() const { return acks_sent_; }
  std::size_t ack_bytes() const { return ack_bytes_; }
  std::size_t events_flushed_on_crash() const {
    return events_flushed_on_crash_;
  }
  std::size_t frames_lost_to_crash() const { return frames_lost_to_crash_; }
  std::size_t broker_restarts() const { return broker_restarts_; }
  std::size_t resyncs_completed() const { return resyncs_completed_; }
  /// Per-resync handshake duration (restart to last SyncState processed).
  const std::vector<double>& resync_durations_ms() const { return resync_ms_; }

  DelaySummary delay_summary() const {
    DelaySummary s;
    if (delays_.empty()) return s;
    s.count = delays_.size();
    std::vector<double> sorted = delays_;
    std::sort(sorted.begin(), sorted.end());
    s.min_ms = sorted.front();
    s.max_ms = sorted.back();
    double sum = 0.0;
    for (double d : sorted) sum += d;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    auto percentile = [&](double q) {
      std::size_t index = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[index];
    };
    s.p50_ms = percentile(0.50);
    s.p95_ms = percentile(0.95);
    return s;
  }
  const std::vector<double>& delays() const { return delays_; }

 private:
  std::array<std::size_t, kMessageTypeCount> broker_messages_{};
  std::array<std::size_t, kMessageTypeCount> broker_bytes_{};
  std::size_t notifications_ = 0;
  std::size_t duplicate_notifications_ = 0;
  std::size_t suppressed_false_positives_ = 0;
  std::size_t publication_matches_ = 0;
  std::size_t merger_false_matches_ = 0;
  double processing_ms_ = 0.0;
  std::vector<double> delays_;
  std::size_t frames_dropped_ = 0;
  std::size_t frames_duplicated_ = 0;
  std::size_t reorders_injected_ = 0;
  std::size_t retransmits_ = 0;
  std::size_t retransmit_failures_ = 0;
  std::size_t link_duplicates_suppressed_ = 0;
  std::size_t out_of_order_deliveries_ = 0;
  std::size_t acks_sent_ = 0;
  std::size_t ack_bytes_ = 0;
  std::size_t events_flushed_on_crash_ = 0;
  std::size_t frames_lost_to_crash_ = 0;
  std::size_t broker_restarts_ = 0;
  std::size_t resyncs_completed_ = 0;
  std::vector<double> resync_ms_;
};

}  // namespace xroute
