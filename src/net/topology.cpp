#include "net/topology.hpp"

#include <map>
#include <set>
#include <utility>

namespace xroute {

std::vector<int> Topology::leaf_brokers() const {
  std::map<int, int> degree;
  for (auto [a, b] : edges) {
    ++degree[a];
    ++degree[b];
  }
  std::vector<int> leaves;
  for (std::size_t i = 0; i < num_brokers; ++i) {
    int id = static_cast<int>(i);
    auto it = degree.find(id);
    if (it != degree.end() && it->second == 1) leaves.push_back(id);
  }
  return leaves;
}

Topology complete_binary_tree(std::size_t levels) {
  Topology t;
  t.num_brokers = (std::size_t{1} << levels) - 1;
  for (std::size_t i = 0; i < t.num_brokers; ++i) {
    std::size_t left = 2 * i + 1;
    std::size_t right = 2 * i + 2;
    if (left < t.num_brokers) {
      t.edges.emplace_back(static_cast<int>(i), static_cast<int>(left));
    }
    if (right < t.num_brokers) {
      t.edges.emplace_back(static_cast<int>(i), static_cast<int>(right));
    }
  }
  return t;
}

Topology chain(std::size_t n) {
  Topology t;
  t.num_brokers = n;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.edges.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
  }
  return t;
}

Topology star(std::size_t leaves) {
  Topology t;
  t.num_brokers = leaves + 1;
  for (std::size_t i = 1; i <= leaves; ++i) {
    t.edges.emplace_back(0, static_cast<int>(i));
  }
  return t;
}

Topology random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  Topology t;
  t.num_brokers = n;
  if (n < 2) return t;
  // Random spanning tree: attach each node to a random earlier one.
  std::set<std::pair<int, int>> used;
  for (std::size_t i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.index(i));
    t.edges.emplace_back(parent, static_cast<int>(i));
    used.emplace(parent, static_cast<int>(i));
  }
  std::size_t attempts = 0;
  std::size_t added = 0;
  while (added < extra_edges && attempts++ < extra_edges * 20 + 20) {
    int a = static_cast<int>(rng.index(n));
    int b = static_cast<int>(rng.index(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.emplace(a, b).second) continue;
    t.edges.emplace_back(a, b);
    ++added;
  }
  return t;
}

LinkConfig sample_link(LatencyProfile profile, Rng& rng) {
  LinkConfig link;
  switch (profile) {
    case LatencyProfile::kCluster:
      // Gigabit LAN: 0.3-0.7 ms RTT/2, ~100 MB/s.
      link.latency_ms = 0.3 + 0.4 * rng.uniform();
      link.bytes_per_ms = 100000.0;
      break;
    case LatencyProfile::kPlanetLab:
      // Wide-area: 1-3.5 ms one-way, ~10 MB/s; heterogeneous per link
      // (the paper reports up to 15% per-point variation on PlanetLab).
      link.latency_ms = 1.0 + 2.5 * rng.uniform();
      link.bytes_per_ms = 10000.0;
      break;
  }
  return link;
}

}  // namespace xroute
