#include "net/stats.hpp"

#include <algorithm>

#include "obs/percentile.hpp"

namespace xroute {

NetworkStats::NetworkStats() {
  for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
    MetricLabels type{{"type", to_string(static_cast<MessageType>(i))}};
    msgs_by_type_[i] = &registry_.counter("broker.messages", type);
    bytes_by_type_[i] = &registry_.counter("broker.bytes", type);
  }
  notifications_ = &registry_.counter("client.notifications");
  duplicate_notifications_ =
      &registry_.counter("client.duplicate_notifications");
  suppressed_false_positives_ =
      &registry_.counter("match.suppressed_false_positives");
  publication_matches_ = &registry_.counter("match.publication_matches");
  merger_false_matches_ = &registry_.counter("match.merger_false_matches");
  processing_ms_ = &registry_.gauge("broker.processing_ms");
  delay_ms_ = &registry_.histogram("client.delay_ms");
  frames_dropped_ = &registry_.counter("link.frames_dropped");
  frames_duplicated_ = &registry_.counter("link.frames_duplicated");
  reorders_injected_ = &registry_.counter("link.reorders_injected");
  retransmits_ = &registry_.counter("link.retransmits");
  retransmit_failures_ = &registry_.counter("link.retransmit_failures");
  link_duplicates_suppressed_ =
      &registry_.counter("link.duplicates_suppressed");
  out_of_order_deliveries_ =
      &registry_.counter("link.out_of_order_deliveries");
  acks_sent_ = &registry_.counter("link.acks");
  ack_bytes_ = &registry_.counter("link.ack_bytes");
  events_flushed_on_crash_ = &registry_.counter("crash.events_flushed");
  frames_lost_to_crash_ = &registry_.counter("crash.frames_lost");
  broker_restarts_ = &registry_.counter("crash.broker_restarts");
  resyncs_completed_ = &registry_.counter("crash.resyncs");
  resync_ms_ = &registry_.histogram("crash.resync_ms");
}

void NetworkStats::count_broker_message(MessageType type,
                                        std::size_t wire_bytes, int broker) {
  count_broker_message(type, wire_bytes);
  std::size_t b = static_cast<std::size_t>(broker);
  if (b >= msgs_by_broker_.size()) {
    msgs_by_broker_.resize(b + 1, nullptr);
    bytes_by_broker_.resize(b + 1, nullptr);
  }
  if (!msgs_by_broker_[b]) {
    MetricLabels labels{{"broker", std::to_string(broker)}};
    msgs_by_broker_[b] = &registry_.counter("broker.messages", labels);
    bytes_by_broker_[b] = &registry_.counter("broker.bytes", labels);
  }
  msgs_by_broker_[b]->inc();
  bytes_by_broker_[b]->inc(wire_bytes);
}

void NetworkStats::count_retransmit(int endpoint) {
  count_retransmit();
  registry_
      .counter("link.retransmits",
               {{"endpoint", std::to_string(endpoint)}})
      .inc();
}

DelaySummary NetworkStats::delay_summary() const {
  DelaySummary s;
  const std::vector<double>& delays = delay_ms_->samples();
  if (delays.empty()) return s;
  s.count = delays.size();
  std::vector<double> sorted = delays;
  std::sort(sorted.begin(), sorted.end());
  s.min_ms = sorted.front();
  s.max_ms = sorted.back();
  s.mean_ms = delay_ms_->mean();
  s.p50_ms = percentile_nearest_rank(sorted, 0.50);
  s.p95_ms = percentile_nearest_rank(sorted, 0.95);
  return s;
}

}  // namespace xroute
