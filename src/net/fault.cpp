#include "net/fault.hpp"

#include <sstream>

#include "router/broker_options.hpp"
#include "util/error.hpp"

namespace xroute {

bool FaultProfile::link_up(double time) const {
  for (const auto& [from, to] : down_windows) {
    if (time >= from && time < to) return false;
  }
  return true;
}

bool FaultProfile::any() const {
  return drop_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
         !down_windows.empty();
}

namespace {

double parse_double(const std::string& token, const std::string& line) {
  try {
    std::size_t used = 0;
    double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError("fault plan: bad number '" + token + "' in: " + line);
  }
}

int parse_broker(const std::string& token, const std::string& line) {
  try {
    std::size_t used = 0;
    int value = std::stoi(token, &used);
    if (used != token.size() || value < 0) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError("fault plan: bad broker id '" + token + "' in: " + line);
  }
}

/// Applies one profile sub-directive (drop/dup/reorder/down) to `profile`.
void apply_profile_directive(FaultProfile& profile, const std::string& word,
                             const std::vector<std::string>& args,
                             const std::string& line) {
  if (word == "drop" && args.size() == 1) {
    profile.drop_prob = parse_double(args[0], line);
  } else if (word == "dup" && args.size() == 1) {
    profile.dup_prob = parse_double(args[0], line);
  } else if (word == "reorder" && args.size() == 2) {
    profile.reorder_prob = parse_double(args[0], line);
    profile.reorder_jitter_ms = parse_double(args[1], line);
  } else if (word == "down" && args.size() == 2) {
    double from = parse_double(args[0], line);
    double to = parse_double(args[1], line);
    if (to <= from) throw ParseError("fault plan: empty down window: " + line);
    profile.down_windows.emplace_back(from, to);
  } else {
    throw ParseError("fault plan: bad directive: " + line);
  }
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::vector<std::string> words;
    for (std::string w; tokens >> w;) words.push_back(w);
    if (words.empty()) continue;
    const std::string& head = words[0];
    std::vector<std::string> rest(words.begin() + 1, words.end());
    if (head == "seed" && rest.size() == 1) {
      plan.seed = static_cast<std::uint64_t>(
          parse_double(rest[0], line));
    } else if (head == "topology" && rest.size() == 2) {
      if (rest[0] != "tree" && rest[0] != "chain" && rest[0] != "star" &&
          rest[0] != "random") {
        throw ParseError("fault plan: unknown topology: " + line);
      }
      plan.topology = rest[0];
      plan.topology_size =
          static_cast<std::size_t>(parse_broker(rest[1], line));
    } else if (head == "subscribers" && rest.size() == 1) {
      plan.subscribers = static_cast<std::size_t>(parse_broker(rest[0], line));
    } else if (head == "documents" && rest.size() == 1) {
      plan.documents = static_cast<std::size_t>(parse_broker(rest[0], line));
    } else if (head == "link") {
      if (rest.size() < 3) throw ParseError("fault plan: bad link line: " + line);
      int a = parse_broker(rest[0], line);
      int b = parse_broker(rest[1], line);
      std::pair<int, int> key{std::min(a, b), std::max(a, b)};
      apply_profile_directive(
          plan.link_profiles[key], rest[2],
          std::vector<std::string>(rest.begin() + 3, rest.end()), line);
    } else if (head == "option") {
      if (rest.size() != 2) {
        throw ParseError("fault plan: expected 'option <key> <value>': " +
                         line);
      }
      BrokerOptions scratch;
      if (std::string err = apply_broker_option(scratch, rest[0], rest[1]);
          !err.empty()) {
        throw ParseError("fault plan: " + err + ": " + line);
      }
      plan.broker_options.emplace_back(rest[0], rest[1]);
    } else if (head == "crash") {
      if (rest.size() != 3) throw ParseError("fault plan: bad crash line: " + line);
      CrashEvent event;
      event.broker = parse_broker(rest[0], line);
      event.time = parse_double(rest[1], line);
      if (rest[2] == "cold") {
        event.mode = RestartMode::kCold;
      } else if (rest[2] == "resync") {
        event.mode = RestartMode::kColdResync;
      } else if (rest[2] == "snapshot") {
        event.mode = RestartMode::kSnapshot;
      } else {
        throw ParseError("fault plan: unknown restart mode: " + line);
      }
      plan.crashes.push_back(event);
    } else {
      apply_profile_directive(plan.default_profile, head, rest, line);
    }
  }
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  std::istringstream is(text);
  return parse_fault_plan(is);
}

const char* to_string(RestartMode mode) {
  switch (mode) {
    case RestartMode::kCold: return "cold";
    case RestartMode::kColdResync: return "resync";
    case RestartMode::kSnapshot: return "snapshot";
  }
  return "unknown";
}

}  // namespace xroute
