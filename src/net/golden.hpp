// The pinned clean-network golden scenario.
//
// A fixed deterministic run (7-broker binary tree, subscription flooding,
// 60 single-path publications, processing_scale = 0, no faults) whose
// message/byte/notification totals were captured *before* the tracing
// hooks existed. tests/obs_test.cpp and bench/perf_routing replay it and
// assert the totals still match — the observability layer's zero-overhead
// contract (DESIGN.md §8): tracing on, off, or compiled out must not move
// a single message or byte.
#pragma once

#include <cstdint>

namespace xroute {

class Simulator;

struct GoldenTotals {
  std::uint64_t messages = 0;       ///< broker messages, all types
  std::uint64_t bytes = 0;          ///< broker bytes, all types
  std::uint64_t notifications = 0;  ///< first-arrival client deliveries
  std::uint64_t publish_messages = 0;
  std::uint64_t publish_bytes = 0;
  std::uint64_t subscribe_messages = 0;
  std::uint64_t subscribe_bytes = 0;

  bool operator==(const GoldenTotals&) const = default;
};

/// The totals captured from the pre-observability tree.
GoldenTotals golden_expected();

/// Runs the golden scenario on a fresh simulator and returns its totals.
/// With `tracing` the causal tracer is enabled first (requires a build
/// with XROUTE_TRACING on); the totals must come out identical.
GoldenTotals run_golden_scenario(bool tracing = false);

/// As above, but runs on a caller-provided simulator (so tests can also
/// inspect the tracer or the metrics registry afterwards). The simulator
/// must be freshly constructed with processing_scale = 0.
GoldenTotals run_golden_scenario(Simulator& sim);

}  // namespace xroute
