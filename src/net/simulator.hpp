// Discrete-event overlay simulator.
//
// Stands in for the paper's 20-node cluster and PlanetLab deployments
// (DESIGN.md §2): brokers run the *real* routing code; the simulator
// provides transport with per-link latency + bandwidth and folds each
// broker's measured wall-clock processing time into simulated time, so
// notification-delay curves keep their shape (linear in hops, slope set by
// routing-table size).
//
// Interface-id scheme: every link end and every client gets a globally
// unique endpoint id; a broker addresses its neighbours and local clients
// by the endpoint on its own side.
//
// Fault tolerance (DESIGN.md §7): with fault injection enabled the
// simulator models a PlanetLab-grade network — per-link FaultProfiles
// (drops, duplication, reordering jitter, down windows) drawn from a
// seeded Rng, scripted broker crash/restarts — and layers a reliable
// transport (net/reliable_link.h) under broker links so the broker's
// exactly-once handle() contract survives. With fault injection off the
// transport path is byte-for-byte the original perfect network: no frames,
// no acks, no overhead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "net/reliable_link.hpp"
#include "net/stats.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "router/broker.hpp"
#include "util/rng.hpp"
#include "xml/document.hpp"

namespace xroute {

class Simulator {
 public:
  struct Options {
    /// Scale factor applied to measured broker processing time before it
    /// enters simulated time (1.0 = wall clock as-is; 0 disables the
    /// processing component for deterministic runs).
    double processing_scale = 1.0;
  };

  Simulator();
  explicit Simulator(Options options);

  // -- Construction --------------------------------------------------------
  int add_broker(const Broker::Config& config);
  void connect(int broker_a, int broker_b, const LinkConfig& link);
  /// Builds all brokers and links of `topology` at once.
  void build(const Topology& topology, const Broker::Config& config,
             LatencyProfile profile, Rng& rng);
  /// Attaches a client to `broker`; returns the client id.
  int attach_client(int broker, const LinkConfig& link = LinkConfig{});

  /// Simulates a crash-restart of a broker: the instance is replaced by a
  /// fresh one with the same configuration and interfaces, events still in
  /// flight toward the dead instance are flushed, and the transport state
  /// of its links is reset. With an empty `snapshot` all routing state is
  /// lost (cold restart); otherwise state is rebuilt via router/snapshot.h.
  /// With `resync` (and no snapshot) the restarted broker runs the
  /// recovery handshake: it requests each neighbour's link state, and once
  /// the last SyncState arrives, locally attached clients replay their
  /// control state — routing re-converges without a network-wide
  /// re-subscription storm.
  void restart_broker(int broker, const std::string& snapshot = "",
                      bool resync = false);

  // -- Fault injection -----------------------------------------------------
  /// Turns on fault injection and the reliable transport on broker-broker
  /// links. All fault draws come from a dedicated Rng seeded here, so runs
  /// stay deterministic. Must be called before installing fault profiles.
  void enable_fault_injection(std::uint64_t seed,
                              const ReliabilityOptions& options = {});
  bool fault_injection_enabled() const { return fault_rng_ != nullptr; }
  /// Installs `profile` on every existing broker-broker link (both
  /// directions). Client links always stay clean.
  void set_default_link_faults(const FaultProfile& profile);
  /// Installs `profile` on the link between two brokers (both directions).
  void set_link_faults(int broker_a, int broker_b,
                       const FaultProfile& profile);
  /// Applies a whole scripted scenario: enables fault injection with
  /// `plan.seed`, installs the default and per-link profiles, and schedules
  /// the crash events (snapshot-mode crashes capture the snapshot at crash
  /// time, modelling durable broker state).
  void apply_fault_plan(const FaultPlan& plan);

  // -- Client actions (enqueued at the current simulated time) -------------
  void subscribe(int client, const Xpe& xpe);
  void unsubscribe(int client, const Xpe& xpe);
  void advertise(int client, const Advertisement& adv);
  void unadvertise(int client, const Advertisement& adv);
  /// Decomposes the document into paths and publishes each (paper §3.1).
  /// Returns the document id assigned.
  std::uint64_t publish(int client, const XmlDocument& doc);
  std::uint64_t publish_paths(int client, const std::vector<Path>& paths,
                              std::size_t doc_bytes);

  // -- Execution ------------------------------------------------------------
  /// Drains the event queue; returns the number of events processed.
  std::size_t run();
  /// Like run(), but stops after `max_events` (0 = unlimited). Returns the
  /// number processed; a return value equal to `max_events` with a
  /// non-empty queue indicates the network has not quiesced (useful for
  /// livelock detection in tests and tools).
  std::size_t run_limited(std::size_t max_events);
  bool idle() const { return queue_.empty(); }

  /// Quiescence detector: drains the queue (bounded by `max_events`,
  /// 0 = unlimited) and reports when the network went quiet. Under fault
  /// injection the queue can outlive the last meaningful event (pending
  /// retransmission timers fire as no-ops once acked), so convergence is
  /// measured by `last_activity` — the time of the last message actually
  /// delivered to a broker or client — not by the final queue time.
  struct QuiesceReport {
    std::size_t processed = 0;
    bool quiesced = false;    ///< queue fully drained within the budget
    double completed_at = 0;  ///< simulated time when the run stopped
    double last_activity = 0; ///< time of the last delivery (convergence)
  };
  QuiesceReport run_until_quiescent(std::size_t max_events = 0);

  /// Optional message trace: invoked for every message a broker receives.
  using TraceFn =
      std::function<void(int broker, int endpoint, const Message& msg)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  double now() const { return now_; }

  // -- Causal tracing (obs/trace.hpp) ---------------------------------------
  /// Turns on the causal tracer: every message injected from here on gets
  /// a trace id, and transport/broker/delivery spans accumulate in
  /// tracer(). No effect on message or byte counts (TraceContext is
  /// out-of-band). Throws std::logic_error when tracing was compiled out
  /// (-DXROUTE_TRACING=OFF).
  void enable_tracing();
  bool tracing_enabled() const { return tracer_ != nullptr; }
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }

  // -- Inspection -----------------------------------------------------------
  Broker& broker(int id) { return *brokers_[id]; }
  const Broker& broker(int id) const { return *brokers_[id]; }
  std::size_t broker_count() const { return brokers_.size(); }
  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }
  /// Documents delivered to `client` (distinct doc ids).
  std::size_t notifications_of(int client) const;
  /// Distinct document ids delivered to `client` (delivery-equality checks).
  std::set<std::uint64_t> delivered_docs(int client) const;
  /// Per-document notification delays observed by `client`.
  const std::vector<double>& delays_of(int client) const;

 private:
  struct Endpoint {
    bool is_client = false;
    int broker = -1;      ///< owning broker (for broker-side endpoints)
    int client = -1;      ///< owning client (for client endpoints)
    int peer = -1;        ///< endpoint on the other side of the link
    LinkConfig link;
  };
  struct Client {
    int broker = -1;
    int endpoint = -1;         ///< the client's own endpoint id
    int broker_endpoint = -1;  ///< the broker-side endpoint id
    std::map<std::uint64_t, double> first_arrival;  ///< doc id -> time
    std::vector<double> delays;                      ///< first-arrival delays
    /// Active control state, replayed after an edge broker resyncs (a real
    /// client re-issues its interests when its broker reconnects).
    std::vector<Xpe> subscriptions;
    std::vector<Advertisement> advertisements;
  };

  int new_endpoint();
  void send_from_client(int client, Message msg);
  /// Delivers `msg` into `broker` via its endpoint `at`; processes it and
  /// schedules the resulting forwards.
  void deliver_to_broker(int broker, int at_endpoint, Message msg);
  void deliver_to_client(int client, Message msg);
  void transmit(int from_endpoint, Message msg, double departure_time);
  /// Perfect-network delivery (fault injection off, and client links).
  void transmit_direct(int from_endpoint, Message msg, double departure_time);
  /// Reliable-transport path: one attempt (initial or retransmission) of a
  /// staged frame, with fault draws, plus its retransmission timer.
  void send_frame(int from_endpoint, std::uint64_t seq, int attempt,
                  double departure_time, bool retransmission = false);
  /// Tracing hooks (no-ops when the tracer is off or compiled out).
  /// Assigns `msg` a fresh trace rooted in an inject span.
  void trace_inject(Message* msg, int client, int broker = -1);
  /// Records a zero-width dropped-link span for a message flushed by a
  /// crash (stale incarnation or reset channel epoch).
  void trace_flush(const Message& msg, double time);
  void receive_frame(int from_endpoint, std::uint64_t seq,
                     std::uint64_t epoch, std::uint64_t target_incarnation,
                     Message msg);
  void send_ack(int from_endpoint, std::uint64_t cumulative);
  double link_rto(int from_endpoint, int attempt) const;
  const FaultProfile& faults_of(int endpoint) const;
  /// Schedules retransmission nudges at each down-window end of `profile`
  /// so pending frames go out the moment the link is back.
  void schedule_link_up_nudges(int endpoint, const FaultProfile& profile);
  /// Crash-recovery completion: records convergence and replays the
  /// control state of the broker's attached clients.
  void finish_resync(int broker);

  Options options_;
  EventQueue queue_;
  double now_ = 0.0;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<Broker::Config> broker_configs_;
  std::vector<Endpoint> endpoints_;
  std::vector<Client> clients_;
  NetworkStats stats_;
  std::uint64_t next_doc_id_ = 1;
  TraceFn trace_;
  std::unique_ptr<Tracer> tracer_;

  // Fault-injection state (inert until enable_fault_injection).
  std::unique_ptr<Rng> fault_rng_;
  ReliabilityOptions reliability_;
  std::vector<FaultProfile> endpoint_faults_;   ///< outbound, per endpoint
  std::vector<ReliableChannel> channels_;       ///< per endpoint
  std::vector<std::uint64_t> incarnations_;     ///< per broker
  std::vector<double> resync_started_;          ///< per broker, <0 = none
  double last_activity_ = 0.0;
};

}  // namespace xroute
