// Discrete-event overlay simulator.
//
// Stands in for the paper's 20-node cluster and PlanetLab deployments
// (DESIGN.md §2): brokers run the *real* routing code; the simulator
// provides transport with per-link latency + bandwidth and folds each
// broker's measured wall-clock processing time into simulated time, so
// notification-delay curves keep their shape (linear in hops, slope set by
// routing-table size).
//
// Interface-id scheme: every link end and every client gets a globally
// unique endpoint id; a broker addresses its neighbours and local clients
// by the endpoint on its own side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/event_queue.hpp"
#include "net/stats.hpp"
#include "net/topology.hpp"
#include "router/broker.hpp"
#include "xml/document.hpp"

namespace xroute {

class Simulator {
 public:
  struct Options {
    /// Scale factor applied to measured broker processing time before it
    /// enters simulated time (1.0 = wall clock as-is; 0 disables the
    /// processing component for deterministic runs).
    double processing_scale = 1.0;
  };

  Simulator();
  explicit Simulator(Options options);

  // -- Construction --------------------------------------------------------
  int add_broker(const Broker::Config& config);
  void connect(int broker_a, int broker_b, const LinkConfig& link);
  /// Builds all brokers and links of `topology` at once.
  void build(const Topology& topology, const Broker::Config& config,
             LatencyProfile profile, Rng& rng);
  /// Attaches a client to `broker`; returns the client id.
  int attach_client(int broker, const LinkConfig& link = LinkConfig{});

  /// Simulates a crash-restart of a broker: the instance is replaced by a
  /// fresh one with the same configuration and interfaces. With an empty
  /// `snapshot` all routing state is lost (cold restart); otherwise state
  /// is rebuilt via router/snapshot.h.
  void restart_broker(int broker, const std::string& snapshot = "");

  // -- Client actions (enqueued at the current simulated time) -------------
  void subscribe(int client, const Xpe& xpe);
  void unsubscribe(int client, const Xpe& xpe);
  void advertise(int client, const Advertisement& adv);
  void unadvertise(int client, const Advertisement& adv);
  /// Decomposes the document into paths and publishes each (paper §3.1).
  /// Returns the document id assigned.
  std::uint64_t publish(int client, const XmlDocument& doc);
  std::uint64_t publish_paths(int client, const std::vector<Path>& paths,
                              std::size_t doc_bytes);

  // -- Execution ------------------------------------------------------------
  /// Drains the event queue; returns the number of events processed.
  std::size_t run();
  /// Like run(), but stops after `max_events` (0 = unlimited). Returns the
  /// number processed; a return value equal to `max_events` with a
  /// non-empty queue indicates the network has not quiesced (useful for
  /// livelock detection in tests and tools).
  std::size_t run_limited(std::size_t max_events);
  bool idle() const { return queue_.empty(); }

  /// Optional message trace: invoked for every message a broker receives.
  using TraceFn =
      std::function<void(int broker, int endpoint, const Message& msg)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  double now() const { return now_; }

  // -- Inspection -----------------------------------------------------------
  Broker& broker(int id) { return *brokers_[id]; }
  const Broker& broker(int id) const { return *brokers_[id]; }
  std::size_t broker_count() const { return brokers_.size(); }
  NetworkStats& stats() { return stats_; }
  const NetworkStats& stats() const { return stats_; }
  /// Documents delivered to `client` (distinct doc ids).
  std::size_t notifications_of(int client) const;
  /// Per-document notification delays observed by `client`.
  const std::vector<double>& delays_of(int client) const;

 private:
  struct Endpoint {
    bool is_client = false;
    int broker = -1;      ///< owning broker (for broker-side endpoints)
    int client = -1;      ///< owning client (for client endpoints)
    int peer = -1;        ///< endpoint on the other side of the link
    LinkConfig link;
  };
  struct Client {
    int broker = -1;
    int endpoint = -1;         ///< the client's own endpoint id
    int broker_endpoint = -1;  ///< the broker-side endpoint id
    std::map<std::uint64_t, double> first_arrival;  ///< doc id -> time
    std::vector<double> delays;                      ///< first-arrival delays
  };

  int new_endpoint();
  void send_from_client(int client, Message msg);
  /// Delivers `msg` into `broker` via its endpoint `at`; processes it and
  /// schedules the resulting forwards.
  void deliver_to_broker(int broker, int at_endpoint, Message msg);
  void deliver_to_client(int client, Message msg);
  void transmit(int from_endpoint, Message msg, double departure_time);

  Options options_;
  EventQueue queue_;
  double now_ = 0.0;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<Broker::Config> broker_configs_;
  std::vector<Endpoint> endpoints_;
  std::vector<Client> clients_;
  NetworkStats stats_;
  std::uint64_t next_doc_id_ = 1;
  TraceFn trace_;
};

}  // namespace xroute
