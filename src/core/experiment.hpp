// Shared experiment plumbing for the bench harnesses: the paper's strategy
// matrix, fixed-width table printing, and a tiny wall-clock stopwatch.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace xroute {

struct StrategySpec {
  std::string name;  ///< the paper's label, e.g. "with-Adv-with-CovPM"
  RoutingStrategy strategy;
};

/// The six rows of the paper's Tables 2 and 3, in order.
std::vector<StrategySpec> paper_strategy_matrix(double imperfect_degree = 0.1);

/// Fixed-width text table, printed as the benches' primary output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt(std::size_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xroute
