// xroute public facade: an XML/XPath data-dissemination network.
//
// Wires together everything below it — DTD-derived advertisements,
// content-based brokers with covering/merging, and the discrete-event
// overlay — behind the handful of operations a user of the system
// performs: build a topology, attach publishers and subscribers, register
// XPEs, publish documents, run, inspect what arrived where.
//
//   Network net({.topology = complete_binary_tree(3), .dtd = news_dtd()});
//   int pub = net.add_publisher(0);           // floods the advertisements
//   int sub = net.add_subscriber(6);
//   net.subscribe(sub, parse_xpe("/news/body//block/p"));
//   net.run();                                 // propagate control plane
//   net.publish(pub, document);
//   net.run();                                 // deliver
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adv/derive.hpp"
#include "dtd/universe.hpp"
#include "net/simulator.hpp"
#include "workload/dtd_corpus.hpp"

namespace xroute {

/// The paper's routing-strategy axes (§5, Tables 2/3).
struct RoutingStrategy {
  bool advertisements = true;
  bool covering = true;
  bool merging = false;
  /// Maximum D_imperfect for merging; 0 = perfect merging only.
  double max_imperfect_degree = 0.0;

  static RoutingStrategy no_adv_no_cov() { return {false, false, false, 0.0}; }
  static RoutingStrategy no_adv_with_cov() { return {false, true, false, 0.0}; }
  static RoutingStrategy with_adv_no_cov() { return {true, false, false, 0.0}; }
  static RoutingStrategy with_adv_with_cov() { return {true, true, false, 0.0}; }
  static RoutingStrategy with_adv_with_cov_pm() {
    return {true, true, true, 0.0};
  }
  static RoutingStrategy with_adv_with_cov_ipm(double degree = 0.1) {
    return {true, true, true, degree};
  }
};

class Network {
 public:
  struct Options {
    Topology topology;
    LatencyProfile profile = LatencyProfile::kCluster;
    RoutingStrategy strategy;
    /// The data producers' DTD: source of advertisements and of the
    /// merging universe.
    Dtd dtd;
    /// Further producer DTDs for multi-publisher networks; their
    /// advertisement sets are derived too and their paths join the
    /// merging universe. Index 0 is `dtd`, additional ones follow.
    std::vector<Dtd> additional_dtds;
    std::size_t merge_interval = 200;
    std::size_t universe_depth = 12;
    std::size_t universe_max_paths = 50000;
    std::uint64_t seed = 42;
    /// 0 disables folding measured processing time into simulated time
    /// (deterministic message counting); 1.0 = wall clock.
    double processing_scale = 1.0;
    /// Fault tolerance (DESIGN.md §7). Off by default: a clean network
    /// carries zero reliability overhead. When on, broker links run the
    /// reliable transport and `link_faults` applies to all of them; draws
    /// come from a dedicated Rng seeded with `fault_seed`.
    bool fault_injection = false;
    std::uint64_t fault_seed = 4242;
    FaultProfile link_faults;
    ReliabilityOptions reliability;
    /// Causal tracing (obs/trace.hpp). Off by default; requires the build
    /// to have XROUTE_TRACING on (the default).
    bool tracing = false;
  };

  explicit Network(Options options);

  /// Attaches a subscriber client to `broker`; returns the client id.
  int add_subscriber(int broker);

  /// Attaches a publisher client to `broker` and (under advertisement-based
  /// routing) floods the DTD-derived advertisement set from it.
  /// `dtd_index` selects the producer's DTD: 0 = Options::dtd, i >= 1 =
  /// additional_dtds[i-1].
  int add_publisher(int broker, std::size_t dtd_index = 0);

  void subscribe(int subscriber, const Xpe& xpe);
  void unsubscribe(int subscriber, const Xpe& xpe);
  std::uint64_t publish(int publisher, const XmlDocument& doc);
  std::uint64_t publish_paths(int publisher, const std::vector<Path>& paths,
                              std::size_t doc_bytes);

  /// Drains pending events; call between control-plane and data-plane
  /// phases and before reading statistics.
  void run() { sim_.run(); }

  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  const NetworkStats& stats() const { return sim_.stats(); }
  const std::vector<Advertisement>& advertisements(std::size_t dtd_index = 0) const {
    return advertisement_sets_.at(dtd_index).advertisements;
  }
  const PathUniverse& universe() const { return *universe_; }

  /// Sum of PRT sizes across brokers (network-wide routing state).
  std::size_t total_prt_size() const;
  /// PRT size of one broker.
  std::size_t prt_size(int broker) const {
    return sim_.broker(broker).prt_size();
  }

 private:
  Options options_;
  std::unique_ptr<PathUniverse> universe_;
  std::vector<DerivedAdvertisements> advertisement_sets_;
  Simulator sim_;
  Rng rng_;
};

}  // namespace xroute
