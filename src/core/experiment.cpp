#include "core/experiment.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace xroute {

std::vector<StrategySpec> paper_strategy_matrix(double imperfect_degree) {
  return {
      {"no-Adv-no-Cov", RoutingStrategy::no_adv_no_cov()},
      {"no-Adv-with-Cov", RoutingStrategy::no_adv_with_cov()},
      {"with-Adv-no-Cov", RoutingStrategy::with_adv_no_cov()},
      {"with-Adv-with-Cov", RoutingStrategy::with_adv_with_cov()},
      {"with-Adv-with-CovPM", RoutingStrategy::with_adv_with_cov_pm()},
      {"with-Adv-with-CovIPM",
       RoutingStrategy::with_adv_with_cov_ipm(imperfect_degree)},
  };
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt(std::size_t value) { return std::to_string(value); }

}  // namespace xroute
