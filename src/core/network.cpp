#include "core/network.hpp"

namespace xroute {

namespace {

Broker::Config broker_config(const Network::Options& options,
                             const PathUniverse* universe) {
  Broker::Config config;
  config.use_advertisements = options.strategy.advertisements;
  config.use_covering = options.strategy.covering;
  config.track_covered = options.strategy.covering;
  config.merging_enabled = options.strategy.merging;
  config.merge_universe = options.strategy.merging ? universe : nullptr;
  config.merge_interval = options.merge_interval;
  config.merge_options.max_imperfect_degree =
      options.strategy.max_imperfect_degree;
  // The paper's general rule ("replace the differing parts with //") is
  // only applied when imperfection is tolerated at all.
  config.merge_options.rule_general =
      options.strategy.max_imperfect_degree > 0.0;
  return config;
}

}  // namespace

Network::Network(Options options)
    : options_(std::move(options)),
      sim_(Simulator::Options{options_.processing_scale}),
      rng_(options_.seed) {
  PathUniverse::Options uopts;
  uopts.max_depth = options_.universe_depth;
  uopts.max_paths = options_.universe_max_paths;
  DeriveOptions dopts;
  dopts.repair_depth = options_.universe_depth;

  // The merging universe spans every producer's DTD; each producer gets
  // its own derived advertisement set.
  std::vector<Path> all_paths;
  auto ingest = [&](const Dtd& dtd) {
    PathUniverse universe(dtd, uopts);
    all_paths.insert(all_paths.end(), universe.paths().begin(),
                     universe.paths().end());
    advertisement_sets_.push_back(derive_advertisements(dtd, dopts));
  };
  ingest(options_.dtd);
  for (const Dtd& dtd : options_.additional_dtds) ingest(dtd);
  universe_ = std::make_unique<PathUniverse>(std::move(all_paths));

  sim_.build(options_.topology, broker_config(options_, universe_.get()),
             options_.profile, rng_);
  if (options_.fault_injection) {
    sim_.enable_fault_injection(options_.fault_seed, options_.reliability);
    sim_.set_default_link_faults(options_.link_faults);
  }
  if (options_.tracing) sim_.enable_tracing();
}

int Network::add_subscriber(int broker) { return sim_.attach_client(broker); }

int Network::add_publisher(int broker, std::size_t dtd_index) {
  int client = sim_.attach_client(broker);
  if (options_.strategy.advertisements) {
    for (const Advertisement& adv :
         advertisement_sets_.at(dtd_index).advertisements) {
      sim_.advertise(client, adv);
    }
  }
  return client;
}

void Network::subscribe(int subscriber, const Xpe& xpe) {
  sim_.subscribe(subscriber, xpe);
}

void Network::unsubscribe(int subscriber, const Xpe& xpe) {
  sim_.unsubscribe(subscriber, xpe);
}

std::uint64_t Network::publish(int publisher, const XmlDocument& doc) {
  return sim_.publish(publisher, doc);
}

std::uint64_t Network::publish_paths(int publisher,
                                     const std::vector<Path>& paths,
                                     std::size_t doc_bytes) {
  return sim_.publish_paths(publisher, paths, doc_bytes);
}

std::size_t Network::total_prt_size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < sim_.broker_count(); ++i) {
    total += sim_.broker(static_cast<int>(i)).prt_size();
  }
  return total;
}

}  // namespace xroute
