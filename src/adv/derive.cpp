#include "adv/derive.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "match/adv_automaton.hpp"
#include "match/rules.hpp"

namespace xroute {

namespace {

/// A repetition region of the current walk stack: stack[start..end]
/// (inclusive) may repeat one or more times; the walk re-enters the
/// element stack[start] at position end+1.
struct Interval {
  std::size_t start;
  std::size_t end;
};

class Walker {
 public:
  Walker(const Dtd& dtd, const ElementGraph& graph,
         const DeriveOptions& options)
      : dtd_(dtd), graph_(graph), options_(options) {}

  void run() { walk(graph_.root()); }

  std::vector<Advertisement> take() { return std::move(out_); }
  bool truncated() const { return truncated_; }

 private:
  void walk(const std::string& element) {
    if (truncated_) return;
    stack_.push_back(element);
    const ElementDecl& decl = dtd_.element(element);
    if (decl.is_leaf() || decl.may_be_childless()) emit();

    for (const std::string& child : graph_.children(element)) {
      if (truncated_) break;
      // Deepest prior occurrence of the child on the walk stack.
      std::size_t occurrence = stack_.size();
      for (std::size_t i = stack_.size(); i-- > 0;) {
        if (stack_[i] == child) {
          occurrence = i;
          break;
        }
      }
      if (occurrence == stack_.size()) {
        walk(child);
        continue;
      }
      // Back edge: the segment stack[occurrence..top] forms a cycle.
      auto edge = std::make_pair(element, child);
      if (used_backedges_.count(edge)) continue;
      Interval candidate{occurrence, stack_.size() - 1};
      if (conflicts(candidate)) {
        // The loop structure is not expressible as nested/series groups
        // (e.g. mutual 2-cycles); fall back to a coarse but complete
        // pattern: everything below the loop head is unconstrained.
        emit_coarse(occurrence + 1);
        continue;
      }
      used_backedges_.insert(edge);
      intervals_.push_back(candidate);
      walk(child);
      intervals_.pop_back();
      used_backedges_.erase(edge);
    }
    stack_.pop_back();
  }

  bool conflicts(const Interval& candidate) const {
    for (const Interval& iv : intervals_) {
      // Existing intervals always end before the current top, so the only
      // clean arrangements are disjoint (iv ends before the candidate
      // starts) or nested (the candidate contains iv entirely).
      if (iv.start < candidate.start && candidate.start <= iv.end) return true;
    }
    return false;
  }

  void emit() {
    if (out_.size() >= options_.max_advertisements) {
      truncated_ = true;
      return;
    }
    Advertisement a(render_range(0, stack_.size()));
    record(std::move(a));
  }

  void emit_coarse(std::size_t prefix_len) {
    if (out_.size() >= options_.max_advertisements) {
      truncated_ = true;
      return;
    }
    // Render the (possibly grouped) prefix, then append an unconstrained
    // one-or-more wildcard group.
    std::vector<AdvNode> nodes = render_range(0, prefix_len);
    nodes.push_back(AdvNode::group({AdvNode::element(kWildcard)}));
    record(Advertisement(std::move(nodes)));
  }

  void record(Advertisement a) {
    std::string key = a.to_string();
    if (emitted_.insert(std::move(key)).second) out_.push_back(std::move(a));
  }

  /// Renders stack positions [lo, hi) into advertisement nodes, expanding
  /// the recorded repetition intervals into groups (outermost first).
  std::vector<AdvNode> render_range(std::size_t lo, std::size_t hi) const {
    std::vector<AdvNode> nodes;
    std::size_t pos = lo;
    while (pos < hi) {
      // Outermost interval starting exactly here and contained in range.
      const Interval* best = nullptr;
      for (const Interval& iv : intervals_) {
        if (iv.start == pos && iv.end < hi && (!best || iv.end > best->end) &&
            !(rendering_ && iv.start == rendering_->start &&
              iv.end == rendering_->end)) {
          best = &iv;
        }
      }
      if (best) {
        const Interval* outer = rendering_;
        rendering_ = best;
        nodes.push_back(AdvNode::group(render_range(pos, best->end + 1)));
        rendering_ = outer;
        pos = best->end + 1;
      } else {
        nodes.push_back(AdvNode::element(stack_[pos]));
        ++pos;
      }
    }
    return nodes;
  }

  const Dtd& dtd_;
  const ElementGraph& graph_;
  const DeriveOptions& options_;
  std::vector<std::string> stack_;
  std::vector<Interval> intervals_;
  std::set<std::pair<std::string, std::string>> used_backedges_;
  std::set<std::string> emitted_;
  std::vector<Advertisement> out_;
  bool truncated_ = false;
  /// Interval currently being rendered (so the recursive call does not
  /// re-pick it and recurse forever).
  mutable const Interval* rendering_ = nullptr;
};

/// Fast membership check of a concrete path against a non-recursive
/// advertisement (positionwise, equal length).
bool nonrec_accepts(const std::vector<std::string>& adv, const Path& p) {
  if (adv.size() != p.size()) return false;
  for (std::size_t i = 0; i < adv.size(); ++i) {
    if (adv[i] != kWildcard && adv[i] != p[i]) return false;
  }
  return true;
}

}  // namespace

DerivedAdvertisements derive_advertisements(const Dtd& dtd,
                                            const DeriveOptions& options) {
  DerivedAdvertisements result;
  ElementGraph graph(dtd);
  Walker walker(dtd, graph, options);
  walker.run();
  result.truncated = walker.truncated();
  result.advertisements = walker.take();

  if (!options.repair) return result;

  // Completeness repair: every conforming path (up to the configured
  // depth) must match some advertisement.
  PathUniverse::Options uopts;
  uopts.max_depth = options.repair_depth;
  uopts.max_paths = options.repair_max_paths;
  PathUniverse universe(dtd, uopts);

  // Index non-recursive advertisements by length; keep automata for the
  // recursive ones.
  std::map<std::size_t, std::vector<std::vector<std::string>>> by_length;
  std::vector<AdvAutomaton> automata;
  for (const Advertisement& a : result.advertisements) {
    if (a.non_recursive()) {
      auto flat = a.flat_elements();
      by_length[flat.size()].push_back(std::move(flat));
    } else {
      automata.emplace_back(a);
    }
  }

  for (const Path& path : universe.paths()) {
    if (result.advertisements.size() >= options.max_advertisements) {
      result.truncated = true;
      break;
    }
    bool matched = false;
    auto it = by_length.find(path.size());
    if (it != by_length.end()) {
      for (const auto& flat : it->second) {
        if (nonrec_accepts(flat, path)) {
          matched = true;
          break;
        }
      }
    }
    for (std::size_t i = 0; !matched && i < automata.size(); ++i) {
      matched = automata[i].accepts_path(path);
    }
    if (!matched) {
      Advertisement repair = Advertisement::from_elements(path.elements);
      by_length[path.size()].push_back(path.elements);
      result.advertisements.push_back(std::move(repair));
      ++result.repaired;
    }
  }
  return result;
}

}  // namespace xroute
