#include "adv/advertisement.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "util/symbols.hpp"
#include "xpath/step.hpp"

namespace xroute {

namespace {

void collect_symbols(const std::vector<AdvNode>& nodes,
                     std::vector<std::uint32_t>* alphabet,
                     bool* has_wildcard) {
  for (const AdvNode& n : nodes) {
    if (n.kind == AdvNode::Kind::kGroup) {
      collect_symbols(n.children, alphabet, has_wildcard);
    } else if (n.name == kWildcard) {
      *has_wildcard = true;
    } else {
      alphabet->push_back(intern_symbol(n.name));
    }
  }
}

}  // namespace

Advertisement::Advertisement(std::vector<AdvNode> nodes)
    : nodes_(std::move(nodes)) {
  collect_symbols(nodes_, &alphabet_, &has_wildcard_);
  std::sort(alphabet_.begin(), alphabet_.end());
  alphabet_.erase(std::unique(alphabet_.begin(), alphabet_.end()),
                  alphabet_.end());
  if (non_recursive()) {
    flat_symbols_.reserve(nodes_.size());
    for (const AdvNode& n : nodes_) {
      flat_symbols_.push_back(intern_symbol(n.name));
    }
  }
}

Advertisement Advertisement::from_elements(std::vector<std::string> elements) {
  std::vector<AdvNode> nodes;
  nodes.reserve(elements.size());
  for (std::string& e : elements) nodes.push_back(AdvNode::element(std::move(e)));
  return Advertisement(std::move(nodes));
}

bool Advertisement::non_recursive() const {
  for (const AdvNode& n : nodes_) {
    if (n.kind == AdvNode::Kind::kGroup) return false;
  }
  return true;
}

namespace {

bool group_is_flat(const AdvNode& group) {
  for (const AdvNode& c : group.children) {
    if (c.kind == AdvNode::Kind::kGroup) return false;
  }
  return true;
}

/// Maximum group nesting depth below (not counting) `nodes` themselves.
std::size_t nesting_depth(const std::vector<AdvNode>& nodes) {
  std::size_t depth = 0;
  for (const AdvNode& n : nodes) {
    if (n.kind == AdvNode::Kind::kGroup) {
      depth = std::max(depth, 1 + nesting_depth(n.children));
    }
  }
  return depth;
}

}  // namespace

Advertisement::Shape Advertisement::shape() const {
  std::size_t top_groups = 0;
  bool nested = false;
  for (const AdvNode& n : nodes_) {
    if (n.kind == AdvNode::Kind::kGroup) {
      ++top_groups;
      if (!group_is_flat(n)) nested = true;
    }
  }
  if (top_groups == 0) return Shape::kNonRecursive;
  if (nested) {
    // One nesting level with a single top group is the paper's embedded
    // shape a1(a2(a3)+a4)+a5; anything deeper or wider is kGeneral.
    if (top_groups == 1 && nesting_depth(nodes_) == 2) {
      return Shape::kEmbeddedRecursive;
    }
    return Shape::kGeneral;
  }
  return top_groups == 1 ? Shape::kSimpleRecursive : Shape::kSeriesRecursive;
}

std::vector<std::string> Advertisement::flat_elements() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const AdvNode& n : nodes_) {
    if (n.kind != AdvNode::Kind::kElement) {
      throw std::logic_error(
          "flat_elements() called on a recursive advertisement: " +
          to_string());
    }
    out.push_back(n.name);
  }
  return out;
}

namespace {

std::size_t min_length_of(const std::vector<AdvNode>& nodes) {
  std::size_t len = 0;
  for (const AdvNode& n : nodes) {
    len += (n.kind == AdvNode::Kind::kElement) ? 1 : min_length_of(n.children);
  }
  return len;
}

void expand(const std::vector<AdvNode>& nodes, std::size_t index,
            std::vector<std::string>& current, std::size_t max_len,
            const std::function<void()>& done) {
  if (index == nodes.size()) {
    done();
    return;
  }
  const AdvNode& node = nodes[index];
  if (node.kind == AdvNode::Kind::kElement) {
    if (current.size() + 1 > max_len) return;
    current.push_back(node.name);
    expand(nodes, index + 1, current, max_len, done);
    current.pop_back();
    return;
  }
  // Group: one or more repetitions, each a full expansion of the children.
  // Depth-first over repetition counts with length pruning.
  std::function<void()> after_one_repetition = [&]() {
    // Continue after the group...
    expand(nodes, index + 1, current, max_len, done);
    // ...or repeat the group once more.
    expand(node.children, 0, current, max_len, after_one_repetition);
  };
  expand(node.children, 0, current, max_len, after_one_repetition);
}

}  // namespace

std::size_t Advertisement::min_length() const { return min_length_of(nodes_); }

std::vector<std::vector<std::string>> Advertisement::expansions(
    std::size_t max_len) const {
  std::vector<std::vector<std::string>> out;
  std::vector<std::string> current;
  expand(nodes_, 0, current, max_len,
         [&]() { out.push_back(current); });
  return out;
}

namespace {

void print_nodes(const std::vector<AdvNode>& nodes, std::ostringstream& os) {
  for (const AdvNode& n : nodes) {
    if (n.kind == AdvNode::Kind::kElement) {
      os << '/' << n.name;
    } else {
      os << '(';
      print_nodes(n.children, os);
      os << ")+";
    }
  }
}

}  // namespace

std::string Advertisement::to_string() const {
  std::ostringstream os;
  print_nodes(nodes_, os);
  return os.str();
}

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '.' || c == '-';
}

std::vector<AdvNode> parse_nodes(std::string_view text, std::size_t& pos,
                                 bool inside_group) {
  std::vector<AdvNode> nodes;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '(') {
      ++pos;
      std::vector<AdvNode> kids = parse_nodes(text, pos, /*inside_group=*/true);
      if (pos >= text.size() || text[pos] != ')') {
        throw ParseError("advertisement group not closed in '" +
                         std::string(text) + "'");
      }
      ++pos;
      if (pos >= text.size() || text[pos] != '+') {
        throw ParseError("advertisement group must be one-or-more '(...)+'");
      }
      ++pos;
      if (kids.empty()) throw ParseError("empty advertisement group");
      nodes.push_back(AdvNode::group(std::move(kids)));
      continue;
    }
    if (c == ')') {
      if (!inside_group) {
        throw ParseError("unmatched ')' in advertisement '" +
                         std::string(text) + "'");
      }
      break;
    }
    if (c != '/') {
      throw ParseError("expected '/' at offset " + std::to_string(pos) +
                       " in advertisement '" + std::string(text) + "'");
    }
    ++pos;
    if (pos >= text.size()) throw ParseError("advertisement ends with '/'");
    if (text[pos] == '*') {
      nodes.push_back(AdvNode::element("*"));
      ++pos;
      continue;
    }
    std::size_t start = pos;
    while (pos < text.size() && is_name_char(text[pos])) ++pos;
    if (pos == start) {
      throw ParseError("expected element name at offset " +
                       std::to_string(pos) + " in advertisement '" +
                       std::string(text) + "'");
    }
    nodes.push_back(
        AdvNode::element(std::string(text.substr(start, pos - start))));
  }
  return nodes;
}

}  // namespace

Advertisement parse_advertisement(std::string_view text) {
  if (text.empty()) throw ParseError("empty advertisement");
  std::size_t pos = 0;
  std::vector<AdvNode> nodes = parse_nodes(text, pos, /*inside_group=*/false);
  if (pos != text.size()) {
    throw ParseError("trailing characters in advertisement '" +
                     std::string(text) + "'");
  }
  if (nodes.empty()) throw ParseError("empty advertisement");
  return Advertisement(std::move(nodes));
}

namespace {

void hash_nodes(const std::vector<AdvNode>& nodes, std::size_t& h) {
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (const AdvNode& n : nodes) {
    if (n.kind == AdvNode::Kind::kElement) {
      mix(std::hash<std::string>{}(n.name));
    } else {
      mix(0x5bd1e995);
      hash_nodes(n.children, h);
      mix(0xc2b2ae35);
    }
  }
}

}  // namespace

std::size_t AdvHash::operator()(const Advertisement& a) const {
  std::size_t h = 14695981039346656037ull;
  hash_nodes(a.nodes(), h);
  return h;
}

}  // namespace xroute
