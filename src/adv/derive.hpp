// Advertisement derivation from a DTD (paper §3.1): "the DTD allows
// deriving all possible paths from the root to the leaves appearing in
// related XML documents".
//
// Non-recursive DTDs yield one non-recursive advertisement per distinct
// root-to-leaf path. Recursive DTDs yield recursive advertisements: when
// the derivation walk meets an element already on its path, the cycle
// segment becomes a one-or-more group; nested back edges yield the paper's
// embedded shape and sequential ones the series shape.
//
// Completeness contract: every root-to-leaf path a conforming document can
// contain (up to the configured depth) matches at least one derived
// advertisement. The walk guarantees this for cleanly structured recursion
// and a repair pass guarantees it in general: any universe path the
// derived set misses is added verbatim. Incompleteness of the
// advertisement set would break routing (subscriptions would not reach the
// publisher), so this contract is property-tested.
#pragma once

#include <cstddef>
#include <vector>

#include "adv/advertisement.hpp"
#include "dtd/dtd.hpp"

namespace xroute {

struct DeriveOptions {
  /// Hard cap on the advertisement count (the paper floods advertisements;
  /// an unbounded set would be a DoS on the network).
  std::size_t max_advertisements = 20000;
  /// Completeness repair: universe paths up to this depth are checked
  /// against the derived set and added verbatim when missed.
  std::size_t repair_depth = 12;
  std::size_t repair_max_paths = 100000;
  bool repair = true;
};

struct DerivedAdvertisements {
  std::vector<Advertisement> advertisements;
  /// Number of exact-path advertisements added by the repair pass (0 for
  /// cleanly recursive DTDs — asserted for the bundled corpus).
  std::size_t repaired = 0;
  /// True if max_advertisements was hit (the set may then be incomplete).
  bool truncated = false;
};

DerivedAdvertisements derive_advertisements(const Dtd& dtd,
                                            const DeriveOptions& options = {});

}  // namespace xroute
