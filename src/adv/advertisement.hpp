// Advertisement model (paper §3.1).
//
// An advertisement is an absolute, '//'-free path pattern whose positions
// are element names or wildcards, with optional one-or-more repetition
// groups for recursive DTDs:
//
//   non-recursive:       /t1/t2/.../tn
//   simple-recursive:    a1 (a2)+ a3            e.g.  /a/*/c(/e/d)+/*/c/e
//   series-recursive:    a1 (a2)+ a3 (a4)+ a5
//   embedded-recursive:  a1 (a2 (a3)+ a4)+ a5
//
// P(a) is the set of concrete paths obtained by expanding every group one
// or more times and instantiating wildcards; publications in P(a) have
// exactly the length of the chosen expansion. The "(...)+ " syntax is a
// system-internal extension of XPath and never reaches clients.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace xroute {

/// A node of an advertisement pattern: either one position (element name or
/// "*"), or a one-or-more repetition group of nested nodes.
struct AdvNode {
  enum class Kind : unsigned char { kElement, kGroup };

  Kind kind = Kind::kElement;
  std::string name;               ///< for kElement ("*" = wildcard)
  std::vector<AdvNode> children;  ///< for kGroup

  static AdvNode element(std::string n) {
    AdvNode node;
    node.kind = Kind::kElement;
    node.name = std::move(n);
    return node;
  }
  static AdvNode group(std::vector<AdvNode> kids) {
    AdvNode node;
    node.kind = Kind::kGroup;
    node.children = std::move(kids);
    return node;
  }

  friend bool operator==(const AdvNode&, const AdvNode&) = default;
};

class Advertisement {
 public:
  /// The paper's taxonomy (§3.1). kGeneral covers shapes beyond the three
  /// named ones (e.g. a group nested two levels deep inside two series
  /// groups); the automaton matcher handles them uniformly.
  enum class Shape : unsigned char {
    kNonRecursive,
    kSimpleRecursive,
    kSeriesRecursive,
    kEmbeddedRecursive,
    kGeneral,
  };

  Advertisement() = default;
  explicit Advertisement(std::vector<AdvNode> nodes);

  /// Builds a non-recursive advertisement from element names / wildcards.
  static Advertisement from_elements(std::vector<std::string> elements);

  const std::vector<AdvNode>& nodes() const { return nodes_; }
  bool non_recursive() const;
  Shape shape() const;

  /// Positions of a non-recursive advertisement; throws std::logic_error if
  /// the advertisement has groups.
  std::vector<std::string> flat_elements() const;

  /// Interned positions of a non-recursive advertisement, cached at
  /// construction (empty for recursive advertisements). The SRT overlap
  /// hot path compares these against Xpe::symbols().
  const std::vector<std::uint32_t>& flat_symbols() const {
    return flat_symbols_;
  }

  /// Distinct interned element names appearing anywhere in the pattern
  /// (groups included, wildcard excluded) — the advertisement's symbol
  /// alphabet, used by the SRT first-step index: an advertisement with no
  /// wildcard can only overlap an XPE whose concrete steps all lie in this
  /// alphabet.
  const std::vector<std::uint32_t>& symbol_alphabet() const {
    return alphabet_;
  }

  /// True if any position (groups included) is the wildcard "*".
  bool has_wildcard() const { return has_wildcard_; }

  /// Length of the shortest expansion (every group taken exactly once).
  std::size_t min_length() const;

  /// All complete expansions whose length does not exceed max_len. Used by
  /// test oracles and by the D_imperfect computation; matching in the
  /// router uses the algorithms in src/match instead.
  std::vector<std::vector<std::string>> expansions(std::size_t max_len) const;

  /// Prints in the paper's notation, e.g. "/a/*/c(/e/d)+/*/c/e".
  std::string to_string() const;

  friend bool operator==(const Advertisement& a, const Advertisement& b) {
    return a.nodes_ == b.nodes_;
  }

 private:
  std::vector<AdvNode> nodes_;
  // Interned caches, derived from nodes_ at construction.
  std::vector<std::uint32_t> flat_symbols_;  ///< non-recursive only
  std::vector<std::uint32_t> alphabet_;
  bool has_wildcard_ = false;
};

/// Parses the paper's advertisement notation (inverse of to_string);
/// throws ParseError on malformed input.
Advertisement parse_advertisement(std::string_view text);

/// Hash functor for unordered containers keyed by advertisements.
struct AdvHash {
  std::size_t operator()(const Advertisement& a) const;
};

/// Orders advertisements by their printed form (stable container ordering).
struct AdvLess {
  bool operator()(const Advertisement& a, const Advertisement& b) const {
    return a.to_string() < b.to_string();
  }
};

}  // namespace xroute
