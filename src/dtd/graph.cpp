#include "dtd/graph.hpp"

#include <functional>
#include <stdexcept>

namespace xroute {

namespace {

/// Tarjan-style SCC detection restricted to what we need: mark every node
/// that belongs to a strongly connected component of size > 1, or that has
/// a self-loop, as cyclic.
class CycleFinder {
 public:
  explicit CycleFinder(
      const std::map<std::string, std::vector<std::string>>& adj)
      : adj_(adj) {}

  std::set<std::string> run() {
    for (const auto& [node, kids] : adj_) {
      (void)kids;
      if (!index_.count(node)) strongconnect(node);
    }
    return cyclic_;
  }

 private:
  void strongconnect(const std::string& v) {
    index_[v] = lowlink_[v] = counter_++;
    stack_.push_back(v);
    on_stack_.insert(v);
    auto it = adj_.find(v);
    if (it != adj_.end()) {
      for (const std::string& w : it->second) {
        if (!index_.count(w)) {
          strongconnect(w);
          lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
        } else if (on_stack_.count(w)) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
        if (w == v) self_loop_.insert(v);
      }
    }
    if (lowlink_[v] == index_[v]) {
      std::vector<std::string> component;
      while (true) {
        std::string w = stack_.back();
        stack_.pop_back();
        on_stack_.erase(w);
        component.push_back(w);
        if (w == v) break;
      }
      if (component.size() > 1 ||
          (component.size() == 1 && self_loop_.count(component[0]))) {
        for (const std::string& w : component) cyclic_.insert(w);
      }
    }
  }

  const std::map<std::string, std::vector<std::string>>& adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  std::set<std::string> self_loop_;
  std::set<std::string> cyclic_;
  int counter_ = 0;
};

}  // namespace

ElementGraph::ElementGraph(const Dtd& dtd) : root_(dtd.root()) {
  for (const std::string& name : dtd.declaration_order()) {
    const ElementDecl& decl = dtd.element(name);
    if (decl.content.kind == ContentParticle::Kind::kAny) {
      children_[name] = dtd.declaration_order();
    } else {
      std::vector<std::string> kids;
      for (const std::string& child : decl.child_elements()) {
        if (dtd.has_element(child)) kids.push_back(child);
      }
      children_[name] = std::move(kids);
    }
  }

  // Reachability from the root.
  std::vector<std::string> frontier{root_};
  reachable_.insert(root_);
  while (!frontier.empty()) {
    std::string node = std::move(frontier.back());
    frontier.pop_back();
    for (const std::string& child : children_[node]) {
      if (reachable_.insert(child).second) frontier.push_back(child);
    }
  }

  // Cycles, restricted to the reachable part.
  std::map<std::string, std::vector<std::string>> reachable_adj;
  for (const std::string& node : reachable_) {
    std::vector<std::string> kids;
    for (const std::string& child : children_[node]) {
      if (reachable_.count(child)) kids.push_back(child);
    }
    reachable_adj[node] = std::move(kids);
  }
  cyclic_ = CycleFinder(reachable_adj).run();
}

const std::vector<std::string>& ElementGraph::children(
    const std::string& element) const {
  auto it = children_.find(element);
  if (it == children_.end()) {
    throw std::out_of_range("element not in graph: " + element);
  }
  return it->second;
}

std::vector<std::string> ElementGraph::all_elements() const {
  std::vector<std::string> out;
  out.reserve(children_.size());
  for (const auto& [name, kids] : children_) {
    (void)kids;
    out.push_back(name);
  }
  return out;
}

}  // namespace xroute
