#include "dtd/universe.hpp"

#include "match/pub_match.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

namespace {

struct Enumerator {
  const Dtd& dtd;
  const ElementGraph& graph;
  const PathUniverse::Options& options;
  std::vector<Path>* out;
  bool truncated = false;
  Path current;

  void walk(const std::string& element) {
    if (out->size() >= options.max_paths) {
      truncated = true;
      return;
    }
    current.elements.push_back(element);
    const ElementDecl& decl = dtd.element(element);
    // A conforming instance of `element` may terminate the path here if
    // its content model admits zero element children.
    if (decl.is_leaf() || decl.may_be_childless()) {
      out->push_back(current);
    }
    if (current.size() < options.max_depth) {
      for (const std::string& child : graph.children(element)) {
        walk(child);
        if (truncated) break;
      }
    }
    current.elements.pop_back();
  }
};

}  // namespace

PathUniverse::PathUniverse(const Dtd& dtd, const Options& options) {
  ElementGraph graph(dtd);
  Enumerator e{dtd, graph, options, &paths_, false, Path{}};
  e.walk(graph.root());
  truncated_ = e.truncated;
}

std::size_t PathUniverse::count_matching(const Xpe& xpe) const {
  std::size_t count = 0;
  for (const Path& p : paths_) {
    if (matches(p, xpe)) ++count;
  }
  return count;
}

double PathUniverse::selectivity(const Xpe& xpe) const {
  if (paths_.empty()) return 0.0;
  return static_cast<double>(count_matching(xpe)) /
         static_cast<double>(paths_.size());
}

}  // namespace xroute
