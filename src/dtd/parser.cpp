#include "dtd/parser.hpp"

#include <cctype>
#include <string>

namespace xroute {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char get() { return text_[pos_++]; }

  bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }
  void advance(std::size_t n) { pos_ += n; }

  void skip_whitespace() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void expect(char c, const char* context) {
    if (done() || peek() != c) {
      fail(std::string("expected '") + c + "' " + context);
    }
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("DTD parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '.' || c == '-';
}

std::string parse_name(Cursor& cur) {
  cur.skip_whitespace();
  if (cur.done() || !is_name_start(cur.peek())) {
    cur.fail("expected element name");
  }
  std::string name;
  name += cur.get();
  while (!cur.done() && is_name_char(cur.peek())) name += cur.get();
  return name;
}

Occurrence parse_occurrence(Cursor& cur) {
  if (cur.done()) return Occurrence::kOne;
  switch (cur.peek()) {
    case '?': cur.get(); return Occurrence::kOptional;
    case '*': cur.get(); return Occurrence::kZeroOrMore;
    case '+': cur.get(); return Occurrence::kOneOrMore;
    default: return Occurrence::kOne;
  }
}

ContentParticle parse_group(Cursor& cur);

/// Parses a single content particle: NAME occ? | group occ?
ContentParticle parse_cp(Cursor& cur) {
  cur.skip_whitespace();
  if (cur.done()) cur.fail("unexpected end inside content model");
  if (cur.peek() == '(') return parse_group(cur);
  if (cur.peek() == '%') cur.fail("parameter entities are not supported");
  std::string name = parse_name(cur);
  Occurrence occ = parse_occurrence(cur);
  return ContentParticle::element(std::move(name), occ);
}

/// Parses '(' ... ')' occ?; decides Sequence vs Choice vs mixed from the
/// separators, enforcing that they are not mixed within one group.
ContentParticle parse_group(Cursor& cur) {
  cur.expect('(', "to open a content group");
  cur.skip_whitespace();

  // Mixed content: (#PCDATA ...)
  if (cur.starts_with("#PCDATA")) {
    cur.advance(7);
    std::vector<ContentParticle> kids;
    ContentParticle pcdata;
    pcdata.kind = ContentParticle::Kind::kPcdata;
    kids.push_back(pcdata);
    cur.skip_whitespace();
    while (!cur.done() && cur.peek() == '|') {
      cur.get();
      kids.push_back(ContentParticle::element(parse_name(cur)));
      cur.skip_whitespace();
    }
    cur.expect(')', "to close mixed content");
    Occurrence occ = parse_occurrence(cur);
    if (kids.size() > 1 && occ != Occurrence::kZeroOrMore) {
      cur.fail("mixed content with elements must be (...)* ");
    }
    return ContentParticle::group(ContentParticle::Kind::kChoice,
                                  std::move(kids), occ);
  }

  std::vector<ContentParticle> kids;
  kids.push_back(parse_cp(cur));
  cur.skip_whitespace();
  char separator = 0;
  while (!cur.done() && cur.peek() != ')') {
    char sep = cur.get();
    if (sep != ',' && sep != '|') cur.fail("expected ',' or '|' in group");
    if (separator == 0) {
      separator = sep;
    } else if (separator != sep) {
      cur.fail("cannot mix ',' and '|' within one group");
    }
    kids.push_back(parse_cp(cur));
    cur.skip_whitespace();
  }
  cur.expect(')', "to close content group");
  Occurrence occ = parse_occurrence(cur);
  auto kind = (separator == '|') ? ContentParticle::Kind::kChoice
                                 : ContentParticle::Kind::kSequence;
  return ContentParticle::group(kind, std::move(kids), occ);
}

ContentParticle parse_content(Cursor& cur) {
  cur.skip_whitespace();
  if (cur.starts_with("EMPTY")) {
    cur.advance(5);
    ContentParticle p;
    p.kind = ContentParticle::Kind::kEmpty;
    return p;
  }
  if (cur.starts_with("ANY")) {
    cur.advance(3);
    ContentParticle p;
    p.kind = ContentParticle::Kind::kAny;
    return p;
  }
  if (!cur.done() && cur.peek() == '(') return parse_group(cur);
  cur.fail("expected EMPTY, ANY or '(' in content model");
}

}  // namespace

Dtd parse_dtd(std::string_view text) {
  Cursor cur(text);
  Dtd dtd;
  while (true) {
    cur.skip_whitespace();
    if (cur.done()) break;
    if (cur.starts_with("<!--")) {
      cur.advance(4);
      // Find the comment terminator.
      while (!cur.done() && !cur.starts_with("-->")) cur.advance(1);
      if (cur.done()) cur.fail("unterminated comment");
      cur.advance(3);
      continue;
    }
    if (cur.starts_with("<!ELEMENT")) {
      cur.advance(9);
      ElementDecl decl;
      decl.name = parse_name(cur);
      decl.content = parse_content(cur);
      cur.skip_whitespace();
      cur.expect('>', "to close <!ELEMENT>");
      dtd.add(std::move(decl));
      continue;
    }
    if (cur.starts_with("<!ATTLIST")) {
      cur.advance(9);
      std::string element = parse_name(cur);
      std::vector<AttributeDecl> attributes;
      while (true) {
        cur.skip_whitespace();
        if (cur.done()) cur.fail("unterminated <!ATTLIST>");
        if (cur.peek() == '>') {
          cur.advance(1);
          break;
        }
        AttributeDecl attribute;
        attribute.name = parse_name(cur);
        cur.skip_whitespace();
        // Type: CDATA / ID / IDREF / NMTOKEN / ... or an enumeration.
        if (!cur.done() && cur.peek() == '(') {
          cur.advance(1);
          while (true) {
            attribute.enumeration.push_back(parse_name(cur));
            cur.skip_whitespace();
            if (cur.done()) cur.fail("unterminated attribute enumeration");
            char c = cur.get();
            if (c == ')') break;
            if (c != '|') cur.fail("expected '|' or ')' in enumeration");
          }
        } else {
          parse_name(cur);  // a keyword type; free-form values
        }
        cur.skip_whitespace();
        // Default declaration: #REQUIRED / #IMPLIED / #FIXED "v" / "v".
        if (!cur.done() && cur.peek() == '#') {
          cur.advance(1);
          std::string keyword = parse_name(cur);
          attribute.required = (keyword == "REQUIRED");
          if (keyword == "FIXED") cur.skip_whitespace();
        }
        if (!cur.done() && (cur.peek() == '"' || cur.peek() == '\'')) {
          char quote = cur.get();
          while (!cur.done() && cur.peek() != quote) cur.advance(1);
          if (cur.done()) cur.fail("unterminated attribute default");
          cur.advance(1);
        }
        attributes.push_back(std::move(attribute));
      }
      dtd.add_attributes(element, std::move(attributes));
      continue;
    }
    cur.fail("expected <!ELEMENT>, <!ATTLIST> or comment");
  }
  if (dtd.size() == 0) throw ParseError("DTD declares no elements");
  return dtd;
}

}  // namespace xroute
