#include "dtd/dtd.hpp"

#include <algorithm>
#include <iterator>
#include <set>
#include <stdexcept>

namespace xroute {

void ContentParticle::collect_element_names(
    std::vector<std::string>& out) const {
  switch (kind) {
    case Kind::kElement:
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
      }
      break;
    case Kind::kSequence:
    case Kind::kChoice:
      for (const ContentParticle& c : children) c.collect_element_names(out);
      break;
    case Kind::kPcdata:
    case Kind::kEmpty:
    case Kind::kAny:
      break;
  }
}

std::vector<std::string> ElementDecl::child_elements() const {
  std::vector<std::string> out;
  content.collect_element_names(out);
  return out;
}

bool particle_may_be_empty(const ContentParticle& particle) {
  if (particle.occurrence == Occurrence::kOptional ||
      particle.occurrence == Occurrence::kZeroOrMore) {
    return true;
  }
  switch (particle.kind) {
    case ContentParticle::Kind::kPcdata:
    case ContentParticle::Kind::kEmpty:
    case ContentParticle::Kind::kAny:  // ANY admits empty content
      return true;
    case ContentParticle::Kind::kElement:
      return false;
    case ContentParticle::Kind::kSequence:
      for (const ContentParticle& c : particle.children) {
        if (!particle_may_be_empty(c)) return false;
      }
      return true;
    case ContentParticle::Kind::kChoice:
      for (const ContentParticle& c : particle.children) {
        if (particle_may_be_empty(c)) return true;
      }
      return false;
  }
  return false;
}

bool ElementDecl::may_be_childless() const {
  return particle_may_be_empty(content);
}

void Dtd::add(ElementDecl decl) {
  if (root_.empty()) root_ = decl.name;
  auto [it, inserted] = elements_.emplace(decl.name, std::move(decl));
  if (!inserted) {
    throw std::invalid_argument("duplicate element declaration: " + it->first);
  }
  order_.push_back(it->first);
}

void Dtd::add_attributes(const std::string& element,
                         std::vector<AttributeDecl> attributes) {
  auto it = elements_.find(element);
  if (it == elements_.end()) {
    throw std::invalid_argument("ATTLIST for undeclared element: " + element);
  }
  auto& list = it->second.attributes;
  list.insert(list.end(), std::make_move_iterator(attributes.begin()),
              std::make_move_iterator(attributes.end()));
}

void Dtd::set_root(const std::string& name) {
  if (!has_element(name)) {
    throw std::invalid_argument("root element not declared: " + name);
  }
  root_ = name;
}

const ElementDecl& Dtd::element(const std::string& name) const {
  auto it = elements_.find(name);
  if (it == elements_.end()) {
    throw std::out_of_range("element not declared: " + name);
  }
  return it->second;
}

std::vector<std::string> Dtd::undeclared_references() const {
  std::set<std::string> missing;
  for (const auto& [name, decl] : elements_) {
    for (const std::string& child : decl.child_elements()) {
      if (!has_element(child)) missing.insert(child);
    }
  }
  return {missing.begin(), missing.end()};
}

}  // namespace xroute
