// Parser for the DTD subset used by the corpus DTDs:
//
//   <!ELEMENT name EMPTY>
//   <!ELEMENT name ANY>
//   <!ELEMENT name (#PCDATA)>
//   <!ELEMENT name (#PCDATA | a | b)*>          (mixed content)
//   <!ELEMENT name (a, (b | c)*, d+, e?)>       (children content)
//   <!ATTLIST ...>                              (skipped)
//   <!-- comments -->                           (skipped)
//
// Parameter entities are not supported (the bundled corpus does not use
// them); encountering '%' raises ParseError rather than misparsing.
#pragma once

#include <string_view>

#include "dtd/dtd.hpp"
#include "util/error.hpp"

namespace xroute {

/// Parses a DTD; throws ParseError with offsets on malformed input.
Dtd parse_dtd(std::string_view text);

}  // namespace xroute
