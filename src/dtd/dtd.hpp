// DTD model: element declarations with content models.
//
// The paper derives the complete advertisement set of a publisher from its
// DTD (§3.1): the DTD determines every root-to-leaf element path that can
// appear in conforming documents, including recursive patterns when the
// DTD is recursive (e.g. NITF).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xroute {

/// How often a content particle may occur.
enum class Occurrence : unsigned char {
  kOne,         ///< exactly once (no suffix)
  kOptional,    ///< '?'
  kZeroOrMore,  ///< '*'
  kOneOrMore,   ///< '+'
};

/// A node of a content-model expression tree:
///   <!ELEMENT a (b, (c | d)*, e+)>  =>  Sequence[b, Choice[c,d]*, e+]
struct ContentParticle {
  enum class Kind : unsigned char {
    kElement,   ///< reference to a child element by name
    kSequence,  ///< ordered group (a, b, c)
    kChoice,    ///< alternative group (a | b | c)
    kPcdata,    ///< #PCDATA (character data, no child elements)
    kEmpty,     ///< EMPTY declared content
    kAny,       ///< ANY declared content
  };

  Kind kind = Kind::kEmpty;
  Occurrence occurrence = Occurrence::kOne;
  std::string name;                       ///< for kElement
  std::vector<ContentParticle> children;  ///< for kSequence / kChoice

  static ContentParticle element(std::string n,
                                 Occurrence occ = Occurrence::kOne) {
    ContentParticle p;
    p.kind = Kind::kElement;
    p.name = std::move(n);
    p.occurrence = occ;
    return p;
  }
  static ContentParticle group(Kind kind, std::vector<ContentParticle> kids,
                               Occurrence occ = Occurrence::kOne) {
    ContentParticle p;
    p.kind = kind;
    p.children = std::move(kids);
    p.occurrence = occ;
    return p;
  }

  /// Collects every distinct element name referenced by this particle tree.
  void collect_element_names(std::vector<std::string>& out) const;
};

/// One attribute declared by <!ATTLIST>: name, type (enumerated values or
/// free-form CDATA / numeric hint), and whether it is #REQUIRED.
struct AttributeDecl {
  std::string name;
  /// Allowed values for enumerated attributes, e.g. (photo|video|audio);
  /// empty for CDATA and other free-form types.
  std::vector<std::string> enumeration;
  bool required = false;
};

/// One <!ELEMENT name content> declaration. Mixed content
/// (#PCDATA | a | b)* is represented as a Choice particle whose children
/// include kPcdata.
struct ElementDecl {
  std::string name;
  ContentParticle content;
  std::vector<AttributeDecl> attributes;

  /// Distinct child element names this element may contain.
  std::vector<std::string> child_elements() const;

  /// True if no child element can ever appear (EMPTY or pure #PCDATA).
  bool is_leaf() const { return child_elements().empty(); }

  /// True if the content model can be instantiated with zero element
  /// children, i.e. an instance of this element may terminate a
  /// root-to-leaf path even though child elements are allowed. Drives both
  /// advertisement derivation and the XML generator's depth capping.
  bool may_be_childless() const;
};

/// True if `particle` can be instantiated without producing any element.
bool particle_may_be_empty(const ContentParticle& particle);

/// A parsed DTD. The document root defaults to the first declared element
/// (conventional for the DTDs the paper uses) and can be overridden.
class Dtd {
 public:
  void add(ElementDecl decl);
  /// Attaches attribute declarations to an already-declared element.
  void add_attributes(const std::string& element,
                      std::vector<AttributeDecl> attributes);
  void set_root(const std::string& name);

  const std::string& root() const { return root_; }
  bool has_element(const std::string& name) const {
    return elements_.find(name) != elements_.end();
  }
  const ElementDecl& element(const std::string& name) const;
  const std::vector<std::string>& declaration_order() const { return order_; }
  std::size_t size() const { return elements_.size(); }

  /// Element names referenced in content models but never declared; a
  /// well-formed corpus DTD has none (checked by tests).
  std::vector<std::string> undeclared_references() const;

 private:
  std::map<std::string, ElementDecl> elements_;
  std::vector<std::string> order_;
  std::string root_;
};

}  // namespace xroute
