// Element reachability graph of a DTD.
//
// Nodes are declared elements; there is an edge a -> b when b may appear as
// a direct child of a according to a's content model. The graph drives
// recursion detection (paper §3.1: recursive vs non-recursive DTDs),
// advertisement derivation and the concrete-path universe.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dtd/dtd.hpp"

namespace xroute {

class ElementGraph {
 public:
  explicit ElementGraph(const Dtd& dtd);

  const std::string& root() const { return root_; }

  /// Possible direct children (declaration-ordered, distinct). ANY content
  /// expands to every declared element.
  const std::vector<std::string>& children(const std::string& element) const;

  /// True if no element can appear below `element`.
  bool is_leaf(const std::string& element) const {
    return children(element).empty();
  }

  /// Elements reachable from the root (including the root itself).
  const std::set<std::string>& reachable() const { return reachable_; }

  /// True if some element reachable from the root lies on a cycle, i.e.
  /// conforming documents can nest an element within itself (directly or
  /// transitively). This is the paper's "recursive DTD".
  bool is_recursive() const { return !cyclic_.empty(); }

  /// Elements that lie on a cycle reachable from the root.
  const std::set<std::string>& cyclic_elements() const { return cyclic_; }

  /// True if `element` can (transitively) contain itself.
  bool is_cyclic(const std::string& element) const {
    return cyclic_.count(element) != 0;
  }

  std::vector<std::string> all_elements() const;

 private:
  std::string root_;
  std::map<std::string, std::vector<std::string>> children_;
  std::set<std::string> reachable_;
  std::set<std::string> cyclic_;
};

}  // namespace xroute
