// Concrete path universe of a DTD.
//
// Enumerates (up to caps) every distinct root-to-leaf element path that a
// conforming document can contain. The universe backs three things:
//   * the D_imperfect computation for merging (paper §4.3: "each broker in
//     the network knows the DTD relative to the XML data producer"),
//   * the completeness-repair pass of advertisement derivation,
//   * brute-force oracles in the property tests.
#pragma once

#include <cstddef>
#include <vector>

#include "dtd/dtd.hpp"
#include "dtd/graph.hpp"
#include "xml/paths.hpp"

namespace xroute {

class PathUniverse {
 public:
  struct Options {
    /// Paths longer than this are cut off (a cyclic DTD has unbounded
    /// paths; the paper caps documents and XPEs at 10 levels).
    std::size_t max_depth = 12;
    /// Enumeration stops (truncated() == true) after this many paths.
    std::size_t max_paths = 200000;
  };

  PathUniverse(const Dtd& dtd, const Options& options);
  explicit PathUniverse(const Dtd& dtd) : PathUniverse(dtd, Options{}) {}
  /// A universe over an explicit path set — e.g. the union of several
  /// producers' DTD universes in a multi-publisher network.
  explicit PathUniverse(std::vector<Path> paths)
      : paths_(std::move(paths)) {}

  const std::vector<Path>& paths() const { return paths_; }
  bool truncated() const { return truncated_; }

  /// Number of universe paths matched by `xpe` (exact, by scanning).
  std::size_t count_matching(const class Xpe& xpe) const;

  /// count_matching / |universe| in [0, 1]; 0 if the universe is empty.
  double selectivity(const class Xpe& xpe) const;

 private:
  std::vector<Path> paths_;
  bool truncated_ = false;
};

}  // namespace xroute
