// Arena — a bump allocator for per-worker / per-document scratch memory.
//
// The streaming publication pipeline (xml/stream_parser.hpp) parses every
// inbound document into short-lived records: element names, decoded text
// chunks, attribute values. Allocating those from the general heap costs a
// malloc/free pair per record on the hottest path in the broker; the arena
// replaces that with pointer bumps. Memory is grabbed from the arena in
// aligned slices, never freed individually, and reclaimed wholesale by
// reset() — which keeps the already-grown blocks, so a long-lived arena
// (one per worker, one per parser) reaches a steady state where a whole
// document parses with zero heap traffic.
//
// Not thread-safe: one arena belongs to one thread (that is the point —
// per-worker arenas shard the allocator the way the match scheduler shards
// the routing tables).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace xroute {

class Arena {
 public:
  /// First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kMinBlockBytes = 4 << 10;
  static constexpr std::size_t kMaxBlockBytes = 1 << 20;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes aligned to `align` (a power of two). Never returns
  /// nullptr; size 0 yields a valid one-past pointer.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::size_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (cursor + size > limit_) return allocate_slow(size, align);
    void* out = base_ + cursor;
    cursor_ = cursor + size;
    return out;
  }

  /// Typed array of default-initialised Ts (trivially destructible only:
  /// the arena never runs destructors).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copies `text` into the arena; the returned view lives until reset().
  std::string_view copy(std::string_view text) {
    char* out = static_cast<char*>(allocate(text.size(), 1));
    std::memcpy(out, text.data(), text.size());
    return {out, text.size()};
  }

  /// Reclaims everything allocated so far. The largest block is kept (the
  /// rest are released), so repeated parse/reset cycles stop allocating
  /// once the high-water mark is reached.
  void reset() {
    if (blocks_.empty()) return;
    // Keep only the biggest block: it is the most recently grown one, and
    // a steady workload fits in it entirely.
    std::size_t best = 0;
    for (std::size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[best].size) best = i;
    }
    if (best != 0) std::swap(blocks_[0], blocks_[best]);
    blocks_.resize(1);
    base_ = blocks_[0].bytes.get();
    cursor_ = 0;
    limit_ = blocks_[0].size;
    total_allocated_ = 0;
  }

  /// Bytes handed out since the last reset (diagnostics).
  std::size_t bytes_allocated() const { return total_allocated_; }
  /// Bytes held across resets (capacity diagnostics).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> bytes;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t size, std::size_t align) {
    std::size_t want = size + align;
    std::size_t next = blocks_.empty() ? kMinBlockBytes : limit_ * 2;
    if (next > kMaxBlockBytes) next = kMaxBlockBytes;
    if (next < want) next = want;  // oversized one-off request
    Block block;
    block.bytes = std::make_unique<std::uint8_t[]>(next);
    block.size = next;
    base_ = block.bytes.get();
    cursor_ = 0;
    limit_ = next;
    blocks_.push_back(std::move(block));
    std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(base_);
    std::size_t skew = (align - (raw & (align - 1))) & (align - 1);
    void* out = base_ + skew;
    cursor_ = skew + size;
    total_allocated_ += size;
    return out;
  }

  std::uint8_t* base_ = nullptr;
  std::size_t cursor_ = 0;
  std::size_t limit_ = 0;
  std::size_t total_allocated_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace xroute
