#include "util/symbols.hpp"

#include <mutex>

#include "xpath/step.hpp"

namespace xroute {

SymbolTable::SymbolTable() {
  // Pre-register the wildcard so its id is the branch-cheap constant 0.
  std::uint32_t id = intern(kWildcard);
  (void)id;
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

std::uint32_t SymbolTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;  // raced with another writer
  std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  auto [pos, inserted] = ids_.emplace(std::string(name), id);
  (void)inserted;
  names_.push_back(&pos->first);
  return id;
}

std::uint32_t SymbolTable::lookup(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoSymbol : it->second;
}

const std::string& SymbolTable::name(std::uint32_t id) const {
  std::shared_lock lock(mutex_);
  return *names_[id];
}

std::size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

std::uint32_t intern_symbol(std::string_view name) {
  return SymbolTable::global().intern(name);
}

}  // namespace xroute
