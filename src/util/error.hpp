// Error types shared across the xroute parsers and engines.
#pragma once

#include <stdexcept>
#include <string>

namespace xroute {

/// Raised by the XPath, XML and DTD parsers on malformed input. Carries a
/// human-readable message including the offending position where available.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace xroute
