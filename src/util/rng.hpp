// Deterministic, seedable random number utilities.
//
// Every stochastic component in xroute (workload generators, topology
// builders, experiment drivers) takes an explicit Rng so runs are
// reproducible from a single seed printed by the bench harnesses.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace xroute {

/// Thin wrapper around std::mt19937_64 with the handful of draws we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derives an independent child generator (for parallel workloads).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xroute
