// Symbol interning for the matching hot path.
//
// Element names flow through every matching kernel (publication matching,
// covering, advertisement overlap); comparing them as std::string costs a
// length check plus a byte scan per step per entry. The SymbolTable maps
// each distinct element name to a dense uint32_t id so the hot loops
// compare integers instead. Ids are process-wide and never recycled, so a
// symbol comparison is exact name equality for the whole process lifetime.
//
// Id 0 is reserved for the wildcard "*" (matching the literal stored in
// Step::name), which makes the element-level rules branch-cheap:
//
//   overlap(a, s)  =  a == kWildcardId || s == kWildcardId || a == s
//   covers(t, m)   =  t == kWildcardId || t == m
//
// lookup() is the read-only variant for document-side names: a path
// element never seen in any XPE or advertisement maps to kNoSymbol, which
// equals no registered id and is not the wildcard, so comparisons fail
// exactly as the string comparison would — without growing the table with
// the document vocabulary.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xroute {

class SymbolTable {
 public:
  /// Id of the wildcard node test "*".
  static constexpr std::uint32_t kWildcardId = 0;
  /// Returned by lookup() for names never interned; matches nothing.
  static constexpr std::uint32_t kNoSymbol = 0xFFFFFFFFu;

  /// The process-wide table every Xpe/Advertisement/Path interns into.
  static SymbolTable& global();

  /// Returns the id for `name`, registering it if new.
  std::uint32_t intern(std::string_view name);

  /// Read-only: the id for `name`, or kNoSymbol if never interned.
  std::uint32_t lookup(std::string_view name) const;

  /// The name behind an id (valid ids only; kNoSymbol is not an id).
  const std::string& name(std::uint32_t id) const;

  std::size_t size() const;

  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::uint32_t, SvHash, SvEq> ids_;
  /// Pointers into ids_ keys; node-based map keys are address-stable.
  std::vector<const std::string*> names_;
};

/// Shorthand for SymbolTable::global().intern(name).
std::uint32_t intern_symbol(std::string_view name);

/// Element-level overlap rule on interned ids (see match/rules.hpp for the
/// string form and the semantics).
inline bool symbols_overlap(std::uint32_t a, std::uint32_t s) {
  return a == SymbolTable::kWildcardId || s == SymbolTable::kWildcardId ||
         a == s;
}

/// Element-level covering rule on interned ids: '*' covers anything, a
/// concrete name covers only itself.
inline bool symbol_covers(std::uint32_t t, std::uint32_t m) {
  return t == SymbolTable::kWildcardId || t == m;
}

/// Shard ownership for the parallel matching engine: maps a symbol id to
/// one of `shard_count` shards. Symbol ids are dense allocation order, so
/// consecutive ids (often correlated vocabularies) are decorrelated with a
/// multiplicative mix before the modulo; every index structure keyed by
/// symbol shards the same way, keeping the per-shard candidate sets
/// disjoint across the whole broker.
inline std::uint32_t symbol_shard(std::uint32_t symbol,
                                  std::uint32_t shard_count) {
  std::uint32_t h = symbol * 0x9E3779B9u;
  h ^= h >> 16;
  return h % shard_count;
}

}  // namespace xroute
