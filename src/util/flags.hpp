// Minimal command-line flag parsing for the bench harnesses and examples.
//
// Supported syntax:  --name=value   --name value   --flag   (boolean true)
// Unknown flags raise an error listing the registered names, so a typo in a
// bench invocation fails loudly instead of silently running defaults.
#pragma once

#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace xroute {

/// Registry-style flag parser: declare flags with defaults, then parse().
class Flags {
 public:
  explicit Flags(std::string description) : description_(std::move(description)) {}

  void define(const std::string& name, const std::string& default_value,
              const std::string& help) {
    values_[name] = default_value;
    help_[name] = help;
  }

  /// Parses argv; returns false (after printing usage) if --help was given.
  bool parse(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
      std::string arg = args[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(argv[0]);
        return false;
      }
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      arg = arg.substr(2);
      std::string name, value;
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
      } else {
        name = arg;
        // A flag without '=' consumes the next token unless it looks like
        // another flag; bare flags become boolean true.
        if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
          value = args[++i];
        } else {
          value = "true";
        }
      }
      auto it = values_.find(name);
      if (it == values_.end()) {
        std::ostringstream os;
        os << "unknown flag --" << name << "; known flags:";
        for (const auto& [k, v] : values_) os << " --" << k;
        throw std::invalid_argument(os.str());
      }
      it->second = value;
    }
    return true;
  }

  std::string get_string(const std::string& name) const { return at(name); }
  int get_int(const std::string& name) const { return std::stoi(at(name)); }
  std::int64_t get_int64(const std::string& name) const { return std::stoll(at(name)); }
  double get_double(const std::string& name) const { return std::stod(at(name)); }
  bool get_bool(const std::string& name) const {
    const std::string& v = at(name);
    return v == "true" || v == "1" || v == "yes";
  }

  void print_usage(const char* prog) const {
    std::cout << prog << " — " << description_ << "\n\nFlags:\n";
    for (const auto& [name, def] : values_) {
      std::cout << "  --" << name << " (default: " << def << ")\n      "
                << help_.at(name) << "\n";
    }
  }

 private:
  const std::string& at(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      throw std::invalid_argument("flag not defined: " + name);
    }
    return it->second;
  }

  std::string description_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> help_;
};

}  // namespace xroute
