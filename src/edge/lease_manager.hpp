// Subscription leases for one edge reactor (DESIGN.md "Edge session
// layer").
//
// A client's subscription is not permanent routing state: it is a lease
// with a TTL, renewed by heartbeats and re-subscribes, expired by a
// timing wheel when the client goes quiet. The wheel makes expiry O(1)
// amortised regardless of session count: each (session, xpe) lease hangs
// in the slot covering its deadline, and renewals are LAZY — renewing
// bumps the lease's deadline and sequence number without touching the
// wheel; the stale wheel entry is recognised (sequence mismatch) and
// discarded when its slot comes around, and the renewal parks a fresh
// entry at the new deadline. A lease therefore has at most a handful of
// wheel entries in flight, and expiry scans only the slots the clock
// actually crossed.
//
// Pure and single-threaded by design: one LeaseManager per reactor, all
// calls on that reactor's loop thread, timestamps fed by the caller —
// exhaustively unit-testable without sockets or clocks (tests/lease_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace xroute::edge {

class LeaseManager {
 public:
  /// One expired lease: the session lost its subscription to the xpe.
  struct Expired {
    int session = -1;
    std::uint32_t xpe_uid = 0;
  };

  /// `ttl_ms` is the lifetime granted on acquire/renew; `now_ms` anchors
  /// the wheel (pass the reactor clock's current reading).
  LeaseManager(double ttl_ms, double now_ms);

  /// Acquires the lease (session, xpe) or renews it if already held.
  /// Returns true when this is a NEW lease (first acquisition since the
  /// last release/expiry) — the caller's cue to register interest.
  bool acquire(int session, std::uint32_t xpe_uid, double now_ms);

  /// Renews every lease the session holds (heartbeat keepalive). Returns
  /// the number of leases renewed.
  std::size_t renew_session(int session, double now_ms);

  /// Releases one lease (explicit unsubscribe). Returns true if it was
  /// held.
  bool release(int session, std::uint32_t xpe_uid);

  /// Releases everything the session holds (disconnect); returns the xpe
  /// uids that were held.
  std::vector<std::uint32_t> release_session(int session);

  /// Advances the wheel to `now_ms` and returns every lease whose
  /// deadline passed without renewal. Expired leases are removed.
  std::vector<Expired> expire(double now_ms);

  bool held(int session, std::uint32_t xpe_uid) const;
  /// Leases the session currently holds (0 when none).
  std::size_t session_lease_count(int session) const;
  /// Deadline of a held lease (0 when not held) — test observability.
  double deadline_ms(int session, std::uint32_t xpe_uid) const;
  std::size_t lease_count() const { return leases_.size(); }
  double ttl_ms() const { return ttl_ms_; }

 private:
  /// Leases keyed by (session << 32 | xpe uid): sessions are fds (or test
  /// integers), non-negative and well under 2^31.
  static std::uint64_t key(int session, std::uint32_t xpe_uid) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(session))
            << 32) |
           xpe_uid;
  }

  struct Lease {
    double deadline_ms = 0.0;
    /// Bumped on every renewal; wheel entries carry the value at park
    /// time, so a stale entry (parked before a later renewal) never
    /// expires the lease.
    std::uint64_t seq = 0;
  };

  struct WheelEntry {
    std::uint64_t lease_key = 0;
    std::uint64_t seq = 0;
  };

  /// Parks a wheel entry at `deadline_ms` (clamped into the wheel span —
  /// an entry beyond the horizon waits in the farthest slot and re-parks
  /// when popped early).
  void park(std::uint64_t lease_key, std::uint64_t seq, double deadline_ms);

  double ttl_ms_;
  double slot_ms_;        ///< width of one wheel slot
  double cursor_time_ms_; ///< start of the slot under the cursor
  std::size_t cursor_ = 0;
  std::vector<std::vector<WheelEntry>> slots_;
  std::unordered_map<std::uint64_t, Lease> leases_;
  /// session -> held xpe uids (renew_session / release_session).
  std::unordered_map<int, std::vector<std::uint32_t>> by_session_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace xroute::edge
