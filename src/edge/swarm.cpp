#include "edge/swarm.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <utility>

#include "router/message.hpp"
#include "wire/codec.hpp"

namespace xroute::edge {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// A 10k-client swarm plus the edge server in one process needs more
/// than the usual 1024 soft fd limit; raise it as far as the hard limit
/// allows (best effort — the swarm reports connect failures if it still
/// falls short).
void raise_fd_limit(std::size_t wanted) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  rlim_t target = static_cast<rlim_t>(wanted);
  if (lim.rlim_cur >= target) return;
  lim.rlim_cur = (lim.rlim_max == RLIM_INFINITY || lim.rlim_max >= target)
                     ? target
                     : lim.rlim_max;
  setrlimit(RLIMIT_NOFILE, &lim);
}

}  // namespace

EdgeSwarm::EdgeSwarm(Options options) : options_(std::move(options)) {
  if (options_.loops < 1) options_.loops = 1;
  if (options_.connect_batch == 0) options_.connect_batch = 1;
  if (options_.latency_stride == 0) options_.latency_stride = 1;
}

EdgeSwarm::~EdgeSwarm() { stop(); }

void EdgeSwarm::set_interests(
    std::function<std::vector<Xpe>(std::size_t)> interests) {
  interests_ = std::move(interests);
}

void EdgeSwarm::start() {
  if (started_) return;
  started_ = true;
  // fds: one per client + loops' wake/epoll fds + slack for the process.
  raise_fd_limit(options_.clients + 256);
  loops_.reserve(static_cast<std::size_t>(options_.loops));
  for (int i = 0; i < options_.loops; ++i) {
    auto driver = std::make_unique<Loop>();
    driver->index = i;
    driver->loop = std::make_unique<transport::EventLoop>(options_.force_poll);
    loops_.push_back(std::move(driver));
  }
  for (std::size_t c = 0; c < options_.clients; ++c) {
    Loop* driver = loops_[c % loops_.size()].get();
    auto client = std::make_unique<Client>();
    client->index = c;
    driver->clients.push_back(std::move(client));
  }
  for (auto& driver : loops_) {
    Loop* d = driver.get();
    d->loop->post([this, d] {
      connect_tick(*d);
      if (options_.heartbeat_interval_ms > 0) {
        d->loop->schedule(options_.heartbeat_interval_ms,
                          [this, d] { heartbeat_tick(*d); });
      }
    });
    d->thread = std::thread([d] { d->loop->run(); });
  }
}

void EdgeSwarm::stop() {
  if (!started_) return;
  for (auto& driver : loops_) {
    Loop* d = driver.get();
    d->loop->post([d] {
      for (auto& client : d->clients) {
        if (client->connection && !client->connection->closed()) {
          client->connection->close("swarm shutdown");
        } else if (client->fd >= 0 && !client->connection) {
          // Connect still in flight: tear the socket down directly.
          d->loop->remove_fd(client->fd);
          ::close(client->fd);
          client->fd = -1;
        }
      }
    });
    d->loop->stop();
    if (d->thread.joinable()) d->thread.join();
  }
  loops_.clear();
  started_ = false;
}

void EdgeSwarm::connect_tick(Loop& driver) {
  std::size_t started = 0;
  while (driver.next_connect < driver.clients.size() &&
         started < options_.connect_batch) {
    begin_connect(driver, *driver.clients[driver.next_connect]);
    ++driver.next_connect;
    ++started;
  }
  if (driver.next_connect < driver.clients.size()) {
    Loop* d = &driver;
    driver.loop->schedule(options_.connect_tick_ms,
                          [this, d] { connect_tick(*d); });
  }
}

void EdgeSwarm::begin_connect(Loop& driver, Client& client) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const char* host = (options_.host.empty() || options_.host == "localhost")
                         ? "127.0.0.1"
                         : options_.host.c_str();
  if (inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    ::close(fd);
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  client.fd = fd;
  client.connect_start_ms = steady_ms();
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    adopt(driver, client);
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    client.fd = -1;
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Loop* d = &driver;
  Client* c = &client;
  driver.loop->add_fd(fd, transport::kWritable,
                      [this, d, c, fd](std::uint32_t events) {
    d->loop->remove_fd(fd);
    int error = 0;
    socklen_t len = sizeof(error);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if ((events & transport::kError) != 0 || error != 0) {
      ::close(fd);
      c->fd = -1;
      connect_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    adopt(*d, *c);
  });
}

void EdgeSwarm::adopt(Loop& driver, Client& client) {
  client.connection = std::make_unique<transport::Connection>(
      driver.loop.get(), client.fd, options_.connection);
  Loop* d = &driver;
  Client* c = &client;
  client.connection->set_frame_handler(
      [this, d, c](wire::Decoded&& decoded) {
        on_client_frame(*d, *c, std::move(decoded));
      });
  client.connection->set_close_handler([this, c](const std::string&) {
    if (c->connected) {
      c->connected = false;
      connected_.fetch_sub(1, std::memory_order_relaxed);
      disconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    c->fd = -1;
    c->connection.reset();
  });
  client.connection->start();
  // Handshake + interests in one burst: the edge acks each subscribe with
  // a lease grant.
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kClient;
  hello.peer_id = static_cast<std::uint32_t>(client.index);
  client.connection->send(wire::encode_hello(hello));
  if (interests_) {
    client.subscribe_sent_ms = steady_ms();
    for (Xpe& xpe : interests_(client.index)) {
      client.connection->send(
          wire::encode_frame(Message::subscribe(std::move(xpe))));
    }
  }
}

void EdgeSwarm::on_client_frame(Loop& driver, Client& client,
                                wire::Decoded&& decoded) {
  switch (decoded.kind) {
    case wire::FrameKind::kHello:
      if (!client.connected) {
        client.connected = true;
        connected_.fetch_add(1, std::memory_order_relaxed);
        driver.latencies.connect_ms.push_back(steady_ms() -
                                              client.connect_start_ms);
      }
      return;
    case wire::FrameKind::kLeaseGrant:
      lease_grants_.fetch_add(1, std::memory_order_relaxed);
      if (!client.first_grant_seen) {
        client.first_grant_seen = true;
        if (client.subscribe_sent_ms > 0) {
          driver.latencies.subscribe_ms.push_back(steady_ms() -
                                                  client.subscribe_sent_ms);
        }
      }
      return;
    case wire::FrameKind::kPublish: {
      publications_.fetch_add(1, std::memory_order_relaxed);
      const auto& pub = std::get<PublishMsg>(decoded.message.payload);
      if (pub.doc_id < options_.doc_capacity) {
        if (client.delivered.empty()) {
          client.delivered.resize(options_.doc_capacity, false);
        }
        if (client.delivered[pub.doc_id]) {
          duplicates_.fetch_add(1, std::memory_order_relaxed);
        } else {
          client.delivered[pub.doc_id] = true;
        }
      }
      if (pub.publish_time > 0 &&
          driver.notify_seen++ % options_.latency_stride == 0) {
        driver.latencies.notify_ms.push_back(steady_ms() - pub.publish_time);
      }
      return;
    }
    default:
      return;  // heartbeats and the rest: proof of life, nothing to do
  }
}

void EdgeSwarm::heartbeat_tick(Loop& driver) {
  // One beacon frame per loop per tick, shared across its clients — the
  // same serialize-once economics the edge uses toward us.
  auto frame = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_heartbeat(++driver.beacon_seq));
  for (auto& client : driver.clients) {
    if (client->connection && !client->connection->closed()) {
      client->connection->send_shared(frame);
    }
  }
  Loop* d = &driver;
  driver.loop->schedule(options_.heartbeat_interval_ms,
                        [this, d] { heartbeat_tick(*d); });
}

bool EdgeSwarm::wait(const std::function<bool()>& done,
                     double timeout_ms) const {
  double deadline = steady_ms() + timeout_ms;
  while (!done()) {
    if (steady_ms() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

bool EdgeSwarm::wait_connected(std::size_t count, double timeout_ms) {
  return wait([&] { return connected() >= count; }, timeout_ms);
}

bool EdgeSwarm::wait_lease_grants(std::uint64_t count, double timeout_ms) {
  return wait([&] { return lease_grants() >= count; }, timeout_ms);
}

bool EdgeSwarm::wait_publications(std::uint64_t count, double timeout_ms) {
  return wait([&] { return publications() >= count; }, timeout_ms);
}

EdgeSwarm::Latencies EdgeSwarm::collect_latencies() {
  Latencies all;
  for (auto& driver : loops_) {
    Loop* d = driver.get();
    std::promise<Latencies> promise;
    d->loop->post([d, &promise] { promise.set_value(d->latencies); });
    Latencies got = promise.get_future().get();
    all.connect_ms.insert(all.connect_ms.end(), got.connect_ms.begin(),
                          got.connect_ms.end());
    all.subscribe_ms.insert(all.subscribe_ms.end(), got.subscribe_ms.begin(),
                            got.subscribe_ms.end());
    all.notify_ms.insert(all.notify_ms.end(), got.notify_ms.begin(),
                         got.notify_ms.end());
  }
  return all;
}

std::vector<std::vector<std::uint64_t>> EdgeSwarm::collect_delivered() {
  std::vector<std::vector<std::uint64_t>> per_client(options_.clients);
  for (auto& driver : loops_) {
    Loop* d = driver.get();
    using Slice = std::vector<std::pair<std::size_t, std::vector<std::uint64_t>>>;
    std::promise<Slice> promise;
    d->loop->post([d, &promise] {
      Slice slice;
      slice.reserve(d->clients.size());
      for (auto& client : d->clients) {
        std::vector<std::uint64_t> docs;
        for (std::size_t doc = 0; doc < client->delivered.size(); ++doc) {
          if (client->delivered[doc]) docs.push_back(doc);
        }
        slice.emplace_back(client->index, std::move(docs));
      }
      promise.set_value(std::move(slice));
    });
    for (auto& [index, docs] : promise.get_future().get()) {
      per_client[index] = std::move(docs);
    }
  }
  return per_client;
}

}  // namespace xroute::edge
