#include "edge/interest_index.hpp"

#include <algorithm>

#include "match/pub_match.hpp"

namespace xroute::edge {

bool InterestIndex::add(int session, const Xpe& xpe) {
  auto [it, inserted] = entries_.try_emplace(xpe.uid());
  if (inserted) it->second.xpe = xpe;
  auto& sessions = it->second.sessions;
  if (std::find(sessions.begin(), sessions.end(), session) == sessions.end()) {
    sessions.push_back(session);
  }
  return inserted;
}

bool InterestIndex::remove(int session, std::uint32_t xpe_uid) {
  auto it = entries_.find(xpe_uid);
  if (it == entries_.end()) return false;
  auto& sessions = it->second.sessions;
  sessions.erase(std::remove(sessions.begin(), sessions.end(), session),
                 sessions.end());
  if (!sessions.empty()) return false;
  entries_.erase(it);
  return true;
}

const Xpe* InterestIndex::xpe(std::uint32_t uid) const {
  auto it = entries_.find(uid);
  return it == entries_.end() ? nullptr : &it->second.xpe;
}

void InterestIndex::resolve(const Path& path, std::vector<int>* out) const {
  std::size_t first = out->size();
  for (const auto& [uid, entry] : entries_) {
    if (!matches(path, entry.xpe)) continue;
    out->insert(out->end(), entry.sessions.begin(), entry.sessions.end());
  }
  // Dedup across multiple matching Xpes: sort the appended tail only.
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first), out->end());
  out->erase(std::unique(out->begin() + static_cast<std::ptrdiff_t>(first),
                         out->end()),
             out->end());
}

std::size_t InterestIndex::session_count(std::uint32_t xpe_uid) const {
  auto it = entries_.find(xpe_uid);
  return it == entries_.end() ? 0 : it->second.sessions.size();
}

}  // namespace xroute::edge
