#include "edge/edge_server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace xroute::edge {

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

EdgeServer::EdgeServer(transport::TransportBroker* broker, Options options)
    : broker_(broker), options_(std::move(options)) {
  if (options_.reactors < 1) options_.reactors = 1;
  if (options_.idle_timeout_ms <= 0.0) {
    options_.idle_timeout_ms = 4.0 * options_.lease_ttl_ms;
  }
}

EdgeServer::~EdgeServer() { stop(); }

std::uint16_t EdgeServer::start() {
  if (started_) return port_;
  started_ = true;
  running_.store(true, std::memory_order_release);

  reactors_.reserve(static_cast<std::size_t>(options_.reactors));
  for (int i = 0; i < options_.reactors; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    reactor->loop =
        std::make_unique<transport::EventLoop>(options_.force_poll);
    reactors_.push_back(std::move(reactor));
  }

  // One client interface for the whole edge: the broker encodes each
  // matched publication once and hands it here as a SharedFrame.
  broker_->attach_edge([this](const Message& msg,
                              transport::SharedFrame frame) {
    on_delivery(msg, std::move(frame));
  });

  // Listener socket, owned by reactor 0's loop.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("edge: socket() failed");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1024) != 0) {
    ::close(fd);
    throw std::runtime_error("edge: cannot listen on port " +
                             std::to_string(options_.listen_port));
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);

  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->loop->post([this, r] {
      r->leases = std::make_unique<LeaseManager>(options_.lease_ttl_ms,
                                                 r->loop->now_ms());
      sweep(*r);
      if (options_.heartbeat_interval_ms > 0) beacon(*r);
    });
    if (r->index == 0) {
      r->loop->post([this] {
        reactors_[0]->loop->add_fd(listen_fd_, transport::kReadable,
                                   [this](std::uint32_t) { accept_ready(); });
      });
    }
    r->thread = std::thread([r] { r->loop->run(); });
  }
  return port_;
}

void EdgeServer::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  {
    // Wait out in-flight broker deliveries; later ones see !running_ and
    // drop before touching the reactors.
    std::unique_lock<std::shared_mutex> gate(delivery_gate_);
  }
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->loop->post([this, r] {
      if (r->index == 0 && listen_fd_ >= 0) {
        r->loop->remove_fd(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // close() mutates r->sessions via the close handler: snapshot the
      // connections first.
      std::vector<transport::Connection*> open;
      open.reserve(r->sessions.size());
      for (auto& [fd, session] : r->sessions) {
        (void)fd;
        open.push_back(session.connection.get());
      }
      for (transport::Connection* connection : open) {
        connection->close("edge server shutdown");
      }
    });
    r->loop->stop();
    if (r->thread.joinable()) r->thread.join();
  }
  reactors_.clear();
  started_ = false;
}

std::size_t EdgeServer::reactor_sessions(int reactor) const {
  if (reactor < 0 || reactor >= static_cast<int>(reactors_.size())) return 0;
  return reactors_[static_cast<std::size_t>(reactor)]->live.load(
      std::memory_order_relaxed);
}

std::size_t EdgeServer::distinct_interests() const {
  std::lock_guard<std::mutex> lock(interest_mutex_);
  return interest_refs_.size();
}

void EdgeServer::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient failure: the listener stays up
    }
    set_nonblocking(fd);
    // Shard by fd: cheap, stable for the session's lifetime, and uniform
    // enough (fds are dense small integers).
    Reactor* target =
        reactors_[static_cast<std::size_t>(fd) % reactors_.size()].get();
    if (target->index == 0) {
      adopt(*target, fd);
    } else {
      target->loop->post([this, target, fd] { adopt(*target, fd); });
    }
  }
}

void EdgeServer::adopt(Reactor& reactor, int fd) {
  Session session;
  session.connection = std::make_unique<transport::Connection>(
      reactor.loop.get(), fd, options_.connection);
  session.last_activity_ms = reactor.loop->now_ms();
  transport::Connection* raw = session.connection.get();
  Reactor* r = &reactor;
  raw->set_frame_handler([this, r, fd](wire::Decoded&& decoded) {
    on_session_frame(*r, fd, std::move(decoded));
  });
  raw->set_close_handler(
      [this, r, fd](const std::string&) { on_session_close(*r, fd); });
  reactor.sessions.emplace(fd, std::move(session));
  reactor.live.fetch_add(1, std::memory_order_relaxed);
  sessions_live_.fetch_add(1, std::memory_order_relaxed);
  raw->start();
  // Same handshake contract as the broker transport: our Hello goes out
  // first; the client's arrives as its first frame.
  wire::Hello hello;
  hello.kind = wire::Hello::PeerKind::kBroker;
  hello.peer_id = static_cast<std::uint32_t>(broker_->id());
  raw->send(wire::encode_hello(hello));
}

void EdgeServer::on_session_frame(Reactor& reactor, int fd,
                                  wire::Decoded&& decoded) {
  auto it = reactor.sessions.find(fd);
  if (it == reactor.sessions.end()) return;
  Session& session = it->second;
  double now = reactor.loop->now_ms();
  session.last_activity_ms = now;
  switch (decoded.kind) {
    case wire::FrameKind::kHello:
      session.hello_seen = true;
      return;
    case wire::FrameKind::kHeartbeat:
      // Keepalive: a beating client never loses its leases.
      reactor.leases->renew_session(fd, now);
      return;
    case wire::FrameKind::kGoodbye:
      session.connection->close("client goodbye");
      return;
    case wire::FrameKind::kSubscribe: {
      const Xpe& xpe = std::get<SubscribeMsg>(decoded.message.payload).xpe;
      if (reactor.leases->acquire(fd, xpe.uid(), now)) {
        leases_granted_.fetch_add(1, std::memory_order_relaxed);
        if (reactor.interests.add(fd, xpe)) interest_up(xpe);
      }
      // Ack with the TTL the client must beat (also the renewal ack).
      session.connection->send(
          wire::encode_lease_grant(options_.lease_ttl_ms));
      return;
    }
    case wire::FrameKind::kUnsubscribe: {
      const Xpe& xpe = std::get<UnsubscribeMsg>(decoded.message.payload).xpe;
      if (reactor.leases->release(fd, xpe.uid())) {
        drop_interest(reactor, fd, xpe.uid());
      }
      return;
    }
    case wire::FrameKind::kPublish:
      // Clients can publish through the edge; the broker sees it arrive
      // on the edge interface like any client traffic.
      broker_->edge_send(std::move(decoded.message));
      return;
    default:
      return;  // advertisements etc. are broker business, not edge
  }
}

void EdgeServer::on_session_close(Reactor& reactor, int fd) {
  auto it = reactor.sessions.find(fd);
  if (it == reactor.sessions.end()) return;
  for (std::uint32_t uid : reactor.leases->release_session(fd)) {
    drop_interest(reactor, fd, uid);
  }
  // The close handler runs inside Connection::close, which touches no
  // members afterwards — destroying the connection here is the same
  // pattern the broker transport uses.
  reactor.sessions.erase(it);
  reactor.live.fetch_sub(1, std::memory_order_relaxed);
  sessions_live_.fetch_sub(1, std::memory_order_relaxed);
}

void EdgeServer::drop_interest(Reactor& reactor, int fd,
                               std::uint32_t xpe_uid) {
  if (reactor.interests.remove(fd, xpe_uid)) interest_down(xpe_uid);
}

void EdgeServer::sweep(Reactor& reactor) {
  Reactor* r = &reactor;
  double now = reactor.loop->now_ms();
  for (const LeaseManager::Expired& lapsed : reactor.leases->expire(now)) {
    leases_expired_.fetch_add(1, std::memory_order_relaxed);
    drop_interest(reactor, lapsed.session, lapsed.xpe_uid);
  }
  // Idle reap: silent AND leaseless. A session still holding leases is
  // the lease machinery's problem; one that heartbeats keeps
  // last_activity fresh and survives.
  std::vector<transport::Connection*> reap;
  for (auto& [fd, session] : reactor.sessions) {
    if (now - session.last_activity_ms > options_.idle_timeout_ms &&
        !session.connection->closed() &&
        reactor.leases->session_lease_count(fd) == 0) {
      reap.push_back(session.connection.get());
    }
  }
  for (transport::Connection* connection : reap) {
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    connection->close("idle session reaped");
  }
  reactor.loop->schedule(options_.sweep_interval_ms,
                         [this, r] { sweep(*r); });
}

void EdgeServer::beacon(Reactor& reactor) {
  Reactor* r = &reactor;
  if (!reactor.sessions.empty()) {
    // One beacon frame per reactor per tick, shared by every session.
    auto frame = std::make_shared<const std::vector<std::uint8_t>>(
        wire::encode_heartbeat(++reactor.beacon_seq));
    for (auto& [fd, session] : reactor.sessions) {
      (void)fd;
      if (session.connection->send_shared(frame)) {
        shared_bytes_.fetch_add(frame->size(), std::memory_order_relaxed);
      }
    }
  }
  reactor.loop->schedule(options_.heartbeat_interval_ms,
                         [this, r] { beacon(*r); });
}

void EdgeServer::on_delivery(const Message& msg,
                             transport::SharedFrame frame) {
  std::shared_lock<std::shared_mutex> gate(delivery_gate_);
  if (!running_.load(std::memory_order_acquire)) {
    dropped_deliveries_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  encodes_.fetch_add(1, std::memory_order_relaxed);
  if (msg.type() != MessageType::kPublish) return;
  // The Path travels to the reactors by shared_ptr: one copy per matched
  // publication, resolved against each reactor's distinct-Xpe index.
  auto path = std::make_shared<const Path>(
      std::get<PublishMsg>(msg.payload).path);
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->loop->post([this, r, path, frame] {
      r->resolve_scratch.clear();
      r->interests.resolve(*path, &r->resolve_scratch);
      for (int fd : r->resolve_scratch) {
        auto it = r->sessions.find(fd);
        if (it == r->sessions.end()) continue;
        transport::Connection* connection = it->second.connection.get();
        if (connection->backpressured()) {
          // A slow consumer sheds load instead of growing its queue
          // without bound; the drop is observable.
          slow_drops_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (connection->send_shared(frame)) {
          fanout_frames_.fetch_add(1, std::memory_order_relaxed);
          shared_bytes_.fetch_add(frame->size(),
                                  std::memory_order_relaxed);
        }
      }
    });
  }
}

void EdgeServer::interest_up(const Xpe& xpe) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(interest_mutex_);
    auto [it, inserted] = interest_refs_.try_emplace(xpe.uid());
    if (inserted) it->second.xpe = xpe;
    first = it->second.refs++ == 0;
  }
  if (first) {
    upstream_subscribes_.fetch_add(1, std::memory_order_relaxed);
    broker_->edge_send(Message::subscribe(xpe));
  }
}

void EdgeServer::interest_down(std::uint32_t uid) {
  Xpe xpe;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(interest_mutex_);
    auto it = interest_refs_.find(uid);
    if (it == interest_refs_.end()) return;
    if (--it->second.refs == 0) {
      last = true;
      xpe = std::move(it->second.xpe);
      interest_refs_.erase(it);
    }
  }
  if (last) {
    upstream_unsubscribes_.fetch_add(1, std::memory_order_relaxed);
    broker_->edge_send(Message::unsubscribe(std::move(xpe)));
  }
}

std::string EdgeServer::metrics_json() {
  MetricsRegistry registry;
  registry.gauge("edge.sessions_live")
      .set(static_cast<double>(sessions_live()));
  registry.gauge("edge.leases_granted")
      .set(static_cast<double>(leases_granted()));
  registry.gauge("edge.leases_expired")
      .set(static_cast<double>(leases_expired()));
  registry.gauge("edge.idle_reaped").set(static_cast<double>(idle_reaped()));
  registry.gauge("edge.encodes").set(static_cast<double>(encodes()));
  registry.gauge("edge.fanout_frames")
      .set(static_cast<double>(fanout_frames()));
  registry.gauge("edge.slow_session_drops")
      .set(static_cast<double>(slow_session_drops()));
  registry.gauge("edge.upstream_subscribes")
      .set(static_cast<double>(upstream_subscribes()));
  registry.gauge("edge.upstream_unsubscribes")
      .set(static_cast<double>(upstream_unsubscribes()));
  registry.gauge("edge.distinct_interests")
      .set(static_cast<double>(distinct_interests()));
  registry.gauge("transport.send_shared_bytes")
      .set(static_cast<double>(send_shared_bytes()));
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    registry
        .gauge("edge.reactor_sessions",
               {{"reactor", std::to_string(i)}})
        .set(static_cast<double>(reactor_sessions(static_cast<int>(i))));
  }
  std::ostringstream os;
  registry.write_json(os);
  return os.str();
}

}  // namespace xroute::edge
