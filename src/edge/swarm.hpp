// EdgeSwarm — a driver that simulates tens of thousands of edge clients
// from a handful of event loops.
//
// TransportClient spawns one thread per client, which is perfect for
// scenario harnesses and hopeless at 10k clients on a small box. The
// swarm instead multiplexes raw Connections over K loops (client i lives
// on loop i % K), speaks the same wire handshake (client Hello out,
// broker Hello back), subscribes, heartbeats to keep its leases alive,
// and records what every client observed:
//
//   - connected / lease-grant / publication counters (atomics, any thread)
//   - per-client delivered-document BITMAPS (dense doc ids — sets of
//     uint64 would dwarf the documents themselves at this scale) with a
//     duplicate count
//   - stride-sampled latencies: connect (connect() -> broker Hello),
//     subscribe (kSubscribe -> kLeaseGrant), notify (publisher stamp ->
//     arrival, both on steady_ms(), so publisher and swarm must share the
//     process)
//
// Connects are paced in batches per tick so a 10k-client ramp does not
// overrun the edge listener's accept backlog.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "transport/connection.hpp"
#include "transport/event_loop.hpp"
#include "xpath/xpe.hpp"

namespace xroute::edge {

/// Process-wide steady clock in milliseconds: the swarm's notify-latency
/// reference. Publishers stamp PublishMsg::publish_time with this.
double steady_ms();

class EdgeSwarm {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t clients = 100;
    /// Driver event loops the clients are multiplexed over.
    int loops = 2;
    /// Keepalive period (must beat the edge lease TTL); 0 = no beats.
    double heartbeat_interval_ms = 2000.0;
    /// Delivered-doc bitmap capacity per client (doc ids >= this are
    /// counted but not deduplicated).
    std::size_t doc_capacity = 1u << 12;
    /// New connects initiated per loop per pacing tick.
    std::size_t connect_batch = 200;
    double connect_tick_ms = 10.0;
    /// Sample every Nth notify latency (1 = all).
    std::size_t latency_stride = 16;
    transport::Connection::Options connection;
    bool force_poll = false;
  };

  explicit EdgeSwarm(Options options);
  ~EdgeSwarm();

  /// Client i's subscriptions; fixed before start(). Defaults to none.
  void set_interests(std::function<std::vector<Xpe>(std::size_t)> interests);

  /// Starts the loops and begins the paced connect ramp.
  void start();
  void stop();

  // -- Progress (any thread; poll + sleep) ---------------------------------
  std::size_t connected() const {
    return connected_.load(std::memory_order_relaxed);
  }
  std::uint64_t lease_grants() const {
    return lease_grants_.load(std::memory_order_relaxed);
  }
  /// Publication frames received across all clients (duplicates included).
  std::uint64_t publications() const {
    return publications_.load(std::memory_order_relaxed);
  }
  std::uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t connect_failures() const {
    return connect_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t disconnects() const {
    return disconnects_.load(std::memory_order_relaxed);
  }

  bool wait_connected(std::size_t count, double timeout_ms);
  bool wait_lease_grants(std::uint64_t count, double timeout_ms);
  bool wait_publications(std::uint64_t count, double timeout_ms);

  // -- Post-hoc harvesting (quiesce first) ---------------------------------
  struct Latencies {
    std::vector<double> connect_ms;
    std::vector<double> subscribe_ms;
    std::vector<double> notify_ms;
  };
  /// Gathers the per-loop latency samples (blocks on every loop).
  Latencies collect_latencies();
  /// Per-client delivered doc ids (bitmap positions), index = client.
  std::vector<std::vector<std::uint64_t>> collect_delivered();

 private:
  struct Client {
    std::size_t index = 0;
    int fd = -1;
    std::unique_ptr<transport::Connection> connection;
    std::vector<bool> delivered;
    bool connected = false;
    bool first_grant_seen = false;
    double connect_start_ms = 0.0;
    double subscribe_sent_ms = 0.0;
  };

  struct Loop {
    int index = 0;
    std::unique_ptr<transport::EventLoop> loop;
    std::thread thread;
    std::vector<std::unique_ptr<Client>> clients;  ///< loop-thread owned
    std::size_t next_connect = 0;  ///< pacing cursor into `clients`
    Latencies latencies;
    std::uint64_t notify_seen = 0;  ///< stride counter
    std::uint64_t beacon_seq = 0;
  };

  void connect_tick(Loop& driver);
  void begin_connect(Loop& driver, Client& client);
  void adopt(Loop& driver, Client& client);
  void on_client_frame(Loop& driver, Client& client, wire::Decoded&& decoded);
  void heartbeat_tick(Loop& driver);
  bool wait(const std::function<bool()>& done, double timeout_ms) const;

  Options options_;
  std::function<std::vector<Xpe>(std::size_t)> interests_;
  std::vector<std::unique_ptr<Loop>> loops_;
  bool started_ = false;

  std::atomic<std::size_t> connected_{0};
  std::atomic<std::uint64_t> lease_grants_{0};
  std::atomic<std::uint64_t> publications_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> connect_failures_{0};
  std::atomic<std::uint64_t> disconnects_{0};
};

}  // namespace xroute::edge
