#include "edge/lease_manager.hpp"

#include <algorithm>

namespace xroute::edge {

namespace {
/// Wheel geometry: the span covers 2x the TTL so a freshly granted lease
/// parks without wrapping, and 64 slots keep per-slot scans short at any
/// TTL. Sub-millisecond TTLs (tests) still get a positive slot width.
constexpr std::size_t kSlots = 64;
}  // namespace

LeaseManager::LeaseManager(double ttl_ms, double now_ms)
    : ttl_ms_(ttl_ms),
      slot_ms_(std::max(ttl_ms * 2.0 / static_cast<double>(kSlots), 0.01)),
      cursor_time_ms_(now_ms),
      slots_(kSlots) {}

bool LeaseManager::acquire(int session, std::uint32_t xpe_uid, double now_ms) {
  std::uint64_t k = key(session, xpe_uid);
  auto [it, inserted] = leases_.try_emplace(k);
  it->second.deadline_ms = now_ms + ttl_ms_;
  it->second.seq = next_seq_++;
  park(k, it->second.seq, it->second.deadline_ms);
  if (inserted) by_session_[session].push_back(xpe_uid);
  return inserted;
}

std::size_t LeaseManager::renew_session(int session, double now_ms) {
  auto it = by_session_.find(session);
  if (it == by_session_.end()) return 0;
  for (std::uint32_t uid : it->second) {
    auto lease = leases_.find(key(session, uid));
    if (lease == leases_.end()) continue;
    // Lazy renewal: bump deadline + seq; the old wheel entry dies of
    // sequence mismatch when its slot is scanned.
    lease->second.deadline_ms = now_ms + ttl_ms_;
    lease->second.seq = next_seq_++;
    park(key(session, uid), lease->second.seq, lease->second.deadline_ms);
  }
  return it->second.size();
}

bool LeaseManager::release(int session, std::uint32_t xpe_uid) {
  if (leases_.erase(key(session, xpe_uid)) == 0) return false;
  auto it = by_session_.find(session);
  if (it != by_session_.end()) {
    auto& uids = it->second;
    uids.erase(std::remove(uids.begin(), uids.end(), xpe_uid), uids.end());
    if (uids.empty()) by_session_.erase(it);
  }
  return true;
}

std::vector<std::uint32_t> LeaseManager::release_session(int session) {
  std::vector<std::uint32_t> released;
  auto it = by_session_.find(session);
  if (it == by_session_.end()) return released;
  released = std::move(it->second);
  by_session_.erase(it);
  for (std::uint32_t uid : released) leases_.erase(key(session, uid));
  return released;
}

std::vector<LeaseManager::Expired> LeaseManager::expire(double now_ms) {
  std::vector<Expired> expired;
  // Walk every slot the clock crossed since the last call. Bound the walk
  // at one full revolution: beyond that every slot has been visited once,
  // and re-parked far-future entries must not be popped twice in one call.
  std::size_t steps = 0;
  while (cursor_time_ms_ + slot_ms_ <= now_ms && steps < kSlots) {
    std::vector<WheelEntry> entries;
    entries.swap(slots_[cursor_]);
    for (const WheelEntry& entry : entries) {
      auto it = leases_.find(entry.lease_key);
      // Released, or renewed since this entry was parked: the entry is
      // stale, drop it.
      if (it == leases_.end() || it->second.seq != entry.seq) continue;
      if (it->second.deadline_ms > now_ms) {
        // Parked beyond the wheel horizon and popped early: wait again.
        park(entry.lease_key, entry.seq, it->second.deadline_ms);
        continue;
      }
      expired.push_back(Expired{
          static_cast<int>(entry.lease_key >> 32),
          static_cast<std::uint32_t>(entry.lease_key & 0xffffffffu)});
      int session = expired.back().session;
      std::uint32_t uid = expired.back().xpe_uid;
      leases_.erase(it);
      auto sess = by_session_.find(session);
      if (sess != by_session_.end()) {
        auto& uids = sess->second;
        uids.erase(std::remove(uids.begin(), uids.end(), uid), uids.end());
        if (uids.empty()) by_session_.erase(sess);
      }
    }
    cursor_time_ms_ += slot_ms_;
    cursor_ = (cursor_ + 1) % kSlots;
    ++steps;
  }
  if (steps == kSlots && cursor_time_ms_ + slot_ms_ <= now_ms) {
    // The clock jumped more than a revolution: snap the wheel forward so
    // the next call doesn't spin through empty slots again.
    cursor_time_ms_ = now_ms;
  }
  return expired;
}

bool LeaseManager::held(int session, std::uint32_t xpe_uid) const {
  return leases_.count(key(session, xpe_uid)) != 0;
}

std::size_t LeaseManager::session_lease_count(int session) const {
  auto it = by_session_.find(session);
  return it == by_session_.end() ? 0 : it->second.size();
}

double LeaseManager::deadline_ms(int session, std::uint32_t xpe_uid) const {
  auto it = leases_.find(key(session, xpe_uid));
  return it == leases_.end() ? 0.0 : it->second.deadline_ms;
}

void LeaseManager::park(std::uint64_t lease_key, std::uint64_t seq,
                        double deadline_ms) {
  double offset = deadline_ms - cursor_time_ms_;
  if (offset < 0) offset = 0;
  auto slots_ahead = static_cast<std::size_t>(offset / slot_ms_);
  // Beyond the horizon: park in the farthest slot; expire() re-parks it
  // when that slot is reached with the deadline still in the future.
  if (slots_ahead >= kSlots) slots_ahead = kSlots - 1;
  slots_[(cursor_ + slots_ahead) % kSlots].push_back(
      WheelEntry{lease_key, seq});
}

}  // namespace xroute::edge
