// Per-reactor client interest index: which sessions want which Xpe, and
// which sessions a matched publication fans out to.
//
// The broker's match path stays untouched: the routing core sees the
// whole edge as ONE client interface and matches each publication once.
// When a publication reaches the edge, each reactor resolves its own
// recipients here — by re-running the (cheap, already-proven) path/XPE
// match against the reactor's DISTINCT Xpes, not per session: 10k
// sessions subscribed to `//stock` cost one match and one session-list
// walk.
//
// Single-threaded: one index per reactor, all calls on that reactor's
// loop thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute::edge {

class InterestIndex {
 public:
  /// Registers the session's interest. Returns true when this reactor
  /// gained its FIRST interest in the xpe (the caller's cue to bump the
  /// edge-wide refcount toward a broker-side subscribe).
  bool add(int session, const Xpe& xpe);

  /// Drops the session's interest. Returns true when this reactor lost
  /// its LAST interest in the xpe.
  bool remove(int session, std::uint32_t xpe_uid);

  /// The xpe behind a uid (nullptr when no session holds it) — needed to
  /// build the broker-side unsubscribe after the last lease lapses.
  const Xpe* xpe(std::uint32_t uid) const;

  /// Appends every session whose interest matches `path`, deduplicated (a
  /// session subscribed to two matching Xpes receives the document once).
  void resolve(const Path& path, std::vector<int>* out) const;

  std::size_t distinct_xpes() const { return entries_.size(); }
  std::size_t session_count(std::uint32_t xpe_uid) const;

 private:
  struct Entry {
    Xpe xpe;
    std::vector<int> sessions;
  };

  std::unordered_map<std::uint32_t, Entry> entries_;
};

}  // namespace xroute::edge
