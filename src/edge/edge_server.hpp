// EdgeServer — the client-facing session layer of one broker (DESIGN.md
// "Edge session layer").
//
// The routing core treats the entire client population as ONE interface:
// EdgeServer::start() registers itself with the host TransportBroker via
// attach_edge(), and from then on every client subscription the edge
// decides to honour upstream flows through edge_send() and every matched
// publication comes back through the delivery handler as a single
// refcounted frame. Client connections never touch the broker's peer
// machinery at all.
//
// Reactor sharding: N EventLoop threads; the acceptor lives on reactor 0
// and hands each accepted fd to reactor (fd % N). A session's whole life
// — handshake, frames, leases, teardown — happens on its reactor thread;
// reactors share nothing but the edge-wide interest refcounts (one small
// mutex-guarded map) and the monotonic counters.
//
// Leases: a subscribe acquires (or renews) a lease in the reactor's
// LeaseManager and is acknowledged with a kLeaseGrant carrying the TTL.
// Heartbeats and re-subscribes renew; the reactor's sweep timer expires
// what lapsed and reaps sessions that hold no leases and have been silent
// past the idle timeout. The broker-side subscription is reference
// counted across reactors: only the edge-wide FIRST interest in an Xpe
// sends a subscribe upstream, and only the LAST lapsed lease sends the
// unsubscribe — 10k clients on `//stock` cost the routing core one PRT
// entry.
//
// Serialize-once: the broker encodes a matched publication once (or
// forwards its inbound wire bytes); the edge fans the resulting
// SharedFrame out via Connection::send_shared, so recipient count scales
// the byte-queueing work only, never the encode.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "edge/interest_index.hpp"
#include "edge/lease_manager.hpp"
#include "transport/broker_node.hpp"

namespace xroute::edge {

class EdgeServer {
 public:
  struct Options {
    /// 0 = ephemeral (start() returns the bound port).
    std::uint16_t listen_port = 0;
    int reactors = 2;
    double lease_ttl_ms = 10000.0;
    /// Expiry/reap cadence per reactor.
    double sweep_interval_ms = 100.0;
    /// Silent sessions holding no leases are closed after this long
    /// (0 = 4 * lease_ttl_ms).
    double idle_timeout_ms = 0.0;
    /// Beacon period to every session (shared frame; 0 = no beacons).
    /// Must beat the clients' failure detector.
    double heartbeat_interval_ms = 1000.0;
    transport::Connection::Options connection;
    bool force_poll = false;
  };

  /// The broker must outlive this EdgeServer's start()..stop() window.
  EdgeServer(transport::TransportBroker* broker, Options options);
  ~EdgeServer();

  /// Attaches to the broker, binds the listener, starts the reactor
  /// threads. Returns the bound port.
  std::uint16_t start();
  /// Closes every session and stops the reactors. Deliveries arriving
  /// from the broker afterwards are dropped (counted), so stop order
  /// relative to the broker is free.
  void stop();

  std::uint16_t port() const { return port_; }
  int reactors() const { return static_cast<int>(reactors_.size()); }

  // -- Cross-thread observables --------------------------------------------
  std::size_t sessions_live() const {
    return sessions_live_.load(std::memory_order_relaxed);
  }
  std::size_t reactor_sessions(int reactor) const;
  std::uint64_t leases_granted() const {
    return leases_granted_.load(std::memory_order_relaxed);
  }
  std::uint64_t leases_expired() const {
    return leases_expired_.load(std::memory_order_relaxed);
  }
  std::uint64_t idle_reaped() const {
    return idle_reaped_.load(std::memory_order_relaxed);
  }
  /// Publications delivered by the broker = frames materialised. One per
  /// matched publication regardless of recipient count: encodes() /
  /// matched pubs is the "encodes per fanout" the bench asserts == 1.
  std::uint64_t encodes() const {
    return encodes_.load(std::memory_order_relaxed);
  }
  /// Frames queued to sessions (the fan-out volume).
  std::uint64_t fanout_frames() const {
    return fanout_frames_.load(std::memory_order_relaxed);
  }
  /// Frames dropped instead of queued to a backpressured session.
  std::uint64_t slow_session_drops() const {
    return slow_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t upstream_subscribes() const {
    return upstream_subscribes_.load(std::memory_order_relaxed);
  }
  std::uint64_t upstream_unsubscribes() const {
    return upstream_unsubscribes_.load(std::memory_order_relaxed);
  }
  /// Distinct Xpes with at least one live lease edge-wide.
  std::size_t distinct_interests() const;
  /// Bytes queued through the zero-copy shared path, across all sessions
  /// (transport.send_shared_bytes).
  std::uint64_t send_shared_bytes() const {
    return shared_bytes_.load(std::memory_order_relaxed);
  }

  /// Edge metrics snapshot as JSON (edge.sessions_live,
  /// edge.leases_expired, per-reactor session gauges, ...). Safe from any
  /// thread; built from the monotonic counters.
  std::string metrics_json();

 private:
  struct Session {
    std::unique_ptr<transport::Connection> connection;
    bool hello_seen = false;
    double last_activity_ms = 0.0;
  };

  /// One reactor: an event loop thread plus everything it owns.
  struct Reactor {
    int index = 0;
    std::unique_ptr<transport::EventLoop> loop;
    std::thread thread;
    std::unique_ptr<LeaseManager> leases;
    InterestIndex interests;
    std::unordered_map<int, Session> sessions;  ///< fd -> session
    std::atomic<std::size_t> live{0};
    std::uint64_t beacon_seq = 0;
    std::vector<int> resolve_scratch;
  };

  void accept_ready();
  /// Reactor thread: adopts an accepted fd as a session.
  void adopt(Reactor& reactor, int fd);
  void on_session_frame(Reactor& reactor, int fd, wire::Decoded&& decoded);
  void on_session_close(Reactor& reactor, int fd);
  /// Reactor thread: drops one lapsed/released lease's interest, sending
  /// the upstream unsubscribe when it was the edge-wide last.
  void drop_interest(Reactor& reactor, int fd, std::uint32_t xpe_uid);
  void sweep(Reactor& reactor);
  void beacon(Reactor& reactor);
  /// Broker's delivery callback (loop or match thread of the broker).
  void on_delivery(const Message& msg, transport::SharedFrame frame);
  /// Edge-wide refcount: first interest subscribes upstream.
  void interest_up(const Xpe& xpe);
  /// Edge-wide refcount: last interest unsubscribes upstream.
  void interest_down(std::uint32_t uid);

  transport::TransportBroker* broker_;
  Options options_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  /// Gates broker deliveries during/after stop(): deliveries take the
  /// shared side, stop() takes the exclusive side once to wait out
  /// in-flight callbacks before tearing the reactors down.
  std::shared_mutex delivery_gate_;
  std::atomic<bool> running_{false};

  /// Edge-wide interest refcounts (reactor count per Xpe uid), with the
  /// Xpe kept for the eventual upstream unsubscribe.
  mutable std::mutex interest_mutex_;
  struct GlobalInterest {
    Xpe xpe;
    int refs = 0;
  };
  std::unordered_map<std::uint32_t, GlobalInterest> interest_refs_;

  std::atomic<std::size_t> sessions_live_{0};
  std::atomic<std::uint64_t> leases_granted_{0};
  std::atomic<std::uint64_t> leases_expired_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> encodes_{0};
  std::atomic<std::uint64_t> fanout_frames_{0};
  std::atomic<std::uint64_t> slow_drops_{0};
  std::atomic<std::uint64_t> upstream_subscribes_{0};
  std::atomic<std::uint64_t> upstream_unsubscribes_{0};
  std::atomic<std::uint64_t> dropped_deliveries_{0};
  std::atomic<std::uint64_t> shared_bytes_{0};
};

}  // namespace xroute::edge
