// Streaming publication pipeline, stage one: raw document bytes →
// root-to-leaf paths with interned symbols, in a single pass and with no
// element tree in between.
//
// The tree pipeline (parse_xml + extract_paths) materialises an XmlDocument
// — one heap-allocated node per element, each with its own strings — only
// to immediately flatten it into paths and throw the tree away. The
// StreamPathExtractor walks the buffer once with a pull-style tokenizer:
// open/close tag events drive a stack of flyweight element records (names
// and raw text runs borrow the input buffer; only entity-decoded pieces are
// copied, into a bump arena), and each open event resolves the element name
// to its interned Symbol id exactly once. Paths are materialised straight
// from the records at document end.
//
// Semantics are identical to the tree pipeline by construction and by
// differential test: for every input, extract(text, d) produces exactly
// extract_paths(parse_xml(text), d) — including which inputs throw
// ParseError — because both front ends share the token layer in
// xml/lexer.hpp and this file mirrors the tree walk's emission rules
// (leaf-or-depth-capped, duplicates collapsed in first-occurrence order,
// each node annotated with its complete concatenated text).
//
// The extractor is designed for reuse: all working storage (record pools,
// arena, scratch buffers) survives across extract() calls, so a warmed-up
// extractor parses a document with zero heap allocation outside the output
// paths themselves. Not thread-safe; use one per worker.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.hpp"
#include "xml/paths.hpp"

namespace xroute {

class StreamPathExtractor {
 public:
  StreamPathExtractor() = default;

  /// Parses `text` and extracts its distinct root-to-leaf paths, replacing
  /// any previous results. Throws ParseError on exactly the inputs
  /// parse_xml rejects (including nesting deeper than kMaxXmlDepth).
  /// `text` only needs to stay alive for the duration of the call.
  void extract(std::string_view text);

  /// Same, capped at `max_depth` levels (see extract_paths overload).
  void extract(std::string_view text, std::size_t max_depth);

  /// The extracted paths, in document order of first occurrence.
  const std::vector<Path>& paths() const { return paths_; }

  /// Moves the paths out (the extractor stays reusable).
  std::vector<Path> take_paths() { return std::move(paths_); }

  /// Interned symbol ids for paths()[i], resolved once per open-tag event
  /// during the parse (SymbolTable::lookup semantics: names never seen in
  /// any XPE or advertisement map to kNoSymbol). Valid until the next
  /// extract() call.
  std::span<const std::uint32_t> symbols(std::size_t i) const {
    const EmittedPath& e = emitted_[i];
    return {out_symbols_.data() + e.offset, e.count};
  }

  /// Scratch arena diagnostics (entity-decoded text lives here).
  const Arena& arena() const { return arena_; }

 private:
  /// One element that may contribute a path node. Names and raw text runs
  /// are views into the input buffer; entity-decoded pieces are views into
  /// the arena.
  struct Rec {
    std::string_view name;
    std::uint32_t symbol = 0;
    std::uint32_t depth = 0;  ///< 1-based
    std::int32_t first_attr = 0;
    std::int32_t attr_count = 0;
    std::int32_t first_chunk = -1;  ///< linked list into chunks_
    std::int32_t last_chunk = -1;
    bool has_child = false;
  };
  struct AttrEntry {
    std::string_view key;
    std::string_view value;
  };
  struct ChunkEntry {
    std::string_view piece;
    std::int32_t next = -1;
  };
  struct Open {
    std::string_view name;
    std::int32_t rec = -1;  ///< -1 when below the extraction depth cap
  };
  struct EmittedPath {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  class Impl;  // parse-time driver, defined in the .cpp

  void materialize(std::size_t max_depth);

  // Working pools, reused across documents.
  std::vector<Rec> recs_;
  std::vector<AttrEntry> attrs_;
  std::vector<ChunkEntry> chunks_;
  std::vector<Open> opens_;
  std::vector<std::uint32_t> sym_stack_;
  std::string scratch_;
  std::set<Path> seen_;
  Arena arena_;

  // Results of the last extract().
  std::vector<Path> paths_;
  std::vector<std::uint32_t> out_symbols_;
  std::vector<EmittedPath> emitted_;
};

/// One-shot conveniences mirroring extract_paths(parse_xml(text)[, d]).
std::vector<Path> stream_extract_paths(std::string_view text);
std::vector<Path> stream_extract_paths(std::string_view text,
                                       std::size_t max_depth);

}  // namespace xroute
