// Path extraction: the paper decomposes each XML document into its set of
// root-to-leaf element paths (§3.1). Publications routed through the
// network are these paths, annotated with (docId, pathId); the annotation
// lives in router::Publication, the bare path lives here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xml/document.hpp"

namespace xroute {

/// Attribute/text payload of one element along a path; evaluated by the
/// predicate extension (xpath/predicate.hpp).
struct PathNodeData {
  std::map<std::string, std::string> attributes;
  std::string text;

  friend bool operator==(const PathNodeData&, const PathNodeData&) = default;
  friend auto operator<=>(const PathNodeData&, const PathNodeData&) = default;
};

/// A concrete root-to-leaf element path "/t1/t2/.../tn", optionally
/// annotated with each element's attributes and text (`data` is either
/// empty — a purely structural path — or elementwise parallel).
struct Path {
  std::vector<std::string> elements;
  std::vector<PathNodeData> data;

  std::size_t size() const { return elements.size(); }
  bool empty() const { return elements.empty(); }
  const std::string& operator[](std::size_t i) const { return elements[i]; }
  bool annotated() const { return !data.empty(); }
  /// Annotation for position i (null when the path is structural-only).
  const PathNodeData* node_data(std::size_t i) const {
    return data.empty() ? nullptr : &data[i];
  }

  std::string to_string() const;

  friend bool operator==(const Path&, const Path&) = default;
  friend auto operator<=>(const Path&, const Path&) = default;
};

/// Borrowed view of a path with its element names resolved to interned
/// symbol ids (util/symbols.hpp): the matching kernels' currency. The
/// symbols live in caller-owned storage (an InternedPath, a per-worker
/// scratch buffer, a StreamPathExtractor pool), so building one allocates
/// nothing — that is what lets the streaming pipeline run the hot loop
/// with zero heap traffic. Both the source path and the symbol storage
/// must outlive the view.
struct PathView {
  const Path* path = nullptr;
  const std::uint32_t* symbols = nullptr;
  std::size_t count = 0;

  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  std::uint32_t operator[](std::size_t i) const { return symbols[i]; }
};

/// A path with its element names resolved to interned symbol ids, built
/// once per publication-matching call so the per-node hot loops compare
/// integers instead of strings. Elements never seen in any XPE or
/// advertisement resolve to SymbolTable::kNoSymbol, which matches nothing
/// but a wildcard — exactly the string semantics. Holds a pointer to the
/// source path (for predicate payloads); the path must outlive the view.
struct InternedPath {
  explicit InternedPath(const Path& p);

  const Path* path = nullptr;
  std::vector<std::uint32_t> symbols;

  std::size_t size() const { return symbols.size(); }
  bool empty() const { return symbols.empty(); }
  std::uint32_t operator[](std::size_t i) const { return symbols[i]; }

  PathView view() const { return {path, symbols.data(), symbols.size()}; }
};

/// Interns `p`'s element names into caller-owned `storage` (cleared and
/// refilled; reuse the vector to amortise its capacity) and returns a view
/// over it. SymbolTable::lookup semantics, like InternedPath.
PathView intern_path(const Path& p, std::vector<std::uint32_t>& storage);

/// Parses "/t1/t2/.../tn" into a Path; throws ParseError on bad syntax
/// (the inverse of Path::to_string, used by tests and tools).
Path parse_path(const std::string& text);

/// Extracts every distinct root-to-leaf path of the document, in document
/// order of first occurrence, annotated with attributes and text.
/// Duplicates (same elements AND same annotations) collapse to a single
/// path, matching the paper's "queries are distinct" treatment.
std::vector<Path> extract_paths(const XmlDocument& doc);

/// Same, but capped at `max_depth` levels: a path longer than the cap is
/// truncated (the paper caps documents and XPEs at 10 levels, so by default
/// nothing truncates; the cap guards against adversarial inputs).
std::vector<Path> extract_paths(const XmlDocument& doc, std::size_t max_depth);

}  // namespace xroute
