// Recursive-descent XML parser covering the subset the dissemination
// system produces and consumes: elements, attributes, character data,
// comments, processing instructions, DOCTYPE declarations (skipped) and
// the five predefined entities. Not a validating parser.
#pragma once

#include <cstddef>
#include <string_view>

#include "util/error.hpp"
#include "xml/document.hpp"

namespace xroute {

/// Hard cap on element nesting, shared by the tree parser and the
/// streaming extractor (xml/stream_parser.hpp). The paper's workloads top
/// out around 10 levels; the cap exists so hostile deeply-nested input
/// fails with ParseError instead of exhausting the recursion stack.
inline constexpr std::size_t kMaxXmlDepth = 256;

/// Parses a complete document; throws ParseError with position information
/// on malformed markup (mismatched tags, bad names, unterminated literals,
/// nesting deeper than kMaxXmlDepth).
XmlDocument parse_xml(std::string_view text);

}  // namespace xroute
