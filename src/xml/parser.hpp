// Recursive-descent XML parser covering the subset the dissemination
// system produces and consumes: elements, attributes, character data,
// comments, processing instructions, DOCTYPE declarations (skipped) and
// the five predefined entities. Not a validating parser.
#pragma once

#include <string_view>

#include "util/error.hpp"
#include "xml/document.hpp"

namespace xroute {

/// Parses a complete document; throws ParseError with position information
/// on malformed markup (mismatched tags, bad names, unterminated literals).
XmlDocument parse_xml(std::string_view text);

}  // namespace xroute
