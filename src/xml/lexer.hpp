// Shared lexical layer for the two XML front ends.
//
// The tree parser (xml/parser.cpp) and the streaming path extractor
// (xml/stream_parser.cpp) must agree byte-for-byte on what is well-formed:
// the streaming pipeline is validated differentially against the tree
// pipeline, so any divergence in name rules, entity decoding or
// comment/PI/DOCTYPE skipping would show up as a false mismatch. Keeping
// the token-level helpers in one header makes the agreement structural
// instead of coincidental.
//
// Internal header: nothing here is part of the library API.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace xroute::xmldetail {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char get() { return text_[pos_++]; }
  std::size_t pos() const { return pos_; }

  bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void advance(std::size_t n) { pos_ += n; }

  void skip_whitespace() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Consumes up to and including `terminator`; errors if absent.
  void skip_until(std::string_view terminator, const char* what) {
    std::size_t found = text_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      fail(std::string("unterminated ") + what);
    }
    pos_ = found + terminator.size();
  }

  /// The slice [from, pos) of the underlying text.
  std::string_view slice_from(std::size_t from) const {
    return text_.substr(from, pos_ - from);
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

inline bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '.' || c == '-';
}

/// Parses an element/attribute name; the view borrows the input buffer.
inline std::string_view parse_name(Cursor& cur) {
  if (cur.done() || !is_name_start(cur.peek())) cur.fail("expected a name");
  std::size_t start = cur.pos();
  cur.get();
  while (!cur.done() && is_name_char(cur.peek())) cur.get();
  return cur.slice_from(start);
}

/// Decodes one entity reference; the cursor is positioned just past '&'.
inline std::string decode_entity(Cursor& cur) {
  std::string entity;
  while (!cur.done() && cur.peek() != ';') entity += cur.get();
  if (cur.done()) cur.fail("unterminated entity reference");
  cur.get();  // ';'
  if (entity == "amp") return "&";
  if (entity == "lt") return "<";
  if (entity == "gt") return ">";
  if (entity == "quot") return "\"";
  if (entity == "apos") return "'";
  if (!entity.empty() && entity[0] == '#') {
    int code = 0;
    try {
      code = (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                 ? std::stoi(entity.substr(2), nullptr, 16)
                 : std::stoi(entity.substr(1));
    } catch (const std::exception&) {
      cur.fail("bad character reference &" + entity + ";");
    }
    if (code <= 0 || code > 127) return "?";  // non-ASCII: placeholder
    return std::string(1, static_cast<char>(code));
  }
  cur.fail("unknown entity &" + entity + ";");
}

/// Parses a quoted attribute value with entity decoding.
inline std::string parse_attribute_value(Cursor& cur) {
  if (cur.done() || (cur.peek() != '"' && cur.peek() != '\'')) {
    cur.fail("expected quoted attribute value");
  }
  char quote = cur.get();
  std::string value;
  while (!cur.done() && cur.peek() != quote) {
    char c = cur.get();
    if (c == '&') {
      value += decode_entity(cur);
    } else {
      value += c;
    }
  }
  if (cur.done()) cur.fail("unterminated attribute value");
  cur.get();  // closing quote
  return value;
}

/// Skips comments, PIs, DOCTYPE. Returns true if anything was consumed.
inline bool skip_misc(Cursor& cur) {
  if (cur.starts_with("<!--")) {
    cur.advance(4);
    cur.skip_until("-->", "comment");
    return true;
  }
  if (cur.starts_with("<?")) {
    cur.advance(2);
    cur.skip_until("?>", "processing instruction");
    return true;
  }
  if (cur.starts_with("<!DOCTYPE")) {
    // Skip to matching '>' (handles an optional internal subset [...]).
    cur.advance(9);
    int bracket_depth = 0;
    while (!cur.done()) {
      char c = cur.get();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth == 0) return true;
    }
    cur.fail("unterminated DOCTYPE");
  }
  return false;
}

}  // namespace xroute::xmldetail
