#include "xml/parser.hpp"

#include <cctype>
#include <string>

namespace xroute {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char get() { return text_[pos_++]; }
  std::size_t pos() const { return pos_; }

  bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void advance(std::size_t n) { pos_ += n; }

  void skip_whitespace() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Consumes up to and including `terminator`; errors if absent.
  void skip_until(std::string_view terminator, const char* what) {
    std::size_t found = text_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      fail(std::string("unterminated ") + what);
    }
    pos_ = found + terminator.size();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '.' || c == '-';
}

std::string parse_name(Cursor& cur) {
  if (cur.done() || !is_name_start(cur.peek())) cur.fail("expected a name");
  std::string name;
  name += cur.get();
  while (!cur.done() && is_name_char(cur.peek())) name += cur.get();
  return name;
}

std::string decode_entity(Cursor& cur) {
  // Cursor is positioned just past '&'.
  std::string entity;
  while (!cur.done() && cur.peek() != ';') entity += cur.get();
  if (cur.done()) cur.fail("unterminated entity reference");
  cur.get();  // ';'
  if (entity == "amp") return "&";
  if (entity == "lt") return "<";
  if (entity == "gt") return ">";
  if (entity == "quot") return "\"";
  if (entity == "apos") return "'";
  if (!entity.empty() && entity[0] == '#') {
    int code = 0;
    try {
      code = (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                 ? std::stoi(entity.substr(2), nullptr, 16)
                 : std::stoi(entity.substr(1));
    } catch (const std::exception&) {
      cur.fail("bad character reference &" + entity + ";");
    }
    if (code <= 0 || code > 127) return "?";  // non-ASCII: placeholder
    return std::string(1, static_cast<char>(code));
  }
  cur.fail("unknown entity &" + entity + ";");
}

std::string parse_attribute_value(Cursor& cur) {
  if (cur.done() || (cur.peek() != '"' && cur.peek() != '\'')) {
    cur.fail("expected quoted attribute value");
  }
  char quote = cur.get();
  std::string value;
  while (!cur.done() && cur.peek() != quote) {
    char c = cur.get();
    if (c == '&') {
      value += decode_entity(cur);
    } else {
      value += c;
    }
  }
  if (cur.done()) cur.fail("unterminated attribute value");
  cur.get();  // closing quote
  return value;
}

/// Skips comments, PIs, DOCTYPE. Returns true if anything was consumed.
bool skip_misc(Cursor& cur) {
  if (cur.starts_with("<!--")) {
    cur.advance(4);
    cur.skip_until("-->", "comment");
    return true;
  }
  if (cur.starts_with("<?")) {
    cur.advance(2);
    cur.skip_until("?>", "processing instruction");
    return true;
  }
  if (cur.starts_with("<!DOCTYPE")) {
    // Skip to matching '>' (handles an optional internal subset [...]).
    cur.advance(9);
    int bracket_depth = 0;
    while (!cur.done()) {
      char c = cur.get();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth == 0) return true;
    }
    cur.fail("unterminated DOCTYPE");
  }
  return false;
}

XmlNode parse_element(Cursor& cur);

/// Parses the content between <name…> and </name>, filling `node`.
void parse_content(Cursor& cur, XmlNode& node) {
  while (true) {
    if (cur.done()) cur.fail("unexpected end of input inside <" + node.name + ">");
    if (cur.starts_with("</")) {
      cur.advance(2);
      std::string closing = parse_name(cur);
      cur.skip_whitespace();
      if (cur.done() || cur.get() != '>') cur.fail("malformed closing tag");
      if (closing != node.name) {
        cur.fail("mismatched closing tag </" + closing + "> for <" +
                 node.name + ">");
      }
      return;
    }
    if (cur.starts_with("<![CDATA[")) {
      cur.advance(9);
      std::size_t start = cur.pos();
      cur.skip_until("]]>", "CDATA section");
      (void)start;  // CDATA payload is not needed for routing; size only.
      continue;
    }
    if (skip_misc(cur)) continue;
    if (cur.peek() == '<') {
      node.children.push_back(parse_element(cur));
      continue;
    }
    // Character data.
    while (!cur.done() && cur.peek() != '<') {
      char c = cur.get();
      if (c == '&') {
        node.text += decode_entity(cur);
      } else {
        node.text += c;
      }
    }
  }
}

XmlNode parse_element(Cursor& cur) {
  if (cur.done() || cur.get() != '<') cur.fail("expected '<'");
  XmlNode node;
  node.name = parse_name(cur);
  // Attributes.
  while (true) {
    cur.skip_whitespace();
    if (cur.done()) cur.fail("unterminated start tag <" + node.name);
    if (cur.peek() == '/') {
      cur.get();
      if (cur.done() || cur.get() != '>') cur.fail("malformed empty-element tag");
      return node;  // <name/>
    }
    if (cur.peek() == '>') {
      cur.get();
      break;
    }
    std::string key = parse_name(cur);
    cur.skip_whitespace();
    if (cur.done() || cur.get() != '=') cur.fail("expected '=' after attribute name");
    cur.skip_whitespace();
    node.attributes.emplace_back(std::move(key), parse_attribute_value(cur));
  }
  parse_content(cur, node);
  return node;
}

}  // namespace

XmlDocument parse_xml(std::string_view text) {
  Cursor cur(text);
  cur.skip_whitespace();
  while (!cur.done() && skip_misc(cur)) cur.skip_whitespace();
  if (cur.done()) cur.fail("document has no root element");
  XmlNode root = parse_element(cur);
  cur.skip_whitespace();
  while (!cur.done() && skip_misc(cur)) cur.skip_whitespace();
  if (!cur.done()) cur.fail("trailing content after root element");
  return XmlDocument(std::move(root));
}

}  // namespace xroute
