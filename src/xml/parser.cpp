#include "xml/parser.hpp"

#include <string>

#include "xml/lexer.hpp"

namespace xroute {

namespace {

using xmldetail::Cursor;
using xmldetail::parse_attribute_value;
using xmldetail::parse_name;
using xmldetail::skip_misc;

XmlNode parse_element(Cursor& cur, std::size_t depth);

/// Parses the content between <name…> and </name>, filling `node`.
void parse_content(Cursor& cur, XmlNode& node, std::size_t depth) {
  while (true) {
    if (cur.done()) cur.fail("unexpected end of input inside <" + node.name + ">");
    if (cur.starts_with("</")) {
      cur.advance(2);
      std::string closing(parse_name(cur));
      cur.skip_whitespace();
      if (cur.done() || cur.get() != '>') cur.fail("malformed closing tag");
      if (closing != node.name) {
        cur.fail("mismatched closing tag </" + closing + "> for <" +
                 node.name + ">");
      }
      return;
    }
    if (cur.starts_with("<![CDATA[")) {
      cur.advance(9);
      std::size_t start = cur.pos();
      cur.skip_until("]]>", "CDATA section");
      (void)start;  // CDATA payload is not needed for routing; size only.
      continue;
    }
    if (skip_misc(cur)) continue;
    if (cur.peek() == '<') {
      node.children.push_back(parse_element(cur, depth + 1));
      continue;
    }
    // Character data.
    while (!cur.done() && cur.peek() != '<') {
      char c = cur.get();
      if (c == '&') {
        node.text += xmldetail::decode_entity(cur);
      } else {
        node.text += c;
      }
    }
  }
}

XmlNode parse_element(Cursor& cur, std::size_t depth) {
  if (depth > kMaxXmlDepth) {
    cur.fail("element nesting deeper than " + std::to_string(kMaxXmlDepth));
  }
  if (cur.done() || cur.get() != '<') cur.fail("expected '<'");
  XmlNode node;
  node.name = std::string(parse_name(cur));
  // Attributes.
  while (true) {
    cur.skip_whitespace();
    if (cur.done()) cur.fail("unterminated start tag <" + node.name);
    if (cur.peek() == '/') {
      cur.get();
      if (cur.done() || cur.get() != '>') cur.fail("malformed empty-element tag");
      return node;  // <name/>
    }
    if (cur.peek() == '>') {
      cur.get();
      break;
    }
    std::string key(parse_name(cur));
    cur.skip_whitespace();
    if (cur.done() || cur.get() != '=') cur.fail("expected '=' after attribute name");
    cur.skip_whitespace();
    node.attributes.emplace_back(std::move(key), parse_attribute_value(cur));
  }
  parse_content(cur, node, depth);
  return node;
}

}  // namespace

XmlDocument parse_xml(std::string_view text) {
  Cursor cur(text);
  cur.skip_whitespace();
  while (!cur.done() && skip_misc(cur)) cur.skip_whitespace();
  if (cur.done()) cur.fail("document has no root element");
  XmlNode root = parse_element(cur, 1);
  cur.skip_whitespace();
  while (!cur.done() && skip_misc(cur)) cur.skip_whitespace();
  if (!cur.done()) cur.fail("trailing content after root element");
  return XmlDocument(std::move(root));
}

}  // namespace xroute
