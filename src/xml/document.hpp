// Minimal XML document model: an element tree with attributes and text.
//
// The dissemination system treats XML documents as trees of elements
// (paper §3.1); attributes and character data are carried along so that
// document sizes are realistic for the delay experiments, but routing
// decisions are made on element paths only.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace xroute {

/// One element node. Plain aggregate: the tree owns its children by value.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  ///< concatenated character data directly under this node
  std::vector<XmlNode> children;

  bool is_leaf() const { return children.empty(); }

  /// Number of element nodes in this subtree (including this node).
  std::size_t subtree_size() const;

  /// Depth of the deepest element below (and including) this node.
  std::size_t depth() const;
};

/// A parsed XML document.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(XmlNode root) : root_(std::move(root)) {}

  const XmlNode& root() const { return root_; }
  XmlNode& root() { return root_; }

  /// Serialises the document back to markup (no pretty-printing beyond
  /// newlines between top-level children; round-trips through the parser).
  std::string serialize() const;

  /// Size in bytes of the serialised form; used as the "document size" in
  /// the notification-delay experiments (paper Figs. 10 and 11).
  std::size_t byte_size() const { return serialize().size(); }

 private:
  XmlNode root_;
};

/// Escapes the five predefined XML entities in character data.
std::string xml_escape(const std::string& s);

}  // namespace xroute
