#include "xml/document.hpp"

#include <sstream>

namespace xroute {

std::size_t XmlNode::subtree_size() const {
  std::size_t n = 1;
  for (const XmlNode& c : children) n += c.subtree_size();
  return n;
}

std::size_t XmlNode::depth() const {
  std::size_t d = 0;
  for (const XmlNode& c : children) d = std::max(d, c.depth());
  return d + 1;
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void serialize_node(const XmlNode& node, std::ostringstream& os) {
  os << '<' << node.name;
  for (const auto& [key, value] : node.attributes) {
    os << ' ' << key << "=\"" << xml_escape(value) << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    os << "/>";
    return;
  }
  os << '>';
  if (!node.text.empty()) os << xml_escape(node.text);
  for (const XmlNode& c : node.children) serialize_node(c, os);
  os << "</" << node.name << '>';
}

}  // namespace

std::string XmlDocument::serialize() const {
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>";
  serialize_node(root_, os);
  return os.str();
}

}  // namespace xroute
