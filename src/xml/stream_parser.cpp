#include "xml/stream_parser.hpp"

#include <limits>
#include <string>

#include "util/symbols.hpp"
#include "xml/lexer.hpp"
#include "xml/parser.hpp"

namespace xroute {

using xmldetail::Cursor;
using xmldetail::decode_entity;
using xmldetail::parse_name;
using xmldetail::skip_misc;

/// Parse-time driver: owns the cursor and writes into the extractor's
/// pools. Split out so the header stays free of lexer internals.
class StreamPathExtractor::Impl {
 public:
  Impl(StreamPathExtractor& ex, std::string_view text, std::size_t max_depth)
      : ex_(ex), cur_(text), max_depth_(max_depth) {}

  void run() {
    // Prolog: whitespace, comments, PIs, DOCTYPE.
    cur_.skip_whitespace();
    while (!cur_.done() && skip_misc(cur_)) cur_.skip_whitespace();
    if (cur_.done()) cur_.fail("document has no root element");
    parse_start_tag();
    while (!ex_.opens_.empty()) {
      if (cur_.done()) {
        cur_.fail("unexpected end of input inside <" +
                  std::string(ex_.opens_.back().name) + ">");
      }
      if (cur_.starts_with("</")) {
        parse_close_tag();
        continue;
      }
      if (cur_.starts_with("<![CDATA[")) {
        cur_.advance(9);
        cur_.skip_until("]]>", "CDATA section");
        continue;  // CDATA payload is not part of routed text (see parser.cpp)
      }
      if (skip_misc(cur_)) continue;
      if (cur_.peek() == '<') {
        parse_start_tag();
        continue;
      }
      parse_text_run();
    }
    // Epilog: only whitespace and misc may follow the root.
    cur_.skip_whitespace();
    while (!cur_.done() && skip_misc(cur_)) cur_.skip_whitespace();
    if (!cur_.done()) cur_.fail("trailing content after root element");
  }

 private:
  void parse_start_tag() {
    std::size_t depth = ex_.opens_.size() + 1;
    if (depth > kMaxXmlDepth) {
      cur_.fail("element nesting deeper than " + std::to_string(kMaxXmlDepth));
    }
    if (cur_.done() || cur_.get() != '<') cur_.fail("expected '<'");
    std::string_view name = parse_name(cur_);
    if (!ex_.opens_.empty() && ex_.opens_.back().rec >= 0) {
      ex_.recs_[ex_.opens_.back().rec].has_child = true;
    }
    // A node contributes a record when every ancestor sits below the
    // extraction cap — exactly the nodes the tree walk visits. Deeper
    // elements are still parsed (and validated) but leave no trace.
    std::int32_t rec = -1;
    if (depth == 1 || depth - 1 < max_depth_) {
      rec = static_cast<std::int32_t>(ex_.recs_.size());
      Rec r;
      r.name = name;
      r.symbol = SymbolTable::global().lookup(name);
      r.depth = static_cast<std::uint32_t>(depth);
      r.first_attr = static_cast<std::int32_t>(ex_.attrs_.size());
      ex_.recs_.push_back(r);
    }
    while (true) {
      cur_.skip_whitespace();
      if (cur_.done()) cur_.fail("unterminated start tag <" + std::string(name));
      if (cur_.peek() == '/') {
        cur_.get();
        if (cur_.done() || cur_.get() != '>') {
          cur_.fail("malformed empty-element tag");
        }
        return;  // <name/>: leaf, never opened
      }
      if (cur_.peek() == '>') {
        cur_.get();
        break;
      }
      std::string_view key = parse_name(cur_);
      cur_.skip_whitespace();
      if (cur_.done() || cur_.get() != '=') {
        cur_.fail("expected '=' after attribute name");
      }
      cur_.skip_whitespace();
      std::string_view value = parse_attribute_value_view();
      if (rec >= 0) {
        ex_.attrs_.push_back(AttrEntry{key, value});
        ++ex_.recs_[rec].attr_count;
      }
    }
    ex_.opens_.push_back(Open{name, rec});
  }

  void parse_close_tag() {
    cur_.advance(2);
    std::string_view closing = parse_name(cur_);
    cur_.skip_whitespace();
    if (cur_.done() || cur_.get() != '>') cur_.fail("malformed closing tag");
    if (closing != ex_.opens_.back().name) {
      cur_.fail("mismatched closing tag </" + std::string(closing) + "> for <" +
                std::string(ex_.opens_.back().name) + ">");
    }
    ex_.opens_.pop_back();
  }

  /// One run of character data up to the next '<' (or end of input, which
  /// the main loop turns into the same error the tree parser raises).
  /// Entity-free runs borrow the input buffer; runs with entities are
  /// decoded into the arena.
  void parse_text_run() {
    std::size_t start = cur_.pos();
    while (!cur_.done() && cur_.peek() != '<' && cur_.peek() != '&') cur_.get();
    std::string_view piece;
    if (cur_.done() || cur_.peek() == '<') {
      piece = cur_.slice_from(start);
    } else {
      ex_.scratch_.assign(cur_.slice_from(start));
      while (!cur_.done() && cur_.peek() != '<') {
        char c = cur_.get();
        if (c == '&') {
          ex_.scratch_ += decode_entity(cur_);
        } else {
          ex_.scratch_ += c;
        }
      }
      piece = ex_.arena_.copy(ex_.scratch_);
    }
    std::int32_t rec = ex_.opens_.back().rec;
    if (rec < 0 || piece.empty()) return;
    std::int32_t chunk = static_cast<std::int32_t>(ex_.chunks_.size());
    ex_.chunks_.push_back(ChunkEntry{piece, -1});
    Rec& r = ex_.recs_[rec];
    if (r.last_chunk < 0) {
      r.first_chunk = chunk;
    } else {
      ex_.chunks_[r.last_chunk].next = chunk;
    }
    r.last_chunk = chunk;
  }

  /// Mirror of xmldetail::parse_attribute_value that avoids copying
  /// entity-free values.
  std::string_view parse_attribute_value_view() {
    if (cur_.done() || (cur_.peek() != '"' && cur_.peek() != '\'')) {
      cur_.fail("expected quoted attribute value");
    }
    char quote = cur_.get();
    std::size_t start = cur_.pos();
    while (!cur_.done() && cur_.peek() != quote && cur_.peek() != '&') {
      cur_.get();
    }
    if (cur_.done()) cur_.fail("unterminated attribute value");
    if (cur_.peek() == quote) {
      std::string_view value = cur_.slice_from(start);
      cur_.get();  // closing quote
      return value;
    }
    ex_.scratch_.assign(cur_.slice_from(start));
    while (!cur_.done() && cur_.peek() != quote) {
      char c = cur_.get();
      if (c == '&') {
        ex_.scratch_ += decode_entity(cur_);
      } else {
        ex_.scratch_ += c;
      }
    }
    if (cur_.done()) cur_.fail("unterminated attribute value");
    cur_.get();  // closing quote
    return ex_.arena_.copy(ex_.scratch_);
  }

  StreamPathExtractor& ex_;
  Cursor cur_;
  std::size_t max_depth_;
};

void StreamPathExtractor::extract(std::string_view text) {
  extract(text, std::numeric_limits<std::size_t>::max());
}

void StreamPathExtractor::extract(std::string_view text,
                                  std::size_t max_depth) {
  recs_.clear();
  attrs_.clear();
  chunks_.clear();
  opens_.clear();
  arena_.reset();
  paths_.clear();
  out_symbols_.clear();
  emitted_.clear();
  Impl impl(*this, text, max_depth);
  impl.run();
  materialize(max_depth);
}

void StreamPathExtractor::materialize(std::size_t max_depth) {
  seen_.clear();
  sym_stack_.clear();
  // Records are in pre-order, so replaying them with depth-driven
  // truncation reconstructs each node's full ancestor chain — with every
  // node's text complete, which is why emission waits for document end
  // (text after a child still belongs to the parent's annotation).
  Path current;
  for (const Rec& rec : recs_) {
    current.elements.resize(rec.depth - 1);
    current.data.resize(rec.depth - 1);
    sym_stack_.resize(rec.depth - 1);
    current.elements.emplace_back(rec.name);
    PathNodeData data;
    for (std::int32_t a = 0; a < rec.attr_count; ++a) {
      const AttrEntry& attr = attrs_[rec.first_attr + a];
      data.attributes.insert_or_assign(std::string(attr.key),
                                       std::string(attr.value));
    }
    for (std::int32_t c = rec.first_chunk; c >= 0; c = chunks_[c].next) {
      data.text += chunks_[c].piece;
    }
    current.data.push_back(std::move(data));
    sym_stack_.push_back(rec.symbol);
    if (!rec.has_child || rec.depth >= max_depth) {
      if (seen_.insert(current).second) {
        paths_.push_back(current);
        emitted_.push_back(
            EmittedPath{static_cast<std::uint32_t>(out_symbols_.size()),
                        static_cast<std::uint32_t>(sym_stack_.size())});
        out_symbols_.insert(out_symbols_.end(), sym_stack_.begin(),
                            sym_stack_.end());
      }
    }
  }
}

std::vector<Path> stream_extract_paths(std::string_view text) {
  StreamPathExtractor extractor;
  extractor.extract(text);
  return extractor.take_paths();
}

std::vector<Path> stream_extract_paths(std::string_view text,
                                       std::size_t max_depth) {
  StreamPathExtractor extractor;
  extractor.extract(text, max_depth);
  return extractor.take_paths();
}

}  // namespace xroute
