#include "xml/paths.hpp"

#include <limits>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/symbols.hpp"

namespace xroute {

InternedPath::InternedPath(const Path& p) : path(&p) {
  const SymbolTable& table = SymbolTable::global();
  symbols.reserve(p.elements.size());
  for (const std::string& e : p.elements) symbols.push_back(table.lookup(e));
}

PathView intern_path(const Path& p, std::vector<std::uint32_t>& storage) {
  const SymbolTable& table = SymbolTable::global();
  storage.clear();
  storage.reserve(p.elements.size());
  for (const std::string& e : p.elements) storage.push_back(table.lookup(e));
  return {&p, storage.data(), storage.size()};
}

std::string Path::to_string() const {
  std::ostringstream os;
  for (const std::string& e : elements) os << '/' << e;
  return os.str();
}

Path parse_path(const std::string& text) {
  if (text.empty() || text[0] != '/') {
    throw ParseError("path must start with '/': '" + text + "'");
  }
  Path path;
  std::size_t pos = 1;
  while (pos <= text.size()) {
    std::size_t next = text.find('/', pos);
    if (next == std::string::npos) next = text.size();
    if (next == pos) throw ParseError("empty path element in '" + text + "'");
    path.elements.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  return path;
}

namespace {

void walk(const XmlNode& node, Path& current, std::size_t max_depth,
          std::set<Path>& seen, std::vector<Path>& out) {
  current.elements.push_back(node.name);
  PathNodeData data;
  for (const auto& [key, value] : node.attributes) data.attributes[key] = value;
  data.text = node.text;
  current.data.push_back(std::move(data));
  if (node.is_leaf() || current.size() >= max_depth) {
    if (seen.insert(current).second) out.push_back(current);
  } else {
    for (const XmlNode& child : node.children) {
      walk(child, current, max_depth, seen, out);
    }
  }
  current.elements.pop_back();
  current.data.pop_back();
}

}  // namespace

std::vector<Path> extract_paths(const XmlDocument& doc, std::size_t max_depth) {
  std::vector<Path> out;
  std::set<Path> seen;
  Path current;
  walk(doc.root(), current, max_depth, seen, out);
  return out;
}

std::vector<Path> extract_paths(const XmlDocument& doc) {
  return extract_paths(doc, std::numeric_limits<std::size_t>::max());
}

}  // namespace xroute
