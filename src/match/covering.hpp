// Covering (containment) algorithms for XPEs (paper §4.2).
//
// covers(s1, s2) decides P(s1) ⊇ P(s2). Containment for the full
// XP{/,//,*} fragment is coNP-complete (Miklau & Suciu), so the paper's
// PTIME algorithms — which we implement — are *sound* (a reported covering
// always holds; verified against a brute-force oracle in the property
// tests) but may miss rare coverings mixing '*' and '//'. Missing a
// covering only costs routing-table compaction, never delivery
// correctness.
//
//  * AbsSimCov — both absolute simple: length check + positionwise
//    covering rule.
//  * RelSimCov — relative simple coverer: window search (KMP when the
//    coverer has no wildcard, in which case the covering relation is plain
//    equality with '*' acting as an ordinary symbol on the covered side).
//  * DesCov    — descendant operators on either side: exhaustive ordered
//    placement of the coverer's segments over the covered expression's
//    steps, with the paper's special case allowing a trailing-wildcard
//    run to cross a '//' boundary.
#pragma once

#include "match/adv_match.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// Both `s1` and `s2` must be absolute simple XPEs.
bool abs_sim_cov(const Xpe& s1, const Xpe& s2);

/// `s1` must be a relative (or '//'-led) simple XPE — a single floating
/// segment; `s2` must be simple (no internal '//'). The default kAuto
/// strategy scans naively below kAutoKmpThreshold steps (measured ~6x
/// faster at the paper's length cap of 10) and uses KMP-when-sound above.
bool rel_sim_cov(const Xpe& s1, const Xpe& s2,
                 SearchStrategy strategy = SearchStrategy::kAuto);

/// General algorithm: either side may contain descendant operators.
bool des_cov(const Xpe& s1, const Xpe& s2);

/// Dispatcher: does `s1` cover `s2` (P(s1) ⊇ P(s2))? Routes to the
/// cheapest applicable algorithm above; window searches auto-select their
/// strategy by pattern length (see SearchStrategy::kAuto).
bool covers(const Xpe& s1, const Xpe& s2,
            SearchStrategy strategy = SearchStrategy::kAuto);

/// Covering between two non-recursive advertisements (paper §4.2: "the
/// same with the covering detection for subscriptions"): P(a1) ⊇ P(a2)
/// requires equal lengths and positionwise covering.
bool adv_covers(const std::vector<std::string>& a1,
                const std::vector<std::string>& a2);

}  // namespace xroute
