// Element-level matching rules.
//
// Two relations drive everything (paper Fig. 2(b) and §4.2):
//   * overlap  — used between advertisement and subscription positions: do
//     there exist concrete elements satisfying both?  '*' overlaps
//     anything; two concrete names overlap iff equal.
//   * covers   — used between two subscription positions: does every
//     element satisfying the second satisfy the first?  '*' covers
//     anything; a concrete name covers only itself (in particular a
//     concrete name does NOT cover '*').
#pragma once

#include <string>

#include "util/symbols.hpp"
#include "xpath/step.hpp"

namespace xroute {

/// Overlap rule: position `a` (advertisement side) vs `s` (subscription
/// side). Symmetric.
inline bool elements_overlap(const std::string& a, const std::string& s) {
  return a == kWildcard || s == kWildcard || a == s;
}

/// Covering rule: does element test `t` (coverer) cover test `m` (covered)?
/// Asymmetric: covers("*", "a") but not covers("a", "*").
inline bool element_covers(const std::string& t, const std::string& m) {
  return t == kWildcard || t == m;
}

/// Predicate half of step-level covering: every predicate of the coverer
/// must be implied by some predicate of the covered step (the covered step
/// is at least as constrained). Factored out so the interned fast paths
/// can pair it with the symbol-level element test.
inline bool step_predicates_cover(const Step& coverer, const Step& covered) {
  for (const Predicate& general : coverer.predicates) {
    bool implied = false;
    for (const Predicate& specific : covered.predicates) {
      if (predicate_implies(specific, general)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

/// Step-level covering: element test + predicate implication.
inline bool step_covers(const Step& coverer, const Step& covered) {
  return element_covers(coverer.name, covered.name) &&
         step_predicates_cover(coverer, covered);
}

}  // namespace xroute
