// The paper's recursive-advertisement matching algorithms (§3.3, Fig. 3).
//
// AbsExprAndSimRecAdv decides overlap between an absolute simple XPE and a
// simple-recursive advertisement a = a1(a2)+a3 by bounding the number of
// repetitions of a2 that can matter for a subscription of length |s| and
// testing each resulting expansion positionwise — O(n²) as the paper notes.
// The series/embedded variants recurse over the leading group.
//
// The exact automaton (AdvAutomaton) covers every shape and every XPE
// type; these literal algorithms exist for fidelity, as a fast path for
// the common shapes, and are cross-checked against the automaton in the
// property tests.
#pragma once

#include <string>
#include <vector>

#include "adv/advertisement.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// Paper Fig. 3: overlap of absolute simple XPE `s` with a1(a2)+a3.
/// `a2` must be non-empty; `a1`/`a3` may be empty.
bool abs_expr_and_sim_rec_adv(const std::vector<std::string>& a1,
                              const std::vector<std::string>& a2,
                              const std::vector<std::string>& a3, const Xpe& s);

/// Overlap of an absolute simple XPE with any advertisement whose groups
/// are flat and at the top level (simple or series shape): enumerates
/// repetition counts group-by-group, recursively (paper §3.3,
/// AbsExprAndSerRecAdv).
bool abs_expr_and_rec_adv(const Advertisement& a, const Xpe& s);

/// Full dispatcher used by the router's SRT: picks the cheapest exact
/// algorithm for the advertisement shape and XPE type (non-recursive
/// algorithms from adv_match.h, Fig. 3 family, or the automaton).
bool adv_overlaps(const Advertisement& a, const Xpe& s);

}  // namespace xroute
