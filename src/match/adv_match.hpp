// Matching of subscriptions against non-recursive advertisements
// (paper §3.2): decides P(a) ∩ P(s) ≠ ∅ for an advertisement
// a = /t1/.../tn (elements or wildcards, no '//') and an XPE s.
//
// All three algorithms are exact for this advertisement class:
//  * AbsExprAndAdv — absolute simple XPEs: positionwise overlap after the
//    length check (an XPE longer than the advertisement can never match,
//    because publications in P(a) have exactly the advertisement's length).
//  * RelExprAndAdv — relative simple XPEs: window search. The paper
//    suggests KMP; KMP shift tables are only sound here when neither side
//    contains wildcards (see DESIGN.md), so kKmpWhenSound applies KMP in
//    that case and falls back to the naive scan otherwise.
//  * DesExprAndAdv — XPEs with descendant operators: greedy earliest
//    embedding of the '//'-free segments (complete because positions are
//    constrained independently).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xpath/xpe.hpp"

namespace xroute {

/// Window-search strategy for RelExprAndAdv / RelSimCov. The paper
/// proposes KMP; our ablation (bench/ablation_micro) measures the naive
/// scan ~6x faster at the paper's length cap of 10 — the failure-table
/// setup (an allocation plus the table build) dominates at these sizes,
/// while the naive scan's worst case is only n·k element comparisons.
/// kAuto therefore picks the naive scan for patterns up to
/// kAutoKmpThreshold steps and KMP-when-sound above it, and is the
/// default everywhere (covers(), rel_sim_cov(), rel_expr_and_adv()).
enum class SearchStrategy : unsigned char {
  kNaive,         ///< O(n·k) scan, always sound
  kKmpWhenSound,  ///< KMP when provably sound for the relation, else naive
  kAuto,          ///< naive below kAutoKmpThreshold, kKmpWhenSound above
};

/// Pattern length at which kAuto switches from the naive scan to KMP.
/// Micro-benchmark (ablation_micro, RelExprAndAdv over the news corpus):
/// at the paper's cap of 10 steps the naive scan wins ~6x; the crossover
/// sits past the cap, so 16 keeps every paper workload on the fast path
/// while long synthetic expressions still get the O(n+k) guarantee.
inline constexpr std::size_t kAutoKmpThreshold = 16;

/// KMP substring search on element-name sequences under plain equality.
/// Exposed for the covering algorithms and the ablation bench.
bool kmp_contains(const std::vector<std::string>& text,
                  const std::vector<std::string>& pattern);

/// KMP on interned symbol sequences (util/symbols.hpp), plain equality.
bool kmp_contains(const std::vector<std::uint32_t>& text,
                  const std::vector<std::uint32_t>& pattern);

/// Paper's AbsExprAndAdv: `s` must be an absolute simple XPE.
bool abs_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s);

/// Paper's RelExprAndAdv: `s` must be a relative (or '//'-led) simple XPE,
/// i.e. a single floating segment.
bool rel_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s,
                      SearchStrategy strategy = SearchStrategy::kAuto);

/// Paper's DesExprAndAdv: XPEs containing descendant operators.
bool des_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s);

/// Dispatcher: routes `s` to the appropriate algorithm above.
bool nonrec_adv_overlaps(
    const std::vector<std::string>& adv, const Xpe& s,
    SearchStrategy strategy = SearchStrategy::kAuto);

// Interned twins: the advertisement's positions as dense symbol ids
// (Advertisement::flat_symbols()). Same results as the string versions —
// the SRT hot path uses these; the string forms remain the reference.
bool abs_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s);
bool rel_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s,
                      SearchStrategy strategy = SearchStrategy::kAuto);
bool des_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s);
bool nonrec_adv_overlaps(
    const std::vector<std::uint32_t>& adv, const Xpe& s,
    SearchStrategy strategy = SearchStrategy::kAuto);

}  // namespace xroute
