// Matching of subscriptions against non-recursive advertisements
// (paper §3.2): decides P(a) ∩ P(s) ≠ ∅ for an advertisement
// a = /t1/.../tn (elements or wildcards, no '//') and an XPE s.
//
// All three algorithms are exact for this advertisement class:
//  * AbsExprAndAdv — absolute simple XPEs: positionwise overlap after the
//    length check (an XPE longer than the advertisement can never match,
//    because publications in P(a) have exactly the advertisement's length).
//  * RelExprAndAdv — relative simple XPEs: window search. The paper
//    suggests KMP; KMP shift tables are only sound here when neither side
//    contains wildcards (see DESIGN.md), so kKmpWhenSound applies KMP in
//    that case and falls back to the naive scan otherwise.
//  * DesExprAndAdv — XPEs with descendant operators: greedy earliest
//    embedding of the '//'-free segments (complete because positions are
//    constrained independently).
#pragma once

#include <string>
#include <vector>

#include "xpath/xpe.hpp"

namespace xroute {

/// Window-search strategy for RelExprAndAdv / RelSimCov. The paper
/// proposes KMP; our ablation (bench/ablation_micro) measures the naive
/// scan ~6x faster at the paper's length cap of 10 — the failure-table
/// setup dominates at these sizes — so kNaive is the default and
/// kKmpWhenSound is kept for fidelity and for longer expressions.
enum class SearchStrategy : unsigned char {
  kNaive,         ///< O(n·k) scan, always sound
  kKmpWhenSound,  ///< KMP when provably sound for the relation, else naive
};

/// KMP substring search on element-name sequences under plain equality.
/// Exposed for the covering algorithms and the ablation bench.
bool kmp_contains(const std::vector<std::string>& text,
                  const std::vector<std::string>& pattern);

/// Paper's AbsExprAndAdv: `s` must be an absolute simple XPE.
bool abs_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s);

/// Paper's RelExprAndAdv: `s` must be a relative (or '//'-led) simple XPE,
/// i.e. a single floating segment.
bool rel_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s,
                      SearchStrategy strategy = SearchStrategy::kNaive);

/// Paper's DesExprAndAdv: XPEs containing descendant operators.
bool des_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s);

/// Dispatcher: routes `s` to the appropriate algorithm above.
bool nonrec_adv_overlaps(
    const std::vector<std::string>& adv, const Xpe& s,
    SearchStrategy strategy = SearchStrategy::kNaive);

}  // namespace xroute
