// YFilter-style shared-NFA matcher — the baseline system the paper's
// evaluation refers to (Diao, Altinel & Franklin, TODS 2003; paper §5:
// "the performance of non-covering-based routing ... has been evaluated
// against YFilter [10] in our previous work [16]").
//
// All queries compile into one NFA whose common prefixes are shared:
//   * a child step adds a labelled (or '*') transition,
//   * a descendant step routes through a self-loop state that consumes any
//     number of elements,
//   * a query's id is attached to the state its last step reaches; under
//     the prefix semantics a query matches as soon as that state activates.
//
// Predicates are handled by post-verification (YFilter's "selection
// postponed" flavour): structural acceptance first, then the full matcher
// re-checks the rare predicated queries.
//
// Exposed as an alternative publication-matching backend and benchmarked
// against the covering subscription tree in bench/baseline_yfilter.cpp,
// reproducing the paper's observation of a workload-dependent crossover.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

class YFilterIndex {
 public:
  YFilterIndex();

  /// Adds a query; returns its id (dense, starting at 0). Duplicate
  /// expressions get distinct ids (callers dedupe if they care).
  int add(const Xpe& xpe);

  /// Ids of all queries matching the path, ascending, deduplicated.
  std::vector<int> match(const Path& path) const;

  std::size_t size() const { return queries_.size(); }
  std::size_t state_count() const { return states_.size(); }
  const Xpe& query(int id) const { return queries_[static_cast<std::size_t>(id)]; }

 private:
  struct State {
    std::unordered_map<std::string, int> named;
    int star = -1;        ///< '*' transition target
    int descendant = -1;  ///< epsilon target with a self-loop (for '//')
    bool self_loop = false;
    std::vector<int> accepts;  ///< queries whose last step lands here
  };

  int new_state();
  /// The self-loop state reachable by epsilon from `from`.
  int descendant_of(int from);

  std::vector<State> states_;
  std::vector<Xpe> queries_;
  std::vector<bool> needs_verification_;  ///< query has predicates
};

}  // namespace xroute
