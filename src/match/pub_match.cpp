#include "match/pub_match.hpp"

#include "util/symbols.hpp"

namespace xroute {

namespace {

/// Evaluates a step's predicates against the path node's payload. A
/// predicate on a structural-only path (no annotations) fails: nothing is
/// known to satisfy it.
bool predicates_hold(const Step& step, const Path& p, std::size_t position) {
  if (step.predicates.empty()) return true;
  const PathNodeData* data = p.node_data(position);
  if (!data) return false;
  for (const Predicate& pred : step.predicates) {
    if (pred.target == Predicate::Target::kAttribute) {
      auto it = data->attributes.find(pred.name);
      if (it == data->attributes.end()) return false;
      if (pred.op != Predicate::Op::kExists &&
          !compare_values(it->second, pred.op, pred.value)) {
        return false;
      }
    } else {  // text()
      if (!compare_values(data->text, pred.op, pred.value)) return false;
    }
  }
  return true;
}

/// Does the '//'-free segment starting at step `first` (length `len`) of
/// `s` fit the path at offset `j`?
bool segment_fits(const Path& p, const Xpe& s, std::size_t first,
                  std::size_t len, std::size_t j) {
  if (j + len > p.size()) return false;
  for (std::size_t i = 0; i < len; ++i) {
    const Step& step = s.step(first + i);
    if (!step.is_wildcard() && step.name != p[j + i]) return false;
    if (!predicates_hold(step, p, j + i)) return false;
  }
  return true;
}

}  // namespace

bool matches(const Path& p, const Xpe& s) {
  if (s.empty()) return true;
  // Iterate the '//'-free segments in place (building the segment vector
  // allocates; this is the hottest function in the router).
  std::size_t pos = 0;
  std::size_t first = 0;
  const std::size_t n = s.size();
  while (first < n) {
    std::size_t last = first + 1;
    while (last < n && s.step(last).axis == Axis::kChild) ++last;
    const std::size_t length = last - first;
    const bool anchored = (first == 0 && s.step(0).axis == Axis::kChild);

    if (anchored) {
      if (!segment_fits(p, s, first, length, 0)) return false;
      pos = length;
    } else {
      // Floating segment: greedy earliest occurrence at or after `pos`.
      // Greedy is complete because the path is concrete — taking the
      // earliest occurrence only leaves more room for later segments.
      bool placed = false;
      for (std::size_t j = pos; j + length <= p.size(); ++j) {
        if (segment_fits(p, s, first, length, j)) {
          pos = j + length;
          placed = true;
          break;
        }
      }
      if (!placed) return false;
    }
    first = last;
  }
  return true;
}

namespace {

/// Interned twin of segment_fits, driven by the XPE's packed program
/// (Xpe::program()): the element test compares the word's low bits against
/// the path symbol, the axis and predicate facts ride in the top bits, and
/// the Step structs — heap strings, predicate vectors — are only touched
/// on the rare predicated step. One contiguous uint32 array per XPE is
/// what keeps the per-visited-entry cost at a handful of cycles instead of
/// a cache miss per step.
bool segment_fits(const PathView& p, const std::uint32_t* prog, const Xpe& s,
                  std::size_t first, std::size_t len, std::size_t j) {
  if (j + len > p.size()) return false;
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint32_t word = prog[first + i];
    const std::uint32_t sym = word & Xpe::kProgSymbolMask;
    if (sym != SymbolTable::kWildcardId && sym != p[j + i]) return false;
    if (word & Xpe::kProgPredicated) {
      if (!predicates_hold(s.step(first + i), *p.path, j + i)) return false;
    }
  }
  return true;
}

}  // namespace

bool matches(const PathView& p, const Xpe& s) {
  const std::vector<std::uint32_t>& program = s.program();
  return matches_program(p, program.data(), program.size(), s);
}

bool matches_program(const PathView& p, const std::uint32_t* prog,
                     std::size_t n, const Xpe& s) {
  if (n == 0) return true;
  std::size_t pos = 0;
  std::size_t first = 0;
  while (first < n) {
    std::size_t last = first + 1;
    while (last < n && !(prog[last] & Xpe::kProgDescendant)) ++last;
    const std::size_t length = last - first;
    const bool anchored = (first == 0 && !(prog[0] & Xpe::kProgDescendant));

    if (anchored) {
      if (!segment_fits(p, prog, s, first, length, 0)) return false;
      pos = length;
    } else {
      // Floating segment: greedy earliest occurrence at or after `pos`
      // (complete because the path is concrete).
      bool placed = false;
      for (std::size_t j = pos; j + length <= p.size(); ++j) {
        if (segment_fits(p, prog, s, first, length, j)) {
          pos = j + length;
          placed = true;
          break;
        }
      }
      if (!placed) return false;
    }
    first = last;
  }
  return true;
}

}  // namespace xroute
