#include "match/adv_match.hpp"

#include "match/rules.hpp"

namespace xroute {

namespace {

/// Resolves kAuto against the pattern length (see kAutoKmpThreshold).
SearchStrategy resolve(SearchStrategy strategy, std::size_t pattern_len) {
  if (strategy != SearchStrategy::kAuto) return strategy;
  return pattern_len >= kAutoKmpThreshold ? SearchStrategy::kKmpWhenSound
                                          : SearchStrategy::kNaive;
}

template <typename Elem>
bool kmp_contains_impl(const std::vector<Elem>& text,
                       const std::vector<Elem>& pattern) {
  if (pattern.empty()) return true;
  if (pattern.size() > text.size()) return false;
  // Failure function.
  std::vector<std::size_t> fail(pattern.size(), 0);
  for (std::size_t i = 1; i < pattern.size(); ++i) {
    std::size_t j = fail[i - 1];
    while (j > 0 && pattern[i] != pattern[j]) j = fail[j - 1];
    if (pattern[i] == pattern[j]) ++j;
    fail[i] = j;
  }
  // Scan.
  std::size_t j = 0;
  for (const Elem& t : text) {
    while (j > 0 && t != pattern[j]) j = fail[j - 1];
    if (t == pattern[j]) ++j;
    if (j == pattern.size()) return true;
  }
  return false;
}

}  // namespace

bool kmp_contains(const std::vector<std::string>& text,
                  const std::vector<std::string>& pattern) {
  return kmp_contains_impl(text, pattern);
}

bool kmp_contains(const std::vector<std::uint32_t>& text,
                  const std::vector<std::uint32_t>& pattern) {
  return kmp_contains_impl(text, pattern);
}

bool abs_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s) {
  // Publications in P(a) have exactly |adv| elements, so an XPE with more
  // steps cannot be satisfied (paper §3.2).
  if (s.size() > adv.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!elements_overlap(adv[i], s.step(i).name)) return false;
  }
  return true;
}

namespace {

bool window_overlaps(const std::vector<std::string>& adv, const Xpe& s,
                     std::size_t offset) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!elements_overlap(adv[offset + i], s.step(i).name)) return false;
  }
  return true;
}

bool any_wildcard(const std::vector<std::string>& v) {
  for (const std::string& e : v) {
    if (e == kWildcard) return true;
  }
  return false;
}

bool any_wildcard(const std::vector<std::uint32_t>& v) {
  for (std::uint32_t e : v) {
    if (e == SymbolTable::kWildcardId) return true;
  }
  return false;
}

}  // namespace

bool rel_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s,
                      SearchStrategy strategy) {
  if (s.size() > adv.size()) return false;
  if (resolve(strategy, s.size()) == SearchStrategy::kKmpWhenSound &&
      !s.has_wildcard() && !any_wildcard(adv)) {
    // With no wildcard on either side the overlap relation degenerates to
    // equality and KMP is an exact substring search.
    std::vector<std::string> pattern;
    pattern.reserve(s.size());
    for (const Step& step : s.steps()) pattern.push_back(step.name);
    return kmp_contains(adv, pattern);
  }
  for (std::size_t j = 0; j + s.size() <= adv.size(); ++j) {
    if (window_overlaps(adv, s, j)) return true;
  }
  return false;
}

bool des_expr_and_adv(const std::vector<std::string>& adv, const Xpe& s) {
  if (s.size() > adv.size()) return false;
  std::size_t pos = 0;
  for (const Segment& seg : s.segments()) {
    // Find the earliest window (at `pos` or later; exactly `pos` if the
    // segment is anchored) where every position overlaps.
    bool placed = false;
    for (std::size_t j = pos; j + seg.length <= adv.size(); ++j) {
      bool fits = true;
      for (std::size_t i = 0; i < seg.length; ++i) {
        if (!elements_overlap(adv[j + i], s.step(seg.first + i).name)) {
          fits = false;
          break;
        }
      }
      if (fits) {
        pos = j + seg.length;
        placed = true;
        break;
      }
      if (seg.anchored) break;  // anchored segment may only sit at pos 0
    }
    if (!placed) return false;
  }
  return true;
}

bool nonrec_adv_overlaps(const std::vector<std::string>& adv, const Xpe& s,
                         SearchStrategy strategy) {
  if (s.empty()) return true;
  if (s.is_absolute_simple()) return abs_expr_and_adv(adv, s);
  // A single floating segment is the "relative simple" case; everything
  // else contains a descendant operator in the middle.
  if (!s.anchored() && s.segments().size() == 1) {
    return rel_expr_and_adv(adv, s, strategy);
  }
  return des_expr_and_adv(adv, s);
}

// ---- Interned variants (SRT hot path) -------------------------------------

bool abs_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s) {
  if (s.size() > adv.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (!symbols_overlap(adv[i], s.symbol(i))) return false;
  }
  return true;
}

bool rel_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s,
                      SearchStrategy strategy) {
  if (s.size() > adv.size()) return false;
  if (resolve(strategy, s.size()) == SearchStrategy::kKmpWhenSound &&
      !s.has_wildcard() && !any_wildcard(adv)) {
    return kmp_contains(adv, s.symbols());
  }
  for (std::size_t j = 0; j + s.size() <= adv.size(); ++j) {
    bool fits = true;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!symbols_overlap(adv[j + i], s.symbol(i))) {
        fits = false;
        break;
      }
    }
    if (fits) return true;
  }
  return false;
}

bool des_expr_and_adv(const std::vector<std::uint32_t>& adv, const Xpe& s) {
  if (s.size() > adv.size()) return false;
  std::size_t pos = 0;
  for (const Segment& seg : s.segments()) {
    bool placed = false;
    for (std::size_t j = pos; j + seg.length <= adv.size(); ++j) {
      bool fits = true;
      for (std::size_t i = 0; i < seg.length; ++i) {
        if (!symbols_overlap(adv[j + i], s.symbol(seg.first + i))) {
          fits = false;
          break;
        }
      }
      if (fits) {
        pos = j + seg.length;
        placed = true;
        break;
      }
      if (seg.anchored) break;
    }
    if (!placed) return false;
  }
  return true;
}

bool nonrec_adv_overlaps(const std::vector<std::uint32_t>& adv, const Xpe& s,
                         SearchStrategy strategy) {
  if (s.empty()) return true;
  if (s.is_absolute_simple()) return abs_expr_and_adv(adv, s);
  if (!s.anchored() && s.segments().size() == 1) {
    return rel_expr_and_adv(adv, s, strategy);
  }
  return des_expr_and_adv(adv, s);
}

}  // namespace xroute
