#include "match/covering.hpp"

#include "match/rules.hpp"

namespace xroute {

namespace {

/// Step-level covering on the interned form: symbol test first (one
/// integer compare for the common predicate-free case), then predicate
/// implication on the underlying steps.
inline bool xstep_covers(const Xpe& s1, std::size_t i, const Xpe& s2,
                         std::size_t j) {
  return symbol_covers(s1.symbol(i), s2.symbol(j)) &&
         step_predicates_cover(s1.step(i), s2.step(j));
}

}  // namespace

bool abs_sim_cov(const Xpe& s1, const Xpe& s2) {
  // A longer (or equal-length, more constrained) expression selects a
  // smaller publication set; s1 must be a prefix-coverer of s2.
  if (s1.size() > s2.size()) return false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    if (!xstep_covers(s1, i, s2, i)) return false;
  }
  return true;
}

bool rel_sim_cov(const Xpe& s1, const Xpe& s2, SearchStrategy strategy) {
  if (s1.size() > s2.size()) return false;
  if (strategy != SearchStrategy::kNaive &&
      (strategy == SearchStrategy::kKmpWhenSound ||
       s1.size() >= kAutoKmpThreshold) &&
      !s1.has_wildcard() && !s1.has_predicates() && !s2.has_predicates()) {
    // With a wildcard-free coverer the covering rule is plain equality
    // ('*' on the covered side is never covered by a concrete name, i.e.
    // behaves as just another symbol), so KMP is exact.
    return kmp_contains(s2.symbols(), s1.symbols());
  }
  for (std::size_t j = 0; j + s1.size() <= s2.size(); ++j) {
    bool ok = true;
    for (std::size_t i = 0; i < s1.size(); ++i) {
      if (!xstep_covers(s1, i, s2, j + i)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

namespace {

/// Can segment `seg` of s1 be placed over s2's steps starting at `j`?
/// Implements the covering window rule including the paper's special case:
/// a '//' boundary inside the window may only be crossed if every
/// remaining position of the segment is a wildcard (wildcards cover both
/// the gap elements the boundary implies and any constrained positions
/// they spill onto).
bool segment_placeable(const Xpe& s1, const Segment& seg, const Xpe& s2,
                       std::size_t j) {
  if (j + seg.length > s2.size()) return false;
  for (std::size_t i = 0; i < seg.length; ++i) {
    const std::size_t q = j + i;
    if (i >= 1 && s2.step(q).axis == Axis::kDescendant) {
      // Boundary crossing: the rest of the segment must be unconstrained
      // wildcards (a predicated wildcard does not match arbitrary gap
      // elements).
      for (std::size_t r = i; r < seg.length; ++r) {
        if (s1.symbol(seg.first + r) != SymbolTable::kWildcardId ||
            !s1.step(seg.first + r).predicates.empty()) {
          return false;
        }
      }
      return true;
    }
    if (!xstep_covers(s1, seg.first + i, s2, q)) {
      return false;
    }
  }
  return true;
}

/// Backtracking placement of s1's segments (from `seg_index` on) over s2's
/// steps at positions >= min_pos.
bool place_segments(const Xpe& s1, const std::vector<Segment>& segs,
                    std::size_t seg_index, const Xpe& s2,
                    std::size_t min_pos) {
  if (seg_index == segs.size()) return true;
  const Segment& seg = segs[seg_index];
  if (seg.anchored) {
    // Only the first segment of an anchored s1 is anchored: it must sit at
    // the very start of (an equally anchored) s2.
    return segment_placeable(s1, seg, s2, 0) &&
           place_segments(s1, segs, seg_index + 1, s2, seg.length);
  }
  for (std::size_t j = min_pos; j + seg.length <= s2.size(); ++j) {
    if (segment_placeable(s1, seg, s2, j) &&
        place_segments(s1, segs, seg_index + 1, s2, j + seg.length)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool des_cov(const Xpe& s1, const Xpe& s2) {
  if (s1.anchored() && !s2.anchored()) return false;
  if (s1.size() > s2.size()) return false;
  return place_segments(s1, s1.segments(), 0, s2, 0);
}

bool covers(const Xpe& s1, const Xpe& s2, SearchStrategy strategy) {
  if (s1.empty() || s2.empty()) return false;
  if (s1.anchored() && !s2.anchored()) {
    // An anchored coverer constrains the root; a floating expression does
    // not, so its publication set cannot be contained (paper §4.2).
    return false;
  }
  // "Simple" = a single '//'-free run of steps (a leading '//' or relative
  // start only floats the run; windows inside the expression stay
  // contiguous, so the simple algorithms apply).
  auto single_segment = [](const Xpe& x) {
    for (std::size_t i = 1; i < x.size(); ++i) {
      if (x.step(i).axis == Axis::kDescendant) return false;
    }
    return true;
  };
  const bool s1_simple = single_segment(s1);
  const bool s2_simple = single_segment(s2);
  if (s1_simple && s2_simple) {
    if (s1.anchored()) return abs_sim_cov(s1, s2);  // s2 anchored (checked)
    return rel_sim_cov(s1, s2, strategy);
  }
  return des_cov(s1, s2);
}

bool adv_covers(const std::vector<std::string>& a1,
                const std::vector<std::string>& a2) {
  // Advertised publications have exactly the advertisement's length, so
  // containment is only possible between equal-length advertisements.
  if (a1.size() != a2.size()) return false;
  for (std::size_t i = 0; i < a1.size(); ++i) {
    if (!element_covers(a1[i], a2[i])) return false;
  }
  return true;
}

}  // namespace xroute
