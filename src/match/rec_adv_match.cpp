#include "match/rec_adv_match.hpp"

#include <algorithm>

#include "match/adv_automaton.hpp"
#include "match/adv_match.hpp"
#include "match/rules.hpp"

namespace xroute {

bool abs_expr_and_sim_rec_adv(const std::vector<std::string>& a1,
                              const std::vector<std::string>& a2,
                              const std::vector<std::string>& a3,
                              const Xpe& s) {
  const std::size_t n1 = a1.size(), n2 = a2.size(), n3 = a3.size();
  const std::size_t k = s.size();
  if (n2 == 0) return abs_expr_and_adv(a1, s);  // degenerate

  // Position i of the expansion a1 a2^r a3.
  auto element_at = [&](std::size_t r, std::size_t i) -> const std::string& {
    if (i < n1) return a1[i];
    if (i < n1 + r * n2) return a2[(i - n1) % n2];
    return a3[i - n1 - r * n2];
  };

  // Once n1 + r*n2 >= k the first k positions no longer depend on r, so
  // trying r beyond that point is pointless (paper Fig. 3 lines 4-6 bound
  // the repetition count the same way).
  std::size_t r_max = 1;
  if (k > n1) r_max = std::max<std::size_t>(1, (k - n1 + n2 - 1) / n2);

  for (std::size_t r = 1; r <= r_max; ++r) {
    const std::size_t length = n1 + r * n2 + n3;
    if (length < k) continue;  // publications of this expansion are too short
    bool ok = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!elements_overlap(element_at(r, i), s.step(i).name)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

namespace {

std::size_t max_group_body_length(const std::vector<AdvNode>& nodes) {
  std::size_t best = 0;
  for (const AdvNode& n : nodes) {
    if (n.kind == AdvNode::Kind::kGroup) {
      std::size_t body = 0;
      for (const AdvNode& c : n.children) {
        body += (c.kind == AdvNode::Kind::kElement)
                    ? 1
                    : max_group_body_length({c});
      }
      best = std::max({best, body, max_group_body_length(n.children)});
    }
  }
  return best;
}

}  // namespace

bool abs_expr_and_rec_adv(const Advertisement& a, const Xpe& s) {
  // "The matching determines how many times the first recursive pattern
  // could be repeated, and ... tries all possible advertisement formats"
  // (paper §3.3). Any witness expansion can be trimmed so its length is
  // below |s| + 2·(largest group body) + min_length, so enumerating up to
  // that bound is exact.
  const std::size_t bound =
      s.size() + 2 * std::max<std::size_t>(1, max_group_body_length(a.nodes())) +
      a.min_length();
  for (const auto& expansion : a.expansions(bound)) {
    if (expansion.size() < s.size()) continue;
    bool ok = true;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!elements_overlap(expansion[i], s.step(i).name)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool adv_overlaps(const Advertisement& a, const Xpe& s) {
  if (a.non_recursive()) {
    return nonrec_adv_overlaps(a.flat_elements(), s);
  }
  if (s.is_absolute_simple() &&
      a.shape() == Advertisement::Shape::kSimpleRecursive) {
    // Fast literal path for the paper's main case.
    std::vector<std::string> a1, a2, a3;
    std::vector<std::string>* part = &a1;
    for (const AdvNode& n : a.nodes()) {
      if (n.kind == AdvNode::Kind::kGroup) {
        for (const AdvNode& c : n.children) a2.push_back(c.name);
        part = &a3;
      } else {
        part->push_back(n.name);
      }
    }
    return abs_expr_and_sim_rec_adv(a1, a2, a3, s);
  }
  return AdvAutomaton(a).overlaps(s);
}

}  // namespace xroute
