// Exact matcher for arbitrary (possibly recursive) advertisements.
//
// An advertisement with one-or-more groups denotes a regular language of
// element paths. Compiling it to a small NFA gives exact answers for
//  * overlap with any XPE in the {/, //, *} fragment (product-reachability
//    between the advertisement NFA and the XPE's step automaton), and
//  * membership of a concrete path in P(a) (plain NFA simulation).
//
// This generalises the paper's AbsExprAndSimRecAdv / SerRecAdv / EmbRecAdv
// family to every group shape and every XPE type; the literal Fig. 3
// algorithm lives in rec_adv_match.* and is cross-checked against this one
// in the tests.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "adv/advertisement.hpp"
#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

class AdvAutomaton {
 public:
  explicit AdvAutomaton(const Advertisement& a);

  /// P(a) ∩ P(s) ≠ ∅ — exact for every XPE in the supported fragment.
  bool overlaps(const Xpe& s) const;

  /// p ∈ P(a): the path instantiates some complete expansion (same length,
  /// positionwise wildcard-compatible).
  bool accepts_path(const Path& p) const;

  std::size_t state_count() const { return labeled_.size(); }

 private:
  int new_state();
  int compile(const std::vector<AdvNode>& nodes, int from);
  std::vector<int> closure(const std::vector<int>& states) const;

  /// labeled_[q] = list of (element-or-wildcard label, target state).
  std::vector<std::vector<std::pair<std::string, int>>> labeled_;
  /// eps_[q] = epsilon targets (group repetition back-edges).
  std::vector<std::vector<int>> eps_;
  int start_ = 0;
  int accept_ = 0;
  /// can_reach_accept_[q]: accept reachable from q via any edges. Used for
  /// prefix semantics: once the XPE is fully embedded, the advertisement
  /// may finish its expansion with unconstrained positions.
  std::vector<bool> can_reach_accept_;
};

}  // namespace xroute
