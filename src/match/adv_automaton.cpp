#include "match/adv_automaton.hpp"

#include <set>

#include "match/rules.hpp"

namespace xroute {

int AdvAutomaton::new_state() {
  labeled_.emplace_back();
  eps_.emplace_back();
  return static_cast<int>(labeled_.size()) - 1;
}

int AdvAutomaton::compile(const std::vector<AdvNode>& nodes, int from) {
  int current = from;
  for (const AdvNode& node : nodes) {
    if (node.kind == AdvNode::Kind::kElement) {
      int next = new_state();
      labeled_[current].emplace_back(node.name, next);
      current = next;
    } else {
      int entry = current;
      int exit = compile(node.children, entry);
      // One-or-more: after a full traversal of the group body, loop back
      // for another repetition or continue past the group.
      eps_[exit].push_back(entry);
      current = exit;
    }
  }
  return current;
}

AdvAutomaton::AdvAutomaton(const Advertisement& a) {
  start_ = new_state();
  accept_ = compile(a.nodes(), start_);

  // Reverse reachability to accept over all edges.
  std::vector<std::vector<int>> reverse(labeled_.size());
  for (std::size_t q = 0; q < labeled_.size(); ++q) {
    for (const auto& [label, to] : labeled_[q]) {
      (void)label;
      reverse[to].push_back(static_cast<int>(q));
    }
    for (int to : eps_[q]) reverse[to].push_back(static_cast<int>(q));
  }
  can_reach_accept_.assign(labeled_.size(), false);
  std::vector<int> frontier{accept_};
  can_reach_accept_[accept_] = true;
  while (!frontier.empty()) {
    int q = frontier.back();
    frontier.pop_back();
    for (int p : reverse[q]) {
      if (!can_reach_accept_[p]) {
        can_reach_accept_[p] = true;
        frontier.push_back(p);
      }
    }
  }
}

std::vector<int> AdvAutomaton::closure(const std::vector<int>& states) const {
  std::vector<bool> seen(labeled_.size(), false);
  std::vector<int> out;
  std::vector<int> frontier;
  for (int q : states) {
    if (!seen[q]) {
      seen[q] = true;
      out.push_back(q);
      frontier.push_back(q);
    }
  }
  while (!frontier.empty()) {
    int q = frontier.back();
    frontier.pop_back();
    for (int to : eps_[q]) {
      if (!seen[to]) {
        seen[to] = true;
        out.push_back(to);
        frontier.push_back(to);
      }
    }
  }
  return out;
}

bool AdvAutomaton::overlaps(const Xpe& s) const {
  const std::size_t k = s.size();
  // Product states (q, i): advertisement NFA state q, i = XPE steps already
  // embedded. Success when i == k and accept is reachable from q (the
  // remaining expansion positions are unconstrained under prefix
  // semantics).
  std::set<std::pair<int, std::size_t>> visited;
  std::vector<std::pair<int, std::size_t>> frontier;

  auto push = [&](int q, std::size_t i) {
    if (visited.emplace(q, i).second) frontier.emplace_back(q, i);
  };
  for (int q : closure({start_})) push(q, 0);

  while (!frontier.empty()) {
    auto [q, i] = frontier.back();
    frontier.pop_back();
    if (i == k) {
      if (can_reach_accept_[q]) return true;
      continue;
    }
    const Step& step = s.step(i);
    for (const auto& [label, to] : labeled_[q]) {
      if (step.axis == Axis::kDescendant) {
        // The descendant operator may skip this expansion position.
        for (int c : closure({to})) push(c, i);
      }
      if (elements_overlap(label, step.name)) {
        for (int c : closure({to})) push(c, i + 1);
      }
    }
  }
  return false;
}

bool AdvAutomaton::accepts_path(const Path& p) const {
  std::vector<int> current = closure({start_});
  for (const std::string& element : p.elements) {
    std::vector<int> next;
    std::vector<bool> seen(labeled_.size(), false);
    for (int q : current) {
      for (const auto& [label, to] : labeled_[q]) {
        if ((label == kWildcard || label == element) && !seen[to]) {
          seen[to] = true;
          next.push_back(to);
        }
      }
    }
    if (next.empty()) return false;
    current = closure(next);
  }
  for (int q : current) {
    if (q == accept_) return true;
  }
  return false;
}

}  // namespace xroute
