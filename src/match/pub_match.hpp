// Publication-vs-subscription matching: does a concrete root-to-leaf path
// satisfy an XPE?
//
// Semantics: the XPE's steps embed into the path — a child step consumes
// the immediately next position, a descendant step may first skip any
// number of positions, '*' matches any element. Standard XPath
// node-selection ("prefix") semantics: the XPE need not consume the whole
// path. An anchored XPE ("/a…") must start at the root.
#pragma once

#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// True if path `p` matches subscription `s`. Exact (greedy segment
/// embedding, which is complete because the path is concrete).
bool matches(const Path& p, const Xpe& s);

/// Interned fast path: same relation, but element tests compare dense
/// symbol ids (util/symbols.hpp) instead of strings. Intern the path once
/// per routing decision and amortise over every table entry visited. Kept
/// as a separate implementation so the string version above remains the
/// byte-for-byte pre-optimisation reference for differential tests and
/// the perf_routing baseline. PathView is the kernel signature so callers
/// can feed symbols from reusable scratch storage (zero allocation).
bool matches(const PathView& p, const Xpe& s);

/// Raw-program kernel: same relation as matches(PathView, Xpe), but driven
/// by a borrowed span of Xpe::program() words that need not live inside
/// `s` itself. The subscription-tree root index serialises every root
/// bucket's programs into one contiguous word stream and scans it with
/// this function, so the dominant case — a root test that fails — touches
/// only sequential memory instead of chasing Node → Xpe → program_ per
/// entry. `s` is consulted only for predicate evaluation (rare).
bool matches_program(const PathView& p, const std::uint32_t* prog,
                     std::size_t n, const Xpe& s);

inline bool matches(const InternedPath& p, const Xpe& s) {
  return matches(p.view(), s);
}

}  // namespace xroute
