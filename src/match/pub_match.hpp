// Publication-vs-subscription matching: does a concrete root-to-leaf path
// satisfy an XPE?
//
// Semantics: the XPE's steps embed into the path — a child step consumes
// the immediately next position, a descendant step may first skip any
// number of positions, '*' matches any element. Standard XPath
// node-selection ("prefix") semantics: the XPE need not consume the whole
// path. An anchored XPE ("/a…") must start at the root.
#pragma once

#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// True if path `p` matches subscription `s`. Exact (greedy segment
/// embedding, which is complete because the path is concrete).
bool matches(const Path& p, const Xpe& s);

/// Interned fast path: same relation, but element tests compare dense
/// symbol ids (util/symbols.hpp) instead of strings. Intern the path once
/// per routing decision and amortise over every table entry visited. Kept
/// as a separate implementation so the string version above remains the
/// byte-for-byte pre-optimisation reference for differential tests and
/// the perf_routing baseline.
bool matches(const InternedPath& p, const Xpe& s);

}  // namespace xroute
