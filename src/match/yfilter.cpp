#include "match/yfilter.hpp"

#include <algorithm>

#include "match/pub_match.hpp"

namespace xroute {

YFilterIndex::YFilterIndex() { new_state(); /* state 0 = root */ }

int YFilterIndex::new_state() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

int YFilterIndex::descendant_of(int from) {
  if (states_[from].descendant == -1) {
    int d = new_state();
    states_[d].self_loop = true;
    states_[from].descendant = d;
  }
  return states_[from].descendant;
}

int YFilterIndex::add(const Xpe& xpe) {
  int id = static_cast<int>(queries_.size());
  queries_.push_back(xpe);
  needs_verification_.push_back(xpe.has_predicates());

  int current = 0;
  for (const Step& step : xpe.steps()) {
    if (step.axis == Axis::kDescendant) current = descendant_of(current);
    if (step.is_wildcard()) {
      if (states_[current].star == -1) {
        int t = new_state();
        states_[current].star = t;
      }
      current = states_[current].star;
    } else {
      auto [it, inserted] = states_[current].named.emplace(step.name, -1);
      if (inserted || it->second == -1) it->second = new_state();
      current = it->second;
    }
  }
  states_[current].accepts.push_back(id);
  return id;
}

std::vector<int> YFilterIndex::match(const Path& path) const {
  std::vector<bool> matched(queries_.size(), false);
  std::vector<int> out;

  // Active-set NFA simulation. The epsilon closure pulls in each active
  // state's descendant self-loop state.
  std::vector<int> active;
  std::vector<bool> in_active(states_.size(), false);
  auto activate = [&](int s, auto&& self) -> void {
    if (in_active[s]) return;
    in_active[s] = true;
    active.push_back(s);
    if (states_[s].descendant != -1) self(states_[s].descendant, self);
  };
  activate(0, activate);

  auto accept = [&](int s) {
    for (int id : states_[s].accepts) {
      if (matched[id]) continue;
      if (needs_verification_[id] &&
          !matches(path, queries_[static_cast<std::size_t>(id)])) {
        continue;  // structural hit, predicates fail
      }
      matched[id] = true;
      out.push_back(id);
    }
  };

  for (const std::string& element : path.elements) {
    std::vector<int> next;
    std::vector<bool> in_next(states_.size(), false);
    auto push = [&](int s, auto&& self) -> void {
      if (in_next[s]) return;
      in_next[s] = true;
      next.push_back(s);
      accept(s);
      if (states_[s].descendant != -1) self(states_[s].descendant, self);
    };
    for (int s : active) {
      const State& state = states_[s];
      if (state.self_loop) push(s, push);
      auto it = state.named.find(element);
      if (it != state.named.end()) push(it->second, push);
      if (state.star != -1) push(state.star, push);
    }
    active = std::move(next);
    in_active = std::move(in_next);
    if (active.empty()) break;
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xroute
