#include "workload/dtd_corpus.hpp"

#include <stdexcept>

#include "dtd/parser.hpp"

namespace xroute {

namespace {

// NEWS: a NITF-like news mark-up DTD. Recursive through the self-nesting
// `block` container (NITF's block can contain block). Rich, shared inline
// and flow content multiplies the number of distinct root-to-leaf paths,
// giving a large derived-advertisement set.
const char kNewsDtd[] = R"DTD(
<!-- NEWS: synthetic NITF-like DTD (see workload/dtd_corpus.h) -->
<!ELEMENT news (head, body)>

<!ELEMENT head (title, meta*, tobject?, docdata, pubdata*, revision?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT tobject (tobject.property*, tobject.subject*)>
<!ELEMENT tobject.property EMPTY>
<!ELEMENT tobject.subject EMPTY>
<!ELEMENT docdata (doc-id, urgency?, fixture?, date.issue, date.release?,
                   date.expire?, doc-scope*, ed-msg?, du-key?,
                   doc.copyright?, doc.rights?, key-list?,
                   identified-content?)>
<!ELEMENT doc-id EMPTY>
<!ELEMENT urgency (#PCDATA)>
<!ATTLIST urgency level (flash | urgent | routine) #REQUIRED>
<!ELEMENT fixture EMPTY>
<!ELEMENT date.issue (#PCDATA)>
<!ELEMENT date.release (#PCDATA)>
<!ELEMENT date.expire (#PCDATA)>
<!ELEMENT doc-scope (#PCDATA)>
<!ELEMENT ed-msg (#PCDATA)>
<!ELEMENT du-key (#PCDATA)>
<!ELEMENT doc.copyright (#PCDATA)>
<!ELEMENT doc.rights (#PCDATA)>
<!ELEMENT key-list (keyword*)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT identified-content (classifier | location | person | org | event)*>
<!ELEMENT classifier (#PCDATA)>
<!ELEMENT org (#PCDATA)>
<!ELEMENT event (#PCDATA)>
<!ELEMENT pubdata EMPTY>
<!ELEMENT revision (#PCDATA)>

<!ELEMENT body (body.head?, body.content, body.end?)>
<!ELEMENT body.head (hedline?, note*, rights?, byline*, distributor?,
                     dateline*, abstract?)>
<!ELEMENT hedline (hl1, hl2*)>
<!ELEMENT hl1 (#PCDATA)>
<!ELEMENT hl2 (#PCDATA)>
<!ELEMENT note (p | ul | ol | table | media)*>
<!ELEMENT rights (#PCDATA)>
<!ELEMENT byline (person?, byttl?, location?)>
<!ELEMENT person (#PCDATA)>
<!ELEMENT byttl (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT distributor (#PCDATA)>
<!ELEMENT dateline (location?, story.date?)>
<!ELEMENT story.date (#PCDATA)>
<!ELEMENT abstract (p | block)*>

<!ELEMENT body.content (block | sidebar)*>
<!ELEMENT sidebar (p | block | media | ul)*>
<!-- The recursion: a block may contain further blocks, as NITF's does. -->
<!ELEMENT block (p | hl2 | ul | ol | dl | table | media | note | bq | fn |
                 pre | block)*>
<!ATTLIST block style CDATA #IMPLIED>
<!ELEMENT bq (p | credit)*>
<!ELEMENT credit (#PCDATA)>
<!ELEMENT fn (p)*>
<!ELEMENT pre (#PCDATA)>
<!ELEMENT p (#PCDATA | em | strong | a | q | sub | sup | abbr | cite |
             code | span)*>
<!ELEMENT abbr (#PCDATA)>
<!ELEMENT cite (#PCDATA)>
<!ELEMENT code (#PCDATA)>
<!ELEMENT span (#PCDATA)>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT q (#PCDATA)>
<!ELEMENT sub (#PCDATA)>
<!ELEMENT sup (#PCDATA)>
<!ELEMENT ul (li)+>
<!ELEMENT ol (li)+>
<!ELEMENT li (#PCDATA | p | em)*>
<!ELEMENT dl (dt | dd)+>
<!ELEMENT dt (#PCDATA)>
<!ELEMENT dd (#PCDATA | p)*>
<!ELEMENT table (caption?, tr+)>
<!ELEMENT caption (#PCDATA | em)*>
<!ELEMENT tr (th | td)+>
<!ELEMENT th (#PCDATA | em | strong)*>
<!ELEMENT td (#PCDATA | em | strong)*>
<!ELEMENT media (media-metadata*, media-reference+, media-caption*,
                 media-producer?)>
<!ATTLIST media type (photo | video | audio | graphic) #REQUIRED
                width CDATA #IMPLIED>
<!ELEMENT media-metadata EMPTY>
<!ELEMENT media-reference (#PCDATA)>
<!ELEMENT media-caption (#PCDATA | em)*>
<!ELEMENT media-producer (#PCDATA)>

<!ELEMENT body.end (tagline?, bibliography?, block*)>
<!ELEMENT tagline (#PCDATA | em)*>
<!ELEMENT bibliography (#PCDATA)>
)DTD";

// PSD: a protein-sequence-database-like DTD. Non-recursive, deep-ish,
// with a small set of root-to-leaf paths.
const char kPsdDtd[] = R"DTD(
<!-- PSD: synthetic Protein Sequence Database-like DTD -->
<!ELEMENT ProteinDatabase (ProteinEntry)+>
<!ELEMENT ProteinEntry (header, protein, organism, reference*, genetics?,
                        classification?, keywords?, feature*, annotation*,
                        summary, sequence)>
<!ELEMENT header (uid, accession+, created?, seq-rev?)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created (#PCDATA)>
<!ELEMENT seq-rev (#PCDATA)>
<!ELEMENT protein (name, name-class?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT name-class (#PCDATA)>
<!ELEMENT organism (source, common?, formal?)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo?)>
<!ELEMENT refinfo (authors, citation, volume?, year)>
<!ELEMENT authors (author)+>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT accinfo (mol-type?, label?)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT genetics (gene*, codon?)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT codon (#PCDATA)>
<!ELEMENT classification (superfamily)*>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT keywords (keyword)*>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (seq-spec, description?)>
<!ELEMENT annotation (site | region | domain | motif | ptm | variant |
                      conflict | signal | transit | binding)>
<!ATTLIST annotation status (experimental | predicted) #REQUIRED
                     position CDATA #IMPLIED>
<!ELEMENT site (#PCDATA)><!ELEMENT region (#PCDATA)>
<!ELEMENT domain (#PCDATA)><!ELEMENT motif (#PCDATA)>
<!ELEMENT ptm (#PCDATA)><!ELEMENT variant (#PCDATA)>
<!ELEMENT conflict (#PCDATA)><!ELEMENT signal (#PCDATA)>
<!ELEMENT transit (#PCDATA)><!ELEMENT binding (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
<!ATTLIST sequence length CDATA #REQUIRED>
)DTD";

}  // namespace

const std::string& news_dtd_text() {
  static const std::string text(kNewsDtd);
  return text;
}

const std::string& psd_dtd_text() {
  static const std::string text(kPsdDtd);
  return text;
}

Dtd news_dtd() {
  Dtd dtd = parse_dtd(news_dtd_text());
  dtd.set_root("news");
  return dtd;
}

Dtd psd_dtd() {
  Dtd dtd = parse_dtd(psd_dtd_text());
  dtd.set_root("ProteinDatabase");
  return dtd;
}

Dtd corpus_dtd(const std::string& name) {
  if (name == "news") return news_dtd();
  if (name == "psd") return psd_dtd();
  throw std::invalid_argument("unknown corpus DTD: " + name +
                              " (expected 'news' or 'psd')");
}

}  // namespace xroute
