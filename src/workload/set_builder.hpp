// Covering-rate-controlled XPE set construction (paper §5, Sets A and B).
//
// The paper tunes W (wildcard probability) and DO ('//' probability) until
// the generated NITF query sets exhibit 90% (Set A) and 50% (Set B)
// covering rates at 100,000 distinct queries. Hitting a *target* rate that
// way requires the query space to dwarf the set size; our corpus DTDs are
// smaller than NITF, so dense sampling saturates toward 100%. This builder
// reproduces the paper's independent variable — the covering rate —
// directly: it grows *generalisation chains* over concrete root-to-leaf
// paths (each step wildcards one position or widens one '/' to '//'),
// where a chain of length m contributes m-1 covered queries and exactly
// one uncovered maximum. Chains on the same path draw their operations
// from disjoint position pools, keeping chain maxima mutually
// incomparable. Every covering claimed by construction is re-verified with
// the sound covers() algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "dtd/dtd.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

struct CoverSetOptions {
  std::size_t count = 10000;
  /// Desired fraction of queries covered by another in the set
  /// (0.9 = the paper's Set A, 0.5 = Set B).
  double target_rate = 0.5;
  std::size_t max_length = 10;  // the paper's cap
  std::uint64_t seed = 1;
};

struct CoverSet {
  std::vector<Xpe> xpes;
  /// Rate implied by construction (covered members / size).
  double constructed_rate = 0.0;
};

/// Builds a distinct XPE set with (approximately) the target covering
/// rate. Returns fewer than `count` queries only if the DTD's path space
/// cannot support the requested uncovered quota.
CoverSet build_covering_set(const Dtd& dtd, const CoverSetOptions& options);

}  // namespace xroute
