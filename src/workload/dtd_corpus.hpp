// Bundled corpus DTDs.
//
// The paper experiments with the NITF (News Industry Text Format) DTD —
// recursive, with a large derived-advertisement set — and the PSD (Protein
// Sequence Database) DTD — non-recursive, small advertisement set, deep
// paths. Both originals are third-party artefacts; the corpus bundles
// synthetic stand-ins, NEWS and PSD, engineered to preserve the structural
// properties the experiments depend on: NEWS is recursive (self-nesting
// `block` containers, like NITF) and derives an advertisement set well
// over an order of magnitude larger than PSD's (the paper reports ~35x).
#pragma once

#include <string>

#include "dtd/dtd.hpp"

namespace xroute {

const std::string& news_dtd_text();
const std::string& psd_dtd_text();

/// Parsed corpus DTDs (root element set).
Dtd news_dtd();
Dtd psd_dtd();

/// Convenience: corpus lookup by name ("news" | "psd"); throws
/// std::invalid_argument otherwise.
Dtd corpus_dtd(const std::string& name);

}  // namespace xroute
