#include "workload/dtd_gen.hpp"

#include <string>
#include <vector>

namespace xroute {

namespace {

std::string element_name(std::size_t i) { return "e" + std::to_string(i); }

}  // namespace

Dtd generate_random_dtd(Rng& rng, const DtdGenOptions& options) {
  const std::size_t n = std::max<std::size_t>(2, options.elements);
  Dtd dtd;

  // Layered construction: element i may reference only elements j > i
  // (guaranteeing reachable leaves and finite minimal depth), plus
  // optional self-references wrapped in a zero-or-more choice (clean
  // recursion) and optional i+1 -> i back references (mutual 2-cycles).
  for (std::size_t i = 0; i < n; ++i) {
    ElementDecl decl;
    decl.name = element_name(i);

    const bool is_leaf = i + 1 >= n || (i > 0 && rng.chance(0.25));
    if (is_leaf) {
      ContentParticle content;
      content.kind = rng.chance(0.5) ? ContentParticle::Kind::kPcdata
                                     : ContentParticle::Kind::kEmpty;
      decl.content = content;
      dtd.add(std::move(decl));
      continue;
    }

    std::size_t child_count =
        1 + rng.index(std::min(options.max_children, n - i - 1));
    std::vector<ContentParticle> kids;
    for (std::size_t c = 0; c < child_count; ++c) {
      std::size_t target = i + 1 + rng.index(n - i - 1);
      Occurrence occ;
      switch (rng.index(4)) {
        case 0: occ = Occurrence::kOne; break;
        case 1: occ = Occurrence::kOptional; break;
        case 2: occ = Occurrence::kZeroOrMore; break;
        default: occ = Occurrence::kOneOrMore; break;
      }
      kids.push_back(ContentParticle::element(element_name(target), occ));
    }
    if (rng.chance(options.self_recursion_prob)) {
      // Self reference; kZeroOrMore keeps the minimal expansion finite.
      kids.push_back(ContentParticle::element(element_name(i),
                                              Occurrence::kZeroOrMore));
    }
    if (i > 0 && rng.chance(options.mutual_recursion_prob)) {
      kids.push_back(ContentParticle::element(element_name(i - 1),
                                              Occurrence::kZeroOrMore));
    }

    auto kind = rng.chance(options.choice_prob)
                    ? ContentParticle::Kind::kChoice
                    : ContentParticle::Kind::kSequence;
    // Choices need a terminating alternative; make the whole group
    // repeatable-or-absent half of the time so may_be_childless varies.
    Occurrence group_occ =
        rng.chance(0.5) ? Occurrence::kZeroOrMore : Occurrence::kOne;
    if (kind == ContentParticle::Kind::kChoice &&
        group_occ == Occurrence::kOne) {
      // Guarantee finiteness: ensure at least one alternative terminates
      // (references only later elements — true by construction) — nothing
      // more needed; choices pick one child.
    }
    decl.content = ContentParticle::group(kind, std::move(kids), group_occ);
    dtd.add(std::move(decl));
  }

  // Random attribute declarations.
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.chance(options.attribute_prob)) continue;
    std::vector<AttributeDecl> attributes;
    std::size_t count = 1 + rng.index(2);
    for (std::size_t a = 0; a < count; ++a) {
      AttributeDecl attribute;
      attribute.name = "a" + std::to_string(a);
      attribute.required = rng.chance(0.5);
      if (rng.chance(0.5)) {
        std::size_t values = 2 + rng.index(3);
        for (std::size_t v = 0; v < values; ++v) {
          attribute.enumeration.push_back("v" + std::to_string(v));
        }
      }
      attributes.push_back(std::move(attribute));
    }
    dtd.add_attributes(element_name(i), std::move(attributes));
  }

  dtd.set_root(element_name(0));
  return dtd;
}

}  // namespace xroute
