// DTD-driven XML document generator.
//
// Models the IBM XML Generator the paper uses: stochastic expansion of the
// DTD's content models with a cap on nesting depth (the paper sets 10
// levels, matching the XPE length cap). Optionally pads character data to
// reach a target serialized size, for the document-size delay experiments
// (paper Figs. 10/11: 2K-40K documents).
#pragma once

#include <cstdint>

#include "dtd/dtd.hpp"
#include "util/rng.hpp"
#include "xml/document.hpp"

namespace xroute {

struct XmlGenOptions {
  /// Maximum element nesting depth; at the cap, expansion switches to the
  /// minimal-depth instantiation of each content model.
  std::size_t max_levels = 10;
  /// Probability an optional ('?') particle is instantiated.
  double optional_prob = 0.5;
  /// Geometric continuation probability for '*' and '+' repetitions.
  double more_prob = 0.35;
  /// Hard cap on repetitions of one particle.
  std::size_t max_repeats = 3;
  /// If non-zero, pad character data until serialize() is at least this
  /// many bytes.
  std::size_t target_bytes = 0;
};

/// Generates one document conforming to `dtd` (element structure; character
/// data is filler).
XmlDocument generate_document(const Dtd& dtd, Rng& rng,
                              const XmlGenOptions& options = {});

/// Minimal achievable subtree depth of `element` under `dtd` (1 = the
/// element itself can be a leaf). Used by the generator's depth capping;
/// throws std::runtime_error if no finite expansion exists (a DTD where
/// some element can never terminate).
std::size_t minimal_depth(const Dtd& dtd, const std::string& element);

}  // namespace xroute
