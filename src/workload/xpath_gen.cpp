#include "workload/xpath_gen.hpp"

#include <set>
#include <string>

#include "dtd/graph.hpp"
#include "index/subscription_tree.hpp"

namespace xroute {

namespace {

/// Random walk over the element graph starting at `start`, up to `length`
/// elements (shorter if a leaf is reached).
std::vector<std::string> random_walk(const ElementGraph& graph,
                                     const std::string& start,
                                     std::size_t length, Rng& rng) {
  std::vector<std::string> walk;
  std::string current = start;
  walk.push_back(current);
  while (walk.size() < length) {
    const auto& kids = graph.children(current);
    if (kids.empty()) break;
    current = rng.pick(kids);
    walk.push_back(current);
  }
  return walk;
}

}  // namespace

namespace {

/// Decorates a concrete step with a random predicate over one of its
/// element's declared attributes, when any exist.
void maybe_add_predicate(const Dtd& dtd, const std::string& element,
                         Step& step, double probability, Rng& rng) {
  if (probability <= 0.0 || !rng.chance(probability)) return;
  const auto& attributes = dtd.element(element).attributes;
  if (attributes.empty()) return;
  const AttributeDecl& attribute = attributes[rng.index(attributes.size())];
  Predicate p;
  p.target = Predicate::Target::kAttribute;
  p.name = attribute.name;
  if (!attribute.enumeration.empty()) {
    p.op = rng.chance(0.8) ? Predicate::Op::kEq : Predicate::Op::kNe;
    p.value = attribute.enumeration[rng.index(attribute.enumeration.size())];
  } else if (rng.chance(0.5)) {
    // Numeric range over the generator's 0..999 value space.
    static const Predicate::Op kRangeOps[] = {
        Predicate::Op::kLt, Predicate::Op::kLe, Predicate::Op::kGt,
        Predicate::Op::kGe};
    p.op = kRangeOps[rng.index(4)];
    p.value = std::to_string(rng.uniform_int(0, 999));
  } else {
    p.op = Predicate::Op::kExists;
  }
  step.predicates.push_back(std::move(p));
}

}  // namespace

std::vector<Xpe> generate_xpaths(const Dtd& dtd,
                                 const XpathGenOptions& options) {
  ElementGraph graph(dtd);
  Rng rng(options.seed);

  // Elements a relative query may start from.
  std::vector<std::string> reachable(graph.reachable().begin(),
                                     graph.reachable().end());

  std::vector<Xpe> out;
  std::set<std::string> seen;
  const std::size_t max_attempts = options.count * 200 + 1000;
  std::size_t attempts = 0;

  while (out.size() < options.count && attempts < max_attempts) {
    ++attempts;
    bool relative = rng.chance(options.relative_prob);
    const std::string& start =
        relative ? reachable[rng.index(reachable.size())] : graph.root();
    std::size_t target_len =
        options.leaf_only
            ? options.max_length
            : static_cast<std::size_t>(
                  rng.uniform_int(static_cast<int>(options.min_length),
                                  static_cast<int>(options.max_length)));

    // Walk far enough that '//' steps can skip levels and still find
    // elements; the query consumes a (non-contiguous) subsequence.
    std::vector<std::string> walk =
        random_walk(graph, start, target_len + 4, rng);

    std::vector<Step> steps;
    std::size_t pos = 0;
    while (steps.size() < target_len && pos < walk.size()) {
      Step step;
      if (steps.empty()) {
        step.axis = relative ? Axis::kDescendant : Axis::kChild;
      } else if (rng.chance(options.descendant_prob)) {
        step.axis = Axis::kDescendant;
        // '//' may skip 1-2 document levels.
        pos += rng.index(3);
        if (pos >= walk.size()) break;
      } else {
        step.axis = Axis::kChild;
      }
      if (rng.chance(options.wildcard_prob)) {
        step.name = kWildcard;
      } else {
        step.name = walk[pos];
        maybe_add_predicate(dtd, walk[pos], step, options.predicate_prob, rng);
      }
      steps.push_back(std::move(step));
      ++pos;
    }
    if (steps.size() < options.min_length) continue;

    Xpe xpe = relative ? Xpe::relative(std::move(steps))
                       : Xpe::absolute(std::move(steps));
    if (options.distinct) {
      if (!seen.insert(xpe.to_string()).second) continue;
    }
    out.push_back(std::move(xpe));
  }
  return out;
}

double covering_rate(const std::vector<Xpe>& xpes) {
  if (xpes.empty()) return 0.0;
  SubscriptionTree tree;
  for (const Xpe& xpe : xpes) tree.insert(xpe, IfaceId{0});
  std::size_t covered = 0;
  tree.for_each([&](const SubscriptionTree::Node& node) {
    if (node.parent->parent != nullptr || !node.super_sources.empty()) {
      // Parent is a real node (not the virtual root), or a super pointer
      // targets this node: it is covered by some other query.
      ++covered;
    }
  });
  return static_cast<double>(covered) / static_cast<double>(tree.size());
}

}  // namespace xroute
