#include "workload/xml_gen.hpp"

#include <limits>
#include <map>
#include <stdexcept>

namespace xroute {

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

/// Minimal depth contributed by a particle given current element-depth
/// estimates (0 = can be instantiated with no element children).
std::size_t particle_depth(const ContentParticle& p,
                           const std::map<std::string, std::size_t>& depths) {
  if (p.occurrence == Occurrence::kOptional ||
      p.occurrence == Occurrence::kZeroOrMore) {
    return 0;
  }
  switch (p.kind) {
    case ContentParticle::Kind::kPcdata:
    case ContentParticle::Kind::kEmpty:
    case ContentParticle::Kind::kAny:
      return 0;
    case ContentParticle::Kind::kElement: {
      auto it = depths.find(p.name);
      return it == depths.end() ? kInf : it->second;
    }
    case ContentParticle::Kind::kSequence: {
      std::size_t deepest = 0;
      for (const ContentParticle& c : p.children) {
        std::size_t d = particle_depth(c, depths);
        if (d == kInf) return kInf;
        deepest = std::max(deepest, d);
      }
      return deepest;
    }
    case ContentParticle::Kind::kChoice: {
      std::size_t best = kInf;
      for (const ContentParticle& c : p.children) {
        best = std::min(best, particle_depth(c, depths));
      }
      return best;
    }
  }
  return kInf;
}

std::map<std::string, std::size_t> compute_min_depths(const Dtd& dtd) {
  std::map<std::string, std::size_t> depths;
  for (const std::string& name : dtd.declaration_order()) depths[name] = kInf;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& name : dtd.declaration_order()) {
      std::size_t content = particle_depth(dtd.element(name).content, depths);
      std::size_t candidate = (content == kInf) ? kInf : content + 1;
      if (candidate < depths[name]) {
        depths[name] = candidate;
        changed = true;
      }
    }
  }
  return depths;
}

const char* kFiller[] = {"lorem", "ipsum", "dolor", "sit",   "amet",
                         "sed",   "diam",  "magna", "erat",  "ut",
                         "labore", "quis", "ipso",  "facto", "novum"};

class Generator {
 public:
  Generator(const Dtd& dtd, Rng& rng, const XmlGenOptions& options)
      : dtd_(dtd), rng_(rng), options_(options),
        min_depths_(compute_min_depths(dtd)) {
    for (const auto& [name, depth] : min_depths_) {
      if (depth == kInf) {
        throw std::runtime_error("element '" + name +
                                 "' has no finite expansion");
      }
    }
  }

  XmlNode make_element(const std::string& name, std::size_t depth) {
    XmlNode node;
    node.name = name;
    const ElementDecl& decl = dtd_.element(name);
    for (const AttributeDecl& attribute : decl.attributes) {
      // Required attributes always appear; optional ones often do.
      if (!attribute.required && !rng_.chance(0.7)) continue;
      std::string value;
      if (!attribute.enumeration.empty()) {
        value = attribute.enumeration[rng_.index(attribute.enumeration.size())];
      } else {
        value = std::to_string(rng_.uniform_int(0, 999));
      }
      node.attributes.emplace_back(attribute.name, std::move(value));
    }
    expand(decl.content, node, depth);
    return node;
  }

 private:
  std::size_t repeats(Occurrence occ, bool minimal) {
    switch (occ) {
      case Occurrence::kOne:
        return 1;
      case Occurrence::kOptional:
        return (!minimal && rng_.chance(options_.optional_prob)) ? 1 : 0;
      case Occurrence::kZeroOrMore: {
        if (minimal) return 0;
        std::size_t n = 0;
        while (n < options_.max_repeats && rng_.chance(options_.more_prob)) {
          ++n;
        }
        return n;
      }
      case Occurrence::kOneOrMore: {
        std::size_t n = 1;
        while (!minimal && n < options_.max_repeats &&
               rng_.chance(options_.more_prob)) {
          ++n;
        }
        return n;
      }
    }
    return 0;
  }

  void expand(const ContentParticle& p, XmlNode& node, std::size_t depth) {
    bool minimal = depth >= options_.max_levels;
    std::size_t n = repeats(p.occurrence, minimal);
    for (std::size_t i = 0; i < n; ++i) {
      instantiate_once(p, node, depth, minimal);
    }
  }

  void instantiate_once(const ContentParticle& p, XmlNode& node,
                        std::size_t depth, bool minimal) {
    switch (p.kind) {
      case ContentParticle::Kind::kElement:
        node.children.push_back(make_element(p.name, depth + 1));
        break;
      case ContentParticle::Kind::kSequence:
        for (const ContentParticle& c : p.children) expand(c, node, depth);
        break;
      case ContentParticle::Kind::kChoice: {
        const ContentParticle* chosen = nullptr;
        if (minimal) {
          // Pick the shallowest alternative so the expansion terminates.
          std::size_t best = kInf;
          for (const ContentParticle& c : p.children) {
            std::size_t d = particle_depth(c, min_depths_);
            if (d < best) {
              best = d;
              chosen = &c;
            }
          }
        } else {
          chosen = &p.children[rng_.index(p.children.size())];
        }
        if (!chosen) return;
        if (chosen->kind == ContentParticle::Kind::kPcdata) {
          append_text(node);
        } else {
          // The alternative's own occurrence applies within the choice
          // (an optional alternative may legally produce nothing).
          expand(*chosen, node, depth);
        }
        break;
      }
      case ContentParticle::Kind::kPcdata:
        append_text(node);
        break;
      case ContentParticle::Kind::kEmpty:
      case ContentParticle::Kind::kAny:
        break;
    }
  }

  void append_text(XmlNode& node) {
    std::size_t words = 2 + rng_.index(5);
    for (std::size_t i = 0; i < words; ++i) {
      if (!node.text.empty()) node.text += ' ';
      node.text += kFiller[rng_.index(std::size(kFiller))];
    }
  }

  const Dtd& dtd_;
  Rng& rng_;
  const XmlGenOptions& options_;
  std::map<std::string, std::size_t> min_depths_;
};

}  // namespace

std::size_t minimal_depth(const Dtd& dtd, const std::string& element) {
  auto depths = compute_min_depths(dtd);
  auto it = depths.find(element);
  if (it == depths.end() || it->second == kInf) {
    throw std::runtime_error("element '" + element +
                             "' has no finite expansion");
  }
  return it->second;
}

XmlDocument generate_document(const Dtd& dtd, Rng& rng,
                              const XmlGenOptions& options) {
  Generator gen(dtd, rng, options);
  XmlDocument doc(gen.make_element(dtd.root(), 1));

  if (options.target_bytes > 0) {
    std::size_t current = doc.byte_size();
    if (current < options.target_bytes) {
      // Pad character data at the root; filler text serialises 1:1.
      std::string& text = doc.root().text;
      std::size_t deficit = options.target_bytes - current;
      text.reserve(text.size() + deficit);
      static const char kPad[] = "abcdefgh ";
      while (deficit-- > 0) text += kPad[deficit % 9];
    }
  }
  return doc;
}

}  // namespace xroute
