// DTD-guided XPath query generator.
//
// Models the generator of Diao et al. the paper uses: distinct queries,
// maximum length 10, with two tuning knobs the paper calls W (probability
// of '*' at a location step) and DO (probability of '//' at a location
// step). Queries follow random walks over the DTD's element graph so they
// are satisfiable by documents of the same DTD; the W/DO knobs control how
// general the queries are and therefore the covering rate of a query set
// (paper §5: Set A ~90% covering, Set B ~50%).
#pragma once

#include <cstdint>
#include <vector>

#include "dtd/dtd.hpp"
#include "util/rng.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

struct XpathGenOptions {
  std::size_t count = 1000;
  std::size_t min_length = 2;
  std::size_t max_length = 10;  // the paper's cap
  double wildcard_prob = 0.15;   // W
  double descendant_prob = 0.15; // DO
  /// Probability a query is relative (starts at an arbitrary element).
  double relative_prob = 0.1;
  std::uint64_t seed = 1;
  /// Require distinct queries ("Queries are distinct", paper §5).
  bool distinct = true;
  /// Probability a concrete step gains a predicate over one of its
  /// element's declared attributes (the extension workload; 0 = the
  /// paper's pure structural queries).
  double predicate_prob = 0.0;
  /// When true, only maximal walks are used (the underlying element walk
  /// runs to a leaf or to max_length), eliminating prefix-covering between
  /// queries; the covering rate is then driven by W/DO alone. The paper's
  /// Set A (~90% covering) and Set B (~50%) are produced by tuning these
  /// knobs (see core/experiment.h).
  bool leaf_only = false;
};

/// Generates queries; returns fewer than `count` only if the space of
/// distinct queries is exhausted (bounded retry).
std::vector<Xpe> generate_xpaths(const Dtd& dtd, const XpathGenOptions& options);

/// Fraction of queries covered by at least one other query in the set —
/// the paper's "covering rate" of a data set. Computed by a
/// subscription-tree insertion sweep.
double covering_rate(const std::vector<Xpe>& xpes);

}  // namespace xroute
