// Random DTD generator for fuzzing.
//
// Produces structurally valid DTDs by construction: closed (every
// referenced element is declared), rooted, every element has a finite
// minimal expansion, and recursion — when enabled — is the clean
// self-loop kind the advertisement derivation handles exactly (mutual
// cycles can be enabled separately to exercise the coarse-pattern +
// repair fallback).
//
// Used by the fuzz tests to check, across hundreds of DTD shapes, that
// advertisement derivation stays complete, generated documents stay
// within the derived advertisement language, and generated queries stay
// satisfiable.
#pragma once

#include <cstdint>

#include "dtd/dtd.hpp"
#include "util/rng.hpp"

namespace xroute {

struct DtdGenOptions {
  std::size_t elements = 20;
  /// Max direct children per content model.
  std::size_t max_children = 4;
  /// Probability an eligible element references itself (clean recursion).
  double self_recursion_prob = 0.15;
  /// Probability of a mutual 2-cycle (exercises the derivation fallback).
  double mutual_recursion_prob = 0.0;
  /// Probability a group is a choice rather than a sequence.
  double choice_prob = 0.5;
  /// Probability an element gets an <!ATTLIST> with 1-2 attributes.
  double attribute_prob = 0.3;
};

/// Generates a random DTD; deterministic in `rng`'s state.
Dtd generate_random_dtd(Rng& rng, const DtdGenOptions& options = {});

}  // namespace xroute
