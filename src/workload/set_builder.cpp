#include "workload/set_builder.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "dtd/graph.hpp"
#include "dtd/universe.hpp"
#include "index/subscription_tree.hpp"
#include "util/rng.hpp"

namespace xroute {

namespace {

/// A member with substitution capacity: its wildcard positions and the
/// underlying concrete path.
struct Member {
  Xpe xpe;
  Path base;
  std::vector<std::size_t> wildcards;
};

/// Per-path bookkeeping for the uncovered tier: variants with disjoint
/// wildcard supports are pairwise incomparable, so claimed positions are
/// never reused by another uncovered variant of the same path.
struct PathState {
  enum class Mode : unsigned char { kUnused, kConcrete, kVariants };

  Path path;
  std::vector<bool> claimed;
  Mode mode = Mode::kUnused;

  std::vector<std::size_t> free_positions() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (!claimed[i]) out.push_back(i);
    }
    return out;
  }
};

Xpe with_wildcards(const Path& path,
                   const std::vector<std::size_t>& positions) {
  std::vector<Step> steps;
  steps.reserve(path.size());
  for (const std::string& e : path.elements) {
    steps.push_back(Step{Axis::kChild, e});
  }
  for (std::size_t pos : positions) steps[pos].name = kWildcard;
  return Xpe::absolute(std::move(steps));
}

}  // namespace

CoverSet build_covering_set(const Dtd& dtd, const CoverSetOptions& options) {
  CoverSet result;
  Rng rng(options.seed);

  ElementGraph graph(dtd);
  PathUniverse::Options uopts;
  uopts.max_depth = options.max_length;
  uopts.max_paths = 500000;
  PathUniverse universe(dtd, uopts);
  std::vector<PathState> paths;
  for (const Path& p : universe.paths()) {
    if (p.size() >= 2 &&
        (p.size() == options.max_length || graph.is_leaf(p.elements.back()))) {
      paths.push_back(
          PathState{p, std::vector<bool>(p.size(), false),
                    PathState::Mode::kUnused});
    }
  }
  if (paths.empty()) return result;
  std::shuffle(paths.begin(), paths.end(), rng.engine());
  std::vector<std::string> alphabet = graph.all_elements();

  // Exact covering-state tracking: `uncovered` mirrors the tree's
  // knowledge, updated from each InsertResult.
  SubscriptionTree tree;
  std::unordered_set<Xpe, XpeHash> uncovered;
  std::unordered_set<std::string> emitted;
  std::vector<Member> members;
  std::vector<std::size_t> specializable;

  auto insert = [&](const Xpe& xpe, const Path& base,
                    std::vector<std::size_t> wildcards) {
    if (!emitted.insert(xpe.to_string()).second) return false;
    auto r = tree.insert(xpe, IfaceId{0});
    if (!r.was_new) return false;
    if (!r.covered_by_existing) uncovered.insert(xpe);
    for (const Xpe& newly : r.now_covered) uncovered.erase(newly);
    members.push_back(Member{xpe, base, std::move(wildcards)});
    if (!members.back().wildcards.empty()) {
      specializable.push_back(members.size() - 1);
    }
    result.xpes.push_back(xpe);
    return true;
  };

  // ---- uncovered tier ------------------------------------------------
  // Concrete maximal paths first (pairwise incomparable), then
  // disjoint-support wildcard variants, pre-checked against the tree so a
  // candidate that would land covered is discarded.
  std::size_t next_concrete = 0;
  std::size_t path_cursor = 0;
  // A candidate meant to stay uncovered must neither be covered by the
  // set nor cover an uncovered member (which would flip that member and
  // destabilise the rate).
  auto stays_independent = [&](const Xpe& candidate) {
    if (tree.covered(candidate)) return false;
    for (const Xpe& u : uncovered) {
      if (covers(candidate, u)) return false;
    }
    return true;
  };

  auto add_variant_uncovered = [&]() {
    for (std::size_t tries = 0; tries < paths.size(); ++tries) {
      PathState& state = paths[path_cursor];
      path_cursor = (path_cursor + 1) % paths.size();
      // Variants live only on paths whose concrete form is NOT in the set
      // (a variant of P covers concrete(P)).
      if (state.mode == PathState::Mode::kConcrete) continue;
      std::vector<std::size_t> free = state.free_positions();
      if (free.empty()) continue;
      std::shuffle(free.begin(), free.end(), rng.engine());
      std::size_t support =
          std::min<std::size_t>(free.size(), rng.chance(0.5) ? 1 : 2);
      std::vector<std::size_t> positions(free.begin(),
                                         free.begin() + support);
      Xpe candidate = with_wildcards(state.path, positions);
      if (emitted.count(candidate.to_string())) continue;
      for (std::size_t pos : positions) state.claimed[pos] = true;
      if (!stays_independent(candidate)) continue;
      if (insert(candidate, state.path, positions)) {
        state.mode = PathState::Mode::kVariants;
        return true;
      }
    }
    return false;
  };

  auto add_uncovered_intent = [&]() {
    while (next_concrete < paths.size()) {
      PathState& state = paths[next_concrete++];
      if (state.mode != PathState::Mode::kUnused) continue;
      Xpe candidate = with_wildcards(state.path, {});
      if (emitted.count(candidate.to_string())) continue;
      if (!stays_independent(candidate)) continue;
      if (insert(candidate, state.path, {})) {
        state.mode = PathState::Mode::kConcrete;
        return true;
      }
    }
    return add_variant_uncovered();
  };

  // ---- covered tier ----------------------------------------------------
  // Specialise an existing wildcarded member: substitute one wildcard with
  // a concrete element; the donor covers the result by construction. If no
  // donor exists yet, mint one (a fresh singleton variant).
  auto add_covered_intent = [&]() {
    for (int round = 0; round < 3; ++round) {
      // Mint a fresh wildcarded donor when none exists, when earlier
      // rounds failed (small donors' instantiation spaces exhaust under
      // the distinctness requirement), and occasionally regardless — a
      // single donor fathering the whole covered tier would make the
      // set's covering structure degenerate.
      if (specializable.empty() || round > 0 || rng.chance(0.1)) {
        add_variant_uncovered();
        if (specializable.empty()) return false;
        if (result.xpes.size() >= options.count) return true;
      }
      for (int tries = 0; tries < 16; ++tries) {
        const Member& donor =
            members[specializable[rng.index(specializable.size())]];
        // Fully instantiate every wildcard (ascending, so a substituted
        // parent guides its child): the result is concrete, covered by
        // the donor, and — crucially — covers nothing itself, so it can
        // never flip an existing uncovered member and destabilise the
        // rate. Early tries substitute elements the DTD allows under the
        // (possibly substituted) parent, keeping queries plausible; later
        // tries fall back to the whole element alphabet so small
        // restricted spaces cannot exhaust the covered tier.
        const bool restricted = tries < 8;
        Path base = donor.base;
        std::vector<std::size_t> positions = donor.wildcards;
        std::sort(positions.begin(), positions.end());
        for (std::size_t pos : positions) {
          const std::vector<std::string>& allowed =
              graph.children(base.elements[pos - 1]);
          base.elements[pos] =
              (restricted && !allowed.empty())
                  ? allowed[rng.index(allowed.size())]
                  : alphabet[rng.index(alphabet.size())];
        }
        Xpe candidate = with_wildcards(base, {});
        if (emitted.count(candidate.to_string())) continue;
        if (insert(candidate, base, {})) return true;
      }
    }
    return false;
  };

  std::size_t stall = 0;
  while (result.xpes.size() < options.count && stall < 4000) {
    double rate =
        result.xpes.empty()
            ? 0.0
            : 1.0 - static_cast<double>(uncovered.size()) /
                        static_cast<double>(result.xpes.size());
    bool want_covered = rate < options.target_rate;
    bool ok = want_covered ? add_covered_intent() : add_uncovered_intent();
    if (!ok && want_covered) {
      // Covered sources dried up; drifting the rate down is harmless.
      ok = add_uncovered_intent();
    }
    // When the uncovered tier is exhausted, stop rather than overshoot the
    // target by padding with covered members.
    if (!ok) break;
    stall = ok ? 0 : stall + 1;
  }

  if (!result.xpes.empty()) {
    result.constructed_rate =
        1.0 - static_cast<double>(uncovered.size()) /
                  static_cast<double>(result.xpes.size());
  }
  std::shuffle(result.xpes.begin(), result.xpes.end(), rng.engine());
  return result;
}

}  // namespace xroute
