#include "xpath/predicate.hpp"

#include <cstdlib>
#include <sstream>

namespace xroute {

const char* to_string(Predicate::Op op) {
  switch (op) {
    case Predicate::Op::kExists: return "";
    case Predicate::Op::kEq: return "=";
    case Predicate::Op::kNe: return "!=";
    case Predicate::Op::kLt: return "<";
    case Predicate::Op::kLe: return "<=";
    case Predicate::Op::kGt: return ">";
    case Predicate::Op::kGe: return ">=";
  }
  return "?";
}

std::string Predicate::to_string() const {
  std::ostringstream os;
  os << '[';
  if (target == Target::kAttribute) {
    os << '@' << name;
  } else {
    os << "text()";
  }
  if (op != Op::kExists) {
    os << xroute::to_string(op) << '\'' << value << '\'';
  }
  os << ']';
  return os.str();
}

std::optional<double> parse_number(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

bool compare_values(const std::string& document_value, Predicate::Op op,
                    const std::string& predicate_value) {
  auto lhs = parse_number(document_value);
  auto rhs = parse_number(predicate_value);
  int cmp;
  if (lhs && rhs) {
    cmp = (*lhs < *rhs) ? -1 : (*lhs > *rhs) ? 1 : 0;
  } else {
    cmp = document_value.compare(predicate_value);
    cmp = (cmp < 0) ? -1 : (cmp > 0) ? 1 : 0;
  }
  switch (op) {
    case Predicate::Op::kExists: return true;
    case Predicate::Op::kEq: return cmp == 0;
    case Predicate::Op::kNe: return cmp != 0;
    case Predicate::Op::kLt: return cmp < 0;
    case Predicate::Op::kLe: return cmp <= 0;
    case Predicate::Op::kGt: return cmp > 0;
    case Predicate::Op::kGe: return cmp >= 0;
  }
  return false;
}

namespace {

/// Interval view of a numeric predicate: [lo, hi] with openness flags.
struct Interval {
  double lo, hi;
  bool lo_open, hi_open;
};

std::optional<Interval> as_interval(const Predicate& p) {
  auto v = parse_number(p.value);
  if (!v) return std::nullopt;
  constexpr double kInf = 1e308;
  switch (p.op) {
    case Predicate::Op::kEq: return Interval{*v, *v, false, false};
    case Predicate::Op::kLt: return Interval{-kInf, *v, false, true};
    case Predicate::Op::kLe: return Interval{-kInf, *v, false, false};
    case Predicate::Op::kGt: return Interval{*v, kInf, true, false};
    case Predicate::Op::kGe: return Interval{*v, kInf, false, false};
    default: return std::nullopt;  // kExists / kNe are not intervals
  }
}

bool interval_contains(const Interval& outer, const Interval& inner) {
  bool lo_ok = outer.lo < inner.lo ||
               (outer.lo == inner.lo && (!outer.lo_open || inner.lo_open));
  bool hi_ok = outer.hi > inner.hi ||
               (outer.hi == inner.hi && (!outer.hi_open || inner.hi_open));
  return lo_ok && hi_ok;
}

}  // namespace

bool predicate_implies(const Predicate& specific, const Predicate& general) {
  if (specific.target != general.target) return false;
  if (specific.target == Predicate::Target::kAttribute &&
      specific.name != general.name) {
    return false;
  }
  // Anything on the same target implies bare existence.
  if (general.op == Predicate::Op::kExists) return true;
  // Identical predicates imply each other.
  if (specific == general) return true;
  // Equality on the left: evaluate the general predicate on the value.
  if (specific.op == Predicate::Op::kEq) {
    return compare_values(specific.value, general.op, general.value);
  }
  // Numeric interval containment for range predicates.
  auto inner = as_interval(specific);
  auto outer = as_interval(general);
  if (inner && outer) return interval_contains(*outer, *inner);
  // kNe: x != a implies x != b only when a == b (handled by equality above).
  return false;
}

}  // namespace xroute
