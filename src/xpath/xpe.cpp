#include "xpath/xpe.hpp"

#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>

#include "util/symbols.hpp"

namespace xroute {

namespace {

/// Structural (value) hash over the semantic form — used only by the uid
/// registry; everything else hashes the O(1) uid.
struct XpeDeepHash {
  std::size_t operator()(const Xpe& x) const {
    std::size_t h = 1469598103934665603ull;  // FNV offset basis
    auto mix = [&h](std::size_t v) {
      h ^= v;
      h *= 1099511628211ull;  // FNV prime
    };
    for (const Step& s : x.steps()) {
      mix(static_cast<std::size_t>(s.axis) + 1);
      mix(std::hash<std::string>{}(s.name));
      for (const Predicate& p : s.predicates) {
        mix(static_cast<std::size_t>(p.target));
        mix(static_cast<std::size_t>(p.op) + 17);
        mix(std::hash<std::string>{}(p.name));
        mix(std::hash<std::string>{}(p.value));
      }
    }
    return h;
  }
};

struct XpeDeepEq {
  bool operator()(const Xpe& a, const Xpe& b) const {
    return a.steps() == b.steps();
  }
};

/// Value-keyed registry assigning each distinct semantic XPE a dense,
/// never-recycled uid; the canonical backbone of O(1) XPE equality,
/// hashing, and the covering cache. Ids bind values, not table slots, so a
/// cached fact about a uid pair can never go stale.
class XpeRegistry {
 public:
  static XpeRegistry& global() {
    static XpeRegistry registry;
    return registry;
  }

  std::uint32_t uid_for(const Xpe& x) {
    if (x.empty()) return 0;
    {
      std::shared_lock lock(mutex_);
      auto it = uids_.find(x);
      if (it != uids_.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    auto it = uids_.find(x);
    if (it != uids_.end()) return it->second;
    std::uint32_t uid = next_++;
    uids_.emplace(x, uid);
    return uid;
  }

 private:
  std::shared_mutex mutex_;
  std::unordered_map<Xpe, std::uint32_t, XpeDeepHash, XpeDeepEq> uids_;
  std::uint32_t next_ = 1;  // 0 is the empty XPE
};

}  // namespace

Xpe Xpe::absolute(std::vector<Step> steps) {
  Xpe x;
  x.steps_ = std::move(steps);
  x.relative_ = false;
  x.symbols_.reserve(x.steps_.size());
  for (const Step& s : x.steps_) x.symbols_.push_back(intern_symbol(s.name));
  x.build_program();
  x.uid_ = XpeRegistry::global().uid_for(x);
  return x;
}

Xpe Xpe::relative(std::vector<Step> steps) {
  Xpe x;
  x.steps_ = std::move(steps);
  if (!x.steps_.empty()) x.steps_[0].axis = Axis::kDescendant;
  x.relative_ = true;
  x.symbols_.reserve(x.steps_.size());
  for (const Step& s : x.steps_) x.symbols_.push_back(intern_symbol(s.name));
  x.build_program();
  x.uid_ = XpeRegistry::global().uid_for(x);
  return x;
}

void Xpe::build_program() {
  program_.clear();
  program_.reserve(steps_.size());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    std::uint32_t word = symbols_[i] & kProgSymbolMask;
    if (steps_[i].axis == Axis::kDescendant) word |= kProgDescendant;
    if (!steps_[i].predicates.empty()) word |= kProgPredicated;
    program_.push_back(word);
  }
}

bool Xpe::has_descendant() const {
  for (const Step& s : steps_) {
    if (s.axis == Axis::kDescendant) return true;
  }
  return false;
}

bool Xpe::has_wildcard() const {
  for (std::uint32_t sym : symbols_) {
    if (sym == SymbolTable::kWildcardId) return true;
  }
  return false;
}

bool Xpe::has_predicates() const {
  for (const Step& s : steps_) {
    if (!s.predicates.empty()) return true;
  }
  return false;
}

std::vector<Segment> Xpe::segments() const {
  std::vector<Segment> out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i == 0 || steps_[i].axis == Axis::kDescendant) {
      Segment seg;
      seg.first = i;
      seg.length = 1;
      seg.anchored = (i == 0 && steps_[i].axis == Axis::kChild);
      out.push_back(seg);
    } else {
      ++out.back().length;
    }
  }
  return out;
}

std::string Xpe::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Step& s = steps_[i];
    if (i == 0 && relative_) {
      // relative form: no leading operator
    } else {
      os << (s.axis == Axis::kChild ? "/" : "//");
    }
    os << s.name;
    for (const Predicate& p : s.predicates) os << p.to_string();
  }
  return os.str();
}

std::size_t XpeHash::operator()(const Xpe& x) const {
  // splitmix64 finalizer over the canonical uid: equal values share a uid,
  // so this is a valid O(1) hash for value-keyed containers.
  std::uint64_t z = static_cast<std::uint64_t>(x.uid()) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(z ^ (z >> 31));
}

}  // namespace xroute
