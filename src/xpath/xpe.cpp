#include "xpath/xpe.hpp"

#include <sstream>

namespace xroute {

Xpe Xpe::absolute(std::vector<Step> steps) {
  Xpe x;
  x.steps_ = std::move(steps);
  x.relative_ = false;
  return x;
}

Xpe Xpe::relative(std::vector<Step> steps) {
  Xpe x;
  x.steps_ = std::move(steps);
  if (!x.steps_.empty()) x.steps_[0].axis = Axis::kDescendant;
  x.relative_ = true;
  return x;
}

bool Xpe::has_descendant() const {
  for (const Step& s : steps_) {
    if (s.axis == Axis::kDescendant) return true;
  }
  return false;
}

bool Xpe::has_wildcard() const {
  for (const Step& s : steps_) {
    if (s.is_wildcard()) return true;
  }
  return false;
}

bool Xpe::has_predicates() const {
  for (const Step& s : steps_) {
    if (!s.predicates.empty()) return true;
  }
  return false;
}

std::vector<Segment> Xpe::segments() const {
  std::vector<Segment> out;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (i == 0 || steps_[i].axis == Axis::kDescendant) {
      Segment seg;
      seg.first = i;
      seg.length = 1;
      seg.anchored = (i == 0 && steps_[i].axis == Axis::kChild);
      out.push_back(seg);
    } else {
      ++out.back().length;
    }
  }
  return out;
}

std::string Xpe::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Step& s = steps_[i];
    if (i == 0 && relative_) {
      // relative form: no leading operator
    } else {
      os << (s.axis == Axis::kChild ? "/" : "//");
    }
    os << s.name;
    for (const Predicate& p : s.predicates) os << p.to_string();
  }
  return os.str();
}

std::size_t XpeHash::operator()(const Xpe& x) const {
  std::size_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::size_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  for (const Step& s : x.steps()) {
    mix(static_cast<std::size_t>(s.axis) + 1);
    mix(std::hash<std::string>{}(s.name));
    for (const Predicate& p : s.predicates) {
      mix(static_cast<std::size_t>(p.target));
      mix(static_cast<std::size_t>(p.op) + 17);
      mix(std::hash<std::string>{}(p.name));
      mix(std::hash<std::string>{}(p.value));
    }
  }
  return h;
}

}  // namespace xroute
