// XPath expression (XPE) model for the paper's subscription language:
// single-path expressions over '/', '//', '*' and element names.
//
// An XPE is *absolute* if it is written with a leading '/' (its first step
// then uses the child axis and must match at the path root) or a leading
// '//' (first step uses the descendant axis). It is *relative* if it starts
// directly with a node test; a relative XPE may match starting at any
// position, which makes it semantically identical to the same expression
// with a leading '//'. We keep the written form for faithful printing but
// define equality and matching on the semantic (axis-normalised) form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xpath/step.hpp"

namespace xroute {

/// A contiguous run of child-axis steps. XPEs are processed segment-wise by
/// the descendant-operator algorithms (paper §3.2 DesExprAndAdv, §4.2
/// DesCov): segments are the maximal '//'-free sub-expressions.
struct Segment {
  /// Index of the segment's first step within Xpe::steps().
  std::size_t first = 0;
  /// Number of steps in the segment.
  std::size_t length = 0;
  /// True if the segment is anchored: it must start exactly where the
  /// previous match ended (child axis), false if it may float ('//').
  bool anchored = false;
};

/// An XPath expression in the {/, //, *} single-path fragment.
class Xpe {
 public:
  Xpe() = default;
  Xpe(const Xpe&) = default;
  Xpe& operator=(const Xpe&) = default;
  // Moves leave the source as the canonical empty XPE so the uid invariant
  // (uid identifies the semantic value) holds even for moved-from objects.
  Xpe(Xpe&& other) noexcept { *this = std::move(other); }
  Xpe& operator=(Xpe&& other) noexcept {
    steps_ = std::move(other.steps_);
    symbols_ = std::move(other.symbols_);
    program_ = std::move(other.program_);
    relative_ = other.relative_;
    uid_ = other.uid_;
    other.steps_.clear();
    other.symbols_.clear();
    other.program_.clear();
    other.relative_ = false;
    other.uid_ = 0;
    return *this;
  }

  /// Builds an absolute XPE; the first step's axis distinguishes '/a…'
  /// (Axis::kChild) from '//a…' (Axis::kDescendant).
  static Xpe absolute(std::vector<Step> steps);

  /// Builds a relative XPE ('a/b…'); forces the first step's axis to
  /// Axis::kDescendant, the semantic equivalent.
  static Xpe relative(std::vector<Step> steps);

  const std::vector<Step>& steps() const { return steps_; }
  const Step& step(std::size_t i) const { return steps_[i]; }
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Interned element symbol of step i (util/symbols.hpp): wildcard steps
  /// map to SymbolTable::kWildcardId. Hot matching loops compare these
  /// instead of Step::name strings.
  std::uint32_t symbol(std::size_t i) const { return symbols_[i]; }
  const std::vector<std::uint32_t>& symbols() const { return symbols_; }

  /// Packed match program: one word per step carrying everything the
  /// publication-match kernel needs — low 30 bits the interned symbol,
  /// kProgDescendant the step's axis, kProgPredicated whether the step has
  /// predicates. The kernel (match/pub_match.cpp) walks this one
  /// contiguous array instead of the Step structs, whose strings and
  /// predicate vectors scatter across the heap and turn every visited
  /// table entry into cache misses.
  static constexpr std::uint32_t kProgDescendant = 0x80000000u;
  static constexpr std::uint32_t kProgPredicated = 0x40000000u;
  static constexpr std::uint32_t kProgSymbolMask = 0x3FFFFFFFu;
  const std::vector<std::uint32_t>& program() const { return program_; }

  /// Dense process-wide id canonical for the *semantic value*: two XPEs
  /// compare equal iff their uids are equal (the factories register every
  /// XPE in a value-keyed registry; ids are never recycled). The covering
  /// cache and unordered containers key on it. 0 is the empty XPE.
  std::uint32_t uid() const { return uid_; }

  /// True if written without a leading slash.
  bool relative() const { return relative_; }

  /// True if the expression must match starting at the path root, i.e. the
  /// first step uses the child axis (written form "/a…").
  bool anchored() const {
    return !steps_.empty() && steps_[0].axis == Axis::kChild;
  }

  bool has_descendant() const;
  bool has_wildcard() const;
  bool has_predicates() const;

  /// Absolute, child-axis-only expression ("/a/b/c", wildcards allowed):
  /// the class handled by AbsExprAndAdv / AbsSimCov.
  bool is_absolute_simple() const { return anchored() && !has_descendant(); }

  /// Splits the expression into maximal '//'-free segments (see Segment).
  /// The first segment is anchored iff the XPE is anchored.
  std::vector<Segment> segments() const;

  /// Prints the expression back in its written form.
  std::string to_string() const;

  /// Semantic equality: same steps after axis normalisation. "a/b" equals
  /// "//a/b" (both match anywhere) but not "/a/b". O(1): the uid registry
  /// is canonical, so equal values always carry the same uid.
  friend bool operator==(const Xpe& a, const Xpe& b) {
    return a.uid_ == b.uid_;
  }
  friend auto operator<=>(const Xpe& a, const Xpe& b) {
    return a.steps_ <=> b.steps_;
  }

 private:
  void build_program();

  std::vector<Step> steps_;
  std::vector<std::uint32_t> symbols_;
  std::vector<std::uint32_t> program_;
  bool relative_ = false;
  std::uint32_t uid_ = 0;
};

/// Hash functor so XPEs can key unordered containers (routing tables).
/// O(1): mixes the canonical uid.
struct XpeHash {
  std::size_t operator()(const Xpe& x) const;
};

}  // namespace xroute
