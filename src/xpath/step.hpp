// A single location step of an XPath expression in the paper's fragment:
// child ('/') and descendant ('//') axes with element-name or wildcard tests.
#pragma once

#include <compare>
#include <string>
#include <vector>

#include "xpath/predicate.hpp"

namespace xroute {

/// Axis connecting a step to the previous one (or to the path root for the
/// first step of an absolute expression).
enum class Axis : unsigned char {
  kChild,       ///< '/'  — the element is at the immediately next level
  kDescendant,  ///< '//' — the element is at any strictly lower level
};

/// The wildcard node test. Stored as the literal "*" in Step::name so that
/// steps print back exactly as written.
inline constexpr const char* kWildcard = "*";

/// One location step: axis + node test (element name or "*") + optional
/// attribute/text predicates (see xpath/predicate.hpp).
struct Step {
  Axis axis = Axis::kChild;
  std::string name;
  std::vector<Predicate> predicates;

  bool is_wildcard() const { return name == kWildcard; }
  bool unconstrained_wildcard() const {
    return is_wildcard() && predicates.empty();
  }

  friend bool operator==(const Step&, const Step&) = default;
  friend auto operator<=>(const Step&, const Step&) = default;
};

}  // namespace xroute
