// XPath predicates on attributes and text content.
//
// The paper focuses on element structure and notes the approach "could be
// easily extended to element attributes and content [16] ... through
// value comparison". This is that extension, following the predicate
// fragment of Hou & Jacobsen (ICDE'06):
//
//   /news/head/title[text() = 'breaking']
//   //media[@type]/media-reference[@source != 'wire']
//   //annotation/site[@position < 100]
//
// One predicate = target (attribute by name, or text()) + comparison.
// Values compare numerically when both sides parse as numbers, lexically
// otherwise.
#pragma once

#include <compare>
#include <optional>
#include <string>

namespace xroute {

struct Predicate {
  enum class Target : unsigned char { kAttribute, kText };
  enum class Op : unsigned char {
    kExists,  ///< [@name] — the attribute is present
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
  };

  Target target = Target::kAttribute;
  std::string name;   ///< attribute name (empty for text())
  Op op = Op::kExists;
  std::string value;  ///< right-hand side (empty for kExists)

  friend bool operator==(const Predicate&, const Predicate&) = default;
  friend auto operator<=>(const Predicate&, const Predicate&) = default;

  /// Prints in XPath syntax, e.g. "[@type='photo']" or "[text()!='x']".
  std::string to_string() const;
};

/// Evaluates `op` between a document value and a predicate value
/// (numeric when both parse as numbers, lexicographic otherwise).
bool compare_values(const std::string& document_value, Predicate::Op op,
                    const std::string& predicate_value);

/// Does `general` logically imply... i.e. does every (element, value)
/// satisfying `specific` also satisfy `general`? Used by the covering
/// algorithms: coverer predicates must be implied by covered predicates.
/// Sound and conservative (unknown cases return false).
bool predicate_implies(const Predicate& specific, const Predicate& general);

/// Numeric parse helper shared by comparison and implication.
std::optional<double> parse_number(const std::string& text);

const char* to_string(Predicate::Op op);

}  // namespace xroute
