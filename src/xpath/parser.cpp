#include "xpath/parser.hpp"

#include <cctype>
#include <string>

namespace xroute {

namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == ':' || c == '-';
}

}  // namespace

bool is_valid_name(std::string_view name) {
  if (name.empty() || !is_name_start(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!is_name_char(c)) return false;
  }
  return true;
}

namespace {

Predicate::Op parse_predicate_op(std::string_view text, std::size_t& pos) {
  auto two = text.substr(pos, 2);
  if (two == "!=") { pos += 2; return Predicate::Op::kNe; }
  if (two == "<=") { pos += 2; return Predicate::Op::kLe; }
  if (two == ">=") { pos += 2; return Predicate::Op::kGe; }
  switch (text[pos]) {
    case '=': ++pos; return Predicate::Op::kEq;
    case '<': ++pos; return Predicate::Op::kLt;
    case '>': ++pos; return Predicate::Op::kGt;
    default:
      throw ParseError("expected comparison operator at position " +
                       std::to_string(pos) + " in '" + std::string(text) +
                       "'");
  }
}

std::string parse_predicate_value(std::string_view text, std::size_t& pos) {
  if (pos >= text.size()) throw ParseError("predicate value missing");
  if (text[pos] == '\'' || text[pos] == '"') {
    char quote = text[pos++];
    std::size_t start = pos;
    while (pos < text.size() && text[pos] != quote) ++pos;
    if (pos >= text.size()) throw ParseError("unterminated predicate value");
    std::string value(text.substr(start, pos - start));
    ++pos;  // closing quote
    return value;
  }
  // Unquoted: a number.
  std::size_t start = pos;
  while (pos < text.size() && (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                               text[pos] == '.' || text[pos] == '-' ||
                               text[pos] == '+')) {
    ++pos;
  }
  if (pos == start) {
    throw ParseError("expected quoted string or number at position " +
                     std::to_string(start) + " in '" + std::string(text) + "'");
  }
  return std::string(text.substr(start, pos - start));
}

/// Parses "[...]*" predicate blocks following a node test.
std::vector<Predicate> parse_predicates(std::string_view text,
                                        std::size_t& pos) {
  std::vector<Predicate> out;
  while (pos < text.size() && text[pos] == '[') {
    ++pos;
    Predicate p;
    if (pos < text.size() && text[pos] == '@') {
      ++pos;
      std::size_t start = pos;
      if (pos >= text.size() || !is_name_start(text[pos])) {
        throw ParseError("expected attribute name after '@' in '" +
                         std::string(text) + "'");
      }
      ++pos;
      while (pos < text.size() && is_name_char(text[pos])) ++pos;
      p.target = Predicate::Target::kAttribute;
      p.name = std::string(text.substr(start, pos - start));
    } else if (text.substr(pos, 6) == "text()") {
      pos += 6;
      p.target = Predicate::Target::kText;
    } else {
      throw ParseError("expected '@attr' or 'text()' in predicate of '" +
                       std::string(text) + "'");
    }
    if (pos < text.size() && text[pos] != ']') {
      p.op = parse_predicate_op(text, pos);
      p.value = parse_predicate_value(text, pos);
    } else if (p.target == Predicate::Target::kText) {
      throw ParseError("text() predicate requires a comparison in '" +
                       std::string(text) + "'");
    }
    if (pos >= text.size() || text[pos] != ']') {
      throw ParseError("predicate not closed with ']' in '" +
                       std::string(text) + "'");
    }
    ++pos;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

Xpe parse_xpe(std::string_view text) {
  if (text.empty()) throw ParseError("empty XPath expression");

  std::vector<Step> steps;
  bool relative = false;
  std::size_t pos = 0;

  Axis next_axis;
  if (text[0] == '/') {
    if (text.size() > 1 && text[1] == '/') {
      next_axis = Axis::kDescendant;
      pos = 2;
    } else {
      next_axis = Axis::kChild;
      pos = 1;
    }
  } else {
    relative = true;
    next_axis = Axis::kDescendant;  // semantic normalisation of relative XPEs
  }

  while (true) {
    if (pos >= text.size()) {
      throw ParseError("XPath expression '" + std::string(text) +
                       "' ends with an operator");
    }
    std::string name;
    if (text[pos] == '*') {
      name = kWildcard;
      ++pos;
    } else {
      std::size_t start = pos;
      if (!is_name_start(text[pos])) {
        throw ParseError("bad character '" + std::string(1, text[pos]) +
                         "' at position " + std::to_string(pos) + " in '" +
                         std::string(text) + "'");
      }
      ++pos;
      while (pos < text.size() && is_name_char(text[pos])) ++pos;
      name = std::string(text.substr(start, pos - start));
    }
    std::vector<Predicate> predicates = parse_predicates(text, pos);
    steps.push_back(Step{next_axis, std::move(name), std::move(predicates)});

    if (pos == text.size()) break;
    if (text[pos] != '/') {
      throw ParseError("expected '/' at position " + std::to_string(pos) +
                       " in '" + std::string(text) + "'");
    }
    if (pos + 1 < text.size() && text[pos + 1] == '/') {
      next_axis = Axis::kDescendant;
      pos += 2;
    } else {
      next_axis = Axis::kChild;
      pos += 1;
    }
  }

  return relative ? Xpe::relative(std::move(steps))
                  : Xpe::absolute(std::move(steps));
}

}  // namespace xroute
