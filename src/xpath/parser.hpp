// Parser for the paper's XPath fragment.
//
// Grammar (no whitespace):
//   xpe      := '/' steps | '//' steps | steps      (absolute / abs-desc / relative)
//   steps    := step (('/' | '//') step)*
//   step     := test predicate*
//   test     := NAME | '*'
//   predicate:= '[' ('@' NAME | 'text()') (op value)? ']'
//   op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//   value    := '\'' chars '\'' | '"' chars '"' | NUMBER
//   NAME     := [A-Za-z_][A-Za-z0-9_.:-]*
//
// Examples: "/a/b", "/*/c/*/b/c", "*/a//d/*/c//b", "d/a" (paper §3/§4),
// "//media[@type='photo']/media-reference", "//title[text()='x']".
#pragma once

#include <string_view>

#include "util/error.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// Parses an XPE; throws ParseError on malformed input (empty expression,
/// empty step, bad characters, trailing slash).
Xpe parse_xpe(std::string_view text);

/// Validates a candidate element name (also used by the XML/DTD parsers).
bool is_valid_name(std::string_view name);

}  // namespace xroute
