#include "router/broker.hpp"

#include <algorithm>
#include <chrono>

#include "match/pub_match.hpp"
#include "router/snapshot.hpp"

namespace xroute {

namespace {

/// Accrues the scope's wall-clock time into `*sink_ms`; inert (no clock
/// reads) when the sink is null. Instrumented regions are leaves — a
/// StageTimer scope never contains another — so stage times stay disjoint.
class StageTimer {
 public:
  explicit StageTimer(double* sink_ms) : sink_ms_(sink_ms) {
    if (sink_ms_) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (sink_ms_) {
      *sink_ms_ += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  double* sink_ms_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Broker::Broker(int id, Config config)
    : id_(id),
      config_(config),
      prt_(config.use_covering, config.track_covered) {}

void Broker::add_neighbor(int interface_id) { neighbors_.insert(interface_id); }

void Broker::add_client(int interface_id) { clients_.insert(interface_id); }

const std::vector<Xpe>* Broker::client_subscriptions(int interface_id) const {
  auto it = client_subs_.find(interface_id);
  return it == client_subs_.end() ? nullptr : &it->second;
}

void Broker::restore_advertisement(const Advertisement& adv,
                                   const std::set<int>& hops) {
  for (int hop : hops) srt_.add(adv, hop);
}

void Broker::restore_subscription(const Xpe& xpe, const std::set<int>& hops) {
  for (int hop : hops) prt_.insert(xpe, hop);
}

void Broker::restore_merger(const Xpe& merger,
                            const std::vector<Xpe>& originals) {
  if (!prt_.covering()) return;
  if (SubscriptionTree::Node* node = prt_.tree()->find(merger)) {
    node->merger = true;
    node->merged_from = originals;
  }
}

void Broker::restore_client_table(int interface_id, std::vector<Xpe> xpes) {
  client_subs_[interface_id] = std::move(xpes);
}

void Broker::restore_forwarding(const Xpe& xpe, std::set<int> interfaces) {
  forwarded_to_[xpe] = std::move(interfaces);
}

void Broker::restore_forwarding_add(const Xpe& xpe, int interface_id) {
  forwarded_to_[xpe].insert(interface_id);
}

Broker::HandleResult Broker::handle(int from_interface, const Message& msg,
                                    StageTimings* stages) {
  stages_ = stages;
  HandleResult out;
  switch (msg.type()) {
    case MessageType::kAdvertise:
      handle_advertise(from_interface, std::get<AdvertiseMsg>(msg.payload),
                       &out);
      break;
    case MessageType::kSubscribe:
      handle_subscribe(from_interface, std::get<SubscribeMsg>(msg.payload),
                       &out);
      break;
    case MessageType::kUnsubscribe:
      handle_unsubscribe(from_interface,
                         std::get<UnsubscribeMsg>(msg.payload), &out);
      break;
    case MessageType::kPublish:
      handle_publish(from_interface, std::get<PublishMsg>(msg.payload), &out);
      break;
    case MessageType::kUnadvertise:
      handle_unadvertise(from_interface,
                         std::get<UnadvertiseMsg>(msg.payload), &out);
      break;
    case MessageType::kSyncRequest:
      handle_sync_request(from_interface, &out);
      break;
    case MessageType::kSyncState:
      handle_sync_state(from_interface, std::get<SyncStateMsg>(msg.payload),
                        &out);
      break;
  }
  stages_ = nullptr;
  return out;
}

void Broker::handle_advertise(int from, const AdvertiseMsg& msg,
                              HandleResult* out) {
  bool is_new;
  {
    StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
    is_new = srt_.add(msg.advertisement, from);
  }
  if (!is_new) return;

  // Flood the advertisement to every other neighbour (paper §2.1:
  // "advertisements are flooded in the publish/subscribe overlay").
  {
    StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
    for (int neighbor : neighbors_) {
      if (neighbor != from) {
        out->forwards.push_back(Forward{
            neighbor,
            Message::advertise(msg.advertisement, msg.origin_broker)});
      }
    }
  }

  // Route existing (top-level, uncovered) subscriptions toward the new
  // advertisement: publishers may connect after subscribers did. Only
  // relevant under advertisement-based routing and only over broker links
  // (an advertisement from a local publisher terminates here — this broker
  // is the root of its advertisement tree).
  if (!config_.use_advertisements || neighbors_.count(from) == 0) return;

  StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
  const Srt::Entry* entry = srt_.find(msg.advertisement);
  if (!entry) return;

  for (const Xpe& xpe : prt_.top_level_xpes()) {
    if (!srt_.entry_overlaps(*entry, xpe)) continue;
    std::set<int>& sent = forwarded_to_[xpe];
    if (sent.insert(from).second) {
      out->forwards.push_back(Forward{from, Message::subscribe(xpe)});
    }
  }
}

void Broker::handle_unadvertise(int from, const UnadvertiseMsg& msg,
                                HandleResult* out) {
  // Withdraw the advertisement for this hop; once no hop holds it the
  // withdrawal floods on, mirroring the advertisement flood. Forwarded
  // subscriptions are left in place: they become stale routing state, not
  // incorrect behaviour (publications simply stop flowing from there).
  if (!srt_.remove(msg.advertisement, from)) return;
  if (srt_.contains(msg.advertisement)) return;
  for (int neighbor : neighbors_) {
    if (neighbor != from) {
      out->forwards.push_back(Forward{
          neighbor,
          Message::unadvertise(msg.advertisement, msg.origin_broker)});
    }
  }
}

std::set<int> Broker::subscription_targets(const Xpe& xpe, int exclude) const {
  StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
  std::set<int> targets;
  if (config_.use_advertisements) {
    for (int hop : srt_.hops_overlapping(xpe)) {
      // Only broker links: a hop can be a publisher client's interface
      // (the advertisement entered here); matching then happens locally.
      if (neighbors_.count(hop) && hop != exclude) targets.insert(hop);
    }
  } else {
    for (int neighbor : neighbors_) {
      if (neighbor != exclude) targets.insert(neighbor);
    }
  }
  return targets;
}

std::set<int> Broker::coverage_interfaces(const Xpe& xpe) const {
  std::set<int> out;
  if (!prt_.covering()) return out;
  const SubscriptionTree::Node* node = prt_.tree()->find(xpe);
  if (!node) return out;
  auto add_chain = [&](const SubscriptionTree::Node* start) {
    // Walk a coverer chain toward the root (every ancestor covers xpe by
    // transitivity); union the interfaces each coverer was forwarded to.
    for (const SubscriptionTree::Node* walk = start; walk && walk->parent;
         walk = walk->parent) {
      auto it = forwarded_to_.find(walk->xpe);
      if (it != forwarded_to_.end()) {
        out.insert(it->second.begin(), it->second.end());
      }
    }
  };
  add_chain(node->parent);
  for (const SubscriptionTree::Node* source : node->super_sources) {
    add_chain(source);
  }
  return out;
}

void Broker::forward_subscription(const Xpe& xpe, int exclude,
                                  HandleResult* out) {
  std::set<int>& sent = forwarded_to_[xpe];
  std::set<int> covered_on;
  if (config_.use_covering) covered_on = coverage_interfaces(xpe);
  std::set<int> targets = subscription_targets(xpe, exclude);
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  for (int target : targets) {
    if (covered_on.count(target)) continue;  // a coverer routes this way
    if (sent.insert(target).second) {
      out->forwards.push_back(Forward{target, Message::subscribe(xpe)});
    }
  }
  if (sent.empty()) forwarded_to_.erase(xpe);
}

void Broker::unsubscribe_covered(const Xpe& covered, const std::set<int>& via,
                                 HandleResult* out) {
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  auto it = forwarded_to_.find(covered);
  if (it == forwarded_to_.end()) return;
  for (int target : via) {
    if (it->second.erase(target) > 0) {
      out->forwards.push_back(Forward{target, Message::unsubscribe(covered)});
    }
  }
  if (it->second.empty()) forwarded_to_.erase(it);
}

void Broker::forward_unsubscription(const Xpe& xpe, int exclude,
                                    HandleResult* out) {
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  auto it = forwarded_to_.find(xpe);
  if (it == forwarded_to_.end()) return;
  for (int target : it->second) {
    if (target != exclude) {
      out->forwards.push_back(Forward{target, Message::unsubscribe(xpe)});
    }
  }
  forwarded_to_.erase(it);
}

void Broker::handle_subscribe(int from, const SubscribeMsg& msg,
                              HandleResult* out) {
  if (clients_.count(from)) {
    client_subs_[from].push_back(msg.xpe);
  }
  Prt::InsertOutcome outcome = [&] {
    StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
    return prt_.insert(msg.xpe, from);
  }();
  if (outcome.was_new) ++new_subs_since_merge_;

  if (outcome.was_new) {
    // Per-interface covering decision happens inside forward_subscription:
    // the newcomer goes wherever no coverer already provides a route.
    forward_subscription(msg.xpe, from, out);
    // Withdraw the subscriptions the newcomer covers (paper §4.1) — but
    // only on interfaces the newcomer itself was forwarded to. On any
    // other interface (in particular the one it arrived from) the
    // newcomer provides no route, so the covered subscription must stay.
    if (config_.use_covering && !outcome.now_covered.empty()) {
      auto it = forwarded_to_.find(msg.xpe);
      if (it != forwarded_to_.end()) {
        for (const Xpe& covered : outcome.now_covered) {
          unsubscribe_covered(covered, it->second, out);
        }
      }
    }
  }

  if (config_.merging_enabled && prt_.covering() &&
      config_.merge_interval > 0 &&
      new_subs_since_merge_ >= config_.merge_interval) {
    run_merge_pass(out);
    new_subs_since_merge_ = 0;
  }
}

void Broker::handle_unsubscribe(int from, const UnsubscribeMsg& msg,
                                HandleResult* out) {
  if (clients_.count(from)) {
    auto it = client_subs_.find(from);
    if (it != client_subs_.end()) {
      auto& subs = it->second;
      auto pos = std::find(subs.begin(), subs.end(), msg.xpe);
      if (pos != subs.end()) subs.erase(pos);
    }
  }

  // Subscriptions the departing one covered (tree children and super
  // targets) may have been absorbed on its account: re-issue them after
  // removal (forward_subscription skips interfaces where another coverer
  // still provides the route).
  std::vector<Xpe> orphaned;
  if (prt_.covering()) {
    if (const SubscriptionTree::Node* node = prt_.tree()->find(msg.xpe)) {
      if (node->hops.size() == 1 && node->hops.count(from)) {
        for (const auto& child : node->children) {
          orphaned.push_back(child->xpe);
        }
        for (const SubscriptionTree::Node* target : node->super) {
          orphaned.push_back(target->xpe);
        }
      }
    }
  }

  bool removed;
  {
    StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
    removed = prt_.remove(msg.xpe, from);
  }
  if (!removed) return;
  if (prt_.contains(msg.xpe)) return;  // other hops still hold it
  forward_unsubscription(msg.xpe, from, out);

  for (const Xpe& xpe : orphaned) {
    forward_subscription(xpe, /*exclude=*/-1, out);
  }
}

void Broker::handle_publish(int from, const PublishMsg& msg,
                            HandleResult* out) {
  // Duplicate suppression: on overlays with cycles the same publication
  // can arrive over several paths; processing it once keeps routing loop-
  // free and deliveries exact.
  if (!seen_publications_.emplace(msg.doc_id, msg.path_id).second) return;

  std::set<int> hops;
  {
    StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
    if (prt_.covering()) {
      for (const SubscriptionTree::Node* node :
           prt_.tree()->match_nodes(msg.path)) {
        hops.insert(node->hops.begin(), node->hops.end());
        if (node->merger) {
          // A merger match that no merged original backs is an in-network
          // false positive introduced by imperfect merging (paper Fig. 9).
          bool backed = false;
          for (const Xpe& original : node->merged_from) {
            if (matches(msg.path, original)) {
              backed = true;
              break;
            }
          }
          if (!backed) ++out->merger_false_matches;
        }
      }
    } else {
      hops = prt_.match_hops(msg.path);
    }
  }
  out->publication_matched = !hops.empty();
  // The hop set deduplicates: several matching subscriptions sharing a
  // next hop yield one forwarded copy. Edge-exactness checks against the
  // clients' original XPEs count as forwarding work (stage attribution).
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  for (int hop : hops) {
    if (hop == from) continue;
    if (clients_.count(hop)) {
      // Edge exactness: deliver only if one of the client's original XPEs
      // matches; merged-entry surplus is a network-internal false positive
      // and is suppressed here (paper §4.3: "The false positives are not
      // delivered to subscribers").
      const std::vector<Xpe>* originals = client_subscriptions(hop);
      bool exact = false;
      if (originals) {
        for (const Xpe& original : *originals) {
          if (matches(msg.path, original)) {
            exact = true;
            break;
          }
        }
      }
      if (exact) {
        out->forwards.push_back(Forward{hop, Message{msg}});
        ++out->deliveries;
      } else {
        ++out->suppressed_false_positives;
      }
    } else {
      out->forwards.push_back(Forward{hop, Message{msg}});
    }
  }
}

void Broker::handle_sync_request(int from, HandleResult* out) {
  // A neighbour restarted cold: replay the slice of our state that
  // concerns the shared link. Restoration on the other side is passive, so
  // the transfer is bounded by this link's state — no network-wide storm.
  out->forwards.push_back(
      Forward{from, Message::sync_state(export_link_state(*this, from))});
}

void Broker::handle_sync_state(int from, const SyncStateMsg& msg,
                               HandleResult* out) {
  import_link_state(*this, from, msg.state);
  if (pending_syncs_ > 0 && --pending_syncs_ == 0) {
    out->resync_completed = true;
  }
}

void Broker::run_merge_pass(HandleResult* out) {
  MergeEngine engine(config_.merge_universe, config_.merge_options);
  MergeReport report = [&] {
    StageTimer merge_timer(stages_ ? &stages_->merge_ms : nullptr);
    return engine.run(*prt_.tree());
  }();
  merges_applied_ += report.merges.size();
  for (const MergeRecord& record : report.merges) {
    // Subscribe the merger upstream first so no delivery gap opens, then
    // withdraw the originals — only where the merger provides coverage.
    forward_subscription(record.merger, /*exclude=*/-1, out);
    const std::set<int>& coverage = forwarded_to_[record.merger];
    for (const Xpe& original : record.originals) {
      unsubscribe_covered(original, coverage, out);
    }
  }
}

}  // namespace xroute
