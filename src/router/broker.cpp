#include "router/broker.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "match/pub_match.hpp"
#include "router/match_scheduler.hpp"
#include "router/snapshot.hpp"

namespace xroute {

namespace {

/// Accrues the scope's wall-clock time into `*sink_ms`; inert (no clock
/// reads) when the sink is null. Instrumented regions are leaves — a
/// StageTimer scope never contains another — so stage times stay disjoint.
class StageTimer {
 public:
  explicit StageTimer(double* sink_ms) : sink_ms_(sink_ms) {
    if (sink_ms_) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (sink_ms_) {
      *sink_ms_ += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  double* sink_ms_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Broker::Broker(int id, Config config)
    : id_(id),
      config_(config),
      prt_(config.use_covering, config.track_covered) {
  if (std::string problem = config_.validate(); !problem.empty()) {
    throw std::invalid_argument("broker " + std::to_string(id) + ": " +
                                problem);
  }
  if (config_.match_threads > 1) {
    scheduler_ = std::make_unique<MatchScheduler>(MatchScheduler::Options{
        config_.match_threads, config_.effective_shards()});
  }
}

Broker::~Broker() = default;

Broker::Broker(Broker&& other)
    : id_(other.id_),
      config_(std::move(other.config_)),
      neighbors_(std::move(other.neighbors_)),
      clients_(std::move(other.clients_)),
      srt_(std::move(other.srt_)),
      prt_(std::move(other.prt_)),
      client_subs_(std::move(other.client_subs_)),
      forwarded_to_(std::move(other.forwarded_to_)),
      new_subs_since_merge_(other.new_subs_since_merge_),
      merges_applied_(other.merges_applied_),
      pending_syncs_(other.pending_syncs_),
      seen_publications_(std::move(other.seen_publications_)) {
  // The old worker pool (and its possibly in-flight pin) belongs to the
  // moved-from broker; tear it down and start a fresh pool and a fresh
  // snapshot store here.
  other.scheduler_.reset();
  if (config_.match_threads > 1) {
    scheduler_ = std::make_unique<MatchScheduler>(MatchScheduler::Options{
        config_.match_threads, config_.effective_shards()});
  }
  // The moved-in tables' dirty tracking may be clean (the old broker
  // already built a snapshot from them), but this object's store starts
  // empty — force a full rebuild on the first refresh.
  prt_.mark_snapshot_all_dirty();
  edge_dirty_ = true;
}

void Broker::add_neighbor(IfaceId interface_id) {
  neighbors_.insert(interface_id);
}

void Broker::add_client(IfaceId interface_id) {
  clients_.insert(interface_id);
  edge_dirty_ = true;
}

void Broker::refresh_snapshot() {
  if (!scheduler_ || defer_refresh_) return;
  if (!edge_dirty_ && !prt_.snapshot_dirty()) return;
  auto prev = snapshots_.current();
  auto next = snapshot_builder_.build(prt_, clients_, client_subs_,
                                      edge_dirty_, prev, snapshots_.gauge());
  // build() returns prev itself when the dirty keys recompiled to
  // identical content (control ops netted out): nothing to publish.
  if (next != prev) snapshots_.publish(std::move(next));
  prt_.clear_snapshot_dirty();
  edge_dirty_ = false;
}

void Broker::drop_interface(IfaceId interface_id, ForwardSink& sink) {
  // Route handback rides the ordinary withdrawal handlers, exactly as if
  // the departing peer had sent the unsubscribes/unadvertises itself:
  // covering re-issues orphaned children, unadvertise floods the
  // withdrawal, and neither ever forwards back toward `interface_id`.
  std::vector<Xpe> held;
  for (const auto& [xpe, hops] : prt_.entries_with_hops()) {
    if (hops.count(interface_id)) held.push_back(xpe);
  }
  HandleStatus ignored;
  for (const Xpe& xpe : held) {
    handle_unsubscribe(interface_id, UnsubscribeMsg{xpe}, sink, &ignored);
  }
  std::vector<Advertisement> advertised;
  for (const auto& entry : srt_.entries()) {
    if (entry->hops.count(interface_id)) {
      advertised.push_back(entry->advertisement);
    }
  }
  for (const Advertisement& adv : advertised) {
    handle_unadvertise(interface_id, UnadvertiseMsg{adv, /*origin=*/-1},
                       sink, &ignored);
  }
  neighbors_.erase(interface_id);
  clients_.erase(interface_id);
  client_subs_.erase(interface_id);
  edge_dirty_ = true;
  // Forwarding records may still name the interface (subscriptions we had
  // sent *to* the peer); scrub it so later unsubscriptions do not chase a
  // dead edge.
  for (auto it = forwarded_to_.begin(); it != forwarded_to_.end();) {
    it->second.erase(interface_id);
    it = it->second.empty() ? forwarded_to_.erase(it) : std::next(it);
  }
  refresh_snapshot();
}

const std::vector<Xpe>* Broker::client_subscriptions(
    IfaceId interface_id) const {
  auto it = client_subs_.find(interface_id);
  return it == client_subs_.end() ? nullptr : &it->second;
}

void Broker::restore_advertisement(const Advertisement& adv,
                                   const IfaceSet& hops) {
  for (IfaceId hop : hops) srt_.add(adv, hop);
}

void Broker::restore_subscription(const Xpe& xpe, const IfaceSet& hops) {
  for (IfaceId hop : hops) prt_.insert(xpe, hop);
}

void Broker::restore_merger(const Xpe& merger,
                            const std::vector<Xpe>& originals) {
  if (!prt_.covering()) return;
  if (SubscriptionTree::Node* node = prt_.tree()->find(merger)) {
    node->merger = true;
    node->merged_from = originals;
    node->snapshot_merged_from.reset();
    // Direct node surgery bypasses the tree's dirty tracking.
    prt_.mark_snapshot_all_dirty();
  }
}

void Broker::restore_client_table(IfaceId interface_id,
                                  std::vector<Xpe> xpes) {
  client_subs_[interface_id] = std::move(xpes);
  edge_dirty_ = true;
}

void Broker::restore_forwarding(const Xpe& xpe, IfaceSet interfaces) {
  forwarded_to_[xpe] = std::move(interfaces);
}

void Broker::restore_forwarding_add(const Xpe& xpe, IfaceId interface_id) {
  forwarded_to_[xpe].insert(interface_id);
}

Broker::HandleStatus Broker::handle(IfaceId from_interface, const Message& msg,
                                    ForwardSink& sink, StageTimings* stages) {
  if (stages && scheduler_) {
    // Stage regions are scoped to the calling thread; with the pool active
    // the match stage runs on workers and the numbers would be garbage.
    throw std::logic_error(
        "stage timings are incompatible with match_threads > 1");
  }
  stages_ = stages;
  HandleStatus out;
  switch (msg.type()) {
    case MessageType::kAdvertise:
      handle_advertise(from_interface, std::get<AdvertiseMsg>(msg.payload),
                       sink, &out);
      break;
    case MessageType::kSubscribe:
      handle_subscribe(from_interface, std::get<SubscribeMsg>(msg.payload),
                       sink, &out);
      break;
    case MessageType::kUnsubscribe:
      handle_unsubscribe(from_interface,
                         std::get<UnsubscribeMsg>(msg.payload), sink, &out);
      break;
    case MessageType::kPublish:
      handle_publish(from_interface, msg, {}, sink, &out);
      break;
    case MessageType::kUnadvertise:
      handle_unadvertise(from_interface,
                         std::get<UnadvertiseMsg>(msg.payload), sink, &out);
      break;
    case MessageType::kSyncRequest:
      handle_sync_request(from_interface, sink);
      break;
    case MessageType::kSyncState:
      handle_sync_state(from_interface, std::get<SyncStateMsg>(msg.payload),
                        &out);
      break;
  }
  // Control messages mutated the live tables above; publish the next
  // snapshot now, *without* waiting for any in-flight match epoch — the
  // epoch keeps its pinned version, future epochs see this one. (No-op
  // for publish messages: matching already refreshed, and matching
  // itself dirties nothing.)
  refresh_snapshot();
  stages_ = nullptr;
  return out;
}

Broker::HandleResult Broker::handle(IfaceId from_interface, const Message& msg,
                                    StageTimings* stages) {
  HandleResult result;
  CollectingSink sink(&result.forwards);
  static_cast<HandleStatus&>(result) = handle(from_interface, msg, sink,
                                              stages);
  return result;
}

Broker::HandleStatus Broker::handle_batch(std::span<const Inbound> batch,
                                          ForwardSink& sink) {
  HandleStatus total;
  std::size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].msg->type() != MessageType::kPublish) {
      total += handle(batch[i].from, *batch[i].msg, sink);
      ++i;
      continue;
    }
    if (!scheduler_) {
      HandleStatus out;
      handle_publish(batch[i].from, *batch[i].msg, batch[i].frame, sink,
                     &out);
      total += out;
      ++i;
      continue;
    }
    // A run of consecutive publications: one scheduler epoch for the
    // whole run, matched against the snapshot pinned here. While the
    // workers match, this thread processes the control messages that
    // follow the run — their table mutations cannot affect the pinned
    // snapshot, and their outgoing messages are buffered and replayed
    // after the run's forwards, so the sink sees exactly the sequential
    // emission order.
    std::size_t end = i;
    while (end < batch.size() &&
           batch[end].msg->type() == MessageType::kPublish) {
      ++end;
    }
    batch_pubs_.clear();
    batch_envelopes_.clear();
    batch_froms_.clear();
    batch_frames_.clear();
    batch_paths_.clear();
    batch_pubs_.reserve(end - i);
    for (std::size_t j = i; j < end; ++j) {
      const auto& pub = std::get<PublishMsg>(batch[j].msg->payload);
      // Duplicate suppression runs sequentially up front, exactly as the
      // per-message path would: later copies in the same batch are dropped
      // before any matching happens.
      if (!seen_publications_.insert(pub.doc_id, pub.path_id)) {
        continue;
      }
      batch_pubs_.push_back(&pub);
      batch_envelopes_.push_back(batch[j].msg);
      batch_froms_.push_back(batch[j].from);
      batch_frames_.push_back(batch[j].frame);
      batch_paths_.push_back(&pub.path);
    }
    if (batch_paths_.empty()) {
      i = end;
      continue;
    }
    refresh_snapshot();
    std::shared_ptr<const RoutingSnapshot> pinned = snapshots_.current();
    scheduler_->begin_batch(batch_paths_, pinned);
    // The pipelined control window: handle the control messages that
    // follow the publication run while the epoch is still in flight.
    // Each one completes — tables mutated, outgoing control traffic
    // emitted — without waiting for the workers (the no-quiesce-barrier
    // property). Snapshot publication is coalesced across the window
    // (defer_refresh_): no epoch can pin between these ops, so one
    // publish at the next pin covers them all, and ops that net out
    // inside the window (subscribe + unsubscribe of the same XPE) never
    // cost a bucket recompile at all.
    std::size_t next = end;
    window_sink_.clear();
    defer_refresh_ = true;
    while (next < batch.size() &&
           batch[next].msg->type() != MessageType::kPublish) {
      total += handle(batch[next].from, *batch[next].msg, window_sink_);
      ++next;
    }
    defer_refresh_ = false;
    scheduler_->finish_batch(&batch_results_);
    std::size_t comparisons = 0;
    for (std::size_t k = 0; k < batch_pubs_.size(); ++k) {
      HandleStatus out;
      out.publication_matched = !batch_results_[k].hops.empty();
      out.merger_false_matches = batch_results_[k].merger_false_matches;
      comparisons += batch_results_[k].comparisons;
      // Forward against the pinned view: the window's control ops may
      // already have changed the live edge state, but these publications
      // were matched before them.
      forward_publication(batch_froms_[k], *batch_envelopes_[k],
                          *batch_pubs_[k], batch_results_[k].hops,
                          batch_frames_[k], pinned.get(), sink, &out);
      total += out;
    }
    prt_.add_comparisons(comparisons);
    window_sink_.replay(sink);
    i = next;
  }
  return total;
}

void Broker::handle_advertise(IfaceId from, const AdvertiseMsg& msg,
                              ForwardSink& sink, HandleStatus* out) {
  (void)out;
  bool is_new;
  {
    StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
    is_new = srt_.add(msg.advertisement, from);
  }
  if (!is_new) return;

  // Flood the advertisement to every other neighbour (paper §2.1:
  // "advertisements are flooded in the publish/subscribe overlay").
  {
    StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
    for (IfaceId neighbor : neighbors_) {
      if (neighbor != from) {
        sink.on_forward(neighbor,
                        Message::advertise(msg.advertisement,
                                           msg.origin_broker));
      }
    }
  }

  // Route existing (top-level, uncovered) subscriptions toward the new
  // advertisement: publishers may connect after subscribers did. Only
  // relevant under advertisement-based routing and only over broker links
  // (an advertisement from a local publisher terminates here — this broker
  // is the root of its advertisement tree).
  if (!config_.use_advertisements || neighbors_.count(from) == 0) return;

  StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
  const Srt::Entry* entry = srt_.find(msg.advertisement);
  if (!entry) return;

  for (const Xpe& xpe : prt_.top_level_xpes()) {
    if (!srt_.entry_overlaps(*entry, xpe)) continue;
    IfaceSet& sent = forwarded_to_[xpe];
    if (sent.insert(from).second) {
      sink.on_forward(from, Message::subscribe(xpe));
    }
  }
}

void Broker::handle_unadvertise(IfaceId from, const UnadvertiseMsg& msg,
                                ForwardSink& sink, HandleStatus* out) {
  (void)out;
  // Withdraw the advertisement for this hop; once no hop holds it the
  // withdrawal floods on, mirroring the advertisement flood. Forwarded
  // subscriptions are left in place: they become stale routing state, not
  // incorrect behaviour (publications simply stop flowing from there).
  if (!srt_.remove(msg.advertisement, from)) return;
  if (srt_.contains(msg.advertisement)) return;
  for (IfaceId neighbor : neighbors_) {
    if (neighbor != from) {
      sink.on_forward(neighbor, Message::unadvertise(msg.advertisement,
                                                     msg.origin_broker));
    }
  }
}

IfaceSet Broker::subscription_targets(const Xpe& xpe, IfaceId exclude) const {
  StageTimer srt_timer(stages_ ? &stages_->srt_check_ms : nullptr);
  IfaceSet targets;
  if (config_.use_advertisements) {
    for (IfaceId hop : srt_.hops_overlapping(xpe)) {
      // Only broker links: a hop can be a publisher client's interface
      // (the advertisement entered here); matching then happens locally.
      if (neighbors_.count(hop) && hop != exclude) targets.insert(hop);
    }
  } else {
    for (IfaceId neighbor : neighbors_) {
      if (neighbor != exclude) targets.insert(neighbor);
    }
  }
  return targets;
}

IfaceSet Broker::coverage_interfaces(const Xpe& xpe) const {
  IfaceSet out;
  if (!prt_.covering()) return out;
  const SubscriptionTree::Node* node = prt_.tree()->find(xpe);
  if (!node) return out;
  auto add_chain = [&](const SubscriptionTree::Node* start) {
    // Walk a coverer chain toward the root (every ancestor covers xpe by
    // transitivity); union the interfaces each coverer was forwarded to.
    for (const SubscriptionTree::Node* walk = start; walk && walk->parent;
         walk = walk->parent) {
      auto it = forwarded_to_.find(walk->xpe);
      if (it != forwarded_to_.end()) {
        out.insert(it->second.begin(), it->second.end());
      }
    }
  };
  add_chain(node->parent);
  for (const SubscriptionTree::Node* source : node->super_sources) {
    add_chain(source);
  }
  return out;
}

void Broker::forward_subscription(const Xpe& xpe, IfaceId exclude,
                                  ForwardSink& sink) {
  IfaceSet& sent = forwarded_to_[xpe];
  IfaceSet covered_on;
  if (config_.use_covering) covered_on = coverage_interfaces(xpe);
  IfaceSet targets = subscription_targets(xpe, exclude);
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  for (IfaceId target : targets) {
    if (covered_on.count(target)) continue;  // a coverer routes this way
    if (sent.insert(target).second) {
      sink.on_forward(target, Message::subscribe(xpe));
    }
  }
  if (sent.empty()) forwarded_to_.erase(xpe);
}

void Broker::unsubscribe_covered(const Xpe& covered, const IfaceSet& via,
                                 ForwardSink& sink) {
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  auto it = forwarded_to_.find(covered);
  if (it == forwarded_to_.end()) return;
  for (IfaceId target : via) {
    if (it->second.erase(target) > 0) {
      sink.on_forward(target, Message::unsubscribe(covered));
    }
  }
  if (it->second.empty()) forwarded_to_.erase(it);
}

void Broker::forward_unsubscription(const Xpe& xpe, IfaceId exclude,
                                    ForwardSink& sink) {
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  auto it = forwarded_to_.find(xpe);
  if (it == forwarded_to_.end()) return;
  for (IfaceId target : it->second) {
    if (target != exclude) {
      sink.on_forward(target, Message::unsubscribe(xpe));
    }
  }
  forwarded_to_.erase(it);
}

void Broker::handle_subscribe(IfaceId from, const SubscribeMsg& msg,
                              ForwardSink& sink, HandleStatus* out) {
  (void)out;
  if (clients_.count(from)) {
    client_subs_[from].push_back(msg.xpe);
    edge_dirty_ = true;
  }
  Prt::InsertOutcome outcome = [&] {
    StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
    return prt_.insert(msg.xpe, from);
  }();
  if (outcome.was_new) ++new_subs_since_merge_;

  if (!outcome.was_new) {
    // The same XPE held from another interface already forwarded almost
    // everywhere — except toward its own earlier arrival interfaces,
    // which until now had no reason to route publications our way. The
    // new holder changes that: re-run the forwarding decision, which
    // reaches exactly the interfaces not yet sent to (typically the
    // first arrival's) and nothing else. Without this, two identical
    // subscriptions on opposite sides of the overlay starve each other.
    forward_subscription(msg.xpe, from, sink);
    return;
  }

  if (outcome.was_new) {
    // Per-interface covering decision happens inside forward_subscription:
    // the newcomer goes wherever no coverer already provides a route.
    forward_subscription(msg.xpe, from, sink);
    // Withdraw the subscriptions the newcomer covers (paper §4.1) — but
    // only on interfaces the newcomer itself was forwarded to. On any
    // other interface (in particular the one it arrived from) the
    // newcomer provides no route, so the covered subscription must stay.
    if (config_.use_covering && !outcome.now_covered.empty()) {
      auto it = forwarded_to_.find(msg.xpe);
      if (it != forwarded_to_.end()) {
        for (const Xpe& covered : outcome.now_covered) {
          unsubscribe_covered(covered, it->second, sink);
        }
      }
    }
  }

  if (config_.merging_enabled && prt_.covering() &&
      config_.merge_interval > 0 &&
      new_subs_since_merge_ >= config_.merge_interval) {
    run_merge_pass(sink);
    new_subs_since_merge_ = 0;
  }
}

void Broker::handle_unsubscribe(IfaceId from, const UnsubscribeMsg& msg,
                                ForwardSink& sink, HandleStatus* out) {
  (void)out;
  if (clients_.count(from)) {
    auto it = client_subs_.find(from);
    if (it != client_subs_.end()) {
      auto& subs = it->second;
      auto pos = std::find(subs.begin(), subs.end(), msg.xpe);
      if (pos != subs.end()) {
        subs.erase(pos);
        edge_dirty_ = true;
      }
    }
  }

  // Subscriptions the departing one covered (tree children and super
  // targets) may have been absorbed on its account: re-issue them after
  // removal (forward_subscription skips interfaces where another coverer
  // still provides the route).
  std::vector<Xpe> orphaned;
  if (prt_.covering()) {
    if (const SubscriptionTree::Node* node = prt_.tree()->find(msg.xpe)) {
      if (node->hops.size() == 1 && node->hops.count(from)) {
        for (const auto& child : node->children) {
          orphaned.push_back(child->xpe);
        }
        for (const SubscriptionTree::Node* target : node->super) {
          orphaned.push_back(target->xpe);
        }
      }
    }
  }

  bool removed;
  {
    StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
    removed = prt_.remove(msg.xpe, from);
  }
  if (!removed) return;
  if (prt_.contains(msg.xpe)) return;  // other hops still hold it
  forward_unsubscription(msg.xpe, from, sink);

  for (const Xpe& xpe : orphaned) {
    forward_subscription(xpe, kNoIface, sink);
  }
}

std::vector<IfaceId> Broker::match_publication(const PublishMsg& msg,
                                               HandleStatus* out) {
  if (scheduler_) {
    // Match against the current snapshot (refreshed here if any control
    // op dirtied the tables since the last build).
    refresh_snapshot();
    MatchScheduler::MatchResult result =
        scheduler_->match_one(msg.path, snapshots_.current());
    out->merger_false_matches += result.merger_false_matches;
    prt_.add_comparisons(result.comparisons);
    return std::move(result.hops);
  }
  std::vector<IfaceId> hops;
  StageTimer match_timer(stages_ ? &stages_->prt_match_ms : nullptr);
  if (prt_.covering()) {
    for (const SubscriptionTree::Node* node :
         prt_.tree()->match_nodes(msg.path)) {
      hops.insert(hops.end(), node->hops.begin(), node->hops.end());
      if (node->merger) {
        // A merger match that no merged original backs is an in-network
        // false positive introduced by imperfect merging (paper Fig. 9).
        bool backed = false;
        for (const Xpe& original : node->merged_from) {
          if (matches(msg.path, original)) {
            backed = true;
            break;
          }
        }
        if (!backed) ++out->merger_false_matches;
      }
    }
    std::sort(hops.begin(), hops.end());
    hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
  } else {
    IfaceSet set = prt_.match_hops(msg.path);
    hops.assign(set.begin(), set.end());
  }
  return hops;
}

void Broker::forward_publication(IfaceId from, const Message& envelope,
                                 const PublishMsg& msg,
                                 std::span<const IfaceId> hops,
                                 std::span<const std::uint8_t> frame,
                                 const RoutingSnapshot* view,
                                 ForwardSink& sink, HandleStatus* out) {
  // The hop list is sorted and deduplicated: several matching
  // subscriptions sharing a next hop yield one forwarded copy, and the
  // ascending order is the determinism anchor for the parallel engine.
  // Edge-exactness checks against the clients' original XPEs count as
  // forwarding work (stage attribution).
  StageTimer forward_timer(stages_ ? &stages_->forward_ms : nullptr);
  if (hops.empty() || (hops.size() == 1 && hops.front() == from)) return;
  // The caller's envelope is shared by every hop — no per-publication
  // Message copy; sinks that need ownership copy at the edge, and the
  // transport resends `frame` without touching the Message at all.
  for (IfaceId hop : hops) {
    if (hop == from) continue;
    const bool hop_is_client =
        view ? view->is_client(hop) : clients_.count(hop) > 0;
    if (hop_is_client) {
      // Edge exactness: deliver only if one of the client's original XPEs
      // matches; merged-entry surplus is a network-internal false positive
      // and is suppressed here (paper §4.3: "The false positives are not
      // delivered to subscribers").
      const std::vector<Xpe>* originals =
          view ? view->client_subscriptions(hop) : client_subscriptions(hop);
      bool exact = false;
      if (originals) {
        for (const Xpe& original : *originals) {
          if (matches(msg.path, original)) {
            exact = true;
            break;
          }
        }
      }
      if (exact) {
        sink.on_local_delivery_pub(hop, envelope, frame);
        ++out->deliveries;
      } else {
        sink.on_suppressed(hop, envelope);
        ++out->suppressed_false_positives;
      }
    } else {
      sink.on_forward_pub(hop, envelope, frame);
    }
  }
}

void Broker::handle_publish(IfaceId from, const Message& envelope,
                            std::span<const std::uint8_t> frame,
                            ForwardSink& sink, HandleStatus* out) {
  const auto& msg = std::get<PublishMsg>(envelope.payload);
  // Duplicate suppression: on overlays with cycles the same publication
  // can arrive over several paths; processing it once keeps routing loop-
  // free and deliveries exact.
  if (!seen_publications_.insert(msg.doc_id, msg.path_id)) return;

  std::vector<IfaceId> hops = match_publication(msg, out);
  out->publication_matched = !hops.empty();
  // No view: nothing ran between match and forward, the live edge state
  // is the matched-against state.
  forward_publication(from, envelope, msg, hops, frame, nullptr, sink, out);
}

void Broker::handle_sync_request(IfaceId from, ForwardSink& sink) {
  // A neighbour restarted cold: replay the slice of our state that
  // concerns the shared link. Restoration on the other side is passive, so
  // the transfer is bounded by this link's state — no network-wide storm.
  sink.on_forward(from,
                  Message::sync_state(export_link_state(*this, from)));
}

void Broker::handle_sync_state(IfaceId from, const SyncStateMsg& msg,
                               HandleStatus* out) {
  import_link_state(*this, from, msg.state);
  if (pending_syncs_ > 0 && --pending_syncs_ == 0) {
    out->resync_completed = true;
  }
}

void Broker::run_merge_pass(ForwardSink& sink) {
  MergeEngine engine(config_.merge_universe, config_.merge_options);
  MergeReport report = [&] {
    StageTimer merge_timer(stages_ ? &stages_->merge_ms : nullptr);
    return engine.run(*prt_.tree());
  }();
  merges_applied_ += report.merges.size();
  for (const MergeRecord& record : report.merges) {
    // Subscribe the merger upstream first so no delivery gap opens, then
    // withdraw the originals — only where the merger provides coverage.
    forward_subscription(record.merger, kNoIface, sink);
    const IfaceSet& coverage = forwarded_to_[record.merger];
    for (const Xpe& original : record.originals) {
      unsubscribe_covered(original, coverage, sink);
    }
  }
}

}  // namespace xroute
