// The XML content-based router ("broker", paper Fig. 1).
//
// A broker owns an SRT and a PRT, knows its neighbour links and locally
// attached clients (both addressed by interface ids), and implements the
// routing strategies the paper evaluates:
//
//   * advertisement-based routing — advertisements flood; subscriptions
//     follow SRT entries whose publication sets overlap them; without
//     advertisements, subscriptions flood.
//   * covering-based routing — a subscription covered by an existing one
//     is absorbed (not forwarded); a subscription that covers existing
//     ones triggers upstream unsubscription of the covered ones.
//   * merging — a periodic merge pass compacts the PRT; the merger is
//     subscribed upstream and the originals unsubscribed.
//
// Edge exactness: a broker delivers a publication to a local client only
// if one of the client's *original* XPEs matches, so false positives from
// imperfect merging stay inside the network (paper §4.3/§5).
//
// The broker is a pure message transformer: handle() maps one incoming
// message to the set of outgoing (interface, message) pairs; the
// discrete-event simulator (src/net) provides transport and timing.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <set>
#include <unordered_map>
#include <vector>

#include "index/merging.hpp"
#include "router/message.hpp"
#include "router/routing_tables.hpp"

namespace xroute {

class Broker {
 public:
  struct Config {
    bool use_advertisements = true;
    bool use_covering = true;
    /// Track subscriptions a newcomer covers (enables the upstream
    /// unsubscription optimisation; costs an extra tree sweep per insert).
    bool track_covered = true;
    bool merging_enabled = false;
    MergeOptions merge_options;
    /// Path universe for D_imperfect (required for merging to take effect).
    const PathUniverse* merge_universe = nullptr;
    /// Run a merge pass after this many newly inserted subscriptions.
    std::size_t merge_interval = 100;
  };

  struct Forward {
    int interface = -1;
    Message message;
  };

  /// Wall-clock milliseconds spent in each processing stage of one
  /// handle() call, for the tracer's stage sub-spans (obs/trace.hpp).
  /// The regions are disjoint (no nesting), so their sum never exceeds
  /// the call's total; whatever is not attributed here — message decode,
  /// dispatch, bookkeeping — shows up as the "parse" remainder computed
  /// by the simulator. Only filled when a sink is passed to handle(), so
  /// untraced runs pay no clock reads.
  struct StageTimings {
    double srt_check_ms = 0.0;  ///< SRT adds + overlap checks
    double prt_match_ms = 0.0;  ///< PRT inserts/removals + match walks
    double merge_ms = 0.0;      ///< merge-engine pass
    double forward_ms = 0.0;    ///< assembling outgoing forwards
  };

  struct HandleResult {
    std::vector<Forward> forwards;
    /// Publications that matched a (merged) PRT entry pointing at a local
    /// client but none of the client's own XPEs: suppressed at the edge.
    std::size_t suppressed_false_positives = 0;
    /// Publications delivered to local clients in this call.
    std::size_t deliveries = 0;
    /// Publication matched at least one PRT entry here.
    bool publication_matched = false;
    /// Matches against merger entries not backed by any merged original:
    /// the paper's in-network false positives (Fig. 9).
    std::size_t merger_false_matches = 0;
    /// This message completed the crash-recovery handshake: the last
    /// outstanding SyncState arrived (the transport layer may now replay
    /// local-client control state).
    bool resync_completed = false;
  };

  Broker(int id, Config config);

  /// Declares `interface_id` as a link to a neighbouring broker.
  void add_neighbor(int interface_id);
  /// Declares `interface_id` as a locally attached client.
  void add_client(int interface_id);

  /// Processes one message arriving on `from_interface` (use the client's
  /// interface id for client-issued messages). A non-null `stages` sink
  /// collects per-stage wall-clock time (traced runs only).
  HandleResult handle(int from_interface, const Message& msg,
                      StageTimings* stages = nullptr);

  int id() const { return id_; }
  const Config& config() const { return config_; }
  std::size_t prt_size() const { return prt_.size(); }
  std::size_t srt_size() const { return srt_.size(); }
  std::size_t comparisons() const {
    return prt_.comparisons() + srt_.comparisons();
  }
  std::size_t merges_applied() const { return merges_applied_; }
  const std::set<int>& neighbors() const { return neighbors_; }
  const std::vector<Xpe>* client_subscriptions(int interface_id) const;

  // -- Snapshot support (router/snapshot.h) --------------------------------
  const Srt& srt() const { return srt_; }
  const Prt& prt() const { return prt_; }
  Prt& prt() { return prt_; }
  const std::map<int, std::vector<Xpe>>& client_tables() const {
    return client_subs_;
  }
  const std::unordered_map<Xpe, std::set<int>, XpeHash>& forwarding_record()
      const {
    return forwarded_to_;
  }
  /// Restore-time mutators: rebuild state without emitting messages.
  void restore_advertisement(const Advertisement& adv, const std::set<int>& hops);
  void restore_subscription(const Xpe& xpe, const std::set<int>& hops);
  void restore_merger(const Xpe& merger, const std::vector<Xpe>& originals);
  void restore_client_table(int interface_id, std::vector<Xpe> xpes);
  void restore_forwarding(const Xpe& xpe, std::set<int> interfaces);
  /// Adds one interface to a forwarding record (link resync restores the
  /// per-link slice without clobbering records from other links).
  void restore_forwarding_add(const Xpe& xpe, int interface_id);

  // -- Crash recovery (router/snapshot.h link-state transfer) --------------
  /// Arms the resync handshake after a cold restart: the broker expects
  /// `outstanding` SyncState replies (one per neighbour link); the handle()
  /// call processing the last one reports resync_completed.
  void begin_resync(std::size_t outstanding) { pending_syncs_ = outstanding; }
  std::size_t pending_syncs() const { return pending_syncs_; }

 private:
  void handle_advertise(int from, const AdvertiseMsg& msg, HandleResult* out);
  void handle_unadvertise(int from, const UnadvertiseMsg& msg,
                          HandleResult* out);
  void handle_subscribe(int from, const SubscribeMsg& msg, HandleResult* out);
  void handle_unsubscribe(int from, const UnsubscribeMsg& msg,
                          HandleResult* out);
  void handle_publish(int from, const PublishMsg& msg, HandleResult* out);
  void handle_sync_request(int from, HandleResult* out);
  void handle_sync_state(int from, const SyncStateMsg& msg, HandleResult* out);
  void run_merge_pass(HandleResult* out);

  /// Next-hop broker interfaces for a subscription: SRT overlap when
  /// advertisements are on, otherwise every neighbour. `exclude` is the
  /// arrival interface.
  std::set<int> subscription_targets(const Xpe& xpe, int exclude) const;

  /// Sends `subscribe(xpe)` to every target not yet holding it and records
  /// the forwarding. Under covering-based routing the decision is made
  /// per interface: a target is skipped only when some subscription
  /// covering `xpe` has already been forwarded there (a coverer provides
  /// no route on the interface it arrived from, so global absorption
  /// would lose deliveries).
  void forward_subscription(const Xpe& xpe, int exclude, HandleResult* out);

  /// Interfaces on which some covering subscription already provides a
  /// route for `xpe` (union of the coverers' forwarding records).
  std::set<int> coverage_interfaces(const Xpe& xpe) const;

  /// Sends `unsubscribe(xpe)` along the recorded forwarding paths.
  void forward_unsubscription(const Xpe& xpe, int exclude, HandleResult* out);

  /// Withdraws a covered subscription, but only on interfaces in `via`
  /// (where the covering subscription provides a route); its forwarding
  /// record shrinks accordingly.
  void unsubscribe_covered(const Xpe& covered, const std::set<int>& via,
                           HandleResult* out);

  int id_;
  Config config_;
  /// Stage sink of the handle() call in flight (null = untraced).
  StageTimings* stages_ = nullptr;
  std::set<int> neighbors_;
  std::set<int> clients_;
  Srt srt_;
  Prt prt_;
  /// Original XPEs per locally attached client (edge exactness).
  std::map<int, std::vector<Xpe>> client_subs_;
  /// Interfaces each subscription was forwarded to (for unsubscription).
  std::unordered_map<Xpe, std::set<int>, XpeHash> forwarded_to_;
  std::size_t new_subs_since_merge_ = 0;
  std::size_t merges_applied_ = 0;
  /// SyncState replies still outstanding after a cold restart (0 = not
  /// resyncing).
  std::size_t pending_syncs_ = 0;
  /// Publications already processed, for duplicate suppression on cyclic
  /// overlays (a publication can arrive over several paths; forwarding it
  /// again would loop). Keyed by (doc id, path id).
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen_publications_;
};

}  // namespace xroute
