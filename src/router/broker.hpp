// The XML content-based router ("broker", paper Fig. 1).
//
// A broker owns an SRT and a PRT, knows its neighbour links and locally
// attached clients (both addressed by strong IfaceId interface ids), and
// implements the routing strategies the paper evaluates:
//
//   * advertisement-based routing — advertisements flood; subscriptions
//     follow SRT entries whose publication sets overlap them; without
//     advertisements, subscriptions flood.
//   * covering-based routing — a subscription covered by an existing one
//     is absorbed (not forwarded); a subscription that covers existing
//     ones triggers upstream unsubscription of the covered ones.
//   * merging — a periodic merge pass compacts the PRT; the merger is
//     subscribed upstream and the originals unsubscribed.
//
// Edge exactness: a broker delivers a publication to a local client only
// if one of the client's *original* XPEs matches, so false positives from
// imperfect merging stay inside the network (paper §4.3/§5).
//
// The broker is a pure message transformer: handle() maps one incoming
// message to a stream of outgoing (interface, message) pairs pushed into a
// ForwardSink; the discrete-event simulator (src/net) and the TCP
// transport (src/transport) provide transport and timing. With
// match_threads > 1 in BrokerOptions, publication matching fans out over
// the scheduler's worker pool (router/match_scheduler.hpp); results are
// merged back in deterministic order, so the sink observes the exact
// forward sequence a sequential broker would emit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "index/merging.hpp"
#include "router/broker_options.hpp"
#include "router/iface.hpp"
#include "router/match_scheduler.hpp"
#include "router/message.hpp"
#include "router/routing_snapshot.hpp"
#include "router/routing_tables.hpp"
#include "router/seen_window.hpp"

namespace xroute {

/// Receiver of a broker's outgoing messages. handle() pushes each
/// (interface, message) pair the moment it is decided, in the exact order
/// a sequential broker emits them — transports can put frames on the wire
/// without waiting for the whole call to finish, and tests can byte-compare
/// the sequence across thread counts.
class ForwardSink {
 public:
  virtual ~ForwardSink() = default;

  /// An outgoing message on `iface` (neighbour link or client edge).
  /// Local client deliveries route through on_local_delivery first; its
  /// default lands them here, so a sink that treats every send alike
  /// overrides only this.
  virtual void on_forward(IfaceId iface, const Message& msg) = 0;

  /// A publication that passed the edge-exactness check for local client
  /// `client`. Default: treat as an ordinary forward.
  virtual void on_local_delivery(IfaceId client, const Message& msg) {
    on_forward(client, msg);
  }

  /// A publication that matched a (merged) PRT entry pointing at local
  /// client `client` but none of the client's own XPEs: suppressed at the
  /// edge, nothing is sent. Default: ignore.
  virtual void on_suppressed(IfaceId client, const Message& msg) {
    (void)client;
    (void)msg;
  }

  /// A publication forward for which the broker still holds the exact
  /// wire frame it arrived in. `frame` is borrowed — valid only for the
  /// duration of the call — and empty when the publication entered
  /// through a frameless path (tests, the simulator). A transport sink
  /// overrides this to put the original bytes straight back on the wire
  /// instead of re-encoding per hop; the default falls through to
  /// on_forward, so sinks that do not care about frames never see them.
  virtual void on_forward_pub(IfaceId iface, const Message& msg,
                              std::span<const std::uint8_t> frame) {
    (void)frame;
    on_forward(iface, msg);
  }

  /// Frame-carrying twin of on_local_delivery; same default chain.
  virtual void on_local_delivery_pub(IfaceId client, const Message& msg,
                                     std::span<const std::uint8_t> frame) {
    (void)frame;
    on_local_delivery(client, msg);
  }
};

class Broker {
 public:
  /// All knobs live in router/broker_options.hpp; `Broker::Config` remains
  /// as the historical spelling.
  using Config = BrokerOptions;

  struct Forward {
    IfaceId interface = kNoIface;
    Message message;
  };

  /// Collects every outgoing message into a vector, preserving emission
  /// order. The adapter behind the legacy HandleResult API; also the
  /// natural sink for tests.
  class CollectingSink : public ForwardSink {
   public:
    explicit CollectingSink(std::vector<Forward>* out) : out_(out) {}
    void on_forward(IfaceId iface, const Message& msg) override {
      out_->push_back(Forward{iface, msg});
    }

   private:
    std::vector<Forward>* out_;
  };

  /// Wall-clock milliseconds spent in each processing stage of one
  /// handle() call, for the tracer's stage sub-spans (obs/trace.hpp).
  /// The regions are disjoint (no nesting), so their sum never exceeds
  /// the call's total; whatever is not attributed here — message decode,
  /// dispatch, bookkeeping — shows up as the "parse" remainder computed
  /// by the simulator. Only filled when a sink is passed to handle(), so
  /// untraced runs pay no clock reads. Incompatible with match_threads > 1
  /// (stage regions would overlap across workers): handle() throws.
  struct StageTimings {
    double srt_check_ms = 0.0;  ///< SRT adds + overlap checks
    double prt_match_ms = 0.0;  ///< PRT inserts/removals + match walks
    double merge_ms = 0.0;      ///< merge-engine pass
    double forward_ms = 0.0;    ///< assembling outgoing forwards
  };

  /// Per-call counters; the messages themselves go to the ForwardSink.
  struct HandleStatus {
    /// Publications that matched a (merged) PRT entry pointing at a local
    /// client but none of the client's own XPEs: suppressed at the edge.
    std::size_t suppressed_false_positives = 0;
    /// Publications delivered to local clients in this call.
    std::size_t deliveries = 0;
    /// Publication matched at least one PRT entry here.
    bool publication_matched = false;
    /// Matches against merger entries not backed by any merged original:
    /// the paper's in-network false positives (Fig. 9).
    std::size_t merger_false_matches = 0;
    /// This message completed the crash-recovery handshake: the last
    /// outstanding SyncState arrived (the transport layer may now replay
    /// local-client control state).
    bool resync_completed = false;

    HandleStatus& operator+=(const HandleStatus& other) {
      suppressed_false_positives += other.suppressed_false_positives;
      deliveries += other.deliveries;
      publication_matched = publication_matched || other.publication_matched;
      merger_false_matches += other.merger_false_matches;
      resync_completed = resync_completed || other.resync_completed;
      return *this;
    }
  };

  /// Legacy value-returning shape: HandleStatus plus the collected
  /// forwards. Kept so callers that want the whole result as a value
  /// (tests, the simulator's tracing hooks) stay one call.
  struct HandleResult : HandleStatus {
    std::vector<Forward> forwards;
  };

  /// One queued inbound message, for handle_batch(). The message is
  /// borrowed, not owned — it must stay alive for the call. `frame` is
  /// the message's wire frame when the caller has it (the transport
  /// inbox); publications carrying one are forwarded via the sink's
  /// frame-aware hooks so transports can resend the bytes untouched.
  struct Inbound {
    IfaceId from = kNoIface;
    const Message* msg = nullptr;
    std::span<const std::uint8_t> frame{};
  };

  /// Throws std::invalid_argument if `config.validate()` rejects the
  /// combination.
  Broker(int id, Config config);
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;
  /// Move tears down the old worker pool and starts a fresh one with a
  /// fresh snapshot store (the first refresh rebuilds in full). Only
  /// legal whenever no handle() call is in flight — the broker's usual
  /// single-writer rule.
  Broker(Broker&& other);
  Broker& operator=(Broker&&) = delete;

  /// Declares `interface_id` as a link to a neighbouring broker.
  void add_neighbor(IfaceId interface_id);
  /// Declares `interface_id` as a locally attached client.
  void add_client(IfaceId interface_id);

  /// Withdraws everything routed through `interface_id` and forgets the
  /// interface: every subscription held via it is unsubscribed (covered
  /// children re-issued where still needed) and every advertisement that
  /// arrived through it is withdrawn, with the resulting control traffic
  /// pushed into `sink` toward the remaining interfaces. This is the
  /// routing half of a planned leave (peer said goodbye) or a confirmed
  /// failure (heartbeat down, no rejoin) — a transient disconnect keeps
  /// the state instead, betting on reconnection.
  void drop_interface(IfaceId interface_id, ForwardSink& sink);

  /// Processes one message arriving on `from_interface` (use the client's
  /// interface id for client-issued messages), pushing outgoing messages
  /// into `sink` in deterministic order. A non-null `stages` sink collects
  /// per-stage wall-clock time (traced sequential runs only; throws
  /// std::logic_error when combined with match_threads > 1).
  HandleStatus handle(IfaceId from_interface, const Message& msg,
                      ForwardSink& sink, StageTimings* stages = nullptr);

  /// Value-returning wrapper over a CollectingSink.
  HandleResult handle(IfaceId from_interface, const Message& msg,
                      StageTimings* stages = nullptr);

  /// Processes a queue of inbound messages in order, returning the summed
  /// status. Semantically identical to calling handle() per element —
  /// the sink sees the concatenation of the per-message sequences — but
  /// with match_threads > 1, runs of consecutive publications are matched
  /// as one scheduler epoch (publication × shard task grid), which is
  /// where the parallel engine earns its throughput.
  HandleStatus handle_batch(std::span<const Inbound> batch, ForwardSink& sink);

  int id() const { return id_; }
  const Config& config() const { return config_; }
  std::size_t prt_size() const { return prt_.size(); }
  std::size_t srt_size() const { return srt_.size(); }
  std::size_t comparisons() const {
    return prt_.comparisons() + srt_.comparisons();
  }
  std::size_t merges_applied() const { return merges_applied_; }
  const IfaceSet& neighbors() const { return neighbors_; }
  const IfaceSet& clients() const { return clients_; }
  const std::vector<Xpe>* client_subscriptions(IfaceId interface_id) const;

  /// The parallel engine, or nullptr when match_threads == 1 (metrics
  /// export and tests).
  const MatchScheduler* scheduler() const { return scheduler_.get(); }

  /// The RCU snapshot machinery (router/routing_snapshot.hpp): the store
  /// holding the current published snapshot and the builder's structural-
  /// sharing counters. Only meaningful with match_threads > 1 (the
  /// sequential path matches the live tables directly); tests and
  /// bench/churn read these.
  const SnapshotStore& snapshot_store() const { return snapshots_; }
  const SnapshotBuilder& snapshot_builder() const {
    return snapshot_builder_;
  }

  // -- Snapshot support (router/snapshot.h) --------------------------------
  const Srt& srt() const { return srt_; }
  const Prt& prt() const { return prt_; }
  Prt& prt() { return prt_; }
  const std::map<IfaceId, std::vector<Xpe>>& client_tables() const {
    return client_subs_;
  }
  const std::unordered_map<Xpe, IfaceSet, XpeHash>& forwarding_record()
      const {
    return forwarded_to_;
  }
  /// Restore-time mutators: rebuild state without emitting messages.
  void restore_advertisement(const Advertisement& adv, const IfaceSet& hops);
  void restore_subscription(const Xpe& xpe, const IfaceSet& hops);
  void restore_merger(const Xpe& merger, const std::vector<Xpe>& originals);
  void restore_client_table(IfaceId interface_id, std::vector<Xpe> xpes);
  void restore_forwarding(const Xpe& xpe, IfaceSet interfaces);
  /// Adds one interface to a forwarding record (link resync restores the
  /// per-link slice without clobbering records from other links).
  void restore_forwarding_add(const Xpe& xpe, IfaceId interface_id);

  // -- Crash recovery (router/snapshot.h link-state transfer) --------------
  /// Arms the resync handshake after a cold restart: the broker expects
  /// `outstanding` SyncState replies (one per neighbour link); the handle()
  /// call processing the last one reports resync_completed.
  void begin_resync(std::size_t outstanding) { pending_syncs_ = outstanding; }
  std::size_t pending_syncs() const { return pending_syncs_; }

 private:
  void handle_advertise(IfaceId from, const AdvertiseMsg& msg,
                        ForwardSink& sink, HandleStatus* out);
  void handle_unadvertise(IfaceId from, const UnadvertiseMsg& msg,
                          ForwardSink& sink, HandleStatus* out);
  void handle_subscribe(IfaceId from, const SubscribeMsg& msg,
                        ForwardSink& sink, HandleStatus* out);
  void handle_unsubscribe(IfaceId from, const UnsubscribeMsg& msg,
                          ForwardSink& sink, HandleStatus* out);
  void handle_publish(IfaceId from, const Message& envelope,
                      std::span<const std::uint8_t> frame, ForwardSink& sink,
                      HandleStatus* out);
  void handle_sync_request(IfaceId from, ForwardSink& sink);
  void handle_sync_state(IfaceId from, const SyncStateMsg& msg,
                         HandleStatus* out);
  void run_merge_pass(ForwardSink& sink);

  /// The match stage of handle_publish: the hops of every matching PRT
  /// entry (sorted ascending, deduplicated), with merger false matches
  /// counted. Sequential or — when the scheduler exists — fanned across
  /// the worker pool.
  std::vector<IfaceId> match_publication(const PublishMsg& msg,
                                         HandleStatus* out);

  /// The forward stage of handle_publish: edge-exactness per client hop,
  /// plain forward per neighbour hop. Identical for sequential, parallel
  /// and batched paths — determinism lives here (hop lists are sorted).
  /// `envelope` is the original message (no per-publication deep copy);
  /// `frame` is its wire frame or empty. A non-null `view` pins the edge
  /// state (client set, original XPEs) as of the snapshot the publication
  /// was matched against: with control ops pipelined into the match
  /// epoch, the live maps may already be ahead of this publication.
  void forward_publication(IfaceId from, const Message& envelope,
                           const PublishMsg& msg,
                           std::span<const IfaceId> hops,
                           std::span<const std::uint8_t> frame,
                           const RoutingSnapshot* view, ForwardSink& sink,
                           HandleStatus* out);

  /// Rebuilds and publishes the routing snapshot if any table or edge
  /// state changed since the last build. No-op when the scheduler is off
  /// (sequential brokers match the live tables) or nothing is dirty.
  void refresh_snapshot();

  /// Next-hop broker interfaces for a subscription: SRT overlap when
  /// advertisements are on, otherwise every neighbour. `exclude` is the
  /// arrival interface.
  IfaceSet subscription_targets(const Xpe& xpe, IfaceId exclude) const;

  /// Sends `subscribe(xpe)` to every target not yet holding it and records
  /// the forwarding. Under covering-based routing the decision is made
  /// per interface: a target is skipped only when some subscription
  /// covering `xpe` has already been forwarded there (a coverer provides
  /// no route on the interface it arrived from, so global absorption
  /// would lose deliveries).
  void forward_subscription(const Xpe& xpe, IfaceId exclude,
                            ForwardSink& sink);

  /// Interfaces on which some covering subscription already provides a
  /// route for `xpe` (union of the coverers' forwarding records).
  IfaceSet coverage_interfaces(const Xpe& xpe) const;

  /// Sends `unsubscribe(xpe)` along the recorded forwarding paths.
  void forward_unsubscription(const Xpe& xpe, IfaceId exclude,
                              ForwardSink& sink);

  /// Withdraws a covered subscription, but only on interfaces in `via`
  /// (where the covering subscription provides a route); its forwarding
  /// record shrinks accordingly.
  void unsubscribe_covered(const Xpe& covered, const IfaceSet& via,
                           ForwardSink& sink);

  int id_;
  Config config_;
  /// Stage sink of the handle() call in flight (null = untraced).
  StageTimings* stages_ = nullptr;
  IfaceSet neighbors_;
  IfaceSet clients_;
  Srt srt_;
  Prt prt_;
  /// Worker pool for parallel publication matching; null when
  /// match_threads == 1. Workers match against the immutable snapshot
  /// pinned at epoch launch, never the live tables — this (single-writer)
  /// broker mutates prt_/srt_ freely while an epoch runs and publishes
  /// the next snapshot when done (no quiesce barrier).
  std::unique_ptr<MatchScheduler> scheduler_;
  /// Current published routing snapshot + builder (control thread only
  /// for build/publish; workers read through the scheduler's pin).
  SnapshotStore snapshots_;
  SnapshotBuilder snapshot_builder_;
  /// Edge state (clients_/client_subs_) changed since the last snapshot
  /// build. Starts true so the first refresh publishes a complete view.
  bool edge_dirty_ = true;
  /// True while handle_batch runs the pipelined control window: snapshot
  /// publication coalesces to a single build at the next epoch's pin
  /// instead of one per control op (no epoch can pin mid-window, so the
  /// intermediate snapshots would never be observed).
  bool defer_refresh_ = false;
  /// Defers forwards emitted by control messages processed while a batch
  /// epoch is in flight, replayed after the epoch's publications forward
  /// — preserving the sequential emission order (see handle_batch).
  class BufferedSink : public ForwardSink {
   public:
    void on_forward(IfaceId iface, const Message& msg) override {
      items_.push_back({Kind::kForward, iface, msg});
    }
    void on_local_delivery(IfaceId client, const Message& msg) override {
      items_.push_back({Kind::kLocalDelivery, client, msg});
    }
    void on_suppressed(IfaceId client, const Message& msg) override {
      items_.push_back({Kind::kSuppressed, client, msg});
    }
    void replay(ForwardSink& sink) {
      for (const Item& item : items_) {
        switch (item.kind) {
          case Kind::kForward:
            sink.on_forward(item.iface, item.msg);
            break;
          case Kind::kLocalDelivery:
            sink.on_local_delivery(item.iface, item.msg);
            break;
          case Kind::kSuppressed:
            sink.on_suppressed(item.iface, item.msg);
            break;
        }
      }
    }
    void clear() { items_.clear(); }

   private:
    enum class Kind { kForward, kLocalDelivery, kSuppressed };
    struct Item {
      Kind kind;
      IfaceId iface;
      Message msg;
    };
    std::vector<Item> items_;
  };
  BufferedSink window_sink_;
  /// Original XPEs per locally attached client (edge exactness).
  std::map<IfaceId, std::vector<Xpe>> client_subs_;
  /// Interfaces each subscription was forwarded to (for unsubscription).
  std::unordered_map<Xpe, IfaceSet, XpeHash> forwarded_to_;
  std::size_t new_subs_since_merge_ = 0;
  std::size_t merges_applied_ = 0;
  /// SyncState replies still outstanding after a cold restart (0 = not
  /// resyncing).
  std::size_t pending_syncs_ = 0;
  /// Publications already processed, for duplicate suppression on cyclic
  /// overlays (a publication can arrive over several paths; forwarding it
  /// again would loop). Bounded generational window — rationale and
  /// guarantees in router/seen_window.hpp.
  SeenWindow seen_publications_;
  // handle_batch staging scratch, reused across batches so the steady
  // state allocates nothing.
  std::vector<const PublishMsg*> batch_pubs_;
  std::vector<const Message*> batch_envelopes_;
  std::vector<IfaceId> batch_froms_;
  std::vector<std::span<const std::uint8_t>> batch_frames_;
  std::vector<const Path*> batch_paths_;
  /// Reused across batches: hop-vector capacity circulates between this
  /// buffer and the scheduler's per-slot buffers (see
  /// MatchScheduler::match_batch), so the steady state allocates nothing.
  std::vector<MatchScheduler::MatchResult> batch_results_;
};

}  // namespace xroute
