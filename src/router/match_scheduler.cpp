#include "router/match_scheduler.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/symbols.hpp"

namespace xroute {

namespace {

/// Calms the pipeline inside spin loops (PAUSE on x86); elsewhere a
/// plain compiler barrier keeps the load in the loop honest.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  asm volatile("" ::: "memory");
#endif
}

/// This thread's CPU time. Immune to preemption: when workers outnumber
/// cores, wall-clock "busy" intervals would include time spent
/// descheduled and overstate the work.
inline std::uint64_t thread_cpu_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Spin iterations before a waiter gives up and parks on the condvar.
/// Epochs arrive back to back under batch load, so the spin almost
/// always wins there; an idle broker costs at most this much busy-wait
/// per epoch before the pool sleeps.
constexpr int kSpinIterations = 8192;

/// grid_ descriptor layout: epoch<<32 | batch-bit | task count.
constexpr std::uint64_t kGridBatchBit = 1ull << 31;
constexpr std::uint64_t kGridCountMask = kGridBatchBit - 1;

constexpr std::uint32_t epoch_tag(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 32);
}

/// Deduplicated symbol list in first-occurrence order, exactly as
/// match_nodes() builds its bucket union — the shard matchers partition
/// this list, so computing it once per publication keeps per-shard work
/// disjoint.
void build_distinct_symbols(const PathView& ip,
                            std::vector<std::uint32_t>* out) {
  out->clear();
  out->reserve(ip.size());
  for (std::size_t i = 0; i < ip.size(); ++i) {
    const std::uint32_t sym = ip[i];
    if (sym == SymbolTable::kNoSymbol) continue;  // element never interned
    if (std::find(out->begin(), out->end(), sym) == out->end()) {
      out->push_back(sym);
    }
  }
}

/// Sort + dedup a concatenated hop list into the canonical ascending
/// order the sequential IfaceSet iteration produced.
void canonicalize_hops(std::vector<IfaceId>* hops) {
  std::sort(hops->begin(), hops->end());
  hops->erase(std::unique(hops->begin(), hops->end()), hops->end());
}

}  // namespace

MatchScheduler::MatchScheduler(Options options) : options_(options) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.shards < 1) options_.shards = 1;
  // Spinning for the next epoch only pays when the pool and the control
  // thread can actually run at once; on a core-starved machine a spinning
  // waiter steals the very core the work needs, so park immediately.
  const unsigned cores = std::thread::hardware_concurrency();
  spin_iterations_ =
      cores > options_.threads ? kSpinIterations : 0;
  queues_.reserve(options_.threads);
  stats_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
    stats_.push_back(std::make_unique<AtomicWorkerStats>());
  }
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

MatchScheduler::~MatchScheduler() {
  // A batch left in flight must drain before the pool is torn down (the
  // workers still hold the epoch's task pointers).
  if (batch_pending_ && pending_count_ > 0) wait_epoch();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void MatchScheduler::worker_loop(std::size_t worker_index) {
  AtomicWorkerStats& stats = *stats_[worker_index];
  std::uint64_t seen_generation = 0;
  // Private scratch, reused across every epoch this worker serves: the
  // interned symbols, the distinct-symbol list and the match cell all
  // keep their capacity, so a steady-state batch task allocates only its
  // exact-size result vector.
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint32_t> distinct;
  Prt::ShardMatch cell;
  for (;;) {
    // Wait for the next epoch: spin first (under batch load the next grid
    // is published within microseconds of the last one draining), then
    // park. idle_workers_ counts parked workers only; a spinning worker
    // touches nothing but this atomic, which is why the control thread
    // may stage the next grid while workers are still waking up.
    std::uint64_t gen;
    int spins = 0;
    while ((gen = generation_.load(std::memory_order_acquire)) ==
               seen_generation &&
           !shutdown_.load(std::memory_order_relaxed)) {
      if (++spins < spin_iterations_) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_workers_;
      work_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) != seen_generation;
      });
      --idle_workers_;
      spins = 0;
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    seen_generation = gen;

    // The grid descriptor is epoch-tagged: if this worker woke so late
    // that the epoch it observed is already over (or was reclaimed for
    // staging), the tag mismatch sends it back to the wait loop instead
    // of letting it read a half-staged grid.
    const std::uint64_t grid = grid_.load(std::memory_order_relaxed);
    if (epoch_tag(grid) != static_cast<std::uint32_t>(gen)) continue;
    const bool batch = (grid & kGridBatchBit) != 0;
    const std::size_t shards = options_.shards;
    const std::size_t queue_count = queues_.size();

    // Drain the queues: own queue first (uncontended CAS on a private
    // cache line), then steal round-robin from the others. Queues never
    // refill inside an epoch, so one pass over all of them is complete.
    // Accounting is per drain, not per task: a task can be tiny, so
    // per-task clock reads would rival the work itself.
    //
    // epoch_snapshot_ is a plain member, fetched lazily after the first
    // successful claim: a claim for `gen` can only succeed after staging
    // for `gen` restamped the cursors (the CAS is an RMW and sees the
    // latest value in modification order, so stale-generation claims
    // always fail), and the control thread set epoch_snapshot_ strictly
    // before publishing `gen` — so the read below never overlaps a write.
    const RoutingSnapshot* snap = nullptr;
    std::uint64_t claimed = 0;
    std::uint64_t stolen = 0;
    const std::uint64_t cpu_start = thread_cpu_ns();
    for (std::size_t offset = 0; offset < queue_count; ++offset) {
      WorkQueue& queue = *queues_[(worker_index + offset) % queue_count];
      const std::uint32_t queue_end = queue.end.load(std::memory_order_relaxed);
      std::uint64_t word = queue.cursor.load(std::memory_order_relaxed);
      while (epoch_tag(word) == static_cast<std::uint32_t>(gen)) {
        const std::uint32_t task = static_cast<std::uint32_t>(word);
        if (task >= queue_end) break;
        if (!queue.cursor.compare_exchange_weak(word, word + 1,
                                                std::memory_order_relaxed)) {
          continue;  // word was reloaded by the failed CAS
        }
        if (!snap) snap = epoch_snapshot_.get();
        if (batch) {
          // One publication: intern into worker scratch (the symbol table
          // only grows and its lookups take a shared lock), match against
          // the whole pinned snapshot in a single call (shard_count 1
          // degenerates to the sequential routine, so comparison counts
          // are identical by construction), and merge in place — all off
          // the control thread.
          Pub& pub = pubs_[task];
          const PathView view = intern_path(*pub.src, symbols);
          build_distinct_symbols(view, &distinct);
          cell.clear();
          snap->match_shard(view, distinct, 0, 1, &cell);
          canonicalize_hops(&cell.hops);
          pub.result.hops.assign(cell.hops.begin(), cell.hops.end());
          pub.result.merger_false_matches = cell.merger_false_matches;
          pub.result.comparisons = cell.comparisons;
        } else {
          // One shard of the single staged publication: latency-parallel
          // matching for the per-message path.
          Pub& pub = pubs_.front();
          pub.per_shard[task].clear();
          snap->match_shard(pub.ip->view(), pub.distinct_symbols, task,
                            shards, &pub.per_shard[task]);
        }
        ++claimed;
        if (offset != 0) ++stolen;
        word = queue.cursor.load(std::memory_order_relaxed);
      }
    }
    if (claimed > 0) {
      const std::uint64_t busy = thread_cpu_ns() - cpu_start;
      stats.tasks.fetch_add(claimed, std::memory_order_relaxed);
      stats.busy_ns.fetch_add(busy, std::memory_order_relaxed);
      if (stolen > 0) stats.steals.fetch_add(stolen, std::memory_order_relaxed);
      stats.epoch_busy_ns.store(busy, std::memory_order_relaxed);
      // The release add publishes this drain's result writes (and the
      // epoch busy figure) to the control thread's acquire in run_epoch.
      const std::size_t count =
          static_cast<std::size_t>(grid & kGridCountMask);
      if (tasks_done_.fetch_add(claimed, std::memory_order_release) +
              claimed ==
          count) {
        // Last task of the epoch: the control thread may be parked.
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_one();
      }
    }
  }
}

std::uint64_t MatchScheduler::begin_staging() {
  // The previous epoch's completion wait saw tasks_done_ == task_count_
  // (acquire), so every claim was processed and no claim below a queue's
  // end can succeed again; restamping the cursors with the next epoch's
  // tag then voids stale claim attempts entirely. After this, pubs_ and
  // the routing tables are exclusively the control thread's.
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed) + 1;
  for (auto& queue : queues_) {
    queue->cursor.store(gen << 32, std::memory_order_relaxed);
    queue->end.store(0, std::memory_order_relaxed);
  }
  // pubs_ slots are recycled across epochs (only the first task_count_
  // are ever staged or read), so their hop/scratch capacity survives —
  // the steady-state epoch performs no allocation and, crucially, no
  // cross-thread free of worker-written result vectors.
  for (auto& stats : stats_) {
    stats->epoch_busy_ns.store(0, std::memory_order_relaxed);
  }
  return gen;
}

void MatchScheduler::stage_queues(std::uint64_t gen, std::size_t count) {
  task_count_ = count;
  const std::size_t queue_count = queues_.size();
  const std::size_t base = count / queue_count;
  const std::size_t extra = count % queue_count;
  std::size_t start = 0;
  for (std::size_t w = 0; w < queue_count; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    queues_[w]->cursor.store(gen << 32 | start, std::memory_order_relaxed);
    queues_[w]->end.store(static_cast<std::uint32_t>(start + len),
                          std::memory_order_relaxed);
    start += len;
  }
}

void MatchScheduler::launch_epoch(std::uint64_t gen) {
  // epoch_snapshot_ was set by the caller; the generation release store
  // is what publishes it (and the staged grid) to the waking workers.
  tasks_done_.store(0, std::memory_order_relaxed);
  generation_.store(gen, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_workers_ > 0) work_cv_.notify_all();
  }
}

void MatchScheduler::wait_epoch() {
  // Completion: spin briefly (an epoch is typically tens to hundreds of
  // microseconds), then park on done_cv until the last worker signals.
  const std::size_t count = task_count_;
  int spins = 0;
  while (tasks_done_.load(std::memory_order_acquire) != count) {
    if (++spins < spin_iterations_) {
      cpu_relax();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return tasks_done_.load(std::memory_order_relaxed) == count;
    });
    spins = 0;
  }
  epochs_.fetch_add(1, std::memory_order_relaxed);
  // The busiest worker's CPU time is this epoch's contribution to the
  // match stage's critical path (workers are quiescent now; their final
  // epoch_busy_ns stores were published by the tasks_done_ release).
  std::uint64_t max_busy = 0;
  for (const auto& stats : stats_) {
    max_busy = std::max(
        max_busy, stats->epoch_busy_ns.load(std::memory_order_relaxed));
  }
  critical_path_ns_.fetch_add(max_busy, std::memory_order_relaxed);
  // Drop the pin: every worker finished its drain before the last
  // tasks_done_ release, so nobody reads epoch_snapshot_ any more. If
  // newer snapshots were published mid-epoch, this release is what
  // retires the old one.
  epoch_snapshot_.reset();
}

MatchScheduler::MatchResult MatchScheduler::merge_pub(const Pub& pub) const {
  // Concatenate in shard order, then canonicalize: the sorted result is
  // independent of which worker ran which shard.
  MatchResult out;
  std::size_t total = 0;
  for (const Prt::ShardMatch& shard : pub.per_shard) total += shard.hops.size();
  out.hops.reserve(total);
  for (const Prt::ShardMatch& shard : pub.per_shard) {
    out.hops.insert(out.hops.end(), shard.hops.begin(), shard.hops.end());
    out.merger_false_matches += shard.merger_false_matches;
    out.comparisons += shard.comparisons;
  }
  canonicalize_hops(&out.hops);
  return out;
}

MatchScheduler::MatchResult MatchScheduler::match_one(
    const Path& path, std::shared_ptr<const RoutingSnapshot> snapshot) {
  const std::uint64_t gen = begin_staging();
  if (pubs_.empty()) pubs_.resize(1);
  Pub& pub = pubs_.front();
  pub.src = &path;
  pub.ip.emplace(path);
  build_distinct_symbols(pub.ip->view(), &pub.distinct_symbols);
  pub.per_shard.resize(options_.shards);
  stage_queues(gen, options_.shards);
  grid_.store(gen << 32 | static_cast<std::uint64_t>(task_count_),
              std::memory_order_relaxed);
  epoch_snapshot_ = std::move(snapshot);
  launch_epoch(gen);
  wait_epoch();
  return merge_pub(pubs_.front());
}

void MatchScheduler::begin_batch(
    const std::vector<const Path*>& paths,
    std::shared_ptr<const RoutingSnapshot> snapshot) {
  if (batch_pending_) {
    throw std::logic_error("begin_batch: batch already in flight");
  }
  batch_pending_ = true;
  pending_count_ = paths.size();
  if (paths.empty()) return;
  const std::uint64_t gen = begin_staging();
  if (pubs_.size() < paths.size()) pubs_.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) pubs_[i].src = paths[i];
  stage_queues(gen, paths.size());
  grid_.store(gen << 32 | kGridBatchBit |
                  static_cast<std::uint64_t>(task_count_),
              std::memory_order_relaxed);
  epoch_snapshot_ = std::move(snapshot);
  launch_epoch(gen);
}

void MatchScheduler::finish_batch(std::vector<MatchResult>* out) {
  if (!batch_pending_) {
    throw std::logic_error("finish_batch: no batch in flight");
  }
  batch_pending_ = false;
  const std::size_t count = pending_count_;
  pending_count_ = 0;
  if (count == 0) {
    out->clear();
    return;
  }
  wait_epoch();
  out->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    MatchResult& dst = (*out)[i];
    Pub& pub = pubs_[i];
    // Swap, don't move: the slot inherits the caller's previous hop
    // buffer, so capacity circulates between the two sides and neither
    // thread frees memory the other allocated.
    dst.hops.swap(pub.result.hops);
    dst.merger_false_matches = pub.result.merger_false_matches;
    dst.comparisons = pub.result.comparisons;
  }
}

std::uint64_t MatchScheduler::total_tasks() const {
  std::uint64_t total = 0;
  for (const auto& stats : stats_) {
    total += stats->tasks.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t MatchScheduler::total_steals() const {
  std::uint64_t total = 0;
  for (const auto& stats : stats_) {
    total += stats->steals.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<MatchScheduler::WorkerStats> MatchScheduler::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(stats_.size());
  for (const auto& stats : stats_) {
    out.push_back(WorkerStats{stats->tasks.load(std::memory_order_relaxed),
                              stats->busy_ns.load(std::memory_order_relaxed),
                              stats->steals.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace xroute
