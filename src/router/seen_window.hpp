// Duplicate-suppression window for publication (doc id, path id) pairs.
//
// On overlays with cycles the same publication can arrive over several
// paths; the broker must process it once or forwarding would loop.
// Remembering every publication forever is both unbounded memory and —
// measured — a control-path killer: an unordered_set's emplace degrades
// to ~0.7 µs once the table reaches millions of entries, dominating the
// broker's whole per-publication control budget. Duplicates, however,
// arrive within one flooding round of the original, so a bounded window
// that is guaranteed to remember at least the most recent kWindow
// publications suppresses exactly the same duplicates in practice.
//
// The window is two fixed-size open-addressing tables (current and
// previous generation) whose slots carry a generation stamp: a slot is
// occupied only if its stamp equals the table's stamp, so rotating
// generations is a pointer swap plus a stamp bump — no clearing, no
// freeing, and the steady state performs zero allocation. Compare the
// node-based alternative: one malloc per insert and a mass free every
// rotation (~100-175 ns/probe); this table probes one or two cache
// lines (~30 ns) and never touches the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xroute {

class SeenWindow {
 public:
  /// Inserts per generation. Membership spans two generations, so the
  /// window always remembers at least the last kWindow publications and
  /// at most twice that.
  static constexpr std::size_t kWindow = 1u << 13;
  /// Slots per table: load factor <= 0.5 keeps linear probes short.
  static constexpr std::size_t kSlots = kWindow * 2;

  SeenWindow() : current_(kSlots), previous_(kSlots) {}

  /// True if (doc, path) was NOT seen within the window; records it.
  /// False (a duplicate) leaves the window unchanged.
  bool insert(std::uint64_t doc, std::uint32_t path) {
    if (contains(previous_, prev_stamp_, doc, path)) return false;
    std::size_t i = slot_of(doc, path);
    while (current_[i].stamp == cur_stamp_) {
      if (current_[i].doc == doc && current_[i].path == path) return false;
      i = (i + 1) & (kSlots - 1);
    }
    current_[i] = Slot{doc, path, cur_stamp_};
    if (++count_ >= kWindow) rotate();
    return true;
  }

  /// Membership without recording (tests, introspection).
  bool contains(std::uint64_t doc, std::uint32_t path) const {
    return contains(current_, cur_stamp_, doc, path) ||
           contains(previous_, prev_stamp_, doc, path);
  }

 private:
  struct Slot {
    std::uint64_t doc = 0;
    std::uint32_t path = 0;
    /// Generation this slot was written in; the slot is live only while
    /// its table's stamp still equals it.
    std::uint32_t stamp = 0;
  };

  static std::size_t slot_of(std::uint64_t doc, std::uint32_t path) {
    std::uint64_t x =
        doc ^ (static_cast<std::uint64_t>(path) * 0x9E3779B97F4A7C15ull);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x) & (kSlots - 1);
  }

  static bool contains(const std::vector<Slot>& table, std::uint32_t stamp,
                       std::uint64_t doc, std::uint32_t path) {
    std::size_t i = slot_of(doc, path);
    while (table[i].stamp == stamp) {
      if (table[i].doc == doc && table[i].path == path) return true;
      i = (i + 1) & (kSlots - 1);
    }
    return false;
  }

  /// Ends the current generation: it becomes the read-only previous one
  /// and the (two-generations-old) other table is reused as the new
  /// current. Advancing the stamp makes every stale slot in it read as
  /// empty — rotation costs a swap, not a sweep. Stamps start at 1 and
  /// only grow, so the zero-initialised tables read as empty, and wrap
  /// is beyond any realistic run (2^32 generations of 8192 inserts).
  void rotate() {
    current_.swap(previous_);
    prev_stamp_ = cur_stamp_;
    ++cur_stamp_;
    count_ = 0;
  }

  std::vector<Slot> current_;
  std::vector<Slot> previous_;
  std::uint32_t cur_stamp_ = 1;
  /// Must never equal a slot's stamp while the previous table is
  /// logically empty. Slots zero-initialise to stamp 0 and live stamps
  /// count up from 1, so 0 would make every empty slot read as occupied
  /// (an unterminated probe); ~0 is unreachable until stamp wrap.
  std::uint32_t prev_stamp_ = ~0u;
  std::size_t count_ = 0;
};

}  // namespace xroute
