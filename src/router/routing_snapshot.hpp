// RCU-style routing-state snapshots: the lock-free control plane.
//
// Since PR 5 the broker's control plane (subscribe/unsubscribe/advertise/
// merge, plus membership route handback) mutated the live routing tables
// and relied on the MatchScheduler's epoch barrier for safety: every
// control op had to wait for the worker pool to drain before touching
// anything workers might read. At high churn the barrier itself becomes
// the bottleneck — each quiesce stalls matching for a full epoch.
//
// This module removes the barrier. The single writer (the broker's
// control thread) compiles the match-relevant state into an immutable
// RoutingSnapshot, publishes it into a SnapshotStore with one atomic
// swap, and keeps mutating the live tables freely: workers never see
// those tables at all. Each match epoch pins the current snapshot via
// shared_ptr at staging time and matches against it with zero locks; a
// snapshot retired by a later publish stays alive until the last pinning
// epoch drains and drops its reference (plain shared_ptr refcounting —
// the RCU grace period is the pointer's lifetime).
//
// Structural sharing keeps the writer cheap: a snapshot is a map from
// discriminating symbol to immutable SnapshotBucket (the compiled DFS
// word stream of PR 6, plus the entry payloads the walk needs), and the
// builder recompiles only the buckets whose root subtrees actually
// changed — clean buckets are shared with the previous snapshot by
// reference. The routing tables track the dirty bucket keys per mutation
// (index/subscription_tree.hpp, router/routing_tables.hpp).
//
// Single-writer invariant: build() and publish() are only ever called by
// the broker's control thread. Readers (match workers) only ever call
// SnapshotStore::current() / RoutingSnapshot::match_shard. The
// publish/current pair is release/acquire, so a reader that observes a
// snapshot pointer observes the fully built snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "router/iface.hpp"
#include "router/routing_tables.hpp"
#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// One immutable compiled bucket: every subscription subtree whose root
/// shares this bucket's discriminating symbol, serialised in DFS
/// pre-order. `words` uses the exact RootBucket layout of the PR 6
/// kernel — per entry [prog_len, skip_words, skip_entries, prog...] —
/// and `entries` is parallel (entry order), carrying everything the walk
/// needs that the live tree's Node supplied: the XPE (predicate
/// evaluation + merger backing checks), the hop list (flattened into
/// `hops` so a bucket is three contiguous allocations, not one per
/// node), and the merger metadata. Flat-mode tables compile to the same
/// layout with zero skips (every entry is a leaf).
struct SnapshotBucket {
  struct Entry {
    /// Shared, not copied: the owning node/flat entry caches one
    /// immutable copy of its XPE for its whole lifetime and every
    /// recompile hands out that share (the payload never mutates after
    /// subscription insert). A retired snapshot's shares keep the XPEs
    /// of since-removed subscriptions alive.
    std::shared_ptr<const Xpe> xpe;
    std::uint32_t hop_begin = 0;
    std::uint32_t hop_end = 0;
    bool merger = false;
    /// Non-null iff `merger`; shared like `xpe`.
    std::shared_ptr<const std::vector<Xpe>> merged_from;

    /// Pointer identity on the shared payloads — deliberately: equal
    /// pointers mean "the same subscription, still present", which is
    /// the question unchanged-content detection asks, at O(1) per entry
    /// instead of a deep XPE compare.
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<std::uint32_t> words;
  std::vector<Entry> entries;
  std::vector<IfaceId> hops;

  bool empty() const { return entries.empty(); }

  /// Deep equality, for the builder's unchanged-content detection: a
  /// recompile that reproduces the previous bucket (e.g. a subscribe
  /// whose unsubscribe landed in the same control window) keeps the old
  /// — cache-warm — allocation instead of handing workers fresh memory.
  friend bool operator==(const SnapshotBucket&, const SnapshotBucket&) =
      default;
};

/// One immutable, epoch-versioned view of everything publication
/// matching and forwarding read: the compiled PRT buckets plus the edge
/// state (client set and per-client original XPEs) the forward stage's
/// edge-exactness check consults. Snapshots never mutate after publish;
/// sharing a bucket between versions is safe by construction.
class RoutingSnapshot {
 public:
  using BucketPtr = std::shared_ptr<const SnapshotBucket>;

  /// `gauge` counts live snapshots (constructed minus destroyed) for the
  /// retirement tests: an unbounded chain under churn is a leak even
  /// when ASan sees every byte eventually freed.
  RoutingSnapshot(std::uint64_t version,
                  std::shared_ptr<std::atomic<std::int64_t>> gauge);
  ~RoutingSnapshot();
  RoutingSnapshot(const RoutingSnapshot&) = delete;
  RoutingSnapshot& operator=(const RoutingSnapshot&) = delete;

  std::uint64_t version() const { return version_; }

  /// Matches `ip` against shard `shard` of `shard_count`: the buckets of
  /// the path's distinct symbols, partitioned by symbol_shard(); shard 0
  /// additionally owns the all-wildcard side bucket. Pure read; any
  /// number of threads may call it concurrently. Visit order, hop
  /// emission and comparison counts are identical to the sequential
  /// tables' (Prt::match_shard) by construction: same bucket membership,
  /// same DFS word stream, one comparison per reached entry.
  void match_shard(const PathView& ip,
                   std::span<const std::uint32_t> distinct_symbols,
                   std::size_t shard, std::size_t shard_count,
                   Prt::ShardMatch* out) const;

  /// Edge state for the deferred forward stage: with the control window
  /// pipelined into the match epoch, forwarding must read the membership
  /// as of the epoch's pin, not the live (possibly already mutated) maps.
  bool is_client(IfaceId interface_id) const {
    return clients_->count(interface_id) > 0;
  }
  const std::vector<Xpe>* client_subscriptions(IfaceId interface_id) const {
    auto it = client_subs_->find(interface_id);
    return it == client_subs_->end() ? nullptr : &it->second;
  }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  friend class SnapshotBuilder;

  static void scan_bucket(const SnapshotBucket& bucket, const PathView& ip,
                          Prt::ShardMatch* out);

  std::uint64_t version_;
  std::unordered_map<std::uint32_t, BucketPtr> buckets_;
  /// All-wildcard subscriptions (no discriminating symbol); always
  /// non-null, possibly empty.
  BucketPtr side_bucket_;
  std::shared_ptr<const IfaceSet> clients_;
  std::shared_ptr<const std::map<IfaceId, std::vector<Xpe>>> client_subs_;
  std::shared_ptr<std::atomic<std::int64_t>> gauge_;
};

/// Holder of the current snapshot. publish() is the writer's single
/// atomic swap; current() is the readers' acquire load. The store never
/// blocks either side: retirement of the swapped-out snapshot is plain
/// shared_ptr refcounting, deferred until the last pinning epoch drops
/// its reference.
class SnapshotStore {
 public:
  SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  std::shared_ptr<const RoutingSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }
  /// Single writer only.
  void publish(std::shared_ptr<const RoutingSnapshot> next) {
    current_.store(std::move(next), std::memory_order_release);
  }

  std::uint64_t version() const { return current()->version(); }
  /// Snapshots currently alive (current + any still pinned by epochs).
  std::int64_t live() const {
    return gauge_->load(std::memory_order_relaxed);
  }
  const std::shared_ptr<std::atomic<std::int64_t>>& gauge() const {
    return gauge_;
  }

 private:
  std::shared_ptr<std::atomic<std::int64_t>> gauge_;
  std::atomic<std::shared_ptr<const RoutingSnapshot>> current_;
};

/// Compiles the next snapshot from the live tables. Control thread only.
/// Structural sharing: buckets whose key the tables did not mark dirty
/// since the previous build are shared by reference from `prev`; only
/// dirty keys are recompiled (and dropped when they compiled to empty).
/// The caller clears the tables' dirty tracking after a successful build
/// (Broker::refresh_snapshot).
class SnapshotBuilder {
 public:
  /// Returns the next snapshot — or `prev` itself when every dirty
  /// bucket recompiled to identical content and the edge state is
  /// clean (a no-op publish would only cold-start the workers' bucket
  /// map); callers skip the publish on pointer equality with prev.
  std::shared_ptr<const RoutingSnapshot> build(
      const Prt& prt, const IfaceSet& clients,
      const std::map<IfaceId, std::vector<Xpe>>& client_subs, bool edge_dirty,
      const std::shared_ptr<const RoutingSnapshot>& prev,
      const std::shared_ptr<std::atomic<std::int64_t>>& gauge);

  /// Cumulative structural-sharing counters (tests, bench/churn).
  std::uint64_t buckets_rebuilt() const { return buckets_rebuilt_; }
  std::uint64_t buckets_shared() const { return buckets_shared_; }
  /// Dirty recompiles whose content matched the previous bucket, so the
  /// previous allocation was kept (counted under buckets_rebuilt too).
  std::uint64_t buckets_unchanged() const { return buckets_unchanged_; }
  std::uint64_t builds() const { return builds_; }
  /// Builds where every dirty bucket recompiled unchanged and the edge
  /// state was clean: build() returned `prev` and no publish happened
  /// (counted under builds_ too).
  std::uint64_t builds_elided() const { return builds_elided_; }

 private:
  /// Dirty recompiles land here first (capacity persists across builds,
  /// so steady-state churn compiles into the same warm allocation); a
  /// bucket is cloned out only when its content actually changed.
  SnapshotBucket scratch_;

  std::uint64_t buckets_rebuilt_ = 0;
  std::uint64_t buckets_shared_ = 0;
  std::uint64_t buckets_unchanged_ = 0;
  std::uint64_t builds_ = 0;
  std::uint64_t builds_elided_ = 0;
};

}  // namespace xroute
