// IfaceId — a broker-local interface identifier, strongly typed.
//
// A broker addresses everything beyond itself — neighbour links and locally
// attached clients alike — by interface id. Three unrelated integer spaces
// used to meet in these APIs as raw `int`: the simulator's global endpoint
// ids, the transport layer's dense per-node interface indices, and the wire
// Hello's peer_id. Cross-assigning them compiles silently and routes
// traffic to the wrong place at runtime. IfaceId closes that hole: the
// constructor is explicit, there is no implicit conversion back to int, so
// every boundary crossing (simulator endpoint -> broker interface,
// handshake -> interface allocation) is a visible, greppable cast.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <set>

namespace xroute {

class IfaceId {
 public:
  constexpr IfaceId() = default;
  constexpr explicit IfaceId(int value) : value_(value) {}

  /// The raw index, for serialisation and container addressing. Converting
  /// back into another id space still requires an explicit constructor
  /// call on that side.
  constexpr int value() const { return value_; }
  /// Default-constructed ids (and explicit -1) denote "no interface".
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(IfaceId, IfaceId) = default;

 private:
  int value_ = -1;
};

/// Sentinel: "no interface" (used where -1 used to flow as an exclusion).
inline constexpr IfaceId kNoIface{};

using IfaceSet = std::set<IfaceId>;

/// Convenience literal-set builder for tests and tools:
/// ifaces({1, 2}) == IfaceSet{IfaceId{1}, IfaceId{2}}.
inline IfaceSet ifaces(std::initializer_list<int> values) {
  IfaceSet out;
  for (int v : values) out.insert(IfaceId{v});
  return out;
}

inline std::ostream& operator<<(std::ostream& os, IfaceId id) {
  return os << "iface:" << id.value();
}

struct IfaceIdHash {
  std::size_t operator()(IfaceId id) const {
    return std::hash<int>{}(id.value());
  }
};

}  // namespace xroute
