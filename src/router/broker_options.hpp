// BrokerOptions — every broker knob, in one validated struct.
//
// Routing strategy (advertisements/covering), merging, and the parallel
// matching engine are configured here, and every harness that builds a
// broker — the discrete-event simulator, `xroutectl serve` over an overlay
// file, the benches — parses textual knobs through the same
// apply_broker_option(), so a knob spelled once works everywhere and an
// invalid combination fails loudly at construction instead of as UB later.
#pragma once

#include <cstddef>
#include <string>

#include "index/merging.hpp"

namespace xroute {

struct BrokerOptions {
  bool use_advertisements = true;
  bool use_covering = true;
  /// Track subscriptions a newcomer covers (enables the upstream
  /// unsubscription optimisation; costs an extra tree sweep per insert).
  bool track_covered = true;
  bool merging_enabled = false;
  MergeOptions merge_options;
  /// Path universe for D_imperfect (required for merging to take effect).
  const PathUniverse* merge_universe = nullptr;
  /// Run a merge pass after this many newly inserted subscriptions.
  std::size_t merge_interval = 100;

  // -- Parallel matching engine (router/match_scheduler.hpp) ---------------
  /// Worker threads for publication matching. 1 = sequential (no pool, no
  /// synchronisation anywhere on the hot path). The discrete-event
  /// simulator only accepts 1 (it folds wall-clock processing time into
  /// simulated time, which a pool would perturb); the transport broker
  /// takes any validated value.
  std::size_t match_threads = 1;
  /// PRT shards for the parallel engine; 0 = auto (2x match_threads).
  /// Ignored when match_threads == 1.
  std::size_t shard_count = 0;

  // -- Publication intake (xml/stream_parser.hpp) --------------------------
  /// Decompose published documents with the streaming path extractor
  /// (single pass over the wire bytes, arena-backed, no DOM), and let the
  /// transport reuse inbound publication frames verbatim when forwarding.
  /// Off = the tree-building xml::Parser pipeline, retained as the
  /// reference implementation; both produce byte-identical streams
  /// (tests/stream_pipeline_test).
  bool streaming_pipeline = true;

  /// Effective shard count after defaulting.
  std::size_t effective_shards() const {
    return shard_count != 0 ? shard_count : 2 * match_threads;
  }

  /// Validates the combination; returns an empty string if usable, else a
  /// one-line description of the first problem. Broker's constructor
  /// throws std::invalid_argument with this text.
  std::string validate() const;
};

/// Applies one textual knob to `options`; returns an empty string on
/// success, else a one-line error. Shared by `xroutectl serve` flags, the
/// overlay file's `option` lines and the simulator harness, so the three
/// parse identically. Keys (values: on/off/true/false/1/0 for booleans):
///
///   advertisements, covering, track_covered, merging  booleans
///   streaming                                         streaming_pipeline
///   merge_interval                                    size_t > 0
///   threads                                           match_threads
///   shards                                            shard_count
std::string apply_broker_option(BrokerOptions& options, const std::string& key,
                                const std::string& value);

/// Applies a "key=value" spelling (CLI convenience); same errors.
std::string apply_broker_option(BrokerOptions& options,
                                const std::string& key_equals_value);

}  // namespace xroute
