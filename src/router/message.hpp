// Message types exchanged in the dissemination network.
//
// Publications are the root-to-leaf paths of an XML document, annotated
// with (docId, pathId) (paper §3.1); clients publish whole documents and
// the edge broker performs the decomposition, so the annotation is
// transparent to them.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "adv/advertisement.hpp"
#include "obs/trace.hpp"
#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

struct AdvertiseMsg {
  Advertisement advertisement;
  /// Broker the advertising publisher is attached to (for diagnostics).
  int origin_broker = -1;

  friend bool operator==(const AdvertiseMsg&, const AdvertiseMsg&) = default;
};

struct SubscribeMsg {
  Xpe xpe;

  friend bool operator==(const SubscribeMsg&, const SubscribeMsg&) = default;
};

struct UnadvertiseMsg {
  Advertisement advertisement;
  int origin_broker = -1;

  friend bool operator==(const UnadvertiseMsg&, const UnadvertiseMsg&) =
      default;
};

struct UnsubscribeMsg {
  Xpe xpe;

  friend bool operator==(const UnsubscribeMsg&, const UnsubscribeMsg&) =
      default;
};

/// Recovery handshake (crash resync): a restarted broker asks each
/// neighbour to replay the state relevant to their shared link.
struct SyncRequestMsg {
  friend bool operator==(const SyncRequestMsg&, const SyncRequestMsg&) =
      default;
};

/// The neighbour's reply: a bounded, line-oriented state transfer built on
/// router/snapshot's serialisation (see export_link_state): the
/// advertisements it would flood over the link, the subscriptions it has
/// forwarded over the link, and the subscriptions it already holds from
/// the restarted broker (so nothing is re-forwarded needlessly).
struct SyncStateMsg {
  std::string state;

  friend bool operator==(const SyncStateMsg&, const SyncStateMsg&) = default;
};

struct PublishMsg {
  Path path;
  std::uint64_t doc_id = 0;
  std::uint32_t path_id = 0;
  /// Serialised size of the whole document this path belongs to; the last
  /// path of a document carries the document to the subscriber, so byte
  /// accounting uses this figure (paper Figs. 10/11 vary document size).
  std::size_t doc_bytes = 0;
  /// Number of paths extracted from the document (so edge brokers know
  /// when a document is complete; we deliver on first matching path).
  std::uint32_t paths_in_doc = 1;
  /// Simulated publish timestamp (set by the simulator) for delay metrics.
  double publish_time = 0.0;

  friend bool operator==(const PublishMsg&, const PublishMsg&) = default;
};

using Payload = std::variant<AdvertiseMsg, SubscribeMsg, UnsubscribeMsg,
                             PublishMsg, UnadvertiseMsg, SyncRequestMsg,
                             SyncStateMsg>;

enum class MessageType : unsigned char {
  kAdvertise,
  kSubscribe,
  kUnsubscribe,
  kPublish,
  kUnadvertise,
  kSyncRequest,
  kSyncState,
};

inline constexpr std::size_t kMessageTypeCount = 7;

struct Message {
  Payload payload;
  /// Causal trace context (obs/trace.hpp). Out-of-band observability
  /// metadata, like PublishMsg::publish_time: zero unless tracing is on,
  /// never part of wire_bytes(), so byte/message counts are identical
  /// with tracing on, off, or compiled out.
  TraceContext trace;

  Message() = default;
  Message(Payload p) : payload(std::move(p)) {}

  MessageType type() const {
    return static_cast<MessageType>(payload.index());
  }

  /// Approximate wire size in bytes, for the bandwidth model.
  std::size_t wire_bytes() const;

  static Message advertise(Advertisement a, int origin) {
    return Message{AdvertiseMsg{std::move(a), origin}};
  }
  static Message subscribe(Xpe x) { return Message{SubscribeMsg{std::move(x)}}; }
  static Message unsubscribe(Xpe x) {
    return Message{UnsubscribeMsg{std::move(x)}};
  }
  static Message unadvertise(Advertisement a, int origin) {
    return Message{UnadvertiseMsg{std::move(a), origin}};
  }
  static Message sync_request() { return Message{SyncRequestMsg{}}; }
  static Message sync_state(std::string state) {
    return Message{SyncStateMsg{std::move(state)}};
  }
};

const char* to_string(MessageType type);

}  // namespace xroute
