#include "router/routing_tables.hpp"

#include <algorithm>

#include "match/adv_match.hpp"
#include "match/pub_match.hpp"
#include "router/routing_snapshot.hpp"
#include "util/symbols.hpp"

namespace xroute {

bool Srt::add(const Advertisement& adv, IfaceId hop) {
  auto it = by_adv_.find(adv);
  if (it != by_adv_.end()) {
    it->second->hops.insert(hop);
    return false;
  }
  auto entry = std::make_unique<Entry>();
  entry->advertisement = adv;
  entry->hops.insert(hop);
  by_adv_.emplace(adv, entry.get());
  entries_.push_back(std::move(entry));
  index_dirty_ = true;
  return true;
}

bool Srt::remove(const Advertisement& adv, IfaceId hop) {
  auto it = by_adv_.find(adv);
  if (it == by_adv_.end()) return false;
  Entry* entry = it->second;
  if (entry->hops.erase(hop) == 0) return false;
  if (entry->hops.empty()) {
    by_adv_.erase(it);
    entries_.erase(std::find_if(
        entries_.begin(), entries_.end(),
        [&](const std::unique_ptr<Entry>& e) { return e.get() == entry; }));
    index_dirty_ = true;
  }
  return true;
}

const Srt::Entry* Srt::find(const Advertisement& adv) const {
  auto it = by_adv_.find(adv);
  return it == by_adv_.end() ? nullptr : it->second;
}

bool Srt::entry_overlaps(const Entry& entry, const Xpe& xpe) const {
  ++comparisons_;
  if (entry.advertisement.non_recursive()) {
    return nonrec_adv_overlaps(entry.advertisement.flat_symbols(), xpe);
  }
  if (!entry.automaton) {
    // Lazily compile; Entry is owned by unique_ptr so the address is
    // stable and the cache is per-advertisement.
    const_cast<Entry&>(entry).automaton =
        std::make_unique<AdvAutomaton>(entry.advertisement);
  }
  return entry.automaton->overlaps(xpe);
}

bool Srt::entry_overlaps_strings(const Entry& entry, const Xpe& xpe) const {
  ++comparisons_;
  if (entry.advertisement.non_recursive()) {
    return nonrec_adv_overlaps(entry.advertisement.flat_elements(), xpe);
  }
  if (!entry.automaton) {
    const_cast<Entry&>(entry).automaton =
        std::make_unique<AdvAutomaton>(entry.advertisement);
  }
  return entry.automaton->overlaps(xpe);
}

void Srt::rebuild_index() const {
  by_symbol_.clear();
  wildcard_entries_.clear();
  for (const auto& entry : entries_) {
    const Advertisement& adv = entry->advertisement;
    if (adv.has_wildcard() || adv.symbol_alphabet().empty()) {
      wildcard_entries_.push_back(entry.get());
    } else {
      for (std::uint32_t sym : adv.symbol_alphabet()) {
        by_symbol_[sym].push_back(entry.get());
      }
    }
  }
  index_dirty_ = false;
}

IfaceSet Srt::hops_overlapping(const Xpe& xpe) const {
  if (index_dirty_) rebuild_index();
  // A wildcard-free advertisement only produces paths over its own
  // alphabet, and a path matching `xpe` must realise every concrete step
  // of `xpe`; so any such advertisement overlapping `xpe` lives in the
  // bucket of EACH concrete query symbol — testing the smallest bucket
  // suffices.
  static const std::vector<Entry*> kEmptyBucket;
  const std::vector<Entry*>* bucket = nullptr;
  bool has_concrete = false;
  for (std::uint32_t sym : xpe.symbols()) {
    if (sym == SymbolTable::kWildcardId) continue;
    has_concrete = true;
    auto it = by_symbol_.find(sym);
    if (it == by_symbol_.end()) {
      // No wildcard-free advertisement mentions this element at all.
      bucket = &kEmptyBucket;
      break;
    }
    if (!bucket || it->second.size() < bucket->size()) bucket = &it->second;
  }
  IfaceSet hops;
  auto consider = [&](const Entry& entry) {
    // Skip entries whose every hop is already selected.
    bool all_present = std::all_of(entry.hops.begin(), entry.hops.end(),
                                   [&](IfaceId h) { return hops.count(h) > 0; });
    if (all_present) return;
    if (entry_overlaps(entry, xpe)) {
      hops.insert(entry.hops.begin(), entry.hops.end());
    }
  };
  if (!has_concrete) {
    // All-wildcard query: no symbol discriminates, test everything.
    for (const auto& entry : entries_) consider(*entry);
    return hops;
  }
  for (const Entry* entry : wildcard_entries_) consider(*entry);
  for (const Entry* entry : *bucket) consider(*entry);
  return hops;
}

IfaceSet Srt::hops_overlapping_scan(const Xpe& xpe) const {
  IfaceSet hops;
  for (const auto& entry : entries_) {
    bool all_present = std::all_of(entry->hops.begin(), entry->hops.end(),
                                   [&](IfaceId h) { return hops.count(h) > 0; });
    if (all_present) continue;
    if (entry_overlaps_strings(*entry, xpe)) {
      hops.insert(entry->hops.begin(), entry->hops.end());
    }
  }
  return hops;
}

Prt::Prt(bool covering, bool track_covered) : covering_(covering) {
  if (covering_) {
    SubscriptionTree::Options opts;
    opts.track_covered = track_covered;
    tree_ = std::make_unique<SubscriptionTree>(opts);
  }
}

Prt::InsertOutcome Prt::insert(const Xpe& xpe, IfaceId hop) {
  InsertOutcome outcome;
  if (covering_) {
    auto result = tree_->insert(xpe, hop);
    outcome.was_new = result.was_new;
    outcome.covered = result.covered_by_existing;
    outcome.now_covered = std::move(result.now_covered);
    return outcome;
  }
  auto it = flat_index_.find(xpe);
  if (it != flat_index_.end()) {
    flat_[it->second].hops.insert(hop);
    note_flat_snapshot_dirty(xpe);
    outcome.was_new = false;
    return outcome;
  }
  flat_index_.emplace(xpe, flat_.size());
  flat_.push_back(FlatEntry{xpe, {hop}});
  flat_index_dirty_ = true;
  note_flat_snapshot_dirty(xpe);
  outcome.was_new = true;
  return outcome;
}

bool Prt::remove(const Xpe& xpe, IfaceId hop) {
  if (covering_) return tree_->remove(xpe, hop);
  auto it = flat_index_.find(xpe);
  if (it == flat_index_.end()) return false;
  FlatEntry& entry = flat_[it->second];
  if (entry.hops.erase(hop) == 0) return false;
  note_flat_snapshot_dirty(xpe);
  if (entry.hops.empty()) {
    // Swap-and-pop, fixing the displaced entry's index.
    std::size_t pos = it->second;
    flat_index_.erase(it);
    if (pos + 1 != flat_.size()) {
      flat_[pos] = std::move(flat_.back());
      flat_index_[flat_[pos].xpe] = pos;
    }
    flat_.pop_back();
    flat_index_dirty_ = true;
  }
  return true;
}

void Prt::rebuild_flat_index() const {
  flat_by_symbol_.clear();
  flat_unindexed_.clear();
  for (std::size_t pos = 0; pos < flat_.size(); ++pos) {
    // Bucket by the deepest concrete step: a path can only match the XPE
    // if it contains that element somewhere.
    const std::uint32_t key = SubscriptionTree::bucket_key(flat_[pos].xpe);
    if (key == SymbolTable::kNoSymbol) {
      flat_unindexed_.push_back(pos);
    } else {
      flat_by_symbol_[key].push_back(pos);
    }
  }
  flat_index_dirty_ = false;
}

void Prt::note_flat_snapshot_dirty(const Xpe& xpe) {
  if (flat_snapshot_all_dirty_) return;
  flat_snapshot_dirty_keys_.insert(SubscriptionTree::bucket_key(xpe));
}

namespace {

/// Candidate positions for matching `ip` in a deepest-concrete-symbol
/// index: the side list plus the bucket of each distinct path symbol.
/// Buckets partition the indexed entries, so no position repeats.
std::vector<std::size_t> flat_candidates(
    const PathView& ip,
    const std::unordered_map<std::uint32_t, std::vector<std::size_t>>&
        by_symbol,
    const std::vector<std::size_t>& unindexed) {
  std::vector<std::size_t> out(unindexed);
  for (std::size_t i = 0; i < ip.size(); ++i) {
    const std::uint32_t sym = ip[i];
    if (sym == SymbolTable::kNoSymbol) continue;
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (ip[j] == sym) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    auto it = by_symbol.find(sym);
    if (it == by_symbol.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace

IfaceSet Prt::match_hops(const Path& path) const {
  if (covering_) return tree_->match_hops(path);
  if (flat_index_dirty_) rebuild_flat_index();
  const InternedPath ip(path);
  IfaceSet hops;
  for (std::size_t pos :
       flat_candidates(ip.view(), flat_by_symbol_, flat_unindexed_)) {
    const FlatEntry& entry = flat_[pos];
    ++flat_comparisons_;
    if (matches(ip, entry.xpe)) {
      hops.insert(entry.hops.begin(), entry.hops.end());
    }
  }
  return hops;
}

IfaceSet Prt::match_hops_scan(const Path& path) const {
  if (covering_) return tree_->match_hops_scan(path);
  IfaceSet hops;
  for (const FlatEntry& entry : flat_) {
    ++flat_comparisons_;
    if (matches(path, entry.xpe)) {
      hops.insert(entry.hops.begin(), entry.hops.end());
    }
  }
  return hops;
}

std::vector<std::pair<const Xpe*, const IfaceSet*>> Prt::match_entries(
    const Path& path) const {
  std::vector<std::pair<const Xpe*, const IfaceSet*>> out;
  if (covering_) {
    for (const SubscriptionTree::Node* node : tree_->match_nodes(path)) {
      out.emplace_back(&node->xpe, &node->hops);
    }
    return out;
  }
  if (flat_index_dirty_) rebuild_flat_index();
  const InternedPath ip(path);
  for (std::size_t pos :
       flat_candidates(ip.view(), flat_by_symbol_, flat_unindexed_)) {
    const FlatEntry& entry = flat_[pos];
    ++flat_comparisons_;
    if (matches(ip, entry.xpe)) out.emplace_back(&entry.xpe, &entry.hops);
  }
  return out;
}

std::size_t Prt::size() const {
  return covering_ ? tree_->size() : flat_.size();
}

bool Prt::contains(const Xpe& xpe) const {
  if (covering_) return tree_->find(xpe) != nullptr;
  return flat_index_.find(xpe) != flat_index_.end();
}

std::vector<Xpe> Prt::all_xpes() const {
  std::vector<Xpe> out;
  if (covering_) {
    out.reserve(tree_->size());
    tree_->for_each(
        [&](const SubscriptionTree::Node& node) { out.push_back(node.xpe); });
  } else {
    out.reserve(flat_.size());
    for (const FlatEntry& entry : flat_) out.push_back(entry.xpe);
  }
  return out;
}

std::vector<std::pair<Xpe, IfaceSet>> Prt::entries_with_hops() const {
  std::vector<std::pair<Xpe, IfaceSet>> out;
  if (covering_) {
    tree_->for_each([&](const SubscriptionTree::Node& node) {
      out.emplace_back(node.xpe, node.hops);
    });
  } else {
    for (const FlatEntry& entry : flat_) out.emplace_back(entry.xpe, entry.hops);
  }
  return out;
}

std::vector<Xpe> Prt::top_level_xpes() const {
  if (!covering_) return all_xpes();
  std::vector<Xpe> out;
  for (const auto& node : tree_->root()->children) {
    if (node->super_sources.empty()) out.push_back(node->xpe);
  }
  return out;
}

std::size_t Prt::comparisons() const {
  return covering_ ? tree_->comparisons() : flat_comparisons_;
}

void Prt::prepare_match() const {
  if (covering_) {
    tree_->ensure_root_index();
  } else if (flat_index_dirty_) {
    rebuild_flat_index();
  }
}

void Prt::add_comparisons(std::size_t n) const {
  if (covering_) {
    tree_->add_comparisons(n);
  } else {
    flat_comparisons_ += n;
  }
}

void Prt::match_shard(const PathView& ip,
                      std::span<const std::uint32_t> distinct_symbols,
                      std::size_t shard, std::size_t shard_count,
                      ShardMatch* out) const {
  if (covering_) {
    tree_->match_shard(
        ip, distinct_symbols, shard, shard_count,
        [&](const SubscriptionTree::Node& node) {
          out->hops.insert(out->hops.end(), node.hops.begin(),
                           node.hops.end());
          if (node.merger) {
            // Same backing test as the sequential broker: a merger match
            // no merged original backs is an in-network false positive.
            bool backed = false;
            for (const Xpe& original : node.merged_from) {
              if (matches(*ip.path, original)) {
                backed = true;
                break;
              }
            }
            if (!backed) ++out->merger_false_matches;
          }
        },
        &out->comparisons);
    return;
  }
  // Flat mode: the deepest-symbol buckets partition the indexed entries;
  // this shard owns the buckets of its symbols, shard 0 additionally owns
  // the all-wildcard side list.
  auto test = [&](std::size_t pos) {
    const FlatEntry& entry = flat_[pos];
    ++out->comparisons;
    if (matches(ip, entry.xpe)) {
      out->hops.insert(out->hops.end(), entry.hops.begin(), entry.hops.end());
    }
  };
  if (shard == 0) {
    for (std::size_t pos : flat_unindexed_) test(pos);
  }
  for (std::uint32_t sym : distinct_symbols) {
    if (symbol_shard(sym, static_cast<std::uint32_t>(shard_count)) != shard) {
      continue;
    }
    auto it = flat_by_symbol_.find(sym);
    if (it == flat_by_symbol_.end()) continue;
    for (std::size_t pos : it->second) test(pos);
  }
}

bool Prt::snapshot_dirty() const {
  if (covering_) {
    return tree_->snapshot_all_dirty() ||
           !tree_->snapshot_dirty_keys().empty();
  }
  return flat_snapshot_all_dirty_ || !flat_snapshot_dirty_keys_.empty();
}

bool Prt::snapshot_all_dirty() const {
  return covering_ ? tree_->snapshot_all_dirty() : flat_snapshot_all_dirty_;
}

const std::set<std::uint32_t>& Prt::snapshot_dirty_keys() const {
  return covering_ ? tree_->snapshot_dirty_keys() : flat_snapshot_dirty_keys_;
}

void Prt::clear_snapshot_dirty() {
  if (covering_) {
    tree_->clear_snapshot_dirty();
  } else {
    flat_snapshot_dirty_keys_.clear();
    flat_snapshot_all_dirty_ = false;
  }
}

void Prt::mark_snapshot_all_dirty() {
  if (covering_) {
    tree_->mark_snapshot_all_dirty();
  } else {
    flat_snapshot_all_dirty_ = true;
  }
}

void Prt::compile_snapshot_bucket(std::uint32_t key,
                                  SnapshotBucket* out) const {
  if (covering_) {
    tree_->compile_snapshot_bucket(key, out);
    return;
  }
  // Flat entries compile to leaf-only streams (zero skips, one entry
  // each) in position order — the exact candidate order the live flat
  // index tests, so comparison counts stay in lockstep.
  for (const FlatEntry& entry : flat_) {
    if (SubscriptionTree::bucket_key(entry.xpe) != key) continue;
    const std::vector<std::uint32_t>& prog = entry.xpe.program();
    out->words.push_back(static_cast<std::uint32_t>(prog.size()));
    out->words.push_back(0);  // skip_words: leaves have no subtree
    out->words.push_back(0);  // skip_entries
    out->words.insert(out->words.end(), prog.begin(), prog.end());
    SnapshotBucket::Entry se;
    // Plain shared_ptr for a detached control block — see the tree-path
    // equivalent in subscription_tree.cpp.
    if (!entry.snapshot_xpe) {
      entry.snapshot_xpe = std::shared_ptr<const Xpe>(new Xpe(entry.xpe));
    }
    se.xpe = entry.snapshot_xpe;
    se.hop_begin = static_cast<std::uint32_t>(out->hops.size());
    out->hops.insert(out->hops.end(), entry.hops.begin(), entry.hops.end());
    se.hop_end = static_cast<std::uint32_t>(out->hops.size());
    out->entries.push_back(std::move(se));
  }
}

std::vector<std::uint32_t> Prt::snapshot_bucket_keys() const {
  if (covering_) return tree_->snapshot_bucket_keys();
  std::set<std::uint32_t> keys;
  for (const FlatEntry& entry : flat_) {
    const std::uint32_t key = SubscriptionTree::bucket_key(entry.xpe);
    if (key != SymbolTable::kNoSymbol) keys.insert(key);
  }
  return {keys.begin(), keys.end()};
}

}  // namespace xroute
