#include "router/routing_tables.hpp"

#include <algorithm>

#include "match/adv_match.hpp"
#include "match/pub_match.hpp"

namespace xroute {

bool Srt::add(const Advertisement& adv, int hop) {
  auto it = by_adv_.find(adv);
  if (it != by_adv_.end()) {
    it->second->hops.insert(hop);
    return false;
  }
  auto entry = std::make_unique<Entry>();
  entry->advertisement = adv;
  entry->hops.insert(hop);
  by_adv_.emplace(adv, entry.get());
  entries_.push_back(std::move(entry));
  return true;
}

bool Srt::remove(const Advertisement& adv, int hop) {
  auto it = by_adv_.find(adv);
  if (it == by_adv_.end()) return false;
  Entry* entry = it->second;
  if (entry->hops.erase(hop) == 0) return false;
  if (entry->hops.empty()) {
    by_adv_.erase(it);
    entries_.erase(std::find_if(
        entries_.begin(), entries_.end(),
        [&](const std::unique_ptr<Entry>& e) { return e.get() == entry; }));
  }
  return true;
}

bool Srt::entry_overlaps(const Entry& entry, const Xpe& xpe) const {
  ++comparisons_;
  if (entry.advertisement.non_recursive()) {
    return nonrec_adv_overlaps(entry.advertisement.flat_elements(), xpe);
  }
  if (!entry.automaton) {
    // Lazily compile; Entry is owned by unique_ptr so the address is
    // stable and the cache is per-advertisement.
    const_cast<Entry&>(entry).automaton =
        std::make_unique<AdvAutomaton>(entry.advertisement);
  }
  return entry.automaton->overlaps(xpe);
}

std::set<int> Srt::hops_overlapping(const Xpe& xpe) const {
  std::set<int> hops;
  for (const auto& entry : entries_) {
    // Skip entries whose every hop is already selected.
    bool all_present = std::all_of(entry->hops.begin(), entry->hops.end(),
                                   [&](int h) { return hops.count(h) > 0; });
    if (all_present) continue;
    if (entry_overlaps(*entry, xpe)) {
      hops.insert(entry->hops.begin(), entry->hops.end());
    }
  }
  return hops;
}

Prt::Prt(bool covering, bool track_covered) : covering_(covering) {
  if (covering_) {
    SubscriptionTree::Options opts;
    opts.track_covered = track_covered;
    tree_ = std::make_unique<SubscriptionTree>(opts);
  }
}

Prt::InsertOutcome Prt::insert(const Xpe& xpe, int hop) {
  InsertOutcome outcome;
  if (covering_) {
    auto result = tree_->insert(xpe, hop);
    outcome.was_new = result.was_new;
    outcome.covered = result.covered_by_existing;
    outcome.now_covered = std::move(result.now_covered);
    return outcome;
  }
  auto it = flat_index_.find(xpe);
  if (it != flat_index_.end()) {
    flat_[it->second].hops.insert(hop);
    outcome.was_new = false;
    return outcome;
  }
  flat_index_.emplace(xpe, flat_.size());
  flat_.push_back(FlatEntry{xpe, {hop}});
  outcome.was_new = true;
  return outcome;
}

bool Prt::remove(const Xpe& xpe, int hop) {
  if (covering_) return tree_->remove(xpe, hop);
  auto it = flat_index_.find(xpe);
  if (it == flat_index_.end()) return false;
  FlatEntry& entry = flat_[it->second];
  if (entry.hops.erase(hop) == 0) return false;
  if (entry.hops.empty()) {
    // Swap-and-pop, fixing the displaced entry's index.
    std::size_t pos = it->second;
    flat_index_.erase(it);
    if (pos + 1 != flat_.size()) {
      flat_[pos] = std::move(flat_.back());
      flat_index_[flat_[pos].xpe] = pos;
    }
    flat_.pop_back();
  }
  return true;
}

std::set<int> Prt::match_hops(const Path& path) const {
  if (covering_) return tree_->match_hops(path);
  std::set<int> hops;
  for (const FlatEntry& entry : flat_) {
    ++flat_comparisons_;
    if (matches(path, entry.xpe)) {
      hops.insert(entry.hops.begin(), entry.hops.end());
    }
  }
  return hops;
}

std::vector<std::pair<const Xpe*, const std::set<int>*>> Prt::match_entries(
    const Path& path) const {
  std::vector<std::pair<const Xpe*, const std::set<int>*>> out;
  if (covering_) {
    for (const SubscriptionTree::Node* node : tree_->match_nodes(path)) {
      out.emplace_back(&node->xpe, &node->hops);
    }
    return out;
  }
  for (const FlatEntry& entry : flat_) {
    ++flat_comparisons_;
    if (matches(path, entry.xpe)) out.emplace_back(&entry.xpe, &entry.hops);
  }
  return out;
}

std::size_t Prt::size() const {
  return covering_ ? tree_->size() : flat_.size();
}

bool Prt::contains(const Xpe& xpe) const {
  if (covering_) return tree_->find(xpe) != nullptr;
  return flat_index_.find(xpe) != flat_index_.end();
}

std::vector<Xpe> Prt::all_xpes() const {
  std::vector<Xpe> out;
  if (covering_) {
    out.reserve(tree_->size());
    tree_->for_each(
        [&](const SubscriptionTree::Node& node) { out.push_back(node.xpe); });
  } else {
    out.reserve(flat_.size());
    for (const FlatEntry& entry : flat_) out.push_back(entry.xpe);
  }
  return out;
}

std::vector<std::pair<Xpe, std::set<int>>> Prt::entries_with_hops() const {
  std::vector<std::pair<Xpe, std::set<int>>> out;
  if (covering_) {
    tree_->for_each([&](const SubscriptionTree::Node& node) {
      out.emplace_back(node.xpe, node.hops);
    });
  } else {
    for (const FlatEntry& entry : flat_) out.emplace_back(entry.xpe, entry.hops);
  }
  return out;
}

std::vector<Xpe> Prt::top_level_xpes() const {
  if (!covering_) return all_xpes();
  std::vector<Xpe> out;
  for (const auto& node : tree_->root()->children) {
    if (node->super_sources.empty()) out.push_back(node->xpe);
  }
  return out;
}

std::size_t Prt::comparisons() const {
  return covering_ ? tree_->comparisons() : flat_comparisons_;
}

}  // namespace xroute
