#include "router/broker_options.hpp"

#include <charconv>

namespace xroute {

namespace {

constexpr std::size_t kMaxThreads = 256;

bool parse_bool(const std::string& value, bool* out) {
  if (value == "on" || value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool parse_size(const std::string& value, std::size_t* out) {
  std::size_t parsed = 0;
  auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace

std::string BrokerOptions::validate() const {
  if (match_threads == 0) {
    return "match_threads must be >= 1 (1 = sequential matching)";
  }
  if (match_threads > kMaxThreads) {
    return "match_threads " + std::to_string(match_threads) +
           " exceeds the supported maximum of " + std::to_string(kMaxThreads);
  }
  if (match_threads > 1 && shard_count != 0 && shard_count < match_threads) {
    return "shard_count " + std::to_string(shard_count) + " < match_threads " +
           std::to_string(match_threads) +
           " would leave workers idle; use shards >= threads (or 0 = auto)";
  }
  if (merging_enabled && !use_covering) {
    return "merging requires covering (the merge pass runs on the "
           "subscription tree)";
  }
  if (merging_enabled && merge_interval == 0) {
    return "merging enabled with merge_interval 0 (a pass would never run)";
  }
  return "";
}

std::string apply_broker_option(BrokerOptions& options, const std::string& key,
                                const std::string& value) {
  auto bad_bool = [&]() {
    return "option '" + key + "': expected on/off/true/false/1/0, got '" +
           value + "'";
  };
  auto bad_size = [&]() {
    return "option '" + key + "': expected a non-negative integer, got '" +
           value + "'";
  };
  if (key == "advertisements") {
    return parse_bool(value, &options.use_advertisements) ? "" : bad_bool();
  }
  if (key == "covering") {
    return parse_bool(value, &options.use_covering) ? "" : bad_bool();
  }
  if (key == "track_covered") {
    return parse_bool(value, &options.track_covered) ? "" : bad_bool();
  }
  if (key == "merging") {
    return parse_bool(value, &options.merging_enabled) ? "" : bad_bool();
  }
  if (key == "streaming") {
    return parse_bool(value, &options.streaming_pipeline) ? "" : bad_bool();
  }
  if (key == "merge_interval") {
    return parse_size(value, &options.merge_interval) ? "" : bad_size();
  }
  if (key == "threads") {
    return parse_size(value, &options.match_threads) ? "" : bad_size();
  }
  if (key == "shards") {
    return parse_size(value, &options.shard_count) ? "" : bad_size();
  }
  return "unknown broker option '" + key + "'";
}

std::string apply_broker_option(BrokerOptions& options,
                                const std::string& key_equals_value) {
  auto eq = key_equals_value.find('=');
  if (eq == std::string::npos || eq == 0) {
    return "expected key=value, got '" + key_equals_value + "'";
  }
  return apply_broker_option(options, key_equals_value.substr(0, eq),
                             key_equals_value.substr(eq + 1));
}

}  // namespace xroute
