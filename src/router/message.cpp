#include "router/message.hpp"

#include <algorithm>

namespace xroute {

namespace {

std::size_t xpe_bytes(const Xpe& xpe) {
  std::size_t bytes = 0;
  for (const Step& step : xpe.steps()) bytes += step.name.size() + 2;
  return bytes;
}

}  // namespace

std::size_t Message::wire_bytes() const {
  constexpr std::size_t kHeader = 16;  // type, ids, framing
  switch (type()) {
    case MessageType::kAdvertise:
      return kHeader +
             std::get<AdvertiseMsg>(payload).advertisement.to_string().size();
    case MessageType::kSubscribe:
      return kHeader + xpe_bytes(std::get<SubscribeMsg>(payload).xpe);
    case MessageType::kUnsubscribe:
      return kHeader + xpe_bytes(std::get<UnsubscribeMsg>(payload).xpe);
    case MessageType::kUnadvertise:
      return kHeader +
             std::get<UnadvertiseMsg>(payload).advertisement.to_string().size();
    case MessageType::kSyncRequest:
      return kHeader;
    case MessageType::kSyncState:
      return kHeader + std::get<SyncStateMsg>(payload).state.size();
    case MessageType::kPublish: {
      // A publication carries its path; the document body travels with it
      // (subscribers receive the full document, unlike ONYX — paper §1),
      // amortised over the document's paths.
      const auto& pub = std::get<PublishMsg>(payload);
      std::size_t path_bytes = 0;
      for (const std::string& e : pub.path.elements) path_bytes += e.size() + 1;
      return kHeader + path_bytes +
             pub.doc_bytes / std::max<std::uint32_t>(1, pub.paths_in_doc);
    }
  }
  return kHeader;
}

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kAdvertise: return "advertise";
    case MessageType::kSubscribe: return "subscribe";
    case MessageType::kUnsubscribe: return "unsubscribe";
    case MessageType::kPublish: return "publish";
    case MessageType::kUnadvertise: return "unadvertise";
    case MessageType::kSyncRequest: return "sync-request";
    case MessageType::kSyncState: return "sync-state";
  }
  return "unknown";
}

}  // namespace xroute
