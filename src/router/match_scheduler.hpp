// MatchScheduler — the parallel publication-matching engine.
//
// Publication matching is the broker's hot path and is embarrassingly
// parallel once the routing tables are sharded: the PRT's symbol indexes
// (the covering tree's root index, or the flat list's deepest-symbol
// buckets) partition entries by their discriminating symbol, and
// symbol_shard() partitions those buckets into `shards` disjoint groups.
// A worker matching shard k visits exactly the entries of its buckets —
// no locks, no shared mutable state — and the union over all shards is
// provably the sequential match set, with identical comparison counts.
//
// The scheduler owns a fixed pool of worker threads and runs *epochs*: the
// control thread (the broker's single writer) pins an immutable
// RoutingSnapshot (router/routing_snapshot.hpp), publishes a task range,
// and wakes the pool. Workers match against the pinned snapshot only —
// never the live routing tables — so the control thread is free to keep
// mutating those tables *while the epoch runs*; there is no quiesce
// barrier on the control path any more. The snapshot stays alive (plain
// shared_ptr refcounting) until the epoch's completion wait drops the
// pin. Tasks are distributed via per-worker run queues:
// the control thread splits the task range into one contiguous chunk per
// worker, each worker drains its own queue (an uncontended CAS on its own
// cache line), and a worker that runs dry steals from the other queues —
// so a skewed batch (one expensive publication) still finishes at the
// speed of the pool, not of the unluckiest worker, and the common case
// never bounces a shared claim word between cores. Workers spin briefly
// for the next epoch before parking on the condvar: under batch load
// epochs arrive back to back, and futex wake/park latency would otherwise
// rival the matching work itself.
//
// Each worker keeps private scratch (symbol buffers, a reusable
// ShardMatch cell) across epochs, so the steady-state batch path performs
// no heap allocation beyond the per-publication result vectors handed
// back to the broker.
//
// Determinism: per-shard hop lists are concatenated, sorted and
// deduplicated (by the worker that matched the publication, or by the
// control thread for single-publication epochs), and the broker's forward
// loop iterates the sorted result — so the emitted forward sequence is
// byte-identical at any thread count (tests/parallel_test).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "router/iface.hpp"
#include "router/routing_snapshot.hpp"
#include "router/routing_tables.hpp"
#include "xml/paths.hpp"

namespace xroute {

class MatchScheduler {
 public:
  struct Options {
    std::size_t threads = 2;
    std::size_t shards = 4;
  };

  /// The merged result for one publication path — the same facts the
  /// sequential match stage produces. `hops` is sorted ascending and
  /// deduplicated, i.e. exactly the iteration order of the IfaceSet the
  /// sequential path builds.
  struct MatchResult {
    std::vector<IfaceId> hops;
    std::size_t merger_false_matches = 0;
    std::size_t comparisons = 0;
  };

  /// Monotonic per-worker counters (metrics export; relaxed reads).
  /// busy_ns is thread-CPU time (CLOCK_THREAD_CPUTIME_ID), not wall
  /// clock, so it stays honest when workers outnumber cores.
  struct WorkerStats {
    std::uint64_t tasks = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t steals = 0;
  };

  /// `options.threads >= 1`, `options.shards >= 1`
  /// (BrokerOptions::validate() enforces sane combinations upstream).
  explicit MatchScheduler(Options options);
  ~MatchScheduler();
  MatchScheduler(const MatchScheduler&) = delete;
  MatchScheduler& operator=(const MatchScheduler&) = delete;

  /// Matches one publication path across all shards (one epoch) against
  /// `snapshot`. Blocks until done; the caller must be the broker's
  /// single control thread.
  MatchResult match_one(const Path& path,
                        std::shared_ptr<const RoutingSnapshot> snapshot);

  /// Launches a batch epoch (one task per publication) pinned to
  /// `snapshot` and returns immediately: the control thread is free to
  /// apply control-plane ops — including publishing newer snapshots —
  /// while the workers match. Pair with finish_batch().
  void begin_batch(const std::vector<const Path*>& paths,
                   std::shared_ptr<const RoutingSnapshot> snapshot);

  /// Blocks until the epoch launched by begin_batch() drains, then fills
  /// `out` ((*out)[i] corresponds to paths[i]) and drops the snapshot
  /// pin. `out` is resized to the batch and its entries' hop storage is
  /// recycled via swap with the internal per-slot buffers, so a caller
  /// that reuses the same vector across batches reaches a steady state
  /// with no allocation — and no cross-thread free of worker-allocated
  /// hop vectors on the control thread, which showed up as malloc arena
  /// traffic per publication.
  void finish_batch(std::vector<MatchResult>* out);

  /// begin_batch + finish_batch back to back (no overlapped control ops).
  void match_batch(const std::vector<const Path*>& paths,
                   std::shared_ptr<const RoutingSnapshot> snapshot,
                   std::vector<MatchResult>* out) {
    begin_batch(paths, std::move(snapshot));
    finish_batch(out);
  }

  bool batch_in_flight() const { return batch_pending_; }
  /// Version of the currently pinned snapshot, 0 if none. Control thread
  /// only (tests).
  std::uint64_t pinned_version() const {
    return epoch_snapshot_ ? epoch_snapshot_->version() : 0;
  }

  std::size_t threads() const { return options_.threads; }
  std::size_t shards() const { return options_.shards; }
  /// Epochs run since construction.
  std::uint64_t epochs() const {
    return epochs_.load(std::memory_order_relaxed);
  }
  /// Tasks executed since construction (one publication in a batch epoch,
  /// one shard of the publication in a single-publication epoch).
  std::uint64_t total_tasks() const;
  std::vector<WorkerStats> worker_stats() const;
  /// Tasks claimed from another worker's queue since construction.
  std::uint64_t total_steals() const;
  /// Sum over epochs of the busiest worker's CPU time in that epoch —
  /// the match stage's critical path. On a core-starved machine (cores <
  /// workers) wall-clock scaling is unmeasurable; this figure is what an
  /// unloaded machine's epoch wall time would be dominated by, and
  /// bench/parallel_match builds its labelled projection from it.
  std::uint64_t critical_path_ns() const {
    return critical_path_ns_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-publication epoch state. Single-publication epochs intern the
  /// path up front and shard it across the pool (one cell per shard,
  /// each written by exactly one task). Batch epochs stage only the path
  /// pointer: the claiming worker interns into its private scratch,
  /// matches the whole table in one call, and folds straight into
  /// `result` — interning, matching, and merging all parallelise, and
  /// the control thread's staging cost per publication is one pointer.
  struct Pub {
    Pub() = default;
    /// Batch shell: everything else happens on the claiming worker.
    explicit Pub(const Path* p) : src(p) {}
    const Path* src = nullptr;
    std::optional<InternedPath> ip;
    std::vector<std::uint32_t> distinct_symbols;
    std::vector<Prt::ShardMatch> per_shard;
    MatchResult result;
  };

  /// One per worker, cache-line isolated: the owner claims with an
  /// uncontended CAS; thieves CAS the same word only after their own
  /// queue is dry. The epoch tag embedded in `cursor` makes claims from
  /// a finished epoch fail harmlessly instead of poaching the next
  /// grid's tasks.
  struct alignas(64) WorkQueue {
    /// epoch<<32 | next unclaimed task index.
    std::atomic<std::uint64_t> cursor{0};
    /// One past this queue's last task index. Atomic only so a stale
    /// worker's read during restaging is defined; relaxed everywhere.
    std::atomic<std::uint32_t> end{0};
  };

  void worker_loop(std::size_t worker_index);
  /// Publishes the staged queues as epoch `gen` and wakes the pool.
  /// epoch_snapshot_ must be set before this call: the generation store
  /// is the release that makes it visible to the workers.
  void launch_epoch(std::uint64_t gen);
  /// Blocks until every task of the running epoch is done and drops the
  /// snapshot pin. Afterwards pubs_ and the queues are exclusively the
  /// control thread's again.
  void wait_epoch();
  /// Restamps the queues for the upcoming epoch; returns the new epoch
  /// number. Call before staging.
  std::uint64_t begin_staging();
  /// Splits [0, count) contiguously across the worker queues.
  void stage_queues(std::uint64_t gen, std::size_t count);
  MatchResult merge_pub(const Pub& pub) const;

  Options options_;

  // Epoch state. The control thread stages pubs_ and the queues between
  // epochs (no claim can succeed then), publishes the grid descriptor,
  // and finally bumps generation_. Batch epochs: task = publication
  // index (full-table match, worker merges). Single-pub epochs: task =
  // shard index (control thread merges).
  std::vector<Pub> pubs_;
  std::size_t task_count_ = 0;  ///< control thread only
  /// The snapshot this epoch matches against. Written by the control
  /// thread strictly before the generation_ release store; read by
  /// workers only after a successful task claim for that generation (a
  /// claim can only succeed after staging restamped the cursors, and the
  /// control thread never restages before the completion wait returns) —
  /// so plain, non-atomic access is race-free. Reset at wait_epoch() end;
  /// between begin_batch and finish_batch it carries the pin that keeps a
  /// retired snapshot alive while newer ones are published.
  std::shared_ptr<const RoutingSnapshot> epoch_snapshot_;
  bool batch_pending_ = false;    ///< control thread only
  std::size_t pending_count_ = 0; ///< control thread only
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  /// epoch<<32 | kGridBatchBit? | task count — the grid descriptor
  /// workers read instead of racing on plain members.
  std::atomic<std::uint64_t> grid_{0};
  std::atomic<std::size_t> tasks_done_{0};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers park here between epochs
  std::condition_variable done_cv_;  ///< control thread blocks here
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutdown_{false};
  std::size_t idle_workers_ = 0;  ///< guarded by mutex_ (park accounting)

  struct AtomicWorkerStats {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> steals{0};
    /// This epoch's drain CPU time; zeroed by the control thread during
    /// staging, published by the worker's tasks_done_ release.
    std::atomic<std::uint64_t> epoch_busy_ns{0};
  };
  std::vector<std::unique_ptr<AtomicWorkerStats>> stats_;
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> critical_path_ns_{0};
  /// Spin budget before parking; 0 on machines with too few cores for
  /// the pool (spinning there steals the core the work needs).
  int spin_iterations_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace xroute
