#include "router/routing_snapshot.hpp"

#include "match/pub_match.hpp"
#include "util/symbols.hpp"

namespace xroute {

RoutingSnapshot::RoutingSnapshot(
    std::uint64_t version, std::shared_ptr<std::atomic<std::int64_t>> gauge)
    : version_(version),
      side_bucket_(std::make_shared<SnapshotBucket>()),
      clients_(std::make_shared<IfaceSet>()),
      client_subs_(std::make_shared<std::map<IfaceId, std::vector<Xpe>>>()),
      gauge_(std::move(gauge)) {
  if (gauge_) gauge_->fetch_add(1, std::memory_order_relaxed);
}

RoutingSnapshot::~RoutingSnapshot() {
  if (gauge_) gauge_->fetch_sub(1, std::memory_order_relaxed);
}

void RoutingSnapshot::scan_bucket(const SnapshotBucket& bucket,
                                  const PathView& ip, Prt::ShardMatch* out) {
  // The PR 6 kernel walk, verbatim semantics: one comparison per reached
  // entry, failed subtrees skipped wholesale via the backpatched offsets.
  const std::uint32_t* w = bucket.words.data();
  const std::uint32_t* const end = w + bucket.words.size();
  std::size_t k = 0;
  while (w != end) {
    const std::uint32_t n = *w++;
    const std::uint32_t skip_words = *w++;
    const std::uint32_t skip_entries = *w++;
    const SnapshotBucket::Entry& entry = bucket.entries[k++];
    ++out->comparisons;
    if (matches_program(ip, w, n, *entry.xpe)) {
      out->hops.insert(out->hops.end(), bucket.hops.begin() + entry.hop_begin,
                       bucket.hops.begin() + entry.hop_end);
      if (entry.merger) {
        // Same backing test as the sequential broker: a merger match no
        // merged original backs is an in-network false positive.
        bool backed = false;
        for (const Xpe& original : *entry.merged_from) {
          if (matches(*ip.path, original)) {
            backed = true;
            break;
          }
        }
        if (!backed) ++out->merger_false_matches;
      }
      w += n;
    } else {
      // The entry covers its whole subtree: nothing below can match.
      w += n + skip_words;
      k += skip_entries;
    }
  }
}

void RoutingSnapshot::match_shard(
    const PathView& ip, std::span<const std::uint32_t> distinct_symbols,
    std::size_t shard, std::size_t shard_count, Prt::ShardMatch* out) const {
  if (shard == 0) scan_bucket(*side_bucket_, ip, out);
  for (std::uint32_t sym : distinct_symbols) {
    if (symbol_shard(sym, static_cast<std::uint32_t>(shard_count)) != shard) {
      continue;
    }
    auto it = buckets_.find(sym);
    if (it == buckets_.end()) continue;
    scan_bucket(*it->second, ip, out);
  }
}

SnapshotStore::SnapshotStore()
    : gauge_(std::make_shared<std::atomic<std::int64_t>>(0)),
      current_(std::make_shared<const RoutingSnapshot>(0, gauge_)) {}

std::shared_ptr<const RoutingSnapshot> SnapshotBuilder::build(
    const Prt& prt, const IfaceSet& clients,
    const std::map<IfaceId, std::vector<Xpe>>& client_subs, bool edge_dirty,
    const std::shared_ptr<const RoutingSnapshot>& prev,
    const std::shared_ptr<std::atomic<std::int64_t>>& gauge) {
  auto next = std::make_shared<RoutingSnapshot>(prev->version() + 1, gauge);
  ++builds_;

  auto compile = [&](std::uint32_t key) {
    auto bucket = std::make_shared<SnapshotBucket>();
    prt.compile_snapshot_bucket(key, bucket.get());
    ++buckets_rebuilt_;
    return bucket;
  };

  if (prt.snapshot_all_dirty()) {
    for (std::uint32_t key : prt.snapshot_bucket_keys()) {
      auto bucket = compile(key);
      if (!bucket->empty()) next->buckets_.emplace(key, std::move(bucket));
    }
    next->side_bucket_ = compile(SymbolTable::kNoSymbol);
  } else {
    // Structural sharing: start from the previous spine (shared_ptr
    // copies, no payload copies) and recompile only the dirty keys.
    next->buckets_ = prev->buckets_;
    next->side_bucket_ = prev->side_bucket_;
    // Unchanged-content reuse: dirty tracking may overshoot (it marks
    // whole buckets for hop-only edits and for mutations that net out
    // within one control window), so a recompile frequently reproduces
    // the previous bucket exactly. Recompiles therefore land in the
    // persistent scratch bucket (same warm allocation every build, no
    // alloc/free churn) and are cloned out only on a content change:
    // workers keep matching memory that is already in cache instead of
    // faulting in a fresh copy per churn op, which is what makes match
    // cost churn-independent.
    bool bucket_changed = false;
    auto recompile_scratch = [&](std::uint32_t key) {
      scratch_.words.clear();
      scratch_.entries.clear();
      scratch_.hops.clear();
      prt.compile_snapshot_bucket(key, &scratch_);
      ++buckets_rebuilt_;
    };
    for (std::uint32_t key : prt.snapshot_dirty_keys()) {
      recompile_scratch(key);
      if (key == SymbolTable::kNoSymbol) {
        if (scratch_ == *prev->side_bucket_) {
          ++buckets_unchanged_;
        } else {
          next->side_bucket_ = std::make_shared<SnapshotBucket>(scratch_);
          bucket_changed = true;
        }
        continue;
      }
      if (scratch_.empty()) {
        bucket_changed |= next->buckets_.erase(key) > 0;
        continue;
      }
      auto it = prev->buckets_.find(key);
      if (it != prev->buckets_.end() && scratch_ == *it->second) {
        ++buckets_unchanged_;
      } else {
        next->buckets_[key] = std::make_shared<SnapshotBucket>(scratch_);
        bucket_changed = true;
      }
    }
    if (!bucket_changed && !edge_dirty) {
      // Every dirty key recompiled to its previous content and the edge
      // state is untouched: the control ops since the last build netted
      // out (e.g. a subscribe whose unsubscribe landed in the same
      // window). Publishing `next` would hand workers a byte-identical
      // snapshot behind a freshly allocated bucket map — evicting the
      // map they already have warm — so elide the publish entirely and
      // keep the previous snapshot current.
      ++builds_elided_;
      return prev;
    }
    buckets_shared_ += next->buckets_.size() > prt.snapshot_dirty_keys().size()
                           ? next->buckets_.size() -
                                 prt.snapshot_dirty_keys().size()
                           : 0;
  }

  if (edge_dirty) {
    next->clients_ = std::make_shared<IfaceSet>(clients);
    next->client_subs_ =
        std::make_shared<std::map<IfaceId, std::vector<Xpe>>>(client_subs);
  } else {
    next->clients_ = prev->clients_;
    next->client_subs_ = prev->client_subs_;
  }
  return next;
}

}  // namespace xroute
