// Broker state snapshot & restore.
//
// A broker's routing state is fully reconstructible from four relations:
// SRT entries (advertisement, hops), PRT subscriptions (XPE, hops, merger
// metadata), per-client original XPEs, and the forwarding record
// (XPE, interfaces). The snapshot serialises them to a line-oriented text
// format (every element already has an exact textual round-trip) so a
// restarted broker resumes routing without a network-wide re-subscription
// storm.
//
// Format (one record per line, '\t'-separated fields; strings are the
// canonical to_string forms, which never contain tabs or newlines):
//
//   xroute-broker-snapshot 1
//   srt\t<advertisement>\t<hop>...
//   sub\t<xpe>\t<hop>...
//   merger\t<xpe>\t<original>...
//   client\t<interface>\t<xpe>...
//   fwd\t<xpe>\t<interface>...
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "router/broker.hpp"

namespace xroute {

/// Writes `broker`'s routing state. Throws on stream failure.
void save_snapshot(const Broker& broker, std::ostream& out);

/// Rebuilds routing state into `broker` — a freshly constructed Broker
/// with the same interfaces (neighbors/clients) declared. Throws
/// ParseError on malformed input. Existing state is not cleared; restoring
/// into a non-empty broker is undefined.
void load_snapshot(Broker& broker, std::istream& in);

/// Convenience round-trip through a string (used by tests and tools).
std::string snapshot_to_string(const Broker& broker);
void snapshot_from_string(Broker& broker, const std::string& text);

}  // namespace xroute
