// Broker state snapshot & restore.
//
// A broker's routing state is fully reconstructible from four relations:
// SRT entries (advertisement, hops), PRT subscriptions (XPE, hops, merger
// metadata), per-client original XPEs, and the forwarding record
// (XPE, interfaces). The snapshot serialises them to a line-oriented text
// format (every element already has an exact textual round-trip) so a
// restarted broker resumes routing without a network-wide re-subscription
// storm.
//
// Format (one record per line, '\t'-separated fields; strings are the
// canonical to_string forms, which never contain tabs or newlines):
//
//   xroute-broker-snapshot 1
//   srt\t<advertisement>\t<hop>...
//   sub\t<xpe>\t<hop>...
//   merger\t<xpe>\t<original>...
//   client\t<interface>\t<xpe>...
//   fwd\t<xpe>\t<interface>...
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "router/broker.hpp"

namespace xroute {

/// Writes `broker`'s routing state. Throws on stream failure.
void save_snapshot(const Broker& broker, std::ostream& out);

/// Rebuilds routing state into `broker` — a freshly constructed Broker
/// with the same interfaces (neighbors/clients) declared. Throws
/// ParseError on malformed input (including an unknown or missing version
/// header) and std::logic_error if `broker` already holds routing state
/// (restoring must start from a blank broker).
void load_snapshot(Broker& broker, std::istream& in);

/// Convenience round-trip through a string (used by tests and tools).
std::string snapshot_to_string(const Broker& broker);
void snapshot_from_string(Broker& broker, const std::string& text);

// -- Link-state transfer (crash resync) -------------------------------------
//
// When a neighbour restarts cold, a broker replays the slice of its state
// that concerns the shared link, using the same line-oriented
// serialisation as the full snapshot:
//
//   xroute-link-sync 1
//   srt\t<advertisement>   advertisements this broker would flood over the
//                          link (held via some other hop)
//   sub\t<xpe>             subscriptions this broker forwarded over the link
//                          (the restarted side must route them back here)
//   fwd\t<xpe>             subscriptions this broker already holds *from*
//                          the restarted side (so it must not re-forward)
//   end

/// Serialises the state `broker` holds about the link on `interface_id`.
std::string export_link_state(const Broker& broker, IfaceId interface_id);

/// Restores a neighbour's link state arriving on `interface_id`:
/// srt lines become SRT entries via that interface, sub lines PRT entries
/// from it, fwd lines forwarding-record hops toward it. Restoration is
/// passive (no messages are emitted). Throws ParseError on malformed input.
void import_link_state(Broker& broker, IfaceId interface_id,
                       const std::string& text);

}  // namespace xroute
