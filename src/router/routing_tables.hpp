// The two routing tables of an XML content-based router (paper §2.1):
//
//   SRT — subscription routing table: <advertisement, lasthop> tuples.
//         Subscriptions are matched against it to decide which neighbours
//         lead to publishers whose data can satisfy them.
//   PRT — publication routing table: <subscription, lasthop> tuples.
//         Publications are matched against it to trace back along the
//         paths subscriptions built. With covering enabled the PRT *is*
//         the subscription tree of §4.1; without it, a flat list (the
//         paper's no-covering baseline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "adv/advertisement.hpp"
#include "index/subscription_tree.hpp"
#include "router/iface.hpp"
#include "match/adv_automaton.hpp"
#include "match/rec_adv_match.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

/// Subscription routing table.
class Srt {
 public:
  struct Entry {
    Advertisement advertisement;
    IfaceSet hops;
    /// Compiled matcher for recursive advertisements (lazily built).
    std::unique_ptr<AdvAutomaton> automaton;
  };

  /// Records the advertisement as reachable via `hop`. Returns true if the
  /// advertisement itself is new to this broker (=> flood it on).
  bool add(const Advertisement& adv, IfaceId hop);

  /// Drops an advertisement/hop pair (unadvertise support).
  bool remove(const Advertisement& adv, IfaceId hop);

  /// O(1) entry lookup by advertisement; nullptr if absent.
  const Entry* find(const Advertisement& adv) const;
  bool contains(const Advertisement& adv) const {
    return find(adv) != nullptr;
  }

  /// All hops through which some advertisement overlapping `xpe` arrived —
  /// the next hops for forwarding the subscription. Uses the symbol index:
  /// a wildcard-free advertisement overlapping `xpe` must contain every
  /// concrete step name of `xpe` in its alphabet, so only the bucket of
  /// the query's rarest concrete symbol (plus the wildcard side list) is
  /// tested. Results are exactly the linear scan's.
  IfaceSet hops_overlapping(const Xpe& xpe) const;

  /// Pre-index linear-scan reference (string element comparisons over
  /// every entry). Retained as the differential-test oracle and the
  /// perf_routing "before" baseline; do not use on the hot path.
  IfaceSet hops_overlapping_scan(const Xpe& xpe) const;

  /// Does any advertisement from `hop` overlap `xpe`? (Used to route
  /// existing subscriptions toward a newly arrived advertisement.)
  bool entry_overlaps(const Entry& entry, const Xpe& xpe) const;

  /// The pre-interning implementation of entry_overlaps (string element
  /// comparisons); reference twin for tests and the scan baseline.
  bool entry_overlaps_strings(const Entry& entry, const Xpe& xpe) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<std::unique_ptr<Entry>>& entries() const {
    return entries_;
  }

  /// Overlap-test counter (reported by the processing-time experiments):
  /// number of entry_overlaps tests actually performed. Entries the symbol
  /// index provably excludes are skipped without being counted.
  std::size_t comparisons() const { return comparisons_; }

 private:
  void rebuild_index() const;

  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<Advertisement, Entry*, AdvHash> by_adv_;
  mutable std::size_t comparisons_ = 0;

  // Symbol index, rebuilt lazily after add/remove: wildcard-free
  // advertisements are registered under every symbol of their alphabet;
  // advertisements containing '*' go to the always-tested side list.
  mutable std::unordered_map<std::uint32_t, std::vector<Entry*>> by_symbol_;
  mutable std::vector<Entry*> wildcard_entries_;
  mutable bool index_dirty_ = true;
};

/// Publication routing table: subscription-tree or flat, behind one
/// interface so the broker code is oblivious to the covering mode.
class Prt {
 public:
  struct InsertOutcome {
    bool was_new = false;
    bool covered = false;
    std::vector<Xpe> now_covered;
  };

  explicit Prt(bool covering, bool track_covered = true);

  InsertOutcome insert(const Xpe& xpe, IfaceId hop);
  bool remove(const Xpe& xpe, IfaceId hop);
  IfaceSet match_hops(const Path& path) const;
  /// Pre-index linear-scan reference (flat mode: string matcher over every
  /// entry; covering mode: the tree's scan twin). Differential-test oracle
  /// and perf_routing "before" baseline.
  IfaceSet match_hops_scan(const Path& path) const;
  /// Matching subscriptions with their hop sets (edge delivery needs both).
  std::vector<std::pair<const Xpe*, const IfaceSet*>> match_entries(
      const Path& path) const;
  std::size_t size() const;
  std::size_t comparisons() const;
  bool covering() const { return covering_; }
  bool contains(const Xpe& xpe) const;
  /// Every stored subscription (tree or flat).
  std::vector<Xpe> all_xpes() const;
  /// Subscriptions that are not covered by any other (covering mode: tree
  /// roots without super sources; flat mode: everything).
  std::vector<Xpe> top_level_xpes() const;
  /// Every stored subscription with its hop set (both modes; snapshots).
  std::vector<std::pair<Xpe, IfaceSet>> entries_with_hops() const;

  // -- Parallel matching support (router/match_scheduler.hpp) --------------

  /// Forces the lazy match indexes now. Must run on the control thread
  /// before a parallel match epoch: the shard matchers are pure reads and
  /// never rebuild.
  void prepare_match() const;

  /// Per-shard slice of one publication match. The shards partition the
  /// table (tree roots or flat entries) by symbol_shard() of each entry's
  /// discriminating symbol, so the union over all shards equals the
  /// sequential result exactly — hops, merger false-positive count and
  /// comparison count alike.
  struct ShardMatch {
    /// Matching hops, appended in visit order WITH duplicates: deferring
    /// the dedup to one sort+unique at merge time replaces a per-node
    /// red-black-tree insert on the hottest worker loop. clear() keeps the
    /// capacity, so a reused ShardMatch allocates nothing at steady state.
    std::vector<IfaceId> hops;
    /// Matches against merger entries not backed by any merged original
    /// (covering mode; the paper's in-network false positives, Fig. 9).
    std::size_t merger_false_matches = 0;
    /// Comparison tests performed; fold back via add_comparisons().
    std::size_t comparisons = 0;

    void clear() {
      hops.clear();
      merger_false_matches = 0;
      comparisons = 0;
    }
  };

  /// Matches `ip` against shard `shard` of `shard_count`. Thread-safe pure
  /// read after prepare_match(), provided no mutation overlaps the epoch.
  /// `distinct_symbols` is the deduplicated symbol list of the path.
  /// Appends into `out` (call out->clear() first to reuse its storage).
  void match_shard(const PathView& ip,
                   std::span<const std::uint32_t> distinct_symbols,
                   std::size_t shard, std::size_t shard_count,
                   ShardMatch* out) const;

  /// Folds worker-local comparison counts back into comparisons().
  /// Control thread only (between epochs).
  void add_comparisons(std::size_t n) const;

  /// Covering mode only: the underlying tree (merging runs on it).
  SubscriptionTree* tree() { return tree_.get(); }
  const SubscriptionTree* tree() const { return tree_.get(); }

  // -- Snapshot compile support (router/routing_snapshot.hpp) --------------
  //
  // The table tracks which snapshot buckets its mutations touched since
  // the last clear, so the SnapshotBuilder recompiles only those and
  // structurally shares the rest. Covering mode delegates to the tree;
  // flat mode tracks its own key set here.

  /// Any mutation since clear_snapshot_dirty()?
  bool snapshot_dirty() const;
  bool snapshot_all_dirty() const;
  const std::set<std::uint32_t>& snapshot_dirty_keys() const;
  void clear_snapshot_dirty();
  void mark_snapshot_all_dirty();
  /// Compiles bucket `key` (SymbolTable::kNoSymbol = the all-wildcard
  /// side bucket) from the live table, preserving the candidate order the
  /// live index would test (determinism contract).
  void compile_snapshot_bucket(std::uint32_t key, SnapshotBucket* out) const;
  /// Distinct non-side bucket keys currently present (full rebuilds).
  std::vector<std::uint32_t> snapshot_bucket_keys() const;

 private:
  void rebuild_flat_index() const;
  void note_flat_snapshot_dirty(const Xpe& xpe);

  bool covering_;
  std::unique_ptr<SubscriptionTree> tree_;  // covering mode
  // Flat mode storage.
  struct FlatEntry {
    Xpe xpe;
    IfaceSet hops;
    /// Lazily created immutable share for snapshot compilation (see
    /// SubscriptionTree::Node::snapshot_xpe); `xpe` never mutates after
    /// the entry is created.
    mutable std::shared_ptr<const Xpe> snapshot_xpe;
  };
  std::vector<FlatEntry> flat_;
  std::unordered_map<Xpe, std::size_t, XpeHash> flat_index_;
  mutable std::size_t flat_comparisons_ = 0;

  // Flat-mode symbol index (mirror of the subscription tree's root index):
  // each entry is bucketed by position under its XPE's deepest concrete
  // step symbol; all-wildcard XPEs stay in the always-tested side list.
  // Rebuilt lazily after insert/remove (swap-and-pop moves positions).
  mutable std::unordered_map<std::uint32_t, std::vector<std::size_t>>
      flat_by_symbol_;
  mutable std::vector<std::size_t> flat_unindexed_;
  mutable bool flat_index_dirty_ = true;

  // Flat-mode snapshot dirty tracking (covering mode: the tree's own).
  std::set<std::uint32_t> flat_snapshot_dirty_keys_;
  bool flat_snapshot_all_dirty_ = true;
};

}  // namespace xroute
