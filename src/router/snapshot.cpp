#include "router/snapshot.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "xpath/parser.hpp"

namespace xroute {

namespace {

constexpr const char kHeaderPrefix[] = "xroute-broker-snapshot";
constexpr const char kHeader[] = "xroute-broker-snapshot 1";
constexpr const char kSyncHeader[] = "xroute-link-sync 1";

/// Rejects a first line that is not exactly `expected`, distinguishing an
/// unsupported version of the right format from a foreign/missing header.
void check_header(const std::string& line, const char* expected,
                  const char* prefix, const char* what) {
  if (line == expected) return;
  if (line.rfind(prefix, 0) == 0) {
    throw ParseError(std::string(what) + ": unsupported version header '" +
                     line + "' (expected '" + expected + "')");
  }
  throw ParseError(std::string(what) + ": missing or unrecognised header '" +
                   line + "' (expected '" + expected + "')");
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (true) {
    std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      return fields;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

int parse_int(const std::string& field) {
  try {
    return std::stoi(field);
  } catch (const std::exception&) {
    throw ParseError("snapshot: bad integer '" + field + "'");
  }
}

}  // namespace

void save_snapshot(const Broker& broker, std::ostream& out) {
  out << kHeader << '\n';

  for (const auto& entry : broker.srt().entries()) {
    out << "srt\t" << entry->advertisement.to_string();
    for (IfaceId hop : entry->hops) out << '\t' << hop.value();
    out << '\n';
  }

  for (const auto& [xpe, hops] : broker.prt().entries_with_hops()) {
    out << "sub\t" << xpe.to_string();
    for (IfaceId hop : hops) out << '\t' << hop.value();
    out << '\n';
  }
  if (broker.prt().covering()) {
    broker.prt().tree()->for_each([&](const SubscriptionTree::Node& node) {
      if (!node.merger) return;
      out << "merger\t" << node.xpe.to_string();
      for (const Xpe& original : node.merged_from) {
        out << '\t' << original.to_string();
      }
      out << '\n';
    });
  }

  for (const auto& [interface_id, xpes] : broker.client_tables()) {
    out << "client\t" << interface_id.value();
    for (const Xpe& xpe : xpes) out << '\t' << xpe.to_string();
    out << '\n';
  }

  for (const auto& [xpe, interfaces] : broker.forwarding_record()) {
    out << "fwd\t" << xpe.to_string();
    for (IfaceId interface_id : interfaces) out << '\t' << interface_id.value();
    out << '\n';
  }

  out << "end\n";
  if (!out) throw std::runtime_error("snapshot: write failure");
}

void load_snapshot(Broker& broker, std::istream& in) {
  if (broker.srt_size() > 0 || broker.prt_size() > 0 ||
      !broker.client_tables().empty() || !broker.forwarding_record().empty()) {
    throw std::logic_error(
        "load_snapshot: broker already holds routing state; restore "
        "requires a freshly constructed broker");
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError("snapshot: missing or unrecognised header '' (expected '" +
                     std::string(kHeader) + "')");
  }
  check_header(line, kHeader, kHeaderPrefix, "snapshot");
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      ended = true;
      break;
    }
    std::vector<std::string> fields = split_tabs(line);
    const std::string& kind = fields[0];
    if (kind == "srt") {
      if (fields.size() < 3) throw ParseError("snapshot: srt needs hops");
      Advertisement adv = parse_advertisement(fields[1]);
      IfaceSet hops;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        hops.insert(IfaceId{parse_int(fields[i])});
      }
      broker.restore_advertisement(adv, hops);
    } else if (kind == "sub") {
      if (fields.size() < 3) throw ParseError("snapshot: sub needs hops");
      Xpe xpe = parse_xpe(fields[1]);
      IfaceSet hops;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        hops.insert(IfaceId{parse_int(fields[i])});
      }
      broker.restore_subscription(xpe, hops);
    } else if (kind == "merger") {
      if (fields.size() < 2) throw ParseError("snapshot: bad merger line");
      Xpe merger = parse_xpe(fields[1]);
      std::vector<Xpe> originals;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        originals.push_back(parse_xpe(fields[i]));
      }
      broker.restore_merger(merger, originals);
    } else if (kind == "client") {
      if (fields.size() < 2) throw ParseError("snapshot: bad client line");
      IfaceId interface_id{parse_int(fields[1])};
      std::vector<Xpe> xpes;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        xpes.push_back(parse_xpe(fields[i]));
      }
      broker.restore_client_table(interface_id, std::move(xpes));
    } else if (kind == "fwd") {
      if (fields.size() < 2) throw ParseError("snapshot: bad fwd line");
      Xpe xpe = parse_xpe(fields[1]);
      IfaceSet interfaces;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        interfaces.insert(IfaceId{parse_int(fields[i])});
      }
      broker.restore_forwarding(xpe, std::move(interfaces));
    } else {
      throw ParseError("snapshot: unknown record '" + kind + "'");
    }
  }
  if (!ended) throw ParseError("snapshot: truncated (no 'end')");
}

std::string snapshot_to_string(const Broker& broker) {
  std::ostringstream os;
  save_snapshot(broker, os);
  return os.str();
}

void snapshot_from_string(Broker& broker, const std::string& text) {
  std::istringstream is(text);
  load_snapshot(broker, is);
}

std::string export_link_state(const Broker& broker, IfaceId interface_id) {
  std::ostringstream out;
  out << kSyncHeader << '\n';

  // Advertisements this broker would flood over the link: everything held
  // via some hop other than the link itself (entries held *only* via the
  // link came from the restarted side and will be re-advertised by its
  // publishers).
  for (const auto& entry : broker.srt().entries()) {
    bool via_elsewhere = false;
    for (IfaceId hop : entry->hops) {
      if (hop != interface_id) {
        via_elsewhere = true;
        break;
      }
    }
    if (via_elsewhere) out << "srt\t" << entry->advertisement.to_string() << '\n';
  }

  // Subscriptions this broker holds via any hop other than the link: the
  // peer must hold them in its PRT with the link as lasthop, or
  // publications entering on its side stop routing back here. Exporting
  // from the PRT (rather than the per-link forwarding record) makes the
  // slice complete for a *cold* joiner too — a fresh link was never
  // forwarded anything, yet the newcomer still needs every route.
  for (const auto& [xpe, hops] : broker.prt().entries_with_hops()) {
    for (IfaceId hop : hops) {
      if (hop != interface_id) {
        out << "sub\t" << xpe.to_string() << '\n';
        break;
      }
    }
  }

  // Subscriptions already held *from* the restarted side (its pre-crash
  // forwards, mergers included): restoring them into its forwarding record
  // stops it from re-forwarding what this side already has.
  for (const auto& [xpe, hops] : broker.prt().entries_with_hops()) {
    if (hops.count(interface_id)) out << "fwd\t" << xpe.to_string() << '\n';
  }

  out << "end\n";
  return out.str();
}

void import_link_state(Broker& broker, IfaceId interface_id,
                       const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError("link sync: missing or unrecognised header '' (expected '" +
                     std::string(kSyncHeader) + "')");
  }
  check_header(line, kSyncHeader, "xroute-link-sync", "link sync");
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      ended = true;
      break;
    }
    std::vector<std::string> fields = split_tabs(line);
    if (fields.size() != 2) {
      throw ParseError("link sync: bad record '" + line + "'");
    }
    const std::string& kind = fields[0];
    if (kind == "srt") {
      broker.restore_advertisement(parse_advertisement(fields[1]),
                                   {interface_id});
    } else if (kind == "sub") {
      broker.restore_subscription(parse_xpe(fields[1]), {interface_id});
    } else if (kind == "fwd") {
      broker.restore_forwarding_add(parse_xpe(fields[1]), interface_id);
    } else {
      throw ParseError("link sync: unknown record '" + kind + "'");
    }
  }
  if (!ended) throw ParseError("link sync: truncated (no 'end')");
}

}  // namespace xroute
