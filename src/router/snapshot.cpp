#include "router/snapshot.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "xpath/parser.hpp"

namespace xroute {

namespace {

constexpr const char kHeader[] = "xroute-broker-snapshot 1";

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (true) {
    std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      return fields;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

int parse_int(const std::string& field) {
  try {
    return std::stoi(field);
  } catch (const std::exception&) {
    throw ParseError("snapshot: bad integer '" + field + "'");
  }
}

}  // namespace

void save_snapshot(const Broker& broker, std::ostream& out) {
  out << kHeader << '\n';

  for (const auto& entry : broker.srt().entries()) {
    out << "srt\t" << entry->advertisement.to_string();
    for (int hop : entry->hops) out << '\t' << hop;
    out << '\n';
  }

  for (const auto& [xpe, hops] : broker.prt().entries_with_hops()) {
    out << "sub\t" << xpe.to_string();
    for (int hop : hops) out << '\t' << hop;
    out << '\n';
  }
  if (broker.prt().covering()) {
    broker.prt().tree()->for_each([&](const SubscriptionTree::Node& node) {
      if (!node.merger) return;
      out << "merger\t" << node.xpe.to_string();
      for (const Xpe& original : node.merged_from) {
        out << '\t' << original.to_string();
      }
      out << '\n';
    });
  }

  for (const auto& [interface_id, xpes] : broker.client_tables()) {
    out << "client\t" << interface_id;
    for (const Xpe& xpe : xpes) out << '\t' << xpe.to_string();
    out << '\n';
  }

  for (const auto& [xpe, interfaces] : broker.forwarding_record()) {
    out << "fwd\t" << xpe.to_string();
    for (int interface_id : interfaces) out << '\t' << interface_id;
    out << '\n';
  }

  out << "end\n";
  if (!out) throw std::runtime_error("snapshot: write failure");
}

void load_snapshot(Broker& broker, std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw ParseError("snapshot: missing or unsupported header");
  }
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      ended = true;
      break;
    }
    std::vector<std::string> fields = split_tabs(line);
    const std::string& kind = fields[0];
    if (kind == "srt") {
      if (fields.size() < 3) throw ParseError("snapshot: srt needs hops");
      Advertisement adv = parse_advertisement(fields[1]);
      std::set<int> hops;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        hops.insert(parse_int(fields[i]));
      }
      broker.restore_advertisement(adv, hops);
    } else if (kind == "sub") {
      if (fields.size() < 3) throw ParseError("snapshot: sub needs hops");
      Xpe xpe = parse_xpe(fields[1]);
      std::set<int> hops;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        hops.insert(parse_int(fields[i]));
      }
      broker.restore_subscription(xpe, hops);
    } else if (kind == "merger") {
      if (fields.size() < 2) throw ParseError("snapshot: bad merger line");
      Xpe merger = parse_xpe(fields[1]);
      std::vector<Xpe> originals;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        originals.push_back(parse_xpe(fields[i]));
      }
      broker.restore_merger(merger, originals);
    } else if (kind == "client") {
      if (fields.size() < 2) throw ParseError("snapshot: bad client line");
      int interface_id = parse_int(fields[1]);
      std::vector<Xpe> xpes;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        xpes.push_back(parse_xpe(fields[i]));
      }
      broker.restore_client_table(interface_id, std::move(xpes));
    } else if (kind == "fwd") {
      if (fields.size() < 2) throw ParseError("snapshot: bad fwd line");
      Xpe xpe = parse_xpe(fields[1]);
      std::set<int> interfaces;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        interfaces.insert(parse_int(fields[i]));
      }
      broker.restore_forwarding(xpe, std::move(interfaces));
    } else {
      throw ParseError("snapshot: unknown record '" + kind + "'");
    }
  }
  if (!ended) throw ParseError("snapshot: truncated (no 'end')");
}

std::string snapshot_to_string(const Broker& broker) {
  std::ostringstream os;
  save_snapshot(broker, os);
  return os.str();
}

void snapshot_from_string(Broker& broker, const std::string& text) {
  std::istringstream is(text);
  load_snapshot(broker, is);
}

}  // namespace xroute
