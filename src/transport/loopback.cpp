#include "transport/loopback.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace xroute::transport {

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

LoopbackOverlay::LoopbackOverlay(const Topology& topology, Options options)
    : topology_(topology), options_(std::move(options)) {}

LoopbackOverlay::~LoopbackOverlay() { stop(); }

bool LoopbackOverlay::start(int timeout_ms) {
  if (started_) return true;
  started_ = true;

  brokers_.reserve(topology_.num_brokers);
  for (std::size_t i = 0; i < topology_.num_brokers; ++i) {
    TransportBroker::Options opts;
    opts.id = static_cast<int>(i);
    opts.config = options_.config;
    opts.connection = options_.connection;
    opts.force_poll = options_.force_poll;
    brokers_.push_back(std::make_unique<TransportBroker>(std::move(opts)));
    brokers_.back()->start();
  }

  // One connection per link: the lower id dials the higher.
  std::vector<std::size_t> degree(topology_.num_brokers, 0);
  for (const auto& [a, b] : topology_.edges) {
    int low = std::min(a, b);
    int high = std::max(a, b);
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
    brokers_[static_cast<std::size_t>(low)]->connect_to(
        "127.0.0.1", brokers_[static_cast<std::size_t>(high)]->port());
  }

  // Wait until every broker sees all its overlay links.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all_up = true;
    for (std::size_t i = 0; i < brokers_.size(); ++i) {
      if (brokers_[i]->broker_peers() < degree[i]) {
        all_up = false;
        break;
      }
    }
    if (all_up) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    sleep_ms(5);
  }
}

void LoopbackOverlay::stop() {
  // Clients first: a client's connection dying mid-broker-teardown is
  // routine, but tearing clients down against live brokers keeps close
  // reasons boring.
  clients_.clear();
  brokers_.clear();
  started_ = false;
}

TransportClient& LoopbackOverlay::attach_client(int broker_id, int client_id) {
  TransportClient::Options opts;
  opts.id = client_id;
  opts.connection = options_.connection;
  opts.force_poll = options_.force_poll;
  auto client = std::make_unique<TransportClient>(std::move(opts));
  client->start("127.0.0.1",
                brokers_.at(static_cast<std::size_t>(broker_id))->port());
  client->wait_connected();
  auto [it, inserted] = clients_.emplace(client_id, std::move(client));
  return *it->second;
}

std::uint64_t LoopbackOverlay::total_frames() const {
  std::uint64_t total = 0;
  for (const auto& broker : brokers_) total += broker->frames_in();
  for (const auto& [id, client] : clients_) total += client->frames_in();
  return total;
}

std::size_t LoopbackOverlay::total_queued() const {
  // Frames accepted by an async broker's loop thread but still waiting in
  // its match-thread inbox: "received" by the frame counters, yet their
  // consequences have not happened. Quiescence must wait these out too.
  std::size_t total = 0;
  for (const auto& broker : brokers_) total += broker->queued_messages();
  return total;
}

bool LoopbackOverlay::wait_quiescent(int settle_ms, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  std::uint64_t last = total_frames();
  auto stable_since = std::chrono::steady_clock::now();
  for (;;) {
    sleep_ms(10);
    std::uint64_t now = total_frames();
    auto t = std::chrono::steady_clock::now();
    if (now != last || total_queued() != 0) {
      last = now;
      stable_since = t;
    } else if (t - stable_since >= std::chrono::milliseconds(settle_ms)) {
      return true;
    }
    if (t >= deadline) return false;
  }
}

}  // namespace xroute::transport
