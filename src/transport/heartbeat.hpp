// Per-peer failure detection: heartbeat schedule + suspicion state machine.
//
// Every established connection exchanges kHeartbeat frames at a fixed
// interval; *any* arriving frame counts as proof of life (traffic is the
// cheapest heartbeat). PeerHealth turns the arrival history into a
// three-state machine
//
//     kAlive ──silence──▶ kSuspect ──more silence──▶ kDown
//        ▲                   │
//        └──── any frame ────┘
//
// with two inputs: a hard silence timeout (suspect_after_ms / down_after_ms)
// and a phi accrual score computed from the observed inter-arrival window
// (Hayashibara et al.: phi = -log10 P(silence this long | past arrivals),
// under an exponential inter-arrival model). The phi term lets a peer whose
// cadence is normally tight be suspected earlier than the fixed timeout; the
// timeout term bounds detection latency regardless of history. kDown is
// terminal per connection: the transport closes the socket, which routes
// into the ordinary disconnect → quarantine → re-dial machinery.
//
// PeerHealth is pure (no clocks, no I/O): callers feed it monotonic
// timestamps, so the state machine is exhaustively unit-testable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xroute::transport {

struct HeartbeatOptions {
  /// Master switch: disabled means no beacons are sent and no peer is ever
  /// suspected (the PR 4 behaviour).
  bool enabled = true;
  /// Beacon send period per connection.
  double interval_ms = 1000.0;
  /// Hard silence bound for kAlive -> kSuspect.
  double suspect_after_ms = 3000.0;
  /// Hard silence bound for -> kDown (connection is closed).
  double down_after_ms = 6000.0;
  /// Phi accrual score at which a peer is suspected ahead of the hard
  /// timeout (never before two beacon intervals of silence, so a single
  /// delayed frame cannot trip it).
  double phi_suspect = 6.0;
};

enum class PeerState : std::uint8_t { kAlive, kSuspect, kDown };

const char* to_string(PeerState state);

class PeerHealth {
 public:
  PeerHealth(const HeartbeatOptions& options, double now_ms);

  /// Any frame arrived from the peer at `now_ms`: records the inter-arrival
  /// sample and resets suspicion.
  void note_activity(double now_ms);

  /// Phi accrual suspicion score at `now_ms`: -log10 of the probability of
  /// observing this much silence given the arrival history. 0 right after
  /// a frame; grows without bound during silence.
  double phi(double now_ms) const;

  /// Current state at `now_ms` (pure function of history + options).
  PeerState state(double now_ms) const;

  double silence_ms(double now_ms) const { return now_ms - last_seen_ms_; }
  double last_seen_ms() const { return last_seen_ms_; }

 private:
  static constexpr std::size_t kWindow = 16;

  /// Mean inter-arrival over the window; the configured interval before
  /// enough samples exist (a fresh peer is judged by the contract, not by
  /// an empty history).
  double mean_interval_ms() const;

  HeartbeatOptions options_;
  double last_seen_ms_;
  double samples_[kWindow] = {};
  std::size_t sample_count_ = 0;
  std::size_t next_sample_ = 0;
};

}  // namespace xroute::transport
