#include "transport/client.hpp"

#include <chrono>
#include <cstddef>
#include <future>
#include <utility>

namespace xroute::transport {

TransportClient::TransportClient(Options options)
    : options_(std::move(options)),
      loop_(std::make_unique<EventLoop>(options_.force_poll)) {
  Transport::Options topts;
  topts.self.kind = wire::Hello::PeerKind::kClient;
  topts.self.peer_id = static_cast<std::uint32_t>(options_.id);
  topts.connection = options_.connection;
  topts.dial_backoff = options_.dial_backoff;
  topts.heartbeat = options_.heartbeat;
  transport_ = std::make_unique<Transport>(loop_.get(), std::move(topts));
  transport_->set_peer_handler(
      [this](Connection* c, const wire::Hello&) { on_peer(c); });
  transport_->set_frame_handler(
      [this](Connection*, wire::Decoded&& d) { on_frame(std::move(d)); });
  transport_->set_disconnect_handler(
      [this](Connection*, const std::string&) { on_disconnect(); });
  transport_->set_lease_handler([this](Connection*, double ttl_ms) {
    lease_grants_.fetch_add(1, std::memory_order_relaxed);
    last_lease_ttl_ms_.store(ttl_ms, std::memory_order_relaxed);
  });
}

TransportClient::~TransportClient() { stop(); }

void TransportClient::start(const std::string& host, std::uint16_t port) {
  if (running_) return;
  running_ = true;
  loop_->post([this, host, port] { transport_->dial(host, port); });
  thread_ = std::thread([this] { loop_->run(); });
}

void TransportClient::stop() {
  if (!running_) return;
  running_ = false;
  loop_->post([this] { transport_->shutdown(); });
  loop_->stop();
  thread_.join();
}

bool TransportClient::wait_connected(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return connected_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                [this] { return connected(); });
}

void TransportClient::send(Message msg) {
  loop_->post([this, msg = std::move(msg)]() mutable {
    if (connection_ != nullptr) {
      connection_->send(wire::encode_frame(msg));
    } else {
      pending_.push_back(std::move(msg));
    }
  });
}

void TransportClient::sync() {
  std::promise<void> done;
  loop_->post([&done] { done.set_value(); });
  done.get_future().wait();
}

bool TransportClient::drain(int timeout_ms) {
  auto waiter = std::make_shared<DrainWaiter>();
  loop_->post([this, waiter] {
    if (connection_ == nullptr) {
      // Connection gone (dropped, or handshake still pending with sends
      // parked in pending_): queued frames cannot drain.
      std::lock_guard<std::mutex> lock(waiter->m);
      waiter->done = true;
      waiter->ok = pending_.empty();
      waiter->cv.notify_all();
      return;
    }
    if (connection_->pending_bytes() == 0) {
      std::lock_guard<std::mutex> lock(waiter->m);
      waiter->done = true;
      waiter->ok = true;
      waiter->cv.notify_all();
      return;
    }
    // Park until the connection's queue-empty (or close) callback fires.
    drain_waiters_.push_back(waiter);
  });
  std::unique_lock<std::mutex> lock(waiter->m);
  waiter->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return waiter->done; });
  return waiter->done && waiter->ok;
}

void TransportClient::resolve_drain_waiters(bool ok) {
  for (const auto& waiter : drain_waiters_) {
    std::lock_guard<std::mutex> guard(waiter->m);
    waiter->done = true;
    waiter->ok = ok;
    waiter->cv.notify_all();
  }
  drain_waiters_.clear();
}

void TransportClient::set_message_handler(
    std::function<void(const Message&)> handler) {
  loop_->post([this, handler = std::move(handler)]() mutable {
    on_message_ = std::move(handler);
  });
}

void TransportClient::on_peer(Connection* connection) {
  connection_ = connection;
  connection_->set_drain_handler([this] { resolve_drain_waiters(true); });
  for (Message& msg : pending_) {
    connection_->send(wire::encode_frame(msg));
  }
  pending_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connected_.store(true, std::memory_order_release);
  }
  connected_cv_.notify_all();
}

void TransportClient::on_frame(wire::Decoded&& decoded) {
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  if (decoded.message.type() == MessageType::kPublish) {
    const auto& pub = std::get<PublishMsg>(decoded.message.payload);
    std::lock_guard<std::mutex> lock(mutex_);
    ++arrivals_[pub.doc_id];
  }
  if (on_message_) on_message_(decoded.message);
}

void TransportClient::on_disconnect() {
  connection_ = nullptr;
  connected_.store(false, std::memory_order_release);
  // Frames still queued on a dead connection will never drain.
  resolve_drain_waiters(false);
}

std::set<std::uint64_t> TransportClient::delivered_docs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<std::uint64_t> docs;
  for (const auto& [doc, count] : arrivals_) docs.insert(doc);
  return docs;
}

std::size_t TransportClient::duplicate_publications() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t duplicates = 0;
  for (const auto& [doc, count] : arrivals_) duplicates += count - 1;
  return duplicates;
}

}  // namespace xroute::transport
