#include "transport/broker_node.hpp"

#include <future>
#include <sstream>
#include <utility>

namespace xroute::transport {

TransportBroker::TransportBroker(Options options)
    : options_(std::move(options)),
      loop_(std::make_unique<EventLoop>(options_.force_poll)),
      broker_(options_.id, options_.config) {
  Transport::Options topts;
  topts.self.kind = wire::Hello::PeerKind::kBroker;
  topts.self.peer_id = static_cast<std::uint32_t>(options_.id);
  topts.connection = options_.connection;
  topts.dial_backoff = options_.dial_backoff;
  transport_ = std::make_unique<Transport>(loop_.get(), std::move(topts));
  transport_->set_peer_handler(
      [this](Connection* c, const wire::Hello& h) { on_peer(c, h); });
  transport_->set_frame_handler(
      [this](Connection* c, wire::Decoded&& d) { on_frame(c, std::move(d)); });
  transport_->set_disconnect_handler(
      [this](Connection* c, const std::string& r) { on_disconnect(c, r); });
}

TransportBroker::~TransportBroker() { stop(); }

void TransportBroker::start() {
  if (running_) return;
  port_ = transport_->listen(options_.listen_port);
  running_ = true;
  thread_ = std::thread([this] { loop_->run(); });
}

void TransportBroker::connect_to(const std::string& host, std::uint16_t port) {
  loop_->post([this, host, port] { transport_->dial(host, port); });
}

void TransportBroker::stop() {
  if (!running_) return;
  running_ = false;
  loop_->post([this] { transport_->shutdown(); });
  loop_->stop();
  thread_.join();
}

void TransportBroker::on_peer(Connection* connection, const wire::Hello& hello) {
  Peer peer;
  peer.interface_id = next_interface_++;
  peer.hello = hello;
  std::string peer_label =
      (hello.kind == wire::Hello::PeerKind::kBroker ? "broker-" : "client-") +
      std::to_string(hello.peer_id);
  peer.frames_in = &registry_.counter("transport.frames",
                                      {{"peer", peer_label}, {"dir", "in"}});
  peer.frames_out = &registry_.counter("transport.frames",
                                       {{"peer", peer_label}, {"dir", "out"}});
  peer.bytes_in = &registry_.counter("transport.bytes",
                                     {{"peer", peer_label}, {"dir", "in"}});
  peer.bytes_out = &registry_.counter("transport.bytes",
                                      {{"peer", peer_label}, {"dir", "out"}});
  interfaces_[peer.interface_id] = connection;
  if (hello.kind == wire::Hello::PeerKind::kBroker) {
    broker_.add_neighbor(peer.interface_id);
    broker_peers_.fetch_add(1, std::memory_order_relaxed);
  } else {
    broker_.add_client(peer.interface_id);
    client_peers_.fetch_add(1, std::memory_order_relaxed);
  }
  peers_.emplace(connection, peer);
  connection->set_backpressure_handler(
      [this, connection](bool engaged) { on_backpressure(connection, engaged); });
  // Honour an ingress pause already in force: a peer whose handshake
  // completes mid-pause must not start reading until the pause lifts.
  connection->set_read_enabled(backpressured_connections_ == 0);
}

void TransportBroker::on_disconnect(Connection* connection,
                                    const std::string& reason) {
  (void)reason;
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  if (it->second.hello.kind == wire::Hello::PeerKind::kBroker) {
    broker_peers_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    client_peers_.fetch_sub(1, std::memory_order_relaxed);
  }
  registry_.counter("transport.disconnects").inc();
  interfaces_.erase(it->second.interface_id);
  // A dying connection never emits backpressure(false); release its share
  // of the ingress pause here or the whole node stays paused forever.
  bool was_backpressured = it->second.backpressured;
  peers_.erase(it);
  if (was_backpressured && backpressured_connections_ > 0) {
    --backpressured_connections_;
    apply_read_pause();
  }
  // The Broker keeps the interface's routing state: a reconnecting peer
  // gets a fresh interface and re-announces (crash resync is the
  // SyncRequest/SyncState handshake, driven by the restarted side).
}

void TransportBroker::on_frame(Connection* connection, wire::Decoded&& decoded) {
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  Peer& peer = it->second;
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  peer.frames_in->inc();
  peer.bytes_in->inc(decoded.consumed);

  Broker::HandleResult result =
      broker_.handle(peer.interface_id, decoded.message);
  for (const Broker::Forward& forward : result.forwards) {
    send_on(forward.interface, forward.message);
  }
}

void TransportBroker::send_on(int interface_id, const Message& msg) {
  auto it = interfaces_.find(interface_id);
  if (it == interfaces_.end()) return;  // interface's peer is gone
  auto peer_it = peers_.find(it->second);
  std::vector<std::uint8_t> frame = wire::encode_frame(msg);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (peer_it != peers_.end()) {
    peer_it->second.frames_out->inc();
    peer_it->second.bytes_out->inc(frame.size());
  }
  it->second->send(std::move(frame));
}

void TransportBroker::on_backpressure(Connection* connection, bool engaged) {
  auto it = peers_.find(connection);
  if (it == peers_.end() || it->second.backpressured == engaged) return;
  it->second.backpressured = engaged;
  if (engaged) {
    ++backpressured_connections_;
    backpressure_events_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("transport.backpressure_events").inc();
  } else if (backpressured_connections_ > 0) {
    --backpressured_connections_;
  }
  apply_read_pause();
}

void TransportBroker::apply_read_pause() {
  // Ingress is the only source of egress: pause every reader while any
  // sink is saturated, resume when the last one drains.
  bool paused = backpressured_connections_ > 0;
  for (auto& [connection, peer] : peers_) {
    connection->set_read_enabled(!paused);
  }
}

std::string TransportBroker::metrics_json() {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  loop_->post([this, &promise] {
    std::ostringstream os;
    registry_.write_json(os);
    promise.set_value(os.str());
  });
  return future.get();
}

}  // namespace xroute::transport
