#include "transport/broker_node.hpp"

#include <functional>
#include <future>
#include <sstream>
#include <utility>

#include "router/match_scheduler.hpp"

namespace xroute::transport {

/// Encodes every outgoing message on the calling thread — the expensive
/// half of sending — and forwards (interface, bytes) to `emit`. In
/// sequential mode `emit` sends inline on the loop thread; in async mode
/// it collects the batch the match thread later posts to the loop.
class TransportBroker::EncodingSink : public ForwardSink {
 public:
  using Emit = std::function<void(IfaceId, std::vector<std::uint8_t>)>;
  explicit EncodingSink(Emit emit) : emit_(std::move(emit)) {}
  void on_forward(IfaceId iface, const Message& msg) override {
    emit_(iface, wire::encode_frame(msg));
  }
  // Publications that arrived with their wire frame are forwarded by
  // copying the bytes — the encode (the expensive half: walking the Path
  // and growing a payload) is skipped entirely. Frameless publications
  // (empty span) fall back to encoding.
  void on_forward_pub(IfaceId iface, const Message& msg,
                      std::span<const std::uint8_t> frame) override {
    if (frame.empty()) {
      on_forward(iface, msg);
    } else {
      emit_(iface, std::vector<std::uint8_t>(frame.begin(), frame.end()));
    }
  }
  void on_local_delivery_pub(IfaceId iface, const Message& msg,
                             std::span<const std::uint8_t> frame) override {
    on_forward_pub(iface, msg, frame);
  }

 private:
  Emit emit_;
};

TransportBroker::TransportBroker(Options options)
    : options_(std::move(options)),
      loop_(std::make_unique<EventLoop>(options_.force_poll)),
      broker_(options_.id, options_.config) {
  Transport::Options topts;
  topts.self.kind = wire::Hello::PeerKind::kBroker;
  topts.self.peer_id = static_cast<std::uint32_t>(options_.id);
  topts.connection = options_.connection;
  topts.dial_backoff = options_.dial_backoff;
  transport_ = std::make_unique<Transport>(loop_.get(), std::move(topts));
  transport_->set_peer_handler(
      [this](Connection* c, const wire::Hello& h) { on_peer(c, h); });
  transport_->set_frame_handler(
      [this](Connection* c, wire::Decoded&& d) { on_frame(c, std::move(d)); });
  transport_->set_disconnect_handler(
      [this](Connection* c, const std::string& r) { on_disconnect(c, r); });
}

TransportBroker::~TransportBroker() { stop(); }

void TransportBroker::start() {
  if (running_) return;
  port_ = transport_->listen(options_.listen_port);
  running_ = true;
  thread_ = std::thread([this] { loop_->run(); });
  if (async()) {
    match_thread_ = std::thread([this] { match_loop(); });
  }
}

void TransportBroker::connect_to(const std::string& host, std::uint16_t port) {
  loop_->post([this, host, port] { transport_->dial(host, port); });
}

void TransportBroker::stop() {
  if (!running_) return;
  running_ = false;
  if (match_thread_.joinable()) {
    // Drain the match thread first: its final sends are posted to the loop
    // while the loop is still alive, then the loop shuts the sockets down.
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      inbox_shutdown_ = true;
    }
    inbox_cv_.notify_one();
    match_thread_.join();
  }
  loop_->post([this] { transport_->shutdown(); });
  loop_->stop();
  thread_.join();
}

void TransportBroker::on_peer(Connection* connection, const wire::Hello& hello) {
  Peer peer;
  peer.interface_id = next_interface_++;
  peer.hello = hello;
  std::string peer_label =
      (hello.kind == wire::Hello::PeerKind::kBroker ? "broker-" : "client-") +
      std::to_string(hello.peer_id);
  peer.frames_in = &registry_.counter("transport.frames",
                                      {{"peer", peer_label}, {"dir", "in"}});
  peer.frames_out = &registry_.counter("transport.frames",
                                       {{"peer", peer_label}, {"dir", "out"}});
  peer.bytes_in = &registry_.counter("transport.bytes",
                                     {{"peer", peer_label}, {"dir", "in"}});
  peer.bytes_out = &registry_.counter("transport.bytes",
                                      {{"peer", peer_label}, {"dir", "out"}});
  interfaces_[peer.interface_id] = connection;
  const bool is_broker = hello.kind == wire::Hello::PeerKind::kBroker;
  if (is_broker) {
    broker_peers_.fetch_add(1, std::memory_order_relaxed);
  } else {
    client_peers_.fetch_add(1, std::memory_order_relaxed);
  }
  if (async()) {
    // Membership rides the inbox so the Broker (owned by the match thread)
    // learns about the interface before any frame queued behind it.
    enqueue_event(InboundEvent{is_broker ? InboundEvent::Kind::kAddNeighbor
                                         : InboundEvent::Kind::kAddClient,
                               IfaceId{peer.interface_id}, Message{}});
  } else if (is_broker) {
    broker_.add_neighbor(IfaceId{peer.interface_id});
  } else {
    broker_.add_client(IfaceId{peer.interface_id});
  }
  peers_.emplace(connection, peer);
  connection->set_backpressure_handler(
      [this, connection](bool engaged) { on_backpressure(connection, engaged); });
  // Honour an ingress pause already in force: a peer whose handshake
  // completes mid-pause must not start reading until the pause lifts.
  connection->set_read_enabled(backpressured_connections_ == 0);
}

void TransportBroker::on_disconnect(Connection* connection,
                                    const std::string& reason) {
  (void)reason;
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  if (it->second.hello.kind == wire::Hello::PeerKind::kBroker) {
    broker_peers_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    client_peers_.fetch_sub(1, std::memory_order_relaxed);
  }
  registry_.counter("transport.disconnects").inc();
  interfaces_.erase(it->second.interface_id);
  // A dying connection never emits backpressure(false); release its share
  // of the ingress pause here or the whole node stays paused forever.
  bool was_backpressured = it->second.backpressured;
  peers_.erase(it);
  if (was_backpressured && backpressured_connections_ > 0) {
    --backpressured_connections_;
    apply_read_pause();
  }
  // The Broker keeps the interface's routing state: a reconnecting peer
  // gets a fresh interface and re-announces (crash resync is the
  // SyncRequest/SyncState handshake, driven by the restarted side).
}

void TransportBroker::on_frame(Connection* connection, wire::Decoded&& decoded) {
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  Peer& peer = it->second;
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  peer.frames_in->inc();
  peer.bytes_in->inc(decoded.consumed);

  // The decoded frame's raw bytes ride along for publications so the
  // broker's forward stage can resend them verbatim (no per-hop encode).
  const bool keep_frame = options_.config.streaming_pipeline &&
                          decoded.message.type() == MessageType::kPublish;
  if (async()) {
    InboundEvent event{InboundEvent::Kind::kFrame,
                       IfaceId{peer.interface_id},
                       std::move(decoded.message)};
    if (keep_frame) {
      // The span dies at the loop thread's next feed(); the inbox owns a
      // copy for the match thread.
      event.frame.assign(decoded.raw.begin(), decoded.raw.end());
    }
    enqueue_event(std::move(event));
    return;
  }
  EncodingSink sink([this](IfaceId iface, std::vector<std::uint8_t> frame) {
    send_encoded(iface, std::move(frame));
  });
  // Inline processing: decoded.raw is still alive (nothing feeds the
  // decoder until this handler returns), so the frame travels zero-copy.
  Broker::Inbound one{IfaceId{peer.interface_id}, &decoded.message,
                      keep_frame ? decoded.raw
                                 : std::span<const std::uint8_t>{}};
  broker_.handle_batch(std::span<const Broker::Inbound>(&one, 1), sink);
}

void TransportBroker::enqueue_event(InboundEvent event) {
  queued_messages_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(event));
  }
  inbox_cv_.notify_one();
}

void TransportBroker::match_loop() {
  std::vector<InboundEvent> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inbox_mutex_);
      inbox_cv_.wait(lock,
                     [&] { return inbox_shutdown_ || !inbox_.empty(); });
      if (inbox_.empty()) return;  // shutdown and fully drained
      batch.swap(inbox_);
    }
    // Encode off the loop thread; ship the whole batch's output in one
    // posted task so the loop wakes once per batch, not once per frame.
    auto sends = std::make_shared<
        std::vector<std::pair<IfaceId, std::vector<std::uint8_t>>>>();
    EncodingSink sink(
        [&sends](IfaceId iface, std::vector<std::uint8_t> frame) {
          sends->emplace_back(iface, std::move(frame));
        });
    std::vector<Broker::Inbound> run;
    run.reserve(batch.size());
    auto flush_run = [&] {
      if (run.empty()) return;
      broker_.handle_batch(run, sink);
      run.clear();
    };
    for (InboundEvent& event : batch) {
      switch (event.kind) {
        case InboundEvent::Kind::kFrame:
          run.push_back(Broker::Inbound{event.iface, &event.msg,
                                        event.frame});
          break;
        case InboundEvent::Kind::kAddNeighbor:
          flush_run();
          broker_.add_neighbor(event.iface);
          break;
        case InboundEvent::Kind::kAddClient:
          flush_run();
          broker_.add_client(event.iface);
          break;
      }
    }
    flush_run();
    if (!sends->empty()) {
      loop_->post([this, sends] {
        for (auto& [iface, frame] : *sends) {
          send_encoded(iface, std::move(frame));
        }
      });
    }
    batches_processed_.fetch_add(1, std::memory_order_relaxed);
    queued_messages_.fetch_sub(batch.size(), std::memory_order_relaxed);
    batch.clear();
  }
}

void TransportBroker::send_encoded(IfaceId interface_id,
                                   std::vector<std::uint8_t> frame) {
  auto it = interfaces_.find(interface_id.value());
  if (it == interfaces_.end()) return;  // interface's peer is gone
  auto peer_it = peers_.find(it->second);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (peer_it != peers_.end()) {
    peer_it->second.frames_out->inc();
    peer_it->second.bytes_out->inc(frame.size());
  }
  it->second->send(std::move(frame));
}

void TransportBroker::on_backpressure(Connection* connection, bool engaged) {
  auto it = peers_.find(connection);
  if (it == peers_.end() || it->second.backpressured == engaged) return;
  it->second.backpressured = engaged;
  if (engaged) {
    ++backpressured_connections_;
    backpressure_events_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("transport.backpressure_events").inc();
  } else if (backpressured_connections_ > 0) {
    --backpressured_connections_;
  }
  apply_read_pause();
}

void TransportBroker::apply_read_pause() {
  // Ingress is the only source of egress: pause every reader while any
  // sink is saturated, resume when the last one drains.
  bool paused = backpressured_connections_ > 0;
  for (auto& [connection, peer] : peers_) {
    connection->set_read_enabled(!paused);
  }
}

std::string TransportBroker::metrics_json() {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  loop_->post([this, &promise] {
    // The scheduler's counters are monotonic atomics — safe to read here
    // while the match thread runs; the registry itself is loop-owned.
    if (const MatchScheduler* scheduler = broker_.scheduler()) {
      registry_.gauge("match.queue_depth")
          .set(static_cast<double>(queued_messages()));
      registry_.gauge("match.epochs")
          .set(static_cast<double>(scheduler->epochs()));
      registry_.gauge("match.batches")
          .set(static_cast<double>(
              batches_processed_.load(std::memory_order_relaxed)));
      std::vector<MatchScheduler::WorkerStats> workers =
          scheduler->worker_stats();
      for (std::size_t i = 0; i < workers.size(); ++i) {
        MetricLabels labels{{"worker", std::to_string(i)}};
        registry_.gauge("match.worker_tasks", labels)
            .set(static_cast<double>(workers[i].tasks));
        registry_.gauge("match.worker_busy_ms", labels)
            .set(static_cast<double>(workers[i].busy_ns) / 1e6);
      }
    }
    std::ostringstream os;
    registry_.write_json(os);
    promise.set_value(os.str());
  });
  return future.get();
}

}  // namespace xroute::transport
