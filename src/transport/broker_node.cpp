#include "transport/broker_node.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <future>
#include <sstream>
#include <utility>

#include "router/match_scheduler.hpp"
#include "router/snapshot.hpp"

namespace xroute::transport {

/// Encodes every outgoing message on the calling thread — the expensive
/// half of sending — and forwards (interface, bytes) to `emit`. In
/// sequential mode `emit` sends inline on the loop thread; in async mode
/// it collects the batch the match thread later posts to the loop.
class TransportBroker::EncodingSink : public ForwardSink {
 public:
  using Emit = std::function<void(IfaceId, std::vector<std::uint8_t>)>;
  EncodingSink(TransportBroker* node, Emit emit)
      : node_(node), emit_(std::move(emit)) {}
  void on_forward(IfaceId iface, const Message& msg) override {
    if (node_->deliver_edge(iface, msg, {})) return;
    emit_(iface, wire::encode_frame(msg));
  }
  // Publications that arrived with their wire frame are forwarded by
  // copying the bytes — the encode (the expensive half: walking the Path
  // and growing a payload) is skipped entirely. Frameless publications
  // (empty span) fall back to encoding.
  void on_forward_pub(IfaceId iface, const Message& msg,
                      std::span<const std::uint8_t> frame) override {
    if (node_->deliver_edge(iface, msg, frame)) return;
    if (frame.empty()) {
      emit_(iface, wire::encode_frame(msg));
    } else {
      emit_(iface, std::vector<std::uint8_t>(frame.begin(), frame.end()));
    }
  }
  void on_local_delivery_pub(IfaceId iface, const Message& msg,
                             std::span<const std::uint8_t> frame) override {
    on_forward_pub(iface, msg, frame);
  }

 private:
  TransportBroker* node_;
  Emit emit_;
};

TransportBroker::TransportBroker(Options options)
    : options_(std::move(options)),
      loop_(std::make_unique<EventLoop>(options_.force_poll)),
      broker_(options_.id, options_.config) {
  Transport::Options topts;
  topts.self.kind = wire::Hello::PeerKind::kBroker;
  topts.self.peer_id = static_cast<std::uint32_t>(options_.id);
  topts.self.incarnation = options_.incarnation;
  topts.connection = options_.connection;
  topts.dial_backoff = options_.dial_backoff;
  topts.handshake_timeout_ms = options_.handshake_timeout_ms;
  topts.heartbeat = options_.heartbeat;
  transport_ = std::make_unique<Transport>(loop_.get(), std::move(topts));
  transport_->set_peer_handler(
      [this](Connection* c, const wire::Hello& h) { on_peer(c, h); });
  transport_->set_frame_handler(
      [this](Connection* c, wire::Decoded&& d) { on_frame(c, std::move(d)); });
  transport_->set_disconnect_handler(
      [this](Connection* c, const std::string& r) { on_disconnect(c, r); });
  transport_->set_goodbye_handler([this](Connection* c) { on_goodbye(c); });
  transport_->set_peer_state_handler([this](Connection* c, PeerState state) {
    (void)c;
    if (state == PeerState::kSuspect) {
      suspect_events_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("transport.peer_suspect").inc();
    }
  });
}

TransportBroker::~TransportBroker() { stop(); }

void TransportBroker::start() {
  if (running_) return;
  port_ = transport_->listen(options_.listen_port);
  running_ = true;
  thread_ = std::thread([this] { loop_->run(); });
  if (async()) {
    match_thread_ = std::thread([this] { match_loop(); });
  }
}

void TransportBroker::connect_to(const std::string& host, std::uint16_t port) {
  loop_->post([this, host, port] { transport_->dial(host, port); });
}

void TransportBroker::stop() {
  if (!running_) return;
  running_ = false;
  if (match_thread_.joinable()) {
    // Drain the match thread first: its final sends are posted to the loop
    // while the loop is still alive, then the loop shuts the sockets down.
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      inbox_shutdown_ = true;
    }
    inbox_cv_.notify_one();
    match_thread_.join();
  }
  loop_->post([this] { transport_->shutdown(); });
  loop_->stop();
  thread_.join();
}

void TransportBroker::on_peer(Connection* connection, const wire::Hello& hello) {
  const bool is_broker = hello.kind == wire::Hello::PeerKind::kBroker;
  if (is_broker) {
    // Zombie fence: a Hello carrying a lower incarnation than the highest
    // one seen for this broker id is a surviving socket of a previous
    // life — reject it before it gets an interface.
    auto known = peer_incarnations_.find(hello.peer_id);
    if (known != peer_incarnations_.end() &&
        hello.incarnation < known->second) {
      registry_.counter("transport.stale_incarnations").inc();
      connection->close("membership: stale incarnation");
      return;
    }
    peer_incarnations_[hello.peer_id] = hello.incarnation;
  }
  Peer peer;
  bool rebound = false;
  if (is_broker) {
    auto bound = broker_ifaces_.find(hello.peer_id);
    if (bound != broker_ifaces_.end()) {
      // Known broker returning (restart, or a redial racing our dial):
      // rebind its old interface so the Broker's routing state — and the
      // link-state export the resync handshake serves from it — stays
      // valid.
      peer.interface_id = bound->second;
      rebound = true;
      auto existing = interfaces_.find(peer.interface_id);
      if (existing != interfaces_.end() && existing->second != connection) {
        // Dueling sockets for one peer: newest wins, the older one closes
        // without being treated as a failure.
        auto old_peer = peers_.find(existing->second);
        if (old_peer != peers_.end()) old_peer->second.parting = true;
        existing->second->close("membership: superseded by reconnect");
      }
    } else {
      peer.interface_id = next_interface_++;
      broker_ifaces_[hello.peer_id] = peer.interface_id;
    }
  } else {
    peer.interface_id = next_interface_++;
  }
  peer.hello = hello;
  std::string peer_label =
      (hello.kind == wire::Hello::PeerKind::kBroker ? "broker-" : "client-") +
      std::to_string(hello.peer_id);
  peer.frames_in = &registry_.counter("transport.frames",
                                      {{"peer", peer_label}, {"dir", "in"}});
  peer.frames_out = &registry_.counter("transport.frames",
                                       {{"peer", peer_label}, {"dir", "out"}});
  peer.bytes_in = &registry_.counter("transport.bytes",
                                     {{"peer", peer_label}, {"dir", "in"}});
  peer.bytes_out = &registry_.counter("transport.bytes",
                                      {{"peer", peer_label}, {"dir", "out"}});
  interfaces_[peer.interface_id] = connection;
  if (is_broker) {
    broker_peers_.fetch_add(1, std::memory_order_relaxed);
  } else {
    client_peers_.fetch_add(1, std::memory_order_relaxed);
  }
  if (rebound) {
    // The Broker already knows this interface; re-declaring it would be
    // a no-op, and the routing state behind it is still live.
  } else if (async()) {
    // Membership rides the inbox so the Broker (owned by the match thread)
    // learns about the interface before any frame queued behind it.
    enqueue_event(InboundEvent{is_broker ? InboundEvent::Kind::kAddNeighbor
                                         : InboundEvent::Kind::kAddClient,
                               IfaceId{peer.interface_id}, Message{}});
  } else if (is_broker) {
    broker_.add_neighbor(IfaceId{peer.interface_id});
  } else {
    broker_.add_client(IfaceId{peer.interface_id});
  }
  peers_.emplace(connection, peer);
  connection->set_backpressure_handler(
      [this, connection](bool engaged) { on_backpressure(connection, engaged); });
  // Honour an ingress pause already in force: a peer whose handshake
  // completes mid-pause must not start reading until the pause lifts.
  connection->set_read_enabled(backpressured_connections_ == 0);

  if (is_broker) {
    auto quarantine = quarantined_.find(peer.interface_id);
    if (quarantine != quarantined_.end()) {
      // Rejoin of a quarantined peer: the routes held through its
      // interface go live again, and the publications spooled while it
      // was away ride the new connection first, in order.
      for (auto& frame : quarantine->second.spool) {
        send_encoded(IfaceId{peer.interface_id}, std::move(frame));
      }
      quarantined_.erase(quarantine);
    }
    if (join_syncs_pending_ > 0) {
      // This handshake completes one of an in-flight join()'s expected
      // links: pull the neighbour's state through the resync handshake.
      --join_syncs_pending_;
      send_encoded(IfaceId{peer.interface_id},
                   wire::encode_frame(Message::sync_request()));
    }
  }
}

void TransportBroker::on_goodbye(Connection* connection) {
  auto it = peers_.find(connection);
  if (it == peers_.end() || it->second.parting) return;
  it->second.parting = true;
  registry_.counter("transport.goodbyes").inc();
  if (it->second.hello.kind == wire::Hello::PeerKind::kBroker) {
    // The binding is released with the routes: if this broker ever comes
    // back it enters as a brand-new member, incarnation counter included.
    broker_ifaces_.erase(it->second.hello.peer_id);
    peer_incarnations_.erase(it->second.hello.peer_id);
  }
  // Planned departure: hand the interface's routes back now, while every
  // other link is healthy — the eventual disconnect is then just a socket
  // closing, not a failure.
  InboundEvent drop;
  drop.kind = InboundEvent::Kind::kDropInterface;
  drop.iface = IfaceId{it->second.interface_id};
  dispatch_event(std::move(drop));
}

void TransportBroker::on_disconnect(Connection* connection,
                                    const std::string& reason) {
  (void)reason;
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  if (it->second.hello.kind == wire::Hello::PeerKind::kBroker) {
    broker_peers_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    client_peers_.fetch_sub(1, std::memory_order_relaxed);
  }
  registry_.counter("transport.disconnects").inc();
  // A superseded connection's interface already points at its successor;
  // only retire the mapping when this connection still owns it.
  auto iface_it = interfaces_.find(it->second.interface_id);
  bool owned = iface_it != interfaces_.end() && iface_it->second == connection;
  if (owned) interfaces_.erase(iface_it);
  // An unplanned broker loss quarantines the interface: the Broker keeps
  // its routing state (betting on rejoin — crash resync is the
  // SyncRequest/SyncState handshake, driven by the restarted side), and
  // publications routed its way are spooled up to the configured bound
  // instead of vanishing. A peer that said goodbye already handed its
  // routes back, so its close is just a socket going away.
  if (owned && it->second.hello.kind == wire::Hello::PeerKind::kBroker &&
      !it->second.parting && running_) {
    Quarantine quarantine;
    quarantine.hello = it->second.hello;
    quarantined_.emplace(it->second.interface_id, std::move(quarantine));
    registry_.counter("transport.quarantines").inc();
  } else if (owned &&
             it->second.hello.kind == wire::Hello::PeerKind::kClient &&
             running_) {
    // A client's interface dies with its connection: on reconnect it gets
    // a fresh interface and re-subscribes, so the old one's subscriptions
    // are withdrawn — otherwise they would route publications at a dead
    // interface forever.
    InboundEvent drop;
    drop.kind = InboundEvent::Kind::kDropInterface;
    drop.iface = IfaceId{it->second.interface_id};
    dispatch_event(std::move(drop));
  }
  // A dying connection never emits backpressure(false); release its share
  // of the ingress pause here or the whole node stays paused forever.
  bool was_backpressured = it->second.backpressured;
  peers_.erase(it);
  if (was_backpressured && backpressured_connections_ > 0) {
    --backpressured_connections_;
    apply_read_pause();
  }
}

void TransportBroker::on_frame(Connection* connection, wire::Decoded&& decoded) {
  auto it = peers_.find(connection);
  if (it == peers_.end()) return;
  Peer& peer = it->second;
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  peer.frames_in->inc();
  peer.bytes_in->inc(decoded.consumed);
  if (decoded.kind == wire::FrameKind::kSyncState) {
    // Convergence cost accounting: how many bytes a join/rejoin pulled.
    resync_bytes_in_.fetch_add(decoded.consumed, std::memory_order_relaxed);
  }

  // The decoded frame's raw bytes ride along for publications so the
  // broker's forward stage can resend them verbatim (no per-hop encode).
  const bool keep_frame = options_.config.streaming_pipeline &&
                          decoded.message.type() == MessageType::kPublish;
  if (async()) {
    InboundEvent event{InboundEvent::Kind::kFrame,
                       IfaceId{peer.interface_id},
                       std::move(decoded.message)};
    if (keep_frame) {
      // The span dies at the loop thread's next feed(); the inbox owns a
      // copy for the match thread.
      event.frame.assign(decoded.raw.begin(), decoded.raw.end());
    }
    enqueue_event(std::move(event));
    return;
  }
  EncodingSink sink(this, [this](IfaceId iface, std::vector<std::uint8_t> frame) {
    send_encoded(iface, std::move(frame));
  });
  // Inline processing: decoded.raw is still alive (nothing feeds the
  // decoder until this handler returns), so the frame travels zero-copy.
  Broker::Inbound one{IfaceId{peer.interface_id}, &decoded.message,
                      keep_frame ? decoded.raw
                                 : std::span<const std::uint8_t>{}};
  Broker::HandleStatus status =
      broker_.handle_batch(std::span<const Broker::Inbound>(&one, 1), sink);
  note_handle_status(status);
}

void TransportBroker::note_handle_status(const Broker::HandleStatus& status) {
  if (!status.resync_completed) return;
  resyncs_completed_.fetch_add(1, std::memory_order_relaxed);
  double started = join_started_ms_.exchange(0.0, std::memory_order_relaxed);
  if (started > 0) {
    last_join_convergence_ms_.store(loop_->now_ms() - started,
                                    std::memory_order_relaxed);
  }
}

void TransportBroker::enqueue_event(InboundEvent event) {
  queued_messages_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(event));
  }
  inbox_cv_.notify_one();
}

void TransportBroker::match_loop() {
  std::vector<InboundEvent> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inbox_mutex_);
      inbox_cv_.wait(lock,
                     [&] { return inbox_shutdown_ || !inbox_.empty(); });
      if (inbox_.empty()) return;  // shutdown and fully drained
      batch.swap(inbox_);
    }
    // Encode off the loop thread; ship the whole batch's output in one
    // posted task so the loop wakes once per batch, not once per frame.
    auto sends = std::make_shared<
        std::vector<std::pair<IfaceId, std::vector<std::uint8_t>>>>();
    EncodingSink sink(
        this, [&sends](IfaceId iface, std::vector<std::uint8_t> frame) {
          sends->emplace_back(iface, std::move(frame));
        });
    std::vector<Broker::Inbound> run;
    run.reserve(batch.size());
    auto flush_run = [&] {
      if (run.empty()) return;
      Broker::HandleStatus status = broker_.handle_batch(run, sink);
      note_handle_status(status);
      run.clear();
    };
    for (InboundEvent& event : batch) {
      if (event.kind == InboundEvent::Kind::kFrame) {
        run.push_back(Broker::Inbound{event.iface, &event.msg, event.frame});
        continue;
      }
      // Membership/control events act on the Broker directly; the run
      // flushes first so the mutation lands in arrival order.
      flush_run();
      apply_event(event, sink);
    }
    flush_run();
    if (!sends->empty()) {
      loop_->post([this, sends] {
        for (auto& [iface, frame] : *sends) {
          send_encoded(iface, std::move(frame));
        }
      });
    }
    batches_processed_.fetch_add(1, std::memory_order_relaxed);
    queued_messages_.fetch_sub(batch.size(), std::memory_order_relaxed);
    batch.clear();
  }
}

void TransportBroker::apply_event(InboundEvent& event, EncodingSink& sink) {
  switch (event.kind) {
    case InboundEvent::Kind::kFrame:
      break;  // frames travel through handle_batch, never through here
    case InboundEvent::Kind::kAddNeighbor:
      broker_.add_neighbor(event.iface);
      break;
    case InboundEvent::Kind::kAddClient:
      broker_.add_client(event.iface);
      break;
    case InboundEvent::Kind::kDropInterface:
      broker_.drop_interface(event.iface, sink);
      break;
    case InboundEvent::Kind::kBeginResync:
      broker_.begin_resync(event.count);
      break;
    case InboundEvent::Kind::kInspect:
      event.inspect->set_value(snapshot_to_string(broker_));
      break;
  }
}

void TransportBroker::dispatch_event(InboundEvent event) {
  // Loop thread only. In async mode the inbox orders the mutation with
  // in-flight traffic; in sync mode the loop thread owns the Broker and
  // the mutation applies here and now.
  if (async()) {
    enqueue_event(std::move(event));
    return;
  }
  EncodingSink sink(this, [this](IfaceId iface, std::vector<std::uint8_t> frame) {
    send_encoded(iface, std::move(frame));
  });
  apply_event(event, sink);
}

void TransportBroker::join(
    std::vector<std::pair<std::string, std::uint16_t>> neighbors,
    std::size_t expected_peers) {
  std::size_t expected = std::max(expected_peers, neighbors.size());
  if (expected == 0) return;
  join_started_ms_.store(loop_->now_ms(), std::memory_order_relaxed);
  loop_->post([this, neighbors = std::move(neighbors), expected] {
    // Arm the resync count before any handshake can complete: the
    // handle() call processing the last SyncState reports convergence.
    join_syncs_pending_ += expected;
    InboundEvent arm;
    arm.kind = InboundEvent::Kind::kBeginResync;
    arm.count = expected;
    dispatch_event(std::move(arm));
    for (const auto& [host, port] : neighbors) {
      transport_->dial(host, port);
    }
  });
}

bool TransportBroker::leave(double timeout_ms) {
  if (!running_) return true;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  // Let the match thread finish everything already accepted, so the
  // goodbye really is the last thing peers hear from us.
  while (queued_messages() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool clean = queued_messages() == 0;
  {
    std::promise<void> announced;
    loop_->post([this, &announced] {
      for (auto& [connection, peer] : peers_) {
        (void)peer;
        connection->send(wire::encode_goodbye());
      }
      announced.set_value();
    });
    announced.get_future().wait();
  }
  // Flush the send queues: in-flight publications (and the goodbyes) must
  // beat the FIN.
  for (;;) {
    std::promise<std::size_t> pending;
    loop_->post([this, &pending] {
      std::size_t total = 0;
      for (auto& [connection, peer] : peers_) {
        (void)peer;
        total += connection->pending_bytes();
      }
      pending.set_value(total);
    });
    if (pending.get_future().get() == 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      clean = false;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop();
  return clean;
}

std::string TransportBroker::state_snapshot() {
  InboundEvent event;
  event.kind = InboundEvent::Kind::kInspect;
  event.inspect = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = event.inspect->get_future();
  if (async()) {
    enqueue_event(std::move(event));
  } else {
    loop_->post([this, event = std::move(event)]() mutable {
      EncodingSink sink(
          this, [this](IfaceId iface, std::vector<std::uint8_t> frame) {
            send_encoded(iface, std::move(frame));
          });
      apply_event(event, sink);
    });
  }
  return future.get();
}

void TransportBroker::send_encoded(IfaceId interface_id,
                                   std::vector<std::uint8_t> frame) {
  auto it = interfaces_.find(interface_id.value());
  if (it == interfaces_.end()) {
    auto quarantine = quarantined_.find(interface_id.value());
    if (quarantine != quarantined_.end() &&
        quarantine->second.spool_bytes + frame.size() <=
            options_.spool_limit_bytes) {
      // The peer is down but not written off: hold the publication for
      // replay on its successor connection.
      quarantine->second.spool_bytes += frame.size();
      quarantine->second.spool.push_back(std::move(frame));
      spooled_frames_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("transport.spooled_frames").inc();
      return;
    }
    // Interface gone for good, or its spool is full: the loss is real,
    // make it observable instead of silent.
    peer_down_drops_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("transport.peer_down_drops").inc();
    return;
  }
  auto peer_it = peers_.find(it->second);
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (peer_it != peers_.end()) {
    peer_it->second.frames_out->inc();
    peer_it->second.bytes_out->inc(frame.size());
  }
  it->second->send(std::move(frame));
}

IfaceId TransportBroker::attach_edge(EdgeDeliveryHandler handler) {
  std::promise<int> attached;
  std::future<int> future = attached.get_future();
  loop_->post([this, handler = std::move(handler), &attached]() mutable {
    int id = next_interface_++;
    // Handler first, then the interface id, then the membership event:
    // the Broker-owning thread can only forward to this interface after
    // processing kAddClient, which the inbox mutex (async) or same-thread
    // execution (sync) orders after both writes.
    edge_handler_ = std::move(handler);
    edge_iface_.store(id, std::memory_order_release);
    InboundEvent add;
    add.kind = InboundEvent::Kind::kAddClient;
    add.iface = IfaceId{id};
    dispatch_event(std::move(add));
    attached.set_value(id);
  });
  return IfaceId{future.get()};
}

void TransportBroker::edge_send(Message msg) {
  loop_->post([this, msg = std::move(msg)]() mutable {
    int iface = edge_iface_.load(std::memory_order_relaxed);
    if (iface < 0) return;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (async()) {
      enqueue_event(InboundEvent{InboundEvent::Kind::kFrame, IfaceId{iface},
                                 std::move(msg)});
      return;
    }
    EncodingSink sink(this, [this](IfaceId i, std::vector<std::uint8_t> f) {
      send_encoded(i, std::move(f));
    });
    Broker::Inbound one{IfaceId{iface}, &msg,
                        std::span<const std::uint8_t>{}};
    Broker::HandleStatus status =
        broker_.handle_batch(std::span<const Broker::Inbound>(&one, 1), sink);
    note_handle_status(status);
  });
}

bool TransportBroker::deliver_edge(IfaceId iface, const Message& msg,
                                   std::span<const std::uint8_t> frame) {
  if (iface.value() != edge_iface_.load(std::memory_order_acquire)) {
    return false;
  }
  // The serialize-once point: whatever the broker wants this interface to
  // see becomes ONE immutable refcounted frame, shared by every client
  // session the edge fans it out to.
  SharedFrame shared =
      frame.empty()
          ? std::make_shared<const std::vector<std::uint8_t>>(
                wire::encode_frame(msg))
          : std::make_shared<const std::vector<std::uint8_t>>(frame.begin(),
                                                              frame.end());
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (edge_handler_) edge_handler_(msg, std::move(shared));
  return true;
}

void TransportBroker::on_backpressure(Connection* connection, bool engaged) {
  auto it = peers_.find(connection);
  if (it == peers_.end() || it->second.backpressured == engaged) return;
  it->second.backpressured = engaged;
  if (engaged) {
    ++backpressured_connections_;
    backpressure_events_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("transport.backpressure_events").inc();
  } else if (backpressured_connections_ > 0) {
    --backpressured_connections_;
  }
  apply_read_pause();
}

void TransportBroker::apply_read_pause() {
  // Ingress is the only source of egress: pause every reader while any
  // sink is saturated, resume when the last one drains.
  bool paused = backpressured_connections_ > 0;
  for (auto& [connection, peer] : peers_) {
    connection->set_read_enabled(!paused);
  }
}

std::string TransportBroker::metrics_json() {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  loop_->post([this, &promise] {
    // The scheduler's counters are monotonic atomics — safe to read here
    // while the match thread runs; the registry itself is loop-owned.
    if (const MatchScheduler* scheduler = broker_.scheduler()) {
      registry_.gauge("match.queue_depth")
          .set(static_cast<double>(queued_messages()));
      registry_.gauge("match.epochs")
          .set(static_cast<double>(scheduler->epochs()));
      registry_.gauge("match.batches")
          .set(static_cast<double>(
              batches_processed_.load(std::memory_order_relaxed)));
      std::vector<MatchScheduler::WorkerStats> workers =
          scheduler->worker_stats();
      for (std::size_t i = 0; i < workers.size(); ++i) {
        MetricLabels labels{{"worker", std::to_string(i)}};
        registry_.gauge("match.worker_tasks", labels)
            .set(static_cast<double>(workers[i].tasks));
        registry_.gauge("match.worker_busy_ms", labels)
            .set(static_cast<double>(workers[i].busy_ns) / 1e6);
      }
    }
    std::ostringstream os;
    registry_.write_json(os);
    promise.set_value(os.str());
  });
  return future.get();
}

}  // namespace xroute::transport
