// Single-threaded, non-blocking I/O event loop.
//
// One EventLoop drives one transport node (a broker daemon or a client):
// readiness callbacks for registered fds, monotonic one-shot timers, and a
// thread-safe post() that wakes the loop via a self-pipe so other threads
// can hand work onto the loop thread. Everything except post()/stop() must
// run on the loop thread; the loop never locks around user callbacks.
//
// Backend: epoll on Linux, poll(2) everywhere else (and on demand — the
// poll backend stays compiled on Linux too, selectable per loop, so tests
// exercise both).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace xroute::transport {

/// Readiness bits delivered to io callbacks (and requested as interest).
inline constexpr std::uint32_t kReadable = 1;
inline constexpr std::uint32_t kWritable = 2;
/// Error/hangup on the fd; always delivered, never requested.
inline constexpr std::uint32_t kError = 4;

/// Poller backend interface: readiness notification only, no callbacks.
class Poller {
 public:
  struct Ready {
    int fd = -1;
    std::uint32_t events = 0;
  };

  virtual ~Poller() = default;
  virtual void add(int fd, std::uint32_t interest) = 0;
  virtual void modify(int fd, std::uint32_t interest) = 0;
  virtual void remove(int fd) = 0;
  /// Blocks up to timeout_ms (-1 = forever) and appends ready fds.
  virtual void wait(int timeout_ms, std::vector<Ready>* out) = 0;
};

/// Builds the platform-default backend (epoll on Linux, else poll).
std::unique_ptr<Poller> make_default_poller();
/// The portable poll(2) backend, available on every platform.
std::unique_ptr<Poller> make_poll_poller();

class EventLoop {
 public:
  using IoCallback = std::function<void(std::uint32_t events)>;

  /// Uses the platform-default poller, or poll(2) when force_poll is set.
  explicit EventLoop(bool force_poll = false);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // -- fd registration (loop thread only) ----------------------------------
  void add_fd(int fd, std::uint32_t interest, IoCallback callback);
  void set_interest(int fd, std::uint32_t interest);
  void remove_fd(int fd);

  // -- timers (loop thread only) -------------------------------------------
  /// Runs `fn` once after delay_ms (monotonic clock); returns a handle
  /// usable with cancel_timer.
  std::uint64_t schedule(double delay_ms, std::function<void()> fn);
  void cancel_timer(std::uint64_t id);

  // -- cross-thread entry points -------------------------------------------
  /// Enqueues `fn` to run on the loop thread; wakes the loop if blocked.
  void post(std::function<void()> fn);
  /// Makes run() return after the current iteration. Thread-safe.
  void stop();

  /// Runs until stop(): dispatches readiness, due timers, posted tasks.
  void run();
  /// One iteration: polls with a timeout bounded by the next timer (or
  /// timeout_ms when no timer is due sooner), dispatches everything due.
  void run_once(int timeout_ms);

  bool using_poll_backend() const { return poll_backend_; }

  /// Monotonic clock in milliseconds — the same timebase timers use, so
  /// failure detectors can compare deadlines against scheduled ticks.
  double now_ms() const;

 private:
  struct Timer {
    double due_ms;  ///< monotonic deadline
    std::uint64_t id;
    bool operator>(const Timer& other) const {
      return due_ms != other.due_ms ? due_ms > other.due_ms : id > other.id;
    }
  };
  void drain_posted();
  void fire_due_timers();
  int next_timeout_ms(int cap_ms) const;

  /// Registered callback plus a generation token: fd numbers are reused
  /// by the kernel, so readiness is matched on (fd, gen), not fd alone.
  struct FdEntry {
    IoCallback callback;
    std::uint64_t gen = 0;
  };
  struct ReadyDispatch {
    int fd = -1;
    std::uint32_t events = 0;
    std::uint64_t gen = 0;
  };

  std::unique_ptr<Poller> poller_;
  bool poll_backend_ = false;
  std::map<int, FdEntry> callbacks_;
  std::uint64_t next_fd_gen_ = 1;
  std::vector<Poller::Ready> ready_;
  std::vector<ReadyDispatch> dispatch_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::map<std::uint64_t, std::function<void()>> timer_fns_;  ///< id -> fn
  std::uint64_t next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  ///< read on loop thread, set under mutex
  int wake_fds_[2] = {-1, -1};   ///< self-pipe: [0] read, [1] write
};

}  // namespace xroute::transport
