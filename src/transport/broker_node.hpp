// TransportBroker — one router/Broker hosted behind real sockets.
//
// The broker core stays the pure message transformer it is in the
// simulator; this adapter gives it a network face: every accepted or
// dialed connection that completes the Hello handshake becomes one broker
// interface (the same dense interface-id scheme the simulator uses), an
// arriving frame decodes to a Message and runs through Broker::handle()
// pushing forwards straight into a ForwardSink that encodes them back onto
// the connection owning each interface.
//
// Backpressure: when any egress connection's send queue crosses its high
// watermark the node stops reading from *all* connections (ingress is the
// only thing that generates egress), resuming when every queue is back
// under the low watermark. TCP flow control then pushes back on the
// upstream sender.
//
// Threading: one event-loop thread owns the connections and the
// MetricsRegistry. With match_threads == 1 it also owns the Broker and
// everything happens inline, exactly as before. With match_threads > 1 a
// dedicated *match thread* owns the Broker: the loop thread enqueues
// inbound events (frames AND membership changes, through the same FIFO so
// broker state mutation stays ordered with traffic) into an inbox; the
// match thread drains the inbox in batches — runs of publications become
// one scheduler epoch across the worker pool — encodes the resulting
// frames off the loop, and posts them back to the loop thread for
// sending. The event loop stays I/O-only. Cross-thread observation goes
// through atomics (frame/byte totals, peer counts, inbox depth) or posted
// tasks (metrics_json).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "router/broker.hpp"
#include "transport/transport.hpp"

namespace xroute::transport {

class TransportBroker {
 public:
  struct Options {
    int id = 0;
    Broker::Config config;
    /// 0 = ephemeral (port() reports the bound one).
    std::uint16_t listen_port = 0;
    Connection::Options connection;
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
    /// Use the poll(2) backend instead of the platform default.
    bool force_poll = false;
  };

  explicit TransportBroker(Options options);
  ~TransportBroker();

  /// Binds the listener and starts the loop thread (and, with
  /// match_threads > 1, the match thread).
  void start();
  /// Dials a neighbouring broker (callable from any thread, before or
  /// after the peer is up — dialing retries with backoff).
  void connect_to(const std::string& host, std::uint16_t port);
  /// Stops the match thread (draining its inbox), then the loop thread,
  /// and closes every connection.
  void stop();

  int id() const { return options_.id; }
  std::uint16_t port() const { return port_; }

  // -- Cross-thread observables --------------------------------------------
  std::uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_out() const {
    return frames_out_.load(std::memory_order_relaxed);
  }
  std::size_t broker_peers() const {
    return broker_peers_.load(std::memory_order_relaxed);
  }
  std::size_t client_peers() const {
    return client_peers_.load(std::memory_order_relaxed);
  }
  std::uint64_t backpressure_engagements() const {
    return backpressure_events_.load(std::memory_order_relaxed);
  }
  /// Inbound events accepted but not yet processed by the match thread
  /// (always 0 with match_threads == 1). Quiescence checks must include
  /// this: frames can be "received" yet still queued.
  std::size_t queued_messages() const {
    return queued_messages_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the node's MetricsRegistry (per-connection byte/frame
  /// series, plus the parallel engine's queue/worker series when the pool
  /// is active) as JSON. Runs on the loop thread; blocks the caller.
  std::string metrics_json();

 private:
  struct Peer {
    int interface_id = -1;
    wire::Hello hello;
    /// This peer's send queue is above the high watermark. Mirrors the
    /// Connection's own flag so a dying connection (which never emits a
    /// final backpressure(false)) still releases the global ingress pause.
    bool backpressured = false;
    /// Registry series resolved once at handshake (loop thread).
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
  };

  /// One inbox entry for the match thread. Membership changes ride the
  /// same FIFO as frames: an add_neighbor must reach the Broker before
  /// any frame that arrived after the handshake, and making both flow
  /// through one queue gives that ordering for free.
  struct InboundEvent {
    enum class Kind { kFrame, kAddNeighbor, kAddClient };
    Kind kind = Kind::kFrame;
    IfaceId iface;
    Message msg;  // kFrame only
    /// Publication frames keep their wire bytes (the decoder's borrowed
    /// span is dead once the loop thread feeds more data, so the inbox
    /// owns a copy) — the match thread forwards them without re-encoding.
    std::vector<std::uint8_t> frame;
  };

  /// ForwardSink that encodes each outgoing message immediately (on the
  /// calling thread) and hands the wire bytes to `emit`.
  class EncodingSink;

  void on_peer(Connection* connection, const wire::Hello& hello);
  void on_frame(Connection* connection, wire::Decoded&& decoded);
  void on_disconnect(Connection* connection, const std::string& reason);
  void on_backpressure(Connection* connection, bool engaged);
  void apply_read_pause();
  /// Loop thread only: puts an already-encoded frame on the interface's
  /// connection (drops it if the peer is gone).
  void send_encoded(IfaceId interface_id, std::vector<std::uint8_t> frame);
  void enqueue_event(InboundEvent event);
  void match_loop();
  bool async() const { return options_.config.match_threads > 1; }

  Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Transport> transport_;
  Broker broker_;
  MetricsRegistry registry_;
  std::map<Connection*, Peer> peers_;
  std::map<int, Connection*> interfaces_;
  int next_interface_ = 0;
  std::size_t backpressured_connections_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::uint16_t port_ = 0;

  // Match-thread inbox (async mode only).
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::vector<InboundEvent> inbox_;
  bool inbox_shutdown_ = false;
  std::thread match_thread_;

  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> backpressure_events_{0};
  std::atomic<std::size_t> broker_peers_{0};
  std::atomic<std::size_t> client_peers_{0};
  std::atomic<std::size_t> queued_messages_{0};
  std::atomic<std::uint64_t> batches_processed_{0};
};

}  // namespace xroute::transport
