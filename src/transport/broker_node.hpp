// TransportBroker — one router/Broker hosted behind real sockets.
//
// The broker core stays the pure message transformer it is in the
// simulator; this adapter gives it a network face: every accepted or
// dialed connection that completes the Hello handshake becomes one broker
// interface (the same dense interface-id scheme the simulator uses), an
// arriving frame decodes to a Message and runs through Broker::handle()
// pushing forwards straight into a ForwardSink that encodes them back onto
// the connection owning each interface.
//
// Backpressure: when any egress connection's send queue crosses its high
// watermark the node stops reading from *all* connections (ingress is the
// only thing that generates egress), resuming when every queue is back
// under the low watermark. TCP flow control then pushes back on the
// upstream sender.
//
// Threading: one event-loop thread owns the connections and the
// MetricsRegistry. With match_threads == 1 it also owns the Broker and
// everything happens inline, exactly as before. With match_threads > 1 a
// dedicated *match thread* owns the Broker: the loop thread enqueues
// inbound events (frames AND membership changes, through the same FIFO so
// broker state mutation stays ordered with traffic) into an inbox; the
// match thread drains the inbox in batches — runs of publications become
// one scheduler epoch across the worker pool — encodes the resulting
// frames off the loop, and posts them back to the loop thread for
// sending. The event loop stays I/O-only. Cross-thread observation goes
// through atomics (frame/byte totals, peer counts, inbox depth) or posted
// tasks (metrics_json).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "router/broker.hpp"
#include "transport/transport.hpp"

namespace xroute::transport {

class TransportBroker {
 public:
  struct Options {
    int id = 0;
    Broker::Config config;
    /// 0 = ephemeral (port() reports the bound one).
    std::uint16_t listen_port = 0;
    Connection::Options connection;
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
    /// Use the poll(2) backend instead of the platform default.
    bool force_poll = false;
    /// Restart count announced in our Hello: a rejoin after crash must
    /// carry a higher incarnation than the life that died, or peers
    /// reject the connection as a zombie.
    std::uint32_t incarnation = 0;
    /// Transport-level handshake deadline and failure detector knobs
    /// (passed through to Transport::Options).
    double handshake_timeout_ms = 5000.0;
    HeartbeatOptions heartbeat;
    /// Bytes of publications buffered per quarantined broker interface
    /// while waiting for the peer to rejoin; overflow counts as
    /// peer_down_drops.
    std::size_t spool_limit_bytes = 1u << 20;
  };

  explicit TransportBroker(Options options);
  ~TransportBroker();

  /// Binds the listener and starts the loop thread (and, with
  /// match_threads > 1, the match thread).
  void start();
  /// Dials a neighbouring broker (callable from any thread, before or
  /// after the peer is up — dialing retries with backoff).
  void connect_to(const std::string& host, std::uint16_t port);
  /// Live join: dials each neighbour and pulls routing state through the
  /// SyncRequest/SyncState resync handshake — the broker expects one
  /// SyncState per peer and reports convergence via resyncs_completed()
  /// once the last one lands. Also the rejoin path after a crash (pair
  /// with a bumped Options::incarnation). `expected_peers` is the number
  /// of broker handshakes to resync from when it exceeds the dial list —
  /// a restarted broker dials only the neighbours it originally dialed
  /// and counts the survivors that redial in (0 = neighbors.size()).
  /// Callable any time after start().
  void join(std::vector<std::pair<std::string, std::uint16_t>> neighbors,
            std::size_t expected_peers = 0);
  /// Planned leave: waits for the inbox to drain, announces kGoodbye on
  /// every connection (peers hand our routes back instead of quarantining
  /// them), flushes send queues, then stops. Returns false if the flush
  /// missed the deadline (the node still stops).
  bool leave(double timeout_ms = 5000.0);
  /// Stops the match thread (draining its inbox), then the loop thread,
  /// and closes every connection. A stop() without leave() is a crash as
  /// far as peers are concerned: they detect it and quarantine our routes.
  void stop();

  int id() const { return options_.id; }
  std::uint16_t port() const { return port_; }

  // -- Edge attachment -----------------------------------------------------
  /// A forward the broker routed to the edge interface: the message plus
  /// its wire bytes, encoded exactly once and shared by reference with
  /// every recipient. With match_threads > 1 this fires on the MATCH
  /// thread — the handler must be thread-safe (the edge server posts into
  /// its reactors, which is).
  using EdgeDeliveryHandler = std::function<void(const Message&, SharedFrame)>;

  /// Registers the hosted edge server as one client interface of the
  /// Broker: all client subscriptions funnel through it, and everything
  /// the broker forwards to it lands in `handler` as a serialize-once
  /// SharedFrame instead of on a socket. One edge per broker; callable
  /// once, from any thread (blocks until the interface exists).
  IfaceId attach_edge(EdgeDeliveryHandler handler);

  /// Injects a message into the broker as if it arrived on the edge
  /// interface (lease-refcounted subscribe/unsubscribe, client publishes).
  /// Callable from any thread; ordered with network traffic by riding the
  /// same loop->inbox path. No-op before attach_edge.
  void edge_send(Message msg);

  // -- Cross-thread observables --------------------------------------------
  std::uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_out() const {
    return frames_out_.load(std::memory_order_relaxed);
  }
  std::size_t broker_peers() const {
    return broker_peers_.load(std::memory_order_relaxed);
  }
  std::size_t client_peers() const {
    return client_peers_.load(std::memory_order_relaxed);
  }
  std::uint64_t backpressure_engagements() const {
    return backpressure_events_.load(std::memory_order_relaxed);
  }
  /// Inbound events accepted but not yet processed by the match thread
  /// (always 0 with match_threads == 1). Quiescence checks must include
  /// this: frames can be "received" yet still queued.
  std::size_t queued_messages() const {
    return queued_messages_.load(std::memory_order_relaxed);
  }
  /// Forwards that targeted a quarantined or vanished interface and were
  /// dropped (spool full or no spool) — the observable form of what used
  /// to be silent loss.
  std::uint64_t peer_down_drops() const {
    return peer_down_drops_.load(std::memory_order_relaxed);
  }
  /// Publications buffered for a quarantined peer awaiting rejoin.
  std::uint64_t spooled_frames() const {
    return spooled_frames_.load(std::memory_order_relaxed);
  }
  /// Resync handshakes brought to completion (join() or crash rejoin).
  std::uint64_t resyncs_completed() const {
    return resyncs_completed_.load(std::memory_order_relaxed);
  }
  /// Milliseconds from the last join() to its resync completion (0 until
  /// the first completion).
  double last_join_convergence_ms() const {
    return last_join_convergence_ms_.load(std::memory_order_relaxed);
  }
  /// SyncState payload bytes received (the cost of convergence).
  std::uint64_t resync_bytes_in() const {
    return resync_bytes_in_.load(std::memory_order_relaxed);
  }
  /// Peers whose failure detector reached kSuspect at least once.
  std::uint64_t suspect_events() const {
    return suspect_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t handshake_timeouts() const {
    return transport_->handshake_timeouts();
  }
  std::uint64_t heartbeat_downs() const {
    return transport_->heartbeat_downs();
  }

  /// Serialised routing state (router/snapshot format), taken on the
  /// thread that owns the Broker so it is a consistent cut. Blocks the
  /// caller; used by convergence checks.
  std::string state_snapshot();

  /// Snapshot of the node's MetricsRegistry (per-connection byte/frame
  /// series, plus the parallel engine's queue/worker series when the pool
  /// is active) as JSON. Runs on the loop thread; blocks the caller.
  std::string metrics_json();

 private:
  struct Peer {
    int interface_id = -1;
    wire::Hello hello;
    /// Peer announced a planned leave: its routes were handed back at
    /// goodbye time, so the eventual disconnect must not quarantine them.
    bool parting = false;
    /// This peer's send queue is above the high watermark. Mirrors the
    /// Connection's own flag so a dying connection (which never emits a
    /// final backpressure(false)) still releases the global ingress pause.
    bool backpressured = false;
    /// Registry series resolved once at handshake (loop thread).
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
  };

  /// One inbox entry for the match thread. Membership changes ride the
  /// same FIFO as frames: an add_neighbor must reach the Broker before
  /// any frame that arrived after the handshake, and making both flow
  /// through one queue gives that ordering for free.
  struct InboundEvent {
    enum class Kind {
      kFrame,
      kAddNeighbor,
      kAddClient,
      /// Withdraw an interface's routes (goodbye, or crash rejoin
      /// superseding the dead incarnation's interface).
      kDropInterface,
      /// Arm Broker::begin_resync(count) ahead of the SyncState replies a
      /// join() is about to solicit.
      kBeginResync,
      /// Barrier: serialise the broker's state on its owning thread.
      kInspect,
    };
    Kind kind = Kind::kFrame;
    IfaceId iface;
    Message msg;  // kFrame only
    /// Publication frames keep their wire bytes (the decoder's borrowed
    /// span is dead once the loop thread feeds more data, so the inbox
    /// owns a copy) — the match thread forwards them without re-encoding.
    std::vector<std::uint8_t> frame;
    std::size_t count = 0;  // kBeginResync only
    std::shared_ptr<std::promise<std::string>> inspect;  // kInspect only
  };

  /// ForwardSink that encodes each outgoing message immediately (on the
  /// calling thread) and hands the wire bytes to `emit`.
  class EncodingSink;

  void on_peer(Connection* connection, const wire::Hello& hello);
  void on_frame(Connection* connection, wire::Decoded&& decoded);
  /// Intercepts forwards aimed at the edge interface (any Broker-owning
  /// thread): encodes-or-copies the frame ONCE into a SharedFrame and
  /// hands it to the edge handler. Returns false for non-edge interfaces.
  bool deliver_edge(IfaceId iface, const Message& msg,
                    std::span<const std::uint8_t> frame);
  void on_disconnect(Connection* connection, const std::string& reason);
  void on_goodbye(Connection* connection);
  void on_backpressure(Connection* connection, bool engaged);
  void apply_read_pause();
  /// Loop thread only: puts an already-encoded frame on the interface's
  /// connection; spools it when the interface is quarantined, else counts
  /// the drop.
  void send_encoded(IfaceId interface_id, std::vector<std::uint8_t> frame);
  void enqueue_event(InboundEvent event);
  /// Routes a broker-state mutation to whichever thread owns the Broker:
  /// the inbox in async mode (ordered with traffic), inline otherwise.
  void dispatch_event(InboundEvent event);
  /// Runs one event against the Broker on its owning thread; `sink`
  /// receives any control traffic the mutation emits.
  void apply_event(InboundEvent& event, EncodingSink& sink);
  void note_handle_status(const Broker::HandleStatus& status);
  void match_loop();
  bool async() const { return options_.config.match_threads > 1; }

  Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Transport> transport_;
  Broker broker_;
  MetricsRegistry registry_;
  std::map<Connection*, Peer> peers_;
  std::map<int, Connection*> interfaces_;
  int next_interface_ = 0;
  std::size_t backpressured_connections_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::uint16_t port_ = 0;

  // -- Membership state (loop thread only) ---------------------------------
  /// A downed broker peer's interface with its bounded publication spool:
  /// routes through it stay in the tables betting on rejoin; what would
  /// have been sent is buffered here (up to spool_limit_bytes) and
  /// replayed onto the successor connection.
  struct Quarantine {
    wire::Hello hello;
    std::deque<std::vector<std::uint8_t>> spool;
    std::size_t spool_bytes = 0;
  };
  std::map<int, Quarantine> quarantined_;  ///< interface id -> quarantine
  /// Stable broker id -> interface binding. A reconnecting broker is
  /// rebound to the interface it had, so the Broker's routing state (and
  /// the link-state export the resync handshake serves from it) stays
  /// valid across the peer's crashes. The binding is released only by a
  /// goodbye. Clients keep the historical fresh-interface-per-connection
  /// behaviour.
  std::map<std::uint32_t, int> broker_ifaces_;
  /// Highest incarnation seen per broker id (zombie rejection).
  std::map<std::uint32_t, std::uint32_t> peer_incarnations_;
  /// Broker handshakes that still owe a SyncRequest for an in-flight
  /// join(); decremented as dials complete.
  std::size_t join_syncs_pending_ = 0;
  /// Monotonic start of the in-flight join (0 = none); consumed by
  /// note_handle_status on whichever thread owns the Broker.
  std::atomic<double> join_started_ms_{0.0};

  // Match-thread inbox (async mode only).
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::vector<InboundEvent> inbox_;
  bool inbox_shutdown_ = false;
  std::thread match_thread_;

  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> backpressure_events_{0};
  std::atomic<std::size_t> broker_peers_{0};
  std::atomic<std::size_t> client_peers_{0};
  std::atomic<std::size_t> queued_messages_{0};
  std::atomic<std::uint64_t> batches_processed_{0};
  std::atomic<std::uint64_t> peer_down_drops_{0};
  std::atomic<std::uint64_t> spooled_frames_{0};
  std::atomic<std::uint64_t> resyncs_completed_{0};
  std::atomic<std::uint64_t> resync_bytes_in_{0};
  std::atomic<std::uint64_t> suspect_events_{0};
  std::atomic<double> last_join_convergence_ms_{0.0};

  // -- Edge attachment -----------------------------------------------------
  /// Interface id of the attached edge server (-1 = none). Written on the
  /// loop thread before the kAddClient event is dispatched, so the match
  /// thread observes the handler before the Broker can forward to it.
  std::atomic<int> edge_iface_{-1};
  EdgeDeliveryHandler edge_handler_;
};

}  // namespace xroute::transport
