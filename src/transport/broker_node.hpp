// TransportBroker — one router/Broker hosted behind real sockets.
//
// The broker core stays the pure message transformer it is in the
// simulator; this adapter gives it a network face: every accepted or
// dialed connection that completes the Hello handshake becomes one broker
// interface (the same dense interface-id scheme the simulator uses), an
// arriving frame decodes to a Message and runs through Broker::handle()
// on the loop thread, and each resulting forward encodes back onto the
// connection owning its interface.
//
// Backpressure: when any egress connection's send queue crosses its high
// watermark the node stops reading from *all* connections (ingress is the
// only thing that generates egress), resuming when every queue is back
// under the low watermark. TCP flow control then pushes back on the
// upstream sender.
//
// Threading: one event-loop thread owns the Broker, the connections and
// the MetricsRegistry. Cross-thread observation goes through atomics
// (frame/byte totals, peer counts) or posted tasks (metrics_json).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "router/broker.hpp"
#include "transport/transport.hpp"

namespace xroute::transport {

class TransportBroker {
 public:
  struct Options {
    int id = 0;
    Broker::Config config;
    /// 0 = ephemeral (port() reports the bound one).
    std::uint16_t listen_port = 0;
    Connection::Options connection;
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
    /// Use the poll(2) backend instead of the platform default.
    bool force_poll = false;
  };

  explicit TransportBroker(Options options);
  ~TransportBroker();

  /// Binds the listener and starts the loop thread.
  void start();
  /// Dials a neighbouring broker (callable from any thread, before or
  /// after the peer is up — dialing retries with backoff).
  void connect_to(const std::string& host, std::uint16_t port);
  /// Stops the loop thread and closes every connection.
  void stop();

  int id() const { return options_.id; }
  std::uint16_t port() const { return port_; }

  // -- Cross-thread observables --------------------------------------------
  std::uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_out() const {
    return frames_out_.load(std::memory_order_relaxed);
  }
  std::size_t broker_peers() const {
    return broker_peers_.load(std::memory_order_relaxed);
  }
  std::size_t client_peers() const {
    return client_peers_.load(std::memory_order_relaxed);
  }
  std::uint64_t backpressure_engagements() const {
    return backpressure_events_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the node's MetricsRegistry (per-connection byte/frame
  /// series) as JSON. Runs on the loop thread; blocks the caller.
  std::string metrics_json();

 private:
  struct Peer {
    int interface_id = -1;
    wire::Hello hello;
    /// This peer's send queue is above the high watermark. Mirrors the
    /// Connection's own flag so a dying connection (which never emits a
    /// final backpressure(false)) still releases the global ingress pause.
    bool backpressured = false;
    /// Registry series resolved once at handshake (loop thread).
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
  };

  void on_peer(Connection* connection, const wire::Hello& hello);
  void on_frame(Connection* connection, wire::Decoded&& decoded);
  void on_disconnect(Connection* connection, const std::string& reason);
  void on_backpressure(Connection* connection, bool engaged);
  void apply_read_pause();
  void send_on(int interface_id, const Message& msg);

  Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Transport> transport_;
  Broker broker_;
  MetricsRegistry registry_;
  std::map<Connection*, Peer> peers_;
  std::map<int, Connection*> interfaces_;
  int next_interface_ = 0;
  std::size_t backpressured_connections_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::uint16_t port_ = 0;

  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> backpressure_events_{0};
  std::atomic<std::size_t> broker_peers_{0};
  std::atomic<std::size_t> client_peers_{0};
};

}  // namespace xroute::transport
