#include "transport/transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace xroute::transport {

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* name = (host.empty() || host == "localhost") ? "127.0.0.1"
                                                           : host.c_str();
  if (inet_pton(AF_INET, name, &addr.sin_addr) != 1) {
    throw std::runtime_error("transport: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Transport::Transport(EventLoop* loop, Options options)
    : loop_(loop), options_(std::move(options)) {}

Transport::~Transport() { shutdown(); }

std::uint16_t Transport::listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("transport: socket() failed");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_address("127.0.0.1", port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("transport: cannot listen on port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  listen_port_ = ntohs(addr.sin_port);
  loop_->add_fd(fd, kReadable, [this](std::uint32_t) { accept_ready(); });
  return listen_port_;
}

void Transport::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays up
    }
    set_nonblocking(fd);
    adopt_socket(fd, /*dialed=*/false, nullptr);
  }
}

void Transport::dial(const std::string& host, std::uint16_t port) {
  auto dial = std::make_shared<Dial>();
  dial->host = host;
  dial->port = port;
  start_connect(std::move(dial));
}

void Transport::start_connect(std::shared_ptr<Dial> dial) {
  if (shutting_down_) return;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    retry_dial(std::move(dial));
    return;
  }
  set_nonblocking(fd);
  sockaddr_in addr = make_address(dial->host, dial->port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    connect_outcome(fd, std::move(dial), true);
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    retry_dial(std::move(dial));
    return;
  }
  // Async connect in flight: resolution arrives as writability.
  loop_->add_fd(fd, kWritable, [this, fd, dial](std::uint32_t events) {
    loop_->remove_fd(fd);
    int error = 0;
    socklen_t len = sizeof(error);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
    bool success = (events & kError) == 0 && error == 0;
    connect_outcome(fd, dial, success);
  });
}

void Transport::connect_outcome(int fd, std::shared_ptr<Dial> dial,
                                bool success) {
  if (!success) {
    ::close(fd);
    retry_dial(std::move(dial));
    return;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  adopt_socket(fd, /*dialed=*/true, std::move(dial));
}

void Transport::retry_dial(std::shared_ptr<Dial> dial) {
  if (shutting_down_) return;
  const BackoffPolicy& policy = options_.dial_backoff;
  if (policy.exhausted(dial->attempt)) {
    if (on_dial_failed_) on_dial_failed_(dial->host, dial->port);
    return;
  }
  double delay = policy.delay_ms(dial->attempt++);
  loop_->schedule(delay, [this, dial] { start_connect(dial); });
}

void Transport::adopt_socket(int fd, bool dialed, std::shared_ptr<Dial> dial) {
  auto connection =
      std::make_unique<Connection>(loop_, fd, options_.connection);
  Connection* raw = connection.get();
  Entry& entry = connections_[raw];
  entry.connection = std::move(connection);
  entry.established = false;
  entry.dial = dialed ? std::move(dial) : nullptr;

  raw->set_frame_handler([this, raw](wire::Decoded&& decoded) {
    auto it = connections_.find(raw);
    if (it == connections_.end()) return;
    Entry& state = it->second;
    if (!state.established) {
      // First frame must be the peer's Hello at a version we can speak.
      if (decoded.kind != wire::FrameKind::kHello) {
        raw->close("handshake: first frame was not hello");
        return;
      }
      if (decoded.hello.max_version < 1) {
        raw->close("handshake: no common protocol version");
        return;
      }
      state.established = true;
      ++peers_;
      if (state.handshake_timer != 0) {
        loop_->cancel_timer(state.handshake_timer);
        state.handshake_timer = 0;
      }
      state.health.emplace(options_.heartbeat, loop_->now_ms());
      ensure_ticker();
      // Handshake done: a future drop re-dials on a fresh schedule.
      if (state.dial) state.dial->attempt = 0;
      if (on_peer_) on_peer_(raw, decoded.hello);
      return;
    }
    // Any frame is proof of life — real traffic doubles as a heartbeat.
    if (state.health) {
      state.health->note_activity(loop_->now_ms());
      if (state.last_state != PeerState::kAlive) {
        state.last_state = PeerState::kAlive;
        if (on_peer_state_) on_peer_state_(raw, PeerState::kAlive);
      }
    }
    if (decoded.kind == wire::FrameKind::kHeartbeat) {
      return;  // liveness only; never surfaced
    }
    if (decoded.kind == wire::FrameKind::kGoodbye) {
      // Planned departure: stop chasing this address when it hangs up.
      state.parting = true;
      state.dial = nullptr;
      if (on_goodbye_) on_goodbye_(raw);
      return;
    }
    if (decoded.kind == wire::FrameKind::kLeaseGrant) {
      // Edge lease acknowledgement; meaningless without a handler.
      if (on_lease_) on_lease_(raw, decoded.lease_ttl_ms);
      return;
    }
    if (!decoded.is_message()) {
      raw->close("unexpected session frame after handshake");
      return;
    }
    if (on_frame_) on_frame_(raw, std::move(decoded));
  });

  raw->set_close_handler([this, raw](const std::string& reason) {
    auto it = connections_.find(raw);
    if (it == connections_.end()) return;
    bool established = it->second.established;
    if (established) --peers_;
    if (it->second.handshake_timer != 0) {
      loop_->cancel_timer(it->second.handshake_timer);
    }
    std::shared_ptr<Dial> redial = std::move(it->second.dial);
    // Keep the Connection alive until this handler returns.
    std::unique_ptr<Connection> doomed = std::move(it->second.connection);
    connections_.erase(it);
    if (established && on_disconnect_) on_disconnect_(raw, reason);
    // A dropped dialed link (failed handshake or a later disconnect)
    // resumes its retry schedule — processes of one overlay can restart
    // in any order and the survivors re-knit the topology.
    if (redial) retry_dial(std::move(redial));
  });

  // Reap a connector that never says Hello: without a deadline a silent
  // socket would hold a slot (and, for dialed links, stall the redial
  // schedule) forever.
  if (options_.handshake_timeout_ms > 0) {
    entry.handshake_timer = loop_->schedule(
        options_.handshake_timeout_ms, [this, raw] {
          auto it = connections_.find(raw);
          if (it == connections_.end() || it->second.established) return;
          it->second.handshake_timer = 0;  // firing now; nothing to cancel
          handshake_timeouts_.fetch_add(1, std::memory_order_relaxed);
          raw->close("handshake: timeout");
        });
  }

  raw->start();
  raw->send(wire::encode_hello(options_.self));
}

void Transport::ensure_ticker() {
  if (!options_.heartbeat.enabled || ticker_armed_ || shutting_down_) return;
  ticker_armed_ = true;
  ticker_id_ =
      loop_->schedule(options_.heartbeat.interval_ms, [this] { heartbeat_tick(); });
}

void Transport::heartbeat_tick() {
  ticker_armed_ = false;
  if (shutting_down_) return;
  double now = loop_->now_ms();
  std::vector<Connection*> downed;
  for (auto& [connection, entry] : connections_) {
    if (!entry.established || !entry.health) continue;
    connection->send(wire::encode_heartbeat(entry.heartbeat_seq++));
    if (!connection->read_enabled()) {
      // Reads are paused (ingress flow control): the silence is ours, not
      // the peer's — its heartbeats are sitting unread in the socket
      // buffer. Count the pause as proof of life so backpressure never
      // masquerades as peer death.
      entry.health->note_activity(now);
      continue;
    }
    PeerState state = entry.health->state(now);
    if (state == PeerState::kDown) {
      downed.push_back(connection);
      continue;
    }
    if (state != entry.last_state) {
      entry.last_state = state;
      if (on_peer_state_) on_peer_state_(connection, state);
    }
  }
  // Closing mutates connections_ through the close handlers; do it outside
  // the iteration. The close feeds the ordinary disconnect + re-dial path.
  for (Connection* connection : downed) {
    heartbeat_downs_.fetch_add(1, std::memory_order_relaxed);
    connection->close("heartbeat: peer down");
  }
  if (!connections_.empty()) ensure_ticker();
}

void Transport::shutdown() {
  shutting_down_ = true;
  if (ticker_armed_) {
    loop_->cancel_timer(ticker_id_);
    ticker_armed_ = false;
  }
  if (listen_fd_ >= 0) {
    loop_->remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Closing mutates connections_ via the close handlers; detach first.
  std::map<Connection*, Entry> doomed;
  doomed.swap(connections_);
  peers_ = 0;
  doomed.clear();  // ~Connection closes the fds without firing handlers
}

}  // namespace xroute::transport
