#include "transport/transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

namespace xroute::transport {

namespace {

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* name = (host.empty() || host == "localhost") ? "127.0.0.1"
                                                           : host.c_str();
  if (inet_pton(AF_INET, name, &addr.sin_addr) != 1) {
    throw std::runtime_error("transport: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Transport::Transport(EventLoop* loop, Options options)
    : loop_(loop), options_(std::move(options)) {}

Transport::~Transport() { shutdown(); }

std::uint16_t Transport::listen(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("transport: socket() failed");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_address("127.0.0.1", port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("transport: cannot listen on port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  listen_fd_ = fd;
  listen_port_ = ntohs(addr.sin_port);
  loop_->add_fd(fd, kReadable, [this](std::uint32_t) { accept_ready(); });
  return listen_port_;
}

void Transport::accept_ready() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays up
    }
    set_nonblocking(fd);
    adopt_socket(fd, /*dialed=*/false, nullptr);
  }
}

void Transport::dial(const std::string& host, std::uint16_t port) {
  auto dial = std::make_shared<Dial>();
  dial->host = host;
  dial->port = port;
  start_connect(std::move(dial));
}

void Transport::start_connect(std::shared_ptr<Dial> dial) {
  if (shutting_down_) return;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    retry_dial(std::move(dial));
    return;
  }
  set_nonblocking(fd);
  sockaddr_in addr = make_address(dial->host, dial->port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    connect_outcome(fd, std::move(dial), true);
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    retry_dial(std::move(dial));
    return;
  }
  // Async connect in flight: resolution arrives as writability.
  loop_->add_fd(fd, kWritable, [this, fd, dial](std::uint32_t events) {
    loop_->remove_fd(fd);
    int error = 0;
    socklen_t len = sizeof(error);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
    bool success = (events & kError) == 0 && error == 0;
    connect_outcome(fd, dial, success);
  });
}

void Transport::connect_outcome(int fd, std::shared_ptr<Dial> dial,
                                bool success) {
  if (!success) {
    ::close(fd);
    retry_dial(std::move(dial));
    return;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  adopt_socket(fd, /*dialed=*/true, std::move(dial));
}

void Transport::retry_dial(std::shared_ptr<Dial> dial) {
  if (shutting_down_) return;
  const BackoffPolicy& policy = options_.dial_backoff;
  if (policy.exhausted(dial->attempt)) {
    if (on_dial_failed_) on_dial_failed_(dial->host, dial->port);
    return;
  }
  double delay = policy.delay_ms(dial->attempt++);
  loop_->schedule(delay, [this, dial] { start_connect(dial); });
}

void Transport::adopt_socket(int fd, bool dialed, std::shared_ptr<Dial> dial) {
  auto connection =
      std::make_unique<Connection>(loop_, fd, options_.connection);
  Connection* raw = connection.get();
  Entry& entry = connections_[raw];
  entry.connection = std::move(connection);
  entry.established = false;
  entry.dial = dialed ? std::move(dial) : nullptr;

  raw->set_frame_handler([this, raw](wire::Decoded&& decoded) {
    auto it = connections_.find(raw);
    if (it == connections_.end()) return;
    Entry& state = it->second;
    if (!state.established) {
      // First frame must be the peer's Hello at a version we can speak.
      if (decoded.kind != wire::FrameKind::kHello) {
        raw->close("handshake: first frame was not hello");
        return;
      }
      if (decoded.hello.max_version < 1) {
        raw->close("handshake: no common protocol version");
        return;
      }
      state.established = true;
      ++peers_;
      // Handshake done: a future drop re-dials on a fresh schedule.
      if (state.dial) state.dial->attempt = 0;
      if (on_peer_) on_peer_(raw, decoded.hello);
      return;
    }
    if (!decoded.is_message()) {
      raw->close("unexpected session frame after handshake");
      return;
    }
    if (on_frame_) on_frame_(raw, std::move(decoded));
  });

  raw->set_close_handler([this, raw](const std::string& reason) {
    auto it = connections_.find(raw);
    if (it == connections_.end()) return;
    bool established = it->second.established;
    if (established) --peers_;
    std::shared_ptr<Dial> redial = std::move(it->second.dial);
    // Keep the Connection alive until this handler returns.
    std::unique_ptr<Connection> doomed = std::move(it->second.connection);
    connections_.erase(it);
    if (established && on_disconnect_) on_disconnect_(raw, reason);
    // A dropped dialed link (failed handshake or a later disconnect)
    // resumes its retry schedule — processes of one overlay can restart
    // in any order and the survivors re-knit the topology.
    if (redial) retry_dial(std::move(redial));
  });

  raw->start();
  raw->send(wire::encode_hello(options_.self));
}

void Transport::shutdown() {
  shutting_down_ = true;
  if (listen_fd_ >= 0) {
    loop_->remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Closing mutates connections_ via the close handlers; detach first.
  std::map<Connection*, Entry> doomed;
  doomed.swap(connections_);
  peers_ = 0;
  doomed.clear();  // ~Connection closes the fds without firing handlers
}

}  // namespace xroute::transport
