#include "transport/connection.hpp"

#include <errno.h>
#include <unistd.h>

#include <utility>

namespace xroute::transport {

Connection::Connection(EventLoop* loop, int fd, Options options)
    : loop_(loop), fd_(fd), options_(options) {}

Connection::~Connection() {
  if (fd_ >= 0) {
    loop_->remove_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::start() {
  loop_->add_fd(fd_, kReadable,
                [this](std::uint32_t events) { on_io(events); });
}

void Connection::on_io(std::uint32_t events) {
  in_dispatch_ = true;
  if (events & kError) {
    in_dispatch_ = false;
    close("socket error");
    return;
  }
  if ((events & kWritable) && fd_ >= 0) handle_writable();
  if ((events & kReadable) && fd_ >= 0 && !close_deferred_) handle_readable();
  in_dispatch_ = false;
  if (close_deferred_) {
    close_deferred_ = false;
    close(deferred_reason_);
  }
}

void Connection::handle_readable() {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      decoder_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_deferred_ = true;
      deferred_reason_ = "peer closed";
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_deferred_ = true;
    deferred_reason_ = "read error";
    break;
  }
  // Surface every complete frame, even when the peer also closed: the
  // bytes before the close are valid traffic.
  while (!close_deferred_) {
    wire::Decoded decoded = decoder_.next();
    if (decoded.status == wire::DecodeStatus::kNeedMore) break;
    if (!decoded.ok()) {
      close_deferred_ = true;
      deferred_reason_ =
          std::string("wire decode error: ") + to_string(decoded.status);
      break;
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    if (on_frame_) on_frame_(std::move(decoded));
    if (fd_ < 0) return;  // handler closed us outside dispatch guard
  }
  // Drain frames that arrived before a deferred close as well.
  if (close_deferred_ && deferred_reason_ == "peer closed") {
    for (;;) {
      wire::Decoded decoded = decoder_.next();
      if (!decoded.ok()) break;
      stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      if (on_frame_) on_frame_(std::move(decoded));
      if (fd_ < 0) return;
    }
  }
}

void Connection::handle_writable() {
  bool had_pending = !send_queue_.empty();
  while (!send_queue_.empty()) {
    const Outgoing& head = send_queue_.front();
    ssize_t n = ::write(fd_, head.data() + send_offset_,
                        head.size() - send_offset_);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_deferred_ = true;
      deferred_reason_ = "write error";
      return;
    }
    stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
    send_offset_ += static_cast<std::size_t>(n);
    pending_bytes_ -= static_cast<std::size_t>(n);
    if (send_offset_ == head.size()) {
      send_queue_.pop_front();
      send_offset_ = 0;
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bool want_write = !send_queue_.empty();
  if (want_write != want_write_) {
    want_write_ = want_write;
    update_interest();
  }
  update_backpressure();
  if (had_pending && send_queue_.empty() && on_drain_) on_drain_();
}

bool Connection::send(std::vector<std::uint8_t> frame) {
  Outgoing out;
  out.owned = std::move(frame);
  return enqueue(std::move(out));
}

bool Connection::send_shared(SharedFrame frame) {
  if (!frame) return fd_ >= 0;
  stats_.shared_bytes_out.fetch_add(frame->size(), std::memory_order_relaxed);
  Outgoing out;
  out.shared = std::move(frame);
  return enqueue(std::move(out));
}

bool Connection::enqueue(Outgoing out) {
  if (fd_ < 0) return false;
  pending_bytes_ += out.size();
  send_queue_.push_back(std::move(out));
  if (!want_write_) {
    // Opportunistic flush: most frames go straight to the socket without
    // a poller round trip.
    bool was_dispatching = in_dispatch_;
    in_dispatch_ = true;
    handle_writable();
    in_dispatch_ = was_dispatching;
    if (close_deferred_ && !was_dispatching) {
      close_deferred_ = false;
      close(deferred_reason_);
      return false;
    }
  } else {
    update_backpressure();
  }
  return fd_ >= 0;
}

void Connection::set_read_enabled(bool enabled) {
  if (fd_ < 0 || enabled == read_enabled_) return;
  read_enabled_ = enabled;
  update_interest();
}

void Connection::update_interest() {
  if (fd_ < 0) return;
  std::uint32_t interest = 0;
  if (read_enabled_) interest |= kReadable;
  if (want_write_) interest |= kWritable;
  loop_->set_interest(fd_, interest);
}

void Connection::update_backpressure() {
  if (!backpressured_ && pending_bytes_ > options_.high_watermark) {
    backpressured_ = true;
    stats_.backpressure_events.fetch_add(1, std::memory_order_relaxed);
    if (on_backpressure_) on_backpressure_(true);
  } else if (backpressured_ && pending_bytes_ <= options_.low_watermark) {
    backpressured_ = false;
    if (on_backpressure_) on_backpressure_(false);
  }
}

void Connection::close(const std::string& reason) {
  if (fd_ < 0) return;
  if (in_dispatch_) {
    close_deferred_ = true;
    deferred_reason_ = reason;
    return;
  }
  loop_->remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // The handler commonly destroys this Connection: move it out first and
    // touch no members afterwards.
    CloseHandler handler = std::move(on_close_);
    handler(reason);
  }
}

}  // namespace xroute::transport
