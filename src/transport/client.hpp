// TransportClient — a publisher/subscriber endpoint speaking the wire
// protocol to its edge broker over one TCP connection.
//
// Mirrors the simulator's client endpoints: send() issues control and
// publication messages, and arriving Publication frames are recorded with
// the simulator's first-arrival bookkeeping (delivered_docs() is the set
// of distinct document ids, duplicates counted separately) so the
// differential test can compare delivery sets across the two transports.
//
// Threading: one event-loop thread owns the connection; send() and the
// observation accessors are callable from any thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "router/message.hpp"
#include "transport/transport.hpp"

namespace xroute::transport {

class TransportClient {
 public:
  struct Options {
    int id = 0;
    Connection::Options connection;
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
    bool force_poll = false;
    /// Failure-detector knobs, passed through to the transport. Must be
    /// at least as fast as the broker's: a broker running a tight
    /// detector reaps clients that beacon on the lazy default.
    HeartbeatOptions heartbeat;
  };

  explicit TransportClient(Options options);
  ~TransportClient();

  /// Starts the loop thread and dials the edge broker.
  void start(const std::string& host, std::uint16_t port);
  void stop();

  /// Blocks until the Hello handshake with the broker completes.
  bool wait_connected(int timeout_ms = 5000);

  /// Sends one message to the broker. Messages sent before the handshake
  /// completes are queued and flushed on connect.
  void send(Message msg);

  /// Blocks until every send() posted before this call has been handed to
  /// the connection (and opportunistically flushed to the socket).
  void sync();

  /// Blocks until the connection's userspace send queue is empty (every
  /// queued byte handed to the kernel, which flushes it on close) or the
  /// timeout expires. Returns false on timeout or if the connection
  /// dropped while frames were still queued. Call sync() first so all
  /// send()s have reached the connection. Event-driven: wakes on the
  /// connection's queue-empty callback, no polling.
  bool drain(int timeout_ms = 10000);

  /// Optional hook invoked on the loop thread for every arriving message
  /// (after delivery bookkeeping).
  void set_message_handler(std::function<void(const Message&)> handler);

  int id() const { return options_.id; }
  bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }

  // -- Delivery observation (any thread) -----------------------------------
  /// Distinct document ids delivered (first arrival per document).
  std::set<std::uint64_t> delivered_docs() const;
  /// Publication frames beyond the first arrival of their document.
  std::size_t duplicate_publications() const;
  /// Total frames received (handshake excluded).
  std::uint64_t frames_in() const {
    return frames_in_.load(std::memory_order_relaxed);
  }
  /// Lease grants received (edge servers acknowledge each subscribe).
  std::uint64_t lease_grants() const {
    return lease_grants_.load(std::memory_order_relaxed);
  }
  /// TTL carried by the most recent lease grant (0 before the first).
  double last_lease_ttl_ms() const {
    return last_lease_ttl_ms_.load(std::memory_order_relaxed);
  }

 private:
  /// One blocked drain() call: resolved exactly once from the loop thread
  /// (queue emptied -> true, connection died with frames queued -> false)
  /// or abandoned by its waiter on timeout.
  struct DrainWaiter {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
  };

  void on_peer(Connection* connection);
  void on_frame(wire::Decoded&& decoded);
  void on_disconnect();
  /// Loop thread: wakes every parked drain() with the given verdict.
  void resolve_drain_waiters(bool ok);

  Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<Transport> transport_;
  std::thread thread_;
  bool running_ = false;

  /// Loop-thread state.
  Connection* connection_ = nullptr;
  std::vector<Message> pending_;
  std::function<void(const Message&)> on_message_;
  std::vector<std::shared_ptr<DrainWaiter>> drain_waiters_;

  /// Cross-thread state.
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> lease_grants_{0};
  std::atomic<double> last_lease_ttl_ms_{0.0};
  mutable std::mutex mutex_;
  std::condition_variable connected_cv_;
  std::map<std::uint64_t, std::size_t> arrivals_;  ///< doc id -> frame count
};

}  // namespace xroute::transport
