#include "transport/heartbeat.hpp"

#include <algorithm>
#include <cmath>

namespace xroute::transport {

const char* to_string(PeerState state) {
  switch (state) {
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDown: return "down";
  }
  return "unknown";
}

PeerHealth::PeerHealth(const HeartbeatOptions& options, double now_ms)
    : options_(options), last_seen_ms_(now_ms) {}

void PeerHealth::note_activity(double now_ms) {
  double gap = now_ms - last_seen_ms_;
  if (gap < 0) gap = 0;
  samples_[next_sample_] = gap;
  next_sample_ = (next_sample_ + 1) % kWindow;
  if (sample_count_ < kWindow) ++sample_count_;
  last_seen_ms_ = now_ms;
}

double PeerHealth::mean_interval_ms() const {
  if (sample_count_ == 0) return options_.interval_ms;
  double sum = 0;
  for (std::size_t i = 0; i < sample_count_; ++i) sum += samples_[i];
  // Floor at the beacon period: a burst of traffic must not shrink the
  // model so far that one quiet interval reads as a failure.
  return std::max(sum / static_cast<double>(sample_count_),
                  options_.interval_ms);
}

double PeerHealth::phi(double now_ms) const {
  double silence = now_ms - last_seen_ms_;
  if (silence <= 0) return 0.0;
  // Exponential inter-arrival model: P(gap >= silence) = exp(-silence/mean),
  // so phi = -log10(P) = silence / mean * log10(e).
  return silence / mean_interval_ms() * 0.4342944819032518;
}

PeerState PeerHealth::state(double now_ms) const {
  if (!options_.enabled) return PeerState::kAlive;
  double silence = now_ms - last_seen_ms_;
  if (silence >= options_.down_after_ms) return PeerState::kDown;
  if (silence >= options_.suspect_after_ms) return PeerState::kSuspect;
  // Accrual path: an unusually long gap for *this* peer's cadence raises
  // suspicion before the hard bound, but never inside two beacon periods.
  if (silence >= 2.0 * options_.interval_ms &&
      phi(now_ms) >= options_.phi_suspect) {
    return PeerState::kSuspect;
  }
  return PeerState::kAlive;
}

}  // namespace xroute::transport
