// Peer management over TCP: listening, dialing with retry/backoff, and
// the Hello handshake that turns an anonymous socket into an identified
// peer (wire::Hello — broker or client, with its id).
//
// Handshake: both sides send their Hello as the first frame immediately
// after the socket connects; a connection becomes a *peer* when the remote
// Hello arrives. Any other frame first, or a protocol-version mismatch, is
// a handshake failure and the connection closes. Dialing retries with the
// shared exponential backoff policy (net/backoff.hpp) until the handshake
// completes or the policy is exhausted, so processes of one overlay can
// start in any order.
//
// All callbacks fire on the loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/backoff.hpp"
#include "transport/connection.hpp"
#include "transport/event_loop.hpp"

namespace xroute::transport {

class Transport {
 public:
  struct Options {
    /// Identity announced in our Hello.
    wire::Hello self;
    Connection::Options connection;
    /// Dial retry schedule (default: 50 ms doubling, capped at 2 s,
    /// retrying forever — a daemon waits for its overlay to come up).
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
  };

  /// A connection completed its handshake. `hello` is the peer's identity.
  using PeerHandler =
      std::function<void(Connection*, const wire::Hello& hello)>;
  /// A message frame arrived from an established peer.
  using FrameHandler = std::function<void(Connection*, wire::Decoded&&)>;
  /// An established peer's connection died.
  using DisconnectHandler =
      std::function<void(Connection*, const std::string& reason)>;
  /// A dial gave up (backoff exhausted).
  using DialFailedHandler =
      std::function<void(const std::string& host, std::uint16_t port)>;

  Transport(EventLoop* loop, Options options);
  ~Transport();

  void set_peer_handler(PeerHandler handler) { on_peer_ = std::move(handler); }
  void set_frame_handler(FrameHandler handler) {
    on_frame_ = std::move(handler);
  }
  void set_disconnect_handler(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
  }
  void set_dial_failed_handler(DialFailedHandler handler) {
    on_dial_failed_ = std::move(handler);
  }

  /// Binds and listens on `port` (0 = ephemeral); returns the bound port.
  /// Throws std::runtime_error when the socket cannot be bound.
  std::uint16_t listen(std::uint16_t port);

  /// Starts dialing host:port (numeric IPv4 or "localhost"); retries with
  /// the backoff policy until the connection establishes.
  void dial(const std::string& host, std::uint16_t port);

  /// Closes every connection and the listener.
  void shutdown();

  std::size_t peer_count() const { return peers_; }
  std::uint16_t listen_port() const { return listen_port_; }
  EventLoop* loop() { return loop_; }
  const Options& options() const { return options_; }

 private:
  struct Dial {
    std::string host;
    std::uint16_t port = 0;
    int attempt = 0;
  };

  void accept_ready();
  void adopt_socket(int fd, bool dialed, std::shared_ptr<Dial> dial);
  void start_connect(std::shared_ptr<Dial> dial);
  void connect_outcome(int fd, std::shared_ptr<Dial> dial, bool success);
  void retry_dial(std::shared_ptr<Dial> dial);

  EventLoop* loop_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  /// All live connections; value tracks handshake completion.
  struct Entry {
    std::unique_ptr<Connection> connection;
    bool established = false;
    /// Re-dial coordinates for connections we initiated (empty for
    /// accepted ones).
    std::shared_ptr<Dial> dial;
  };
  std::map<Connection*, Entry> connections_;
  std::size_t peers_ = 0;
  /// Set by shutdown(): suppresses re-dials from late close/timer events.
  bool shutting_down_ = false;
  PeerHandler on_peer_;
  FrameHandler on_frame_;
  DisconnectHandler on_disconnect_;
  DialFailedHandler on_dial_failed_;
};

}  // namespace xroute::transport
