// Peer management over TCP: listening, dialing with retry/backoff, and
// the Hello handshake that turns an anonymous socket into an identified
// peer (wire::Hello — broker or client, with its id).
//
// Handshake: both sides send their Hello as the first frame immediately
// after the socket connects; a connection becomes a *peer* when the remote
// Hello arrives. Any other frame first, or a protocol-version mismatch, is
// a handshake failure and the connection closes — as is a socket that
// connects but stays silent past handshake_timeout_ms. Dialing retries
// with the shared exponential backoff policy (net/backoff.hpp) until the
// handshake completes or the policy is exhausted, so processes of one
// overlay can start in any order.
//
// Liveness: established connections exchange kHeartbeat beacons every
// heartbeat.interval_ms; PeerHealth (heartbeat.hpp) scores the silence and
// a peer that reaches kDown is closed, which feeds the normal disconnect +
// re-dial path. A peer that announces kGoodbye is leaving on purpose: its
// address is not re-dialed and the goodbye handler fires instead of
// suspicion.
//
// All callbacks fire on the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/backoff.hpp"
#include "transport/connection.hpp"
#include "transport/event_loop.hpp"
#include "transport/heartbeat.hpp"

namespace xroute::transport {

class Transport {
 public:
  struct Options {
    /// Identity announced in our Hello.
    wire::Hello self;
    Connection::Options connection;
    /// Dial retry schedule (default: 50 ms doubling, capped at 2 s,
    /// retrying forever — a daemon waits for its overlay to come up).
    BackoffPolicy dial_backoff{50.0, 2.0, 2000.0, -1};
    /// A connected socket that has not produced its Hello after this many
    /// milliseconds is reaped (0 disables). Without it a silent connector
    /// holds a connection slot forever.
    double handshake_timeout_ms = 5000.0;
    /// Per-peer liveness beacons + suspicion thresholds (heartbeat.hpp).
    HeartbeatOptions heartbeat;
  };

  /// A connection completed its handshake. `hello` is the peer's identity.
  using PeerHandler =
      std::function<void(Connection*, const wire::Hello& hello)>;
  /// A message frame arrived from an established peer.
  using FrameHandler = std::function<void(Connection*, wire::Decoded&&)>;
  /// An established peer's connection died.
  using DisconnectHandler =
      std::function<void(Connection*, const std::string& reason)>;
  /// A dial gave up (backoff exhausted).
  using DialFailedHandler =
      std::function<void(const std::string& host, std::uint16_t port)>;
  /// An established peer announced a planned leave (kGoodbye). The
  /// transport has already stopped re-dialing its address; the connection
  /// closes when the peer hangs up.
  using GoodbyeHandler = std::function<void(Connection*)>;
  /// A peer's failure-detector state changed (kAlive <-> kSuspect).
  /// Transition to kDown is reported through DisconnectHandler instead:
  /// the transport closes the connection with reason "heartbeat: peer
  /// down".
  using PeerStateHandler = std::function<void(Connection*, PeerState)>;
  /// An established peer granted (or renewed) a subscription lease
  /// (kLeaseGrant). Only edge servers send these; a transport without a
  /// lease handler ignores the frame.
  using LeaseHandler = std::function<void(Connection*, double ttl_ms)>;

  Transport(EventLoop* loop, Options options);
  ~Transport();

  void set_peer_handler(PeerHandler handler) { on_peer_ = std::move(handler); }
  void set_frame_handler(FrameHandler handler) {
    on_frame_ = std::move(handler);
  }
  void set_disconnect_handler(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
  }
  void set_dial_failed_handler(DialFailedHandler handler) {
    on_dial_failed_ = std::move(handler);
  }
  void set_goodbye_handler(GoodbyeHandler handler) {
    on_goodbye_ = std::move(handler);
  }
  void set_peer_state_handler(PeerStateHandler handler) {
    on_peer_state_ = std::move(handler);
  }
  void set_lease_handler(LeaseHandler handler) {
    on_lease_ = std::move(handler);
  }

  /// Binds and listens on `port` (0 = ephemeral); returns the bound port.
  /// Throws std::runtime_error when the socket cannot be bound.
  std::uint16_t listen(std::uint16_t port);

  /// Starts dialing host:port (numeric IPv4 or "localhost"); retries with
  /// the backoff policy until the connection establishes.
  void dial(const std::string& host, std::uint16_t port);

  /// Closes every connection and the listener.
  void shutdown();

  std::size_t peer_count() const { return peers_; }
  std::uint16_t listen_port() const { return listen_port_; }
  EventLoop* loop() { return loop_; }
  const Options& options() const { return options_; }

  /// Connections reaped because their Hello never arrived. Readable from
  /// any thread.
  std::uint64_t handshake_timeouts() const {
    return handshake_timeouts_.load(std::memory_order_relaxed);
  }
  /// Peers closed by the failure detector (silence past down_after_ms).
  std::uint64_t heartbeat_downs() const {
    return heartbeat_downs_.load(std::memory_order_relaxed);
  }

 private:
  struct Dial {
    std::string host;
    std::uint16_t port = 0;
    int attempt = 0;
  };

  void accept_ready();
  void adopt_socket(int fd, bool dialed, std::shared_ptr<Dial> dial);
  void start_connect(std::shared_ptr<Dial> dial);
  void connect_outcome(int fd, std::shared_ptr<Dial> dial, bool success);
  void retry_dial(std::shared_ptr<Dial> dial);
  /// (Re)arms the beacon timer if heartbeats are on and it is not running.
  void ensure_ticker();
  /// One beacon period: send a heartbeat on every established connection,
  /// evaluate each peer's health, close the ones past down_after_ms.
  void heartbeat_tick();

  EventLoop* loop_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  /// All live connections; value tracks handshake completion.
  struct Entry {
    std::unique_ptr<Connection> connection;
    bool established = false;
    /// Re-dial coordinates for connections we initiated (empty for
    /// accepted ones).
    std::shared_ptr<Dial> dial;
    /// Pending handshake-deadline timer (0 once established or disabled).
    std::uint64_t handshake_timer = 0;
    /// Failure detector, armed at handshake completion.
    std::optional<PeerHealth> health;
    std::uint64_t heartbeat_seq = 0;
    PeerState last_state = PeerState::kAlive;
    /// Peer sent kGoodbye: its close is planned, not a failure.
    bool parting = false;
  };
  std::map<Connection*, Entry> connections_;
  std::size_t peers_ = 0;
  /// Set by shutdown(): suppresses re-dials from late close/timer events.
  bool shutting_down_ = false;
  bool ticker_armed_ = false;
  std::uint64_t ticker_id_ = 0;
  std::atomic<std::uint64_t> handshake_timeouts_{0};
  std::atomic<std::uint64_t> heartbeat_downs_{0};
  PeerHandler on_peer_;
  FrameHandler on_frame_;
  DisconnectHandler on_disconnect_;
  DialFailedHandler on_dial_failed_;
  GoodbyeHandler on_goodbye_;
  PeerStateHandler on_peer_state_;
  LeaseHandler on_lease_;
};

}  // namespace xroute::transport
