// One framed, non-blocking TCP connection on an EventLoop.
//
// Reads are fed through a wire::FrameDecoder and surface as whole decoded
// frames; writes queue in user space and drain on writability. The send
// queue has a high watermark: crossing it marks the connection
// backpressured (observable by the owner, which is expected to stop
// reading from the sources that feed this sink) and a low watermark that
// clears the mark once the kernel has caught up. A decode error condemns
// the connection — framing has no resynchronisation point.
//
// All methods run on the loop thread. The stats counters are atomics so
// other threads (harnesses, metrics scrapes) may read them live.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "transport/event_loop.hpp"
#include "wire/codec.hpp"

namespace xroute::transport {

/// One encoded frame shared across many send queues: the serialize-once
/// contract of the edge fan-out path. Immutable by type — every holder
/// sees the same bytes, no copy per recipient.
using SharedFrame = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Live per-connection counters (relaxed atomics: monotonic totals, no
/// cross-field consistency promised to concurrent readers).
struct ConnectionStats {
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> backpressure_events{0};
  /// Bytes queued through send_shared (zero-copy refcounted frames).
  std::atomic<std::uint64_t> shared_bytes_out{0};
};

class Connection {
 public:
  struct Options {
    /// Pending-send bytes that flip the connection into backpressure.
    std::size_t high_watermark = 4u << 20;
    /// Pending-send bytes below which backpressure clears.
    std::size_t low_watermark = 512u << 10;
  };

  /// Called for every complete decoded frame.
  using FrameHandler = std::function<void(wire::Decoded&&)>;
  /// Called exactly once when the connection dies (peer close, socket
  /// error, decode error, or local close()).
  using CloseHandler = std::function<void(const std::string& reason)>;
  /// Called on backpressure transitions (true = above high watermark).
  using BackpressureHandler = std::function<void(bool engaged)>;
  /// Called every time the send queue transitions to empty (the last
  /// queued byte was handed to the kernel). Drives event-driven drain
  /// waiters; never called while frames are still pending.
  using DrainHandler = std::function<void()>;

  /// Takes ownership of `fd` (a connected, non-blocking socket).
  Connection(EventLoop* loop, int fd, Options options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_frame_handler(FrameHandler handler) { on_frame_ = std::move(handler); }
  void set_close_handler(CloseHandler handler) { on_close_ = std::move(handler); }
  void set_backpressure_handler(BackpressureHandler handler) {
    on_backpressure_ = std::move(handler);
  }
  void set_drain_handler(DrainHandler handler) {
    on_drain_ = std::move(handler);
  }

  /// Registers with the loop and starts reading.
  void start();

  /// Queues an encoded frame; attempts an immediate write when the queue
  /// was empty. Returns false (and drops the frame) once closed.
  bool send(std::vector<std::uint8_t> frame);

  /// Queues a refcounted immutable frame without copying its bytes: the
  /// same SharedFrame can sit in thousands of connections' queues at
  /// once (edge fan-out). Same semantics as send() otherwise.
  bool send_shared(SharedFrame frame);

  /// Pauses/resumes read interest (ingress flow control; the owner calls
  /// this when some *other* connection's send queue backs up).
  void set_read_enabled(bool enabled);

  void close(const std::string& reason);

  bool closed() const { return fd_ < 0; }
  bool read_enabled() const { return read_enabled_; }
  bool backpressured() const { return backpressured_; }
  std::size_t pending_bytes() const { return pending_bytes_; }
  int fd() const { return fd_; }
  const ConnectionStats& stats() const { return stats_; }

 private:
  /// One send-queue entry: either bytes this connection owns (send()) or
  /// a refcounted frame shared with other queues (send_shared()). Exactly
  /// one of the two is populated.
  struct Outgoing {
    std::vector<std::uint8_t> owned;
    SharedFrame shared;

    const std::uint8_t* data() const {
      return shared ? shared->data() : owned.data();
    }
    std::size_t size() const { return shared ? shared->size() : owned.size(); }
  };

  void on_io(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  bool enqueue(Outgoing out);
  void update_interest();
  void update_backpressure();

  EventLoop* loop_;
  int fd_;
  Options options_;
  wire::FrameDecoder decoder_;
  std::deque<Outgoing> send_queue_;
  std::size_t send_offset_ = 0;  ///< bytes of the queue head already written
  std::size_t pending_bytes_ = 0;
  bool read_enabled_ = true;
  bool want_write_ = false;
  bool backpressured_ = false;
  bool in_dispatch_ = false;  ///< guards against close() re-entry teardown
  bool close_deferred_ = false;
  std::string deferred_reason_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  BackpressureHandler on_backpressure_;
  DrainHandler on_drain_;
  ConnectionStats stats_;
};

}  // namespace xroute::transport
