// LoopbackOverlay — an in-process overlay of real TransportBroker
// processes-in-threads over loopback TCP, for tests and benchmarks.
//
// Builds one TransportBroker per topology node on an ephemeral port,
// dials every edge (lower id dials higher, so each link is one
// connection), and attaches TransportClients to edge brokers. The overlay
// has no global clock, so tests synchronise on *quiescence*: a phase is
// done when total frame counts stop changing — the loopback analogue of
// the simulator's run-until-empty between phases.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"

namespace xroute::transport {

class LoopbackOverlay {
 public:
  struct Options {
    Broker::Config config;
    Connection::Options connection;
    bool force_poll = false;
  };

  LoopbackOverlay(const Topology& topology, Options options);
  ~LoopbackOverlay();

  /// Starts every broker, dials every edge, and blocks until all overlay
  /// links have completed their handshakes. Returns false on timeout.
  bool start(int timeout_ms = 10000);
  void stop();

  /// Creates a client, connects it to `broker_id`'s edge broker, and
  /// blocks until its handshake completes.
  TransportClient& attach_client(int broker_id, int client_id);

  TransportBroker& broker(int id) { return *brokers_.at(static_cast<std::size_t>(id)); }
  TransportClient& client(int id) { return *clients_.at(id); }
  std::size_t broker_count() const { return brokers_.size(); }

  /// Blocks until no frame arrives anywhere in the overlay for `settle_ms`
  /// (brokers and clients), bounded by `timeout_ms`. Returns false on
  /// timeout — the overlay never went quiet.
  bool wait_quiescent(int settle_ms = 150, int timeout_ms = 20000);

 private:
  std::uint64_t total_frames() const;
  std::size_t total_queued() const;

  Topology topology_;
  Options options_;
  std::vector<std::unique_ptr<TransportBroker>> brokers_;
  std::map<int, std::unique_ptr<TransportClient>> clients_;
  bool started_ = false;
};

}  // namespace xroute::transport
