#include "transport/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace xroute::transport {

namespace {

void set_nonblocking_fd(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// -- poll(2) backend ---------------------------------------------------------

class PollPoller : public Poller {
 public:
  void add(int fd, std::uint32_t interest) override { interest_[fd] = interest; }
  void modify(int fd, std::uint32_t interest) override {
    interest_[fd] = interest;
  }
  void remove(int fd) override { interest_.erase(fd); }

  void wait(int timeout_ms, std::vector<Ready>* out) override {
    fds_.clear();
    for (const auto& [fd, interest] : interest_) {
      short events = 0;
      if (interest & kReadable) events |= POLLIN;
      if (interest & kWritable) events |= POLLOUT;
      fds_.push_back(pollfd{fd, events, 0});
    }
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;  // timeout or EINTR: nothing ready
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      std::uint32_t events = 0;
      if (p.revents & (POLLIN | POLLPRI)) events |= kReadable;
      if (p.revents & POLLOUT) events |= kWritable;
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      out->push_back(Ready{p.fd, events});
    }
  }

 private:
  std::map<int, std::uint32_t> interest_;
  std::vector<pollfd> fds_;
};

#if defined(__linux__)

class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) throw std::runtime_error("epoll_create1 failed");
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, std::uint32_t interest) override { ctl(EPOLL_CTL_ADD, fd, interest); }
  void modify(int fd, std::uint32_t interest) override {
    ctl(EPOLL_CTL_MOD, fd, interest);
  }
  void remove(int fd) override {
    epoll_event ev{};
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(int timeout_ms, std::vector<Ready>* out) override {
    epoll_event events[64];
    int n = epoll_wait(epfd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      std::uint32_t ready = 0;
      if (events[i].events & (EPOLLIN | EPOLLPRI)) ready |= kReadable;
      if (events[i].events & EPOLLOUT) ready |= kWritable;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) ready |= kError;
      out->push_back(Ready{events[i].data.fd, ready});
    }
  }

 private:
  void ctl(int op, int fd, std::uint32_t interest) {
    epoll_event ev{};
    if (interest & kReadable) ev.events |= EPOLLIN;
    if (interest & kWritable) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (epoll_ctl(epfd_, op, fd, &ev) != 0 && op == EPOLL_CTL_MOD) {
      // MOD on an fd re-added after remove(): fall back to ADD.
      epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    }
  }

  int epfd_;
};

#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> make_poll_poller() {
  return std::make_unique<PollPoller>();
}

std::unique_ptr<Poller> make_default_poller() {
#if defined(__linux__)
  return std::make_unique<EpollPoller>();
#else
  return make_poll_poller();
#endif
}

EventLoop::EventLoop(bool force_poll)
    : poller_(force_poll ? make_poll_poller() : make_default_poller()),
      poll_backend_(force_poll
#if !defined(__linux__)
                    || true
#endif
      ) {
  if (::pipe(wake_fds_) != 0) throw std::runtime_error("pipe failed");
  set_nonblocking_fd(wake_fds_[0]);
  set_nonblocking_fd(wake_fds_[1]);
  add_fd(wake_fds_[0], kReadable, [this](std::uint32_t) {
    char drain[64];
    while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void EventLoop::add_fd(int fd, std::uint32_t interest, IoCallback callback) {
  callbacks_[fd] = FdEntry{std::move(callback), next_fd_gen_++};
  poller_->add(fd, interest);
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  poller_->modify(fd, interest);
}

void EventLoop::remove_fd(int fd) {
  callbacks_.erase(fd);
  poller_->remove(fd);
}

double EventLoop::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t EventLoop::schedule(double delay_ms, std::function<void()> fn) {
  std::uint64_t id = next_timer_id_++;
  timers_.push(Timer{now_ms() + (delay_ms > 0 ? delay_ms : 0), id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  char byte = 1;
  ssize_t written = ::write(wake_fds_[1], &byte, 1);
  (void)written;  // pipe full means a wakeup is already pending
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    stop_requested_ = true;
  }
  char byte = 1;
  ssize_t written = ::write(wake_fds_[1], &byte, 1);
  (void)written;
}

int EventLoop::next_timeout_ms(int cap_ms) const {
  // Skip cancelled timers at the head lazily.
  auto timers = timers_;  // local copy is fine: only peeking the head chain
  while (!timers.empty() && !timer_fns_.count(timers.top().id)) timers.pop();
  if (timers.empty()) return cap_ms;
  double wait = timers.top().due_ms - now_ms();
  if (wait <= 0) return 0;
  int ms = static_cast<int>(std::ceil(wait));
  return (cap_ms >= 0 && ms > cap_ms) ? cap_ms : ms;
}

void EventLoop::fire_due_timers() {
  double now = now_ms();
  while (!timers_.empty() && timers_.top().due_ms <= now) {
    Timer timer = timers_.top();
    timers_.pop();
    auto it = timer_fns_.find(timer.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::run_once(int timeout_ms) {
  ready_.clear();
  poller_->wait(next_timeout_ms(timeout_ms), &ready_);
  // Stamp each ready fd with its registration generation before any
  // callback runs: a callback may close an fd whose readiness is still
  // queued in this batch, and a new registration (e.g. an accepted
  // connection) can reuse the number — the stale event must not reach it.
  dispatch_.clear();
  for (const Poller::Ready& ready : ready_) {
    auto it = callbacks_.find(ready.fd);
    if (it == callbacks_.end()) continue;
    dispatch_.push_back(ReadyDispatch{ready.fd, ready.events, it->second.gen});
  }
  for (const ReadyDispatch& ready : dispatch_) {
    auto it = callbacks_.find(ready.fd);
    if (it == callbacks_.end()) continue;  // removed by an earlier callback
    if (it->second.gen != ready.gen) continue;  // fd reused mid-batch
    // Copy: the callback may remove_fd(its own fd), destroying the stored
    // function mid-call otherwise.
    IoCallback callback = it->second.callback;
    callback(ready.events);
  }
  fire_due_timers();
  drain_posted();
}

void EventLoop::run() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(posted_mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        break;
      }
    }
    run_once(250);
  }
  drain_posted();  // run anything posted just before stop
}

}  // namespace xroute::transport
