// XPE merging (paper §4.3).
//
// Siblings of the subscription tree with no covering relation can be
// merged into one more general XPE, shrinking the routing table at the
// cost of possible false positives inside the network. Three rules:
//
//   Rule 1 (one difference):   a/*/c/d , a/*/c/e          -> a/*/c/*
//   Rule 2 (two differences):  /a/c/*/* , /a//c/*/c       -> /a//c/*/*
//                              (differing elements -> '*',
//                               differing / vs // operator -> '//')
//   Rule 3 (general):          prefix XPE1 suffix , prefix XPE2 suffix
//                                                         -> prefix // suffix
//
// The imperfect degree of a merger s over originals s1..sn,
//     D_imperfect = |P(s) - U P(si)| / |P(s)|,
// is computed against the DTD-derived path universe (paper: "if each
// broker ... knows the DTD"). A merge is applied only when its degree is
// within the configured tolerance (0 = perfect merging) AND the sound
// covering algorithm confirms the merger covers every original — so an
// applied merge can never lose deliveries.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dtd/universe.hpp"
#include "index/subscription_tree.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

struct MergeOptions {
  /// Maximum tolerated D_imperfect; 0 = perfect merging only.
  double max_imperfect_degree = 0.0;
  /// Enable the individual rules.
  bool rule_one_difference = true;
  bool rule_two_differences = true;
  /// Rule 3 introduces the most false positives; the paper applies it only
  /// "if most parts in two subscriptions are equal".
  bool rule_general = false;
  /// Rule 3 guard: minimum number of equal prefix+suffix steps.
  std::size_t rule_general_min_common = 3;
};

/// One applied merge.
struct MergeRecord {
  Xpe merger;
  std::vector<Xpe> originals;
  double d_imperfect = 0.0;
};

struct MergeReport {
  std::vector<MergeRecord> merges;
  std::size_t nodes_removed = 0;  ///< originals removed minus mergers added
};

class MergeEngine {
 public:
  /// `universe` supplies P(·) counts for D_imperfect; without it (nullptr)
  /// no merge can prove its degree and the engine merges nothing
  /// (paper §4.3: the degree computation requires DTD knowledge).
  MergeEngine(const PathUniverse* universe, MergeOptions options);

  /// One merging pass over every sibling group of the tree ("we
  /// periodically apply the merging rules on the subscription tree").
  MergeReport run(SubscriptionTree& tree) const;

  /// D_imperfect of `merger` w.r.t. `originals` over the universe.
  double imperfect_degree(const Xpe& merger,
                          const std::vector<Xpe>& originals) const;

  // Rule constructors, exposed for unit tests. They return the merged XPE
  // or nullopt when the rule does not apply.
  static std::optional<Xpe> merge_one_difference(const std::vector<Xpe>& group);
  static std::optional<Xpe> merge_two_differences(const Xpe& a, const Xpe& b);
  static std::optional<Xpe> merge_general(const Xpe& a, const Xpe& b,
                                          std::size_t min_common);

 private:
  /// Universe match bitset for an XPE, memoised.
  const std::vector<bool>& match_bits(const Xpe& xpe) const;

  /// Verifies safety gates and applies one merge; returns true on success.
  bool try_apply(SubscriptionTree& tree, SubscriptionTree::Node* parent,
                 const std::vector<SubscriptionTree::Node*>& nodes,
                 const Xpe& merger, MergeReport& report) const;

  const PathUniverse* universe_;
  MergeOptions options_;
  mutable std::unordered_map<Xpe, std::vector<bool>, XpeHash> bits_cache_;
};

}  // namespace xroute
