#include "index/merging.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "match/covering.hpp"
#include "match/pub_match.hpp"

namespace xroute {

MergeEngine::MergeEngine(const PathUniverse* universe, MergeOptions options)
    : universe_(universe), options_(options) {}

std::optional<Xpe> MergeEngine::merge_one_difference(
    const std::vector<Xpe>& group) {
  if (group.size() < 2) return std::nullopt;
  const Xpe& ref = group[0];
  std::size_t diff_pos = ref.size();  // sentinel: none yet
  for (std::size_t g = 1; g < group.size(); ++g) {
    const Xpe& other = group[g];
    if (other.size() != ref.size()) return std::nullopt;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (other.step(i).axis != ref.step(i).axis) return std::nullopt;
      bool name_differs = other.step(i).name != ref.step(i).name;
      bool preds_differ = other.step(i).predicates != ref.step(i).predicates;
      if (name_differs || preds_differ) {
        // All differences (name or predicates) must sit at one common
        // position, which the merger generalises to a bare '*'.
        if (diff_pos == ref.size()) {
          diff_pos = i;
        } else if (diff_pos != i) {
          return std::nullopt;  // differences at more than one position
        }
      }
    }
  }
  if (diff_pos == ref.size()) return std::nullopt;  // group is all-equal
  // An unconstrained wildcard at the differing position would mean a
  // covering relation among the group — those belong in the tree.
  for (const Xpe& s : group) {
    if (s.step(diff_pos).unconstrained_wildcard()) return std::nullopt;
  }
  std::vector<Step> steps = ref.steps();
  steps[diff_pos].name = kWildcard;
  steps[diff_pos].predicates.clear();
  return ref.relative() ? Xpe::relative(std::move(steps))
                        : Xpe::absolute(std::move(steps));
}

std::optional<Xpe> MergeEngine::merge_two_differences(const Xpe& a,
                                                      const Xpe& b) {
  if (a.size() != b.size() || a.size() == 0) return std::nullopt;
  std::size_t name_diffs = 0, axis_diffs = 0;
  std::size_t name_pos = 0, axis_pos = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool differs = a.step(i).name != b.step(i).name ||
                   a.step(i).predicates != b.step(i).predicates;
    if (differs) {
      ++name_diffs;
      name_pos = i;
    }
    if (a.step(i).axis != b.step(i).axis) {
      ++axis_diffs;
      axis_pos = i;
    }
  }
  // The paper's own example merges /a/c/*/* with /a//c/*/c: a wildcard at
  // the differing-name position is fine here (unlike Rule 1, the axis
  // difference prevents a covering relation between the inputs).
  if (name_diffs != 1 || axis_diffs != 1) return std::nullopt;
  std::vector<Step> steps = a.steps();
  steps[name_pos].name = kWildcard;
  steps[name_pos].predicates.clear();
  steps[axis_pos].axis = Axis::kDescendant;
  bool relative = a.relative() && b.relative();
  return relative ? Xpe::relative(std::move(steps))
                  : Xpe::absolute(std::move(steps));
}

std::optional<Xpe> MergeEngine::merge_general(const Xpe& a, const Xpe& b,
                                              std::size_t min_common) {
  if (a == b || a.empty() || b.empty()) return std::nullopt;
  const std::size_t min_len = std::min(a.size(), b.size());
  std::size_t prefix = 0;
  while (prefix < min_len && a.step(prefix) == b.step(prefix)) ++prefix;
  if (prefix == 0) return std::nullopt;  // the paper's form keeps a prefix
  std::size_t suffix = 0;
  while (suffix < min_len - prefix &&
         a.step(a.size() - 1 - suffix) == b.step(b.size() - 1 - suffix)) {
    ++suffix;
  }
  if (suffix == 0) return std::nullopt;  // '//' needs a following step
  if (prefix + suffix < min_common) return std::nullopt;
  std::vector<Step> steps(a.steps().begin(), a.steps().begin() + prefix);
  for (std::size_t i = a.size() - suffix; i < a.size(); ++i) {
    steps.push_back(a.step(i));
  }
  steps[prefix].axis = Axis::kDescendant;  // prefix // suffix
  bool relative = a.relative() && b.relative();
  return relative ? Xpe::relative(std::move(steps))
                  : Xpe::absolute(std::move(steps));
}

const std::vector<bool>& MergeEngine::match_bits(const Xpe& xpe) const {
  auto it = bits_cache_.find(xpe);
  if (it != bits_cache_.end()) return it->second;
  const auto& paths = universe_->paths();
  std::vector<bool> bits(paths.size(), false);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    bits[i] = matches(paths[i], xpe);
  }
  return bits_cache_.emplace(xpe, std::move(bits)).first->second;
}

double MergeEngine::imperfect_degree(const Xpe& merger,
                                     const std::vector<Xpe>& originals) const {
  const std::vector<bool>& merged = match_bits(merger);
  std::vector<bool> covered(merged.size(), false);
  for (const Xpe& original : originals) {
    const std::vector<bool>& bits = match_bits(original);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) covered[i] = true;
    }
  }
  std::size_t merger_count = 0, extra = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i]) {
      ++merger_count;
      if (!covered[i]) ++extra;
    }
  }
  if (merger_count == 0) return 0.0;
  return static_cast<double>(extra) / static_cast<double>(merger_count);
}

namespace {

/// Signature of an XPE with one position's name masked out; XPEs sharing a
/// signature are Rule-1 candidates.
std::string masked_signature(const Xpe& xpe, std::size_t masked_pos) {
  std::ostringstream os;
  os << (xpe.relative() ? 'r' : 'a');
  for (std::size_t i = 0; i < xpe.size(); ++i) {
    const Step& step = xpe.step(i);
    os << (step.axis == Axis::kChild ? '/' : '~');
    if (i == masked_pos) {
      os << '\x01';  // the differing position: name+predicates masked
    } else {
      os << step.name;
      for (const Predicate& p : step.predicates) os << p.to_string();
    }
  }
  os << '#' << masked_pos;
  return os.str();
}

}  // namespace

MergeReport MergeEngine::run(SubscriptionTree& tree) const {
  MergeReport report;
  if (!universe_) return report;

  // Merges one sibling group to a fixed point; children lists are re-read
  // after every applied merge. Returns true if anything merged.
  auto merge_level = [&](SubscriptionTree::Node* parent) {
    bool any = false;
    bool merged_something = true;
    while (merged_something) {
      merged_something = false;

      std::vector<SubscriptionTree::Node*> siblings;
      siblings.reserve(parent->children.size());
      for (auto& c : parent->children) siblings.push_back(c.get());

      // ---- Rule 1: group siblings by masked signature.
      if (options_.rule_one_difference && siblings.size() >= 2) {
        std::map<std::string, std::vector<SubscriptionTree::Node*>> groups;
        for (SubscriptionTree::Node* node : siblings) {
          for (std::size_t k = 0; k < node->xpe.size(); ++k) {
            if (node->xpe.step(k).unconstrained_wildcard()) continue;
            groups[masked_signature(node->xpe, k)].push_back(node);
          }
        }
        // Prefer the largest group.
        std::vector<SubscriptionTree::Node*>* best = nullptr;
        for (auto& [sig, members] : groups) {
          (void)sig;
          if (members.size() >= 2 && (!best || members.size() > best->size())) {
            best = &members;
          }
        }
        if (best) {
          std::vector<Xpe> xpes;
          for (auto* n : *best) xpes.push_back(n->xpe);
          if (auto merger = merge_one_difference(xpes)) {
            if (try_apply(tree, parent, *best, *merger, report)) {
              merged_something = any = true;
              continue;
            }
          }
        }
      }

      // ---- Rule 2: pairwise, same-length siblings.
      if (options_.rule_two_differences && siblings.size() >= 2) {
        bool applied = false;
        for (std::size_t i = 0; i < siblings.size() && !applied; ++i) {
          for (std::size_t j = i + 1; j < siblings.size() && !applied; ++j) {
            auto merger =
                merge_two_differences(siblings[i]->xpe, siblings[j]->xpe);
            if (merger && try_apply(tree, parent, {siblings[i], siblings[j]},
                                    *merger, report)) {
              applied = true;
            }
          }
        }
        if (applied) {
          merged_something = any = true;
          continue;
        }
      }

      // ---- Rule 3: general prefix-//-suffix merging.
      if (options_.rule_general && siblings.size() >= 2) {
        bool applied = false;
        for (std::size_t i = 0; i < siblings.size() && !applied; ++i) {
          for (std::size_t j = i + 1; j < siblings.size() && !applied; ++j) {
            auto merger = merge_general(siblings[i]->xpe, siblings[j]->xpe,
                                        options_.rule_general_min_common);
            if (merger && try_apply(tree, parent, {siblings[i], siblings[j]},
                                    *merger, report)) {
              applied = true;
            }
          }
        }
        if (applied) {
          merged_something = any = true;
          continue;
        }
      }
    }
    return any;
  };

  // A merger may be adopted at an ancestor of the level that produced it,
  // so instead of a recursive walk (whose child iterators a deeper merge
  // would invalidate) each pass snapshots the node set by XPE, revalidates
  // each entry, and repeats until nothing merges anywhere. Every applied
  // merge strictly reduces the node count, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Xpe> keys;
    tree.for_each(
        [&](const SubscriptionTree::Node& node) { keys.push_back(node.xpe); });
    if (merge_level(tree.root())) changed = true;
    for (const Xpe& key : keys) {
      SubscriptionTree::Node* node = tree.find(key);
      if (!node) continue;  // merged away in the meantime
      if (merge_level(node)) changed = true;
    }
  }
  return report;
}

bool MergeEngine::try_apply(SubscriptionTree& tree,
                            SubscriptionTree::Node* parent,
                            const std::vector<SubscriptionTree::Node*>& nodes,
                            const Xpe& merger, MergeReport& report) const {
  // Safety gate 1: the sound covering algorithm must confirm the merger
  // covers every original — guarantees no delivery is lost.
  std::vector<Xpe> originals;
  originals.reserve(nodes.size());
  for (auto* n : nodes) {
    if (!covers(merger, n->xpe)) return false;
    originals.push_back(n->xpe);
  }
  // Safety gate 2: imperfectness within tolerance.
  double degree = imperfect_degree(merger, originals);
  if (degree > options_.max_imperfect_degree + 1e-12) return false;

  SubscriptionTree::Node* node = tree.merge_children(parent, nodes, merger);
  if (!node) return false;  // merger XPE already present elsewhere

  MergeRecord record;
  record.merger = merger;
  record.originals = std::move(originals);
  record.d_imperfect = degree;
  report.nodes_removed += nodes.size() - 1;
  report.merges.push_back(std::move(record));
  return true;
}

}  // namespace xroute
