// Subscription tree (paper §4.1): the covering index.
//
// Subscriptions are kept in a tree in which every node's XPE covers all
// XPEs in its subtree. Because covering is only a partial order, a node may
// be covered by subscriptions outside its ancestor chain; those extra
// covering relations are recorded as *super pointers*, making the overall
// structure a DAG. The tree supports:
//
//   * insert     — the paper's three-case insertion (new sibling / new
//                  inner node above covered siblings / descend into the
//                  covering child), returning what covering-based routing
//                  needs: whether the newcomer is covered, and which
//                  now-covered subscriptions should be unsubscribed
//                  upstream.
//   * remove     — unsubscription: children splice to the grandparent
//                  (covering is transitive, so the invariant holds).
//   * match      — publication matching with subtree pruning: if a path
//                  does not match a node it cannot match anything the node
//                  covers, so the whole subtree is skipped.
//   * merging support — nodes carry merger metadata (see merging.h).
//
// Each node carries the set of last hops the subscription was received
// from (the PRT payload), so the tree doubles as the publication routing
// table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "match/covering.hpp"
#include "match/pub_match.hpp"
#include "router/iface.hpp"
#include "util/symbols.hpp"
#include "xml/paths.hpp"
#include "xpath/xpe.hpp"

namespace xroute {

struct SnapshotBucket;  // router/routing_snapshot.hpp

class SubscriptionTree {
 public:
  struct Node {
    Xpe xpe;
    /// Insertion order, assigned once at creation. Sibling lists are
    /// kept in ascending `seq` order (inserts append the newest node;
    /// detach_node merges spliced orphans back by seq), so the compiled
    /// serialisation order is canonical: a subscribe/unsubscribe pair
    /// that nets out structurally reproduces the previous byte stream
    /// exactly, which is what lets the snapshot builder detect and
    /// elide no-op rebuilds under churn.
    std::uint64_t seq = 0;
    /// symbol_sig(xpe), fixed at creation like `xpe` itself. Root-level
    /// insert scans test signatures from the packed root index instead
    /// of touching each sibling's XPE.
    std::uint64_t sig = 0;
    /// This node's slot in root_nodes_/root_sigs_; meaningful only
    /// while the node is a direct child of the root.
    std::size_t root_slot = 0;
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
    /// Covering shortcuts to nodes outside this node's subtree.
    std::vector<Node*> super;
    /// Nodes holding a super pointer to this node (for O(1) unlinking).
    std::vector<Node*> super_sources;
    /// Last hops (destinations) this subscription was received from.
    IfaceSet hops;
    /// Merger bookkeeping (paper §4.3).
    bool merger = false;
    std::vector<Xpe> merged_from;
    /// Lazily created immutable shares of the payloads snapshot
    /// compilation needs (router/routing_snapshot.hpp): one deep copy
    /// per node lifetime, shared by every recompile instead of copied
    /// into each bucket. `xpe` never changes after node creation;
    /// `merged_from`'s post-creation assignment site (restore_merger)
    /// resets the cache.
    mutable std::shared_ptr<const Xpe> snapshot_xpe;
    mutable std::shared_ptr<const std::vector<Xpe>> snapshot_merged_from;
  };

  struct InsertResult {
    Node* node = nullptr;
    /// False if the XPE was already present (hop added to existing node).
    bool was_new = false;
    /// True if some *other* existing subscription covers the new one — the
    /// covering-routing signal not to forward it.
    bool covered_by_existing = false;
    /// Existing subscriptions the newcomer covers that were previously
    /// top-level w.r.t. it (candidates for upstream unsubscription).
    std::vector<Xpe> now_covered;
  };

  SubscriptionTree();
  ~SubscriptionTree();
  SubscriptionTree(const SubscriptionTree&) = delete;
  SubscriptionTree& operator=(const SubscriptionTree&) = delete;

  struct Options {
    /// When true, insertion searches the whole tree for subscriptions the
    /// newcomer covers (needed for upstream unsubscription and super
    /// pointers). When false, only covered siblings along the descent are
    /// reported — cheaper, still delivery-correct.
    bool track_covered = true;
  };
  explicit SubscriptionTree(Options options);

  /// Inserts `xpe` received from `hop`.
  InsertResult insert(const Xpe& xpe, IfaceId hop);

  /// Removes `hop` from the subscription; the node disappears when no hop
  /// remains. Returns true if the subscription existed with that hop.
  bool remove(const Xpe& xpe, IfaceId hop);

  /// Removes the subscription entirely (all hops). Returns true if found.
  bool erase(const Xpe& xpe);

  /// True if some subscription other than `xpe` itself covers `xpe`.
  bool covered(const Xpe& xpe) const;

  /// Destination hops of every subscription matching `path` (deduplicated).
  IfaceSet match_hops(const Path& path) const;

  /// Matching subscriptions themselves (used by edge delivery and tests).
  /// Uses the first-step root index + interned matching: only root buckets
  /// whose discriminating symbol appears in the path are visited, then the
  /// usual covering-pruned descent. Results are exactly the linear scan's
  /// (order may differ; callers treat the result as a set).
  std::vector<const Node*> match_nodes(const Path& path) const;

  /// Pre-index linear-scan reference: visits every root with the string
  /// matcher. Retained as the differential-test oracle and the
  /// perf_routing "before" baseline; do not use on the hot path.
  std::vector<const Node*> match_nodes_scan(const Path& path) const;
  IfaceSet match_hops_scan(const Path& path) const;

  // -- Parallel matching support (router/match_scheduler.hpp) --------------
  //
  // Shard-local matching partitions the root index by symbol_shard() of
  // each root's discriminating symbol; the union over all shards of
  // match_shard() visits exactly the nodes match_nodes() visits, each in
  // exactly one shard. The methods below are pure reads: they never touch
  // the lazy index or the mutable counters, so any number of threads may
  // run them concurrently against an immutable tree — provided
  // ensure_root_index() ran first and no mutation overlaps the reads
  // (the scheduler's epoch barrier enforces both).

  /// Forces the lazy root index now (control thread, before a match epoch).
  void ensure_root_index() const;

  /// Visits every node of shard `shard` (of `shard_count`) matching `ip`,
  /// in covering-pruned descent order. `distinct_symbols` must be the
  /// deduplicated symbol list of the path (precomputed once per path).
  /// Shard 0 additionally owns the all-wildcard side list. Comparison
  /// tests are accumulated into `*comparisons` instead of the member
  /// counter; fold them back via add_comparisons() after the epoch.
  /// Takes a borrowed PathView so workers can intern into reusable
  /// scratch storage instead of allocating an InternedPath per call.
  /// Templated on the visitor (the per-task call rate makes a
  /// std::function's indirect call and potential allocation measurable).
  /// The walk itself is a sequential scan of the compiled bucket streams
  /// — no stack, no allocation, no per-node pointer chase.
  template <typename Visit>
  void match_shard(const PathView& ip,
                   std::span<const std::uint32_t> distinct_symbols,
                   std::size_t shard, std::size_t shard_count, Visit&& visit,
                   std::size_t* comparisons) const {
    // Pure read by contract: the index was forced by ensure_root_index()
    // and no mutation overlaps the epoch, so the lazy-rebuild branch of
    // match_nodes() must never trigger here.
    if (shard == 0) {
      scan_root_bucket(unindexed_roots_, ip, visit, comparisons);
    }
    for (std::uint32_t sym : distinct_symbols) {
      if (symbol_shard(sym, static_cast<std::uint32_t>(shard_count)) !=
          shard) {
        continue;
      }
      auto it = roots_by_symbol_.find(sym);
      if (it == roots_by_symbol_.end()) continue;
      scan_root_bucket(it->second, ip, visit, comparisons);
    }
  }

  /// Folds worker-local comparison counts back into comparisons() so the
  /// observable totals are identical to a sequential run. Control thread
  /// only (between epochs).
  void add_comparisons(std::size_t n) const { comparisons_ += n; }

  // -- Snapshot support (router/routing_snapshot.hpp) ----------------------
  //
  // The RCU snapshot builder recompiles only the root-index buckets whose
  // content may have changed since the last build. Every mutator below
  // marks the affected bucket key(s); overshoot (marking a clean bucket)
  // costs one redundant recompile, undershoot would be a stale-route bug,
  // so attribution is conservative: hop-only changes mark too (snapshots
  // copy the hop lists the live RootBucket reads through Node pointers),
  // and merge passes mark everything.

  /// The root-index bucket key of `xpe`: its deepest concrete step
  /// symbol, or SymbolTable::kNoSymbol for the all-wildcard side bucket.
  static std::uint32_t bucket_key(const Xpe& xpe);

  /// 64-bit Bloom signature over the XPE's concrete step symbols.
  /// Covering maps every concrete coverer step onto an equal symbol of
  /// the covered expression (symbol_covers), so covers(a, b) implies
  /// sig(a) & ~sig(b) == 0 — a one-AND necessary condition that prunes
  /// the root-level insert scans without reading either XPE.
  static std::uint64_t symbol_sig(const Xpe& xpe);

  bool snapshot_all_dirty() const { return snapshot_all_dirty_; }
  const std::set<std::uint32_t>& snapshot_dirty_keys() const {
    return snapshot_dirty_keys_;
  }
  void clear_snapshot_dirty() {
    snapshot_dirty_keys_.clear();
    snapshot_all_dirty_ = false;
  }
  void mark_snapshot_all_dirty() { snapshot_all_dirty_ = true; }

  /// Compiles the bucket of `key` — every root child whose bucket_key()
  /// is `key`, with its whole subtree — into `out` (DFS pre-order, same
  /// membership and order as rebuild_root_index()). Reads the node tree
  /// directly; never touches the lazy index.
  void compile_snapshot_bucket(std::uint32_t key, SnapshotBucket* out) const;

  /// Distinct bucket keys currently present among root children,
  /// excluding kNoSymbol (full-rebuild enumeration).
  std::vector<std::uint32_t> snapshot_bucket_keys() const;

  /// Number of subscriptions stored — the paper's "routing table size".
  std::size_t size() const { return by_xpe_.size(); }
  bool empty() const { return by_xpe_.empty(); }

  const Node* find(const Xpe& xpe) const;
  Node* find(const Xpe& xpe);

  /// Depth-first visit of every node (parents before children).
  void for_each(const std::function<void(const Node&)>& fn) const;

  /// Comparison counter: number of covers()/matches() tests requested
  /// since construction; the processing-time experiments report it.
  /// Covering tests answered from the memo cache still count (the request
  /// happened; only its cost changed), so covering-routing experiment
  /// numbers are unchanged by the cache. Matching tests skipped by the
  /// root index are NOT counted — the index provably excludes those roots
  /// without evaluating them.
  std::size_t comparisons() const { return comparisons_; }

  /// Covering-memo statistics (see DESIGN.md "Performance architecture").
  std::size_t cover_cache_hits() const { return cover_cache_hits_; }
  std::size_t cover_cache_size() const { return cover_cache_.size(); }

  /// Test hook: checks all structural invariants, returning a description
  /// of the first violation or an empty string if consistent.
  std::string validate() const;

  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// Internal/merging API: detaches `node` from the tree, splicing its
  /// children to its parent. The node is destroyed.
  void detach_node(Node* node);

  /// Internal/merging API: adopts `child` (currently parentless, newly
  /// created) under `parent`. Registers the XPE in the lookup map.
  Node* adopt(Node* parent, std::unique_ptr<Node> child);

  /// Merging support (paper §4.3): replaces `originals` (children of
  /// `parent`) with a single merger node carrying `merger_xpe`. The
  /// originals' children become the merger's children; hops and
  /// merged_from lists are unioned; super pointers to the originals are
  /// dropped (the pointer owners need not cover the more general merger),
  /// super pointers from the originals move to the merger. Returns the
  /// merger node, or nullptr if `merger_xpe` already exists in the tree
  /// (the merge is skipped).
  Node* merge_children(Node* parent, const std::vector<Node*>& originals,
                       const Xpe& merger_xpe);

 private:
  /// One compiled root-index bucket: every subtree rooted at the bucket's
  /// member roots, serialised in DFS pre-order into a single contiguous
  /// word stream. Per entry: [prog_len, skip_words, skip_entries,
  /// prog...]; `nodes` is parallel (entry order) and supplies hops,
  /// children metadata, and the Xpe for predicate evaluation. On a failed
  /// test the walk advances `skip_words`/`skip_entries` past the whole
  /// subtree — the covering prune — so the entire match, prune and
  /// descent is one sequential scan with forward jumps: no stack, no
  /// Node → Xpe → program_ pointer chase per entry (measured ~49 ns/test
  /// chased vs single-digit ns streamed).
  struct RootBucket {
    std::vector<Node*> nodes;
    std::vector<std::uint32_t> words;
  };

  /// Walks one compiled bucket: visits every node whose XPE matches `ip`,
  /// skipping failed subtrees wholesale. Counting contract: exactly one
  /// comparison per reached entry — identical totals to the explicit
  /// stack walk it replaces.
  template <typename Visit>
  void scan_root_bucket(const RootBucket& bucket, const PathView& ip,
                        Visit&& visit, std::size_t* comparisons) const {
    const std::uint32_t* w = bucket.words.data();
    const std::uint32_t* const end = w + bucket.words.size();
    std::size_t k = 0;
    while (w != end) {
      const std::uint32_t n = *w++;
      const std::uint32_t skip_words = *w++;
      const std::uint32_t skip_entries = *w++;
      const Node* node = bucket.nodes[k++];
      ++*comparisons;
      if (matches_program(ip, w, n, node->xpe)) {
        visit(*node);
        w += n;
      } else {
        // The node covers its whole subtree: nothing below can match
        // either.
        w += n + skip_words;
        k += skip_entries;
      }
    }
  }

  InsertResult insert_new(const Xpe& xpe, IfaceId hop);
  void collect_covered_outside(const Xpe& xpe, const Node* skip,
                               Node* origin_node,
                               std::vector<Xpe>* out);
  /// Marks the bucket containing `node` (its root ancestor's key) dirty
  /// for the snapshot builder.
  void note_snapshot_dirty(const Node* node);
  bool covers_cached(const Xpe& a, const Xpe& b) const;
  void unlink_super(Node* node);
  void rebuild_root_index() const;

  /// Bounded memo for covers() over canonical XPE uid pairs. Entries bind
  /// XPE *values* — covers(a, b) is a pure function of the two
  /// expressions and uids are never recycled — so no tree mutation can
  /// make an entry stale; removal-time invalidation is a no-op by
  /// construction (tested in subscription_tree_test). Cleared wholesale
  /// when it reaches kCoverCacheCap to bound memory on adversarial churn.
  static constexpr std::size_t kCoverCacheCap = 1u << 20;

  Options options_;
  std::unique_ptr<Node> root_;  ///< virtual root; xpe empty, matches all
  std::uint64_t next_seq_ = 1;  ///< Node::seq allocator (root keeps 0)

  /// Packed signature index over the root's direct children (parallel
  /// arrays, order-free: Node::root_slot maps back). Root sibling lists
  /// run to thousands of entries under real tables, and the insert
  /// descend/capture scans used to evaluate covering against every one
  /// of them — a cache-hostile walk over that many XPEs (and cover-memo
  /// probes) per control op. One sequential pass over the packed sigs
  /// prunes both scans to the few signature-compatible candidates.
  /// Maintained eagerly by root_child_added/removed at every site that
  /// mutates root_->children.
  std::vector<std::uint64_t> root_sigs_;
  std::vector<Node*> root_nodes_;

  void root_child_added(Node* n) {
    n->root_slot = root_nodes_.size();
    root_nodes_.push_back(n);
    root_sigs_.push_back(n->sig);
  }
  void root_child_removed(Node* n) {
    const std::size_t slot = n->root_slot;
    root_nodes_[slot] = root_nodes_.back();
    root_sigs_[slot] = root_sigs_.back();
    root_nodes_[slot]->root_slot = slot;
    root_nodes_.pop_back();
    root_sigs_.pop_back();
  }
  std::unordered_map<Xpe, Node*, XpeHash> by_xpe_;
  mutable std::size_t comparisons_ = 0;

  mutable std::unordered_map<std::uint64_t, bool> cover_cache_;
  mutable std::size_t cover_cache_hits_ = 0;

  // First-step index over root children, rebuilt lazily after structural
  // mutations: each root is bucketed under its deepest concrete step
  // symbol (a path can only match it if it contains that element); roots
  // with no concrete step (all-wildcard XPEs) stay in the always-visited
  // side bucket. match_nodes() visits only the buckets of symbols present
  // in the path, plus the side bucket. Buckets carry the flattened
  // program stream (see RootBucket).
  mutable std::unordered_map<std::uint32_t, RootBucket> roots_by_symbol_;
  mutable RootBucket unindexed_roots_;
  mutable bool root_index_dirty_ = true;

  // Snapshot dirty tracking (router/routing_snapshot.hpp): bucket keys
  // whose compiled form may differ from the last clear_snapshot_dirty().
  // Starts all-dirty so the first build is a full compile.
  std::set<std::uint32_t> snapshot_dirty_keys_;
  bool snapshot_all_dirty_ = true;
};

}  // namespace xroute
