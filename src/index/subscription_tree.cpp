#include "index/subscription_tree.hpp"

#include <algorithm>
#include <sstream>

#include "router/routing_snapshot.hpp"
#include "util/symbols.hpp"

namespace xroute {

SubscriptionTree::SubscriptionTree() : SubscriptionTree(Options{}) {}

SubscriptionTree::SubscriptionTree(Options options)
    : options_(options), root_(std::make_unique<Node>()) {}

SubscriptionTree::~SubscriptionTree() = default;

namespace {

/// Constant-time necessary condition for covers(c, x), used to prune the
/// descent and sibling scans (the paper's §4.1 node properties: an
/// anchored coverer must be anchored-compatible at position 0; a longer
/// expression never covers a shorter one).
bool may_cover(const Xpe& c, const Xpe& x) {
  if (c.size() > x.size()) return false;
  if (c.anchored()) {
    // Positionwise coverage at the root is necessary for anchored
    // coverers ("A relative XPE ... will never be inserted in a subtree
    // rooted by an absolute XPE" is the contrapositive).
    if (!x.anchored()) return false;
    const std::uint32_t c0 = c.symbol(0);
    if (c0 != SymbolTable::kWildcardId && c0 != x.symbol(0)) return false;
  }
  return true;
}

}  // namespace

bool SubscriptionTree::covers_cached(const Xpe& a, const Xpe& b) const {
  // Counts the *request* whether or not the memo answers it, so the
  // paper's processing-time counters are identical with and without the
  // cache (the cache changes cost, never outcomes or call counts).
  ++comparisons_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a.uid()) << 32) | b.uid();
  auto it = cover_cache_.find(key);
  if (it != cover_cache_.end()) {
    ++cover_cache_hits_;
    return it->second;
  }
  const bool result = may_cover(a, b) && covers(a, b);
  if (cover_cache_.size() >= kCoverCacheCap) cover_cache_.clear();
  cover_cache_.emplace(key, result);
  return result;
}

const SubscriptionTree::Node* SubscriptionTree::find(const Xpe& xpe) const {
  auto it = by_xpe_.find(xpe);
  return it == by_xpe_.end() ? nullptr : it->second;
}

SubscriptionTree::Node* SubscriptionTree::find(const Xpe& xpe) {
  auto it = by_xpe_.find(xpe);
  return it == by_xpe_.end() ? nullptr : it->second;
}

std::uint64_t SubscriptionTree::symbol_sig(const Xpe& xpe) {
  std::uint64_t sig = 0;
  for (std::uint32_t sym : xpe.symbols()) {
    if (sym == SymbolTable::kWildcardId) continue;
    sig |= 1ull << ((sym * 0x9E3779B97F4A7C15ull) >> 58);
  }
  return sig;
}

std::uint32_t SubscriptionTree::bucket_key(const Xpe& xpe) {
  // The deepest concrete step: a path can only match this XPE (or
  // anything it covers — covering preserves concrete steps of the
  // coverer) if it contains that element somewhere.
  const std::vector<std::uint32_t>& syms = xpe.symbols();
  for (std::size_t i = syms.size(); i-- > 0;) {
    if (syms[i] != SymbolTable::kWildcardId) return syms[i];
  }
  return SymbolTable::kNoSymbol;
}

void SubscriptionTree::note_snapshot_dirty(const Node* node) {
  if (snapshot_all_dirty_) return;
  while (node->parent != nullptr && node->parent != root_.get()) {
    node = node->parent;
  }
  if (node->parent == nullptr) {
    // Not reachable from the root (defensive): attribution unknown.
    snapshot_all_dirty_ = true;
    return;
  }
  snapshot_dirty_keys_.insert(bucket_key(node->xpe));
}

SubscriptionTree::InsertResult SubscriptionTree::insert(const Xpe& xpe,
                                                        IfaceId hop) {
  if (Node* existing = find(xpe)) {
    InsertResult result;
    existing->hops.insert(hop);
    // Hop-only change: the live RootBucket reads hops through Node
    // pointers and stays valid, but snapshots copy them — mark the
    // containing bucket.
    note_snapshot_dirty(existing);
    result.node = existing;
    result.was_new = false;
    result.covered_by_existing = existing->parent != root_.get() ||
                                 !existing->super_sources.empty();
    return result;
  }
  return insert_new(xpe, hop);
}

SubscriptionTree::InsertResult SubscriptionTree::insert_new(const Xpe& xpe,
                                                            IfaceId hop) {
  InsertResult result;
  result.was_new = true;

  const std::uint64_t xsig = symbol_sig(xpe);

  // Descend to the deepest node covering the newcomer (paper Case 3).
  // The root level — thousands of siblings under real tables — goes
  // through the packed signature index: signature-incompatible children
  // cannot cover the newcomer, so one sequential pass over root_sigs_
  // prunes the scan to a handful of candidates before any covering
  // evaluation (and without touching per-node memory). Deeper sibling
  // lists are small and keep the plain scan.
  Node* parent = root_.get();
  {
    Node* covering = nullptr;
    for (std::size_t i = 0; i < root_sigs_.size(); ++i) {
      if ((root_sigs_[i] & ~xsig) != 0) continue;
      Node* cand = root_nodes_[i];
      // The plain scan takes the first covering child in sibling order;
      // sibling order is seq order, so keep the lowest-seq cover.
      if (covering && covering->seq < cand->seq) continue;
      if (covers_cached(cand->xpe, xpe)) covering = cand;
    }
    if (covering) parent = covering;
  }
  while (parent != root_.get()) {
    Node* covering_child = nullptr;
    for (const auto& child : parent->children) {
      if (covers_cached(child->xpe, xpe)) {
        covering_child = child.get();
        break;
      }
    }
    if (!covering_child) break;
    parent = covering_child;
  }

  // Children of the insertion point that the newcomer covers move below it
  // (paper Case 2, generalised to any number of covered siblings).
  auto node = std::make_unique<Node>();
  node->seq = next_seq_++;
  node->sig = xsig;
  node->xpe = xpe;
  node->hops.insert(hop);
  Node* raw = node.get();

  if (parent == root_.get()) {
    // Capture at the root, signature-pruned like the descent (the
    // newcomer covering a child requires the newcomer's signature to be
    // a subset of the child's). The common churn case — no captures —
    // costs the signature pass alone.
    std::vector<Node*> captured;
    for (std::size_t i = 0; i < root_sigs_.size(); ++i) {
      if ((xsig & ~root_sigs_[i]) != 0) continue;
      Node* cand = root_nodes_[i];
      if (covers_cached(xpe, cand->xpe)) captured.push_back(cand);
    }
    if (!captured.empty()) {
      std::vector<std::unique_ptr<Node>> kept;
      kept.reserve(parent->children.size());
      for (auto& child : parent->children) {
        if (std::find(captured.begin(), captured.end(), child.get()) !=
            captured.end()) {
          result.now_covered.push_back(child->xpe);
          // The captured sibling was a root of its own bucket; it now
          // lives inside the newcomer's — both buckets change.
          if (!snapshot_all_dirty_) {
            snapshot_dirty_keys_.insert(bucket_key(child->xpe));
          }
          root_child_removed(child.get());
          child->parent = raw;
          raw->children.push_back(std::move(child));
        } else {
          kept.push_back(std::move(child));
        }
      }
      parent->children = std::move(kept);
    }
    raw->parent = parent;
    parent->children.push_back(std::move(node));
    root_child_added(raw);
  } else {
    std::vector<std::unique_ptr<Node>> kept;
    kept.reserve(parent->children.size());
    for (auto& child : parent->children) {
      if (covers_cached(xpe, child->xpe)) {
        child->parent = raw;
        raw->children.push_back(std::move(child));
      } else {
        kept.push_back(std::move(child));
      }
    }
    parent->children = std::move(kept);
    raw->parent = parent;
    parent->children.push_back(std::move(node));
  }
  by_xpe_.emplace(xpe, raw);
  // The compiled index serialises whole subtrees, so any structural
  // mutation anywhere invalidates it (it is rebuilt lazily on the next
  // match, so a burst of subscription churn costs one rebuild).
  root_index_dirty_ = true;
  note_snapshot_dirty(raw);
  result.node = raw;
  result.covered_by_existing = parent != root_.get();

  if (options_.track_covered) {
    // Search the rest of the tree for covering relations the tree shape
    // cannot express; record them as super pointers (paper §4.1).
    collect_covered_outside(xpe, raw, raw, &result.now_covered);
    if (!raw->super_sources.empty()) result.covered_by_existing = true;
  }
  return result;
}

void SubscriptionTree::collect_covered_outside(const Xpe& xpe,
                                               const Node* skip,
                                               Node* origin_node,
                                               std::vector<Xpe>* out) {
  // Iterative DFS over the whole tree except `skip`'s subtree.
  std::vector<Node*> stack;
  for (auto& child : root_->children) {
    if (child.get() != skip) stack.push_back(child.get());
  }
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (covers_cached(xpe, node->xpe)) {
      // The newcomer covers this top-of-covered-region node: shortcut via
      // a super pointer; its subtree is covered transitively, so there is
      // no need to descend.
      origin_node->super.push_back(node);
      node->super_sources.push_back(origin_node);
      if (node->parent == root_.get()) out->push_back(node->xpe);
      continue;
    }
    if (covers_cached(node->xpe, xpe)) {
      // An additional coverer — but only outside the ancestor chain, where
      // the tree edge already expresses the relation.
      bool is_ancestor = false;
      for (Node* walk = origin_node->parent; walk; walk = walk->parent) {
        if (walk == node) {
          is_ancestor = true;
          break;
        }
      }
      if (!is_ancestor) {
        node->super.push_back(origin_node);
        origin_node->super_sources.push_back(node);
      }
    }
    for (auto& child : node->children) {
      if (child.get() != skip) stack.push_back(child.get());
    }
  }
}

void SubscriptionTree::unlink_super(Node* node) {
  for (Node* target : node->super) {
    auto& sources = target->super_sources;
    sources.erase(std::remove(sources.begin(), sources.end(), node),
                  sources.end());
  }
  for (Node* source : node->super_sources) {
    auto& supers = source->super;
    supers.erase(std::remove(supers.begin(), supers.end(), node),
                 supers.end());
  }
  node->super.clear();
  node->super_sources.clear();
}

void SubscriptionTree::detach_node(Node* node) {
  unlink_super(node);
  Node* parent = node->parent;
  root_index_dirty_ = true;
  note_snapshot_dirty(node);
  if (parent == root_.get() && !snapshot_all_dirty_) {
    // The spliced children become roots of their own buckets.
    for (const auto& child : node->children) {
      snapshot_dirty_keys_.insert(bucket_key(child->xpe));
    }
  }
  // Splice children to the parent: covering is transitive, so the
  // parent-covers-child invariant is preserved.
  for (auto& child : node->children) {
    child->parent = parent;
  }
  if (parent == root_.get()) {
    root_child_removed(node);
    for (const auto& child : node->children) root_child_added(child.get());
  }
  by_xpe_.erase(node->xpe);
  auto& siblings = parent->children;
  auto it = std::find_if(siblings.begin(), siblings.end(),
                         [&](const auto& p) { return p.get() == node; });
  // Steal the children before destroying the node.
  std::vector<std::unique_ptr<Node>> orphans = std::move(node->children);
  siblings.erase(it);
  // Splice the orphans back in insertion (seq) order rather than
  // appending: sibling lists stay canonically ordered, so removing a
  // subscription that captured siblings restores the exact pre-insert
  // serialisation order and the snapshot builder sees the bucket as
  // unchanged.
  const std::size_t merge_point = siblings.size();
  for (auto& orphan : orphans) siblings.push_back(std::move(orphan));
  std::inplace_merge(
      siblings.begin(), siblings.begin() + merge_point, siblings.end(),
      [](const auto& a, const auto& b) { return a->seq < b->seq; });
}

SubscriptionTree::Node* SubscriptionTree::adopt(Node* parent,
                                                std::unique_ptr<Node> child) {
  root_index_dirty_ = true;
  child->parent = parent;
  Node* raw = child.get();
  by_xpe_.emplace(raw->xpe, raw);
  parent->children.push_back(std::move(child));
  if (parent == root_.get()) root_child_added(raw);
  note_snapshot_dirty(raw);
  return raw;
}

SubscriptionTree::Node* SubscriptionTree::merge_children(
    Node* parent, const std::vector<Node*>& originals, const Xpe& merger_xpe) {
  if (find(merger_xpe) != nullptr) return nullptr;
  // A merge restructures several buckets at once (originals removed,
  // merger adopted possibly elsewhere, covered siblings captured);
  // merges are periodic and rare, so attribute conservatively.
  snapshot_all_dirty_ = true;

  // The merger is strictly more general than its originals and may escape
  // the parent's coverage (e.g. a '//' introduced by the general rule):
  // adopt it at the nearest ancestor that still covers it, preserving the
  // parent-covers-child invariant the pruned matching relies on.
  Node* adoption_parent = parent;
  while (adoption_parent != root_.get() &&
         !covers_cached(adoption_parent->xpe, merger_xpe)) {
    adoption_parent = adoption_parent->parent;
  }

  auto merger = std::make_unique<Node>();
  merger->seq = next_seq_++;
  merger->sig = symbol_sig(merger_xpe);
  merger->xpe = merger_xpe;
  merger->merger = true;
  Node* raw = merger.get();

  for (Node* original : originals) {
    raw->hops.insert(original->hops.begin(), original->hops.end());
    if (original->merger) {
      raw->merged_from.insert(raw->merged_from.end(),
                              original->merged_from.begin(),
                              original->merged_from.end());
    } else {
      raw->merged_from.push_back(original->xpe);
    }
    // Super pointers FROM the original still denote covering (the merger
    // is more general); re-home them unless the target is itself being
    // merged away.
    for (Node* target : original->super) {
      if (std::find(originals.begin(), originals.end(), target) ==
          originals.end()) {
        raw->super.push_back(target);
        auto& sources = target->super_sources;
        sources.erase(std::remove(sources.begin(), sources.end(), original),
                      sources.end());
        target->super_sources.push_back(raw);
      }
    }
    original->super.clear();
    // Super pointers TO the original are dropped: their owners covered the
    // original but need not cover the merger (paper §4.3).
    for (Node* source : original->super_sources) {
      auto& supers = source->super;
      supers.erase(std::remove(supers.begin(), supers.end(), original),
                   supers.end());
    }
    original->super_sources.clear();

    // The originals' children become the merger's children.
    for (auto& child : original->children) {
      child->parent = raw;
      raw->children.push_back(std::move(child));
    }
    original->children.clear();
  }

  // Remove the originals from the parent and the lookup map.
  root_index_dirty_ = true;
  auto& siblings = parent->children;
  for (Node* original : originals) {
    by_xpe_.erase(original->xpe);
    if (parent == root_.get()) root_child_removed(original);
    auto it = std::find_if(siblings.begin(), siblings.end(),
                           [&](const auto& p) { return p.get() == original; });
    siblings.erase(it);
  }

  Node* adopted = adopt(adoption_parent, std::move(merger));

  // Like insertion Case 2: siblings the merger covers move below it.
  std::vector<std::unique_ptr<Node>> kept;
  kept.reserve(adoption_parent->children.size());
  for (auto& child : adoption_parent->children) {
    if (child.get() != adopted && covers_cached(adopted->xpe, child->xpe)) {
      if (adoption_parent == root_.get()) root_child_removed(child.get());
      child->parent = adopted;
      adopted->children.push_back(std::move(child));
    } else {
      kept.push_back(std::move(child));
    }
  }
  adoption_parent->children = std::move(kept);

  // A super target that ended up inside the merger's own subtree (it was a
  // child of another original, or a covered sibling) is now expressed by
  // tree edges: drop the pointer.
  auto in_subtree = [&](Node* target) {
    for (Node* walk = target; walk; walk = walk->parent) {
      if (walk == adopted) return true;
    }
    return false;
  };
  for (auto it = adopted->super.begin(); it != adopted->super.end();) {
    if (in_subtree(*it)) {
      auto& sources = (*it)->super_sources;
      sources.erase(std::remove(sources.begin(), sources.end(), adopted),
                    sources.end());
      it = adopted->super.erase(it);
    } else {
      ++it;
    }
  }

  return adopted;
}

bool SubscriptionTree::remove(const Xpe& xpe, IfaceId hop) {
  Node* node = find(xpe);
  if (!node || node->hops.erase(hop) == 0) return false;
  if (node->hops.empty()) {
    detach_node(node);
  } else {
    // Hop-only change: snapshots copy hop lists, so the bucket is stale
    // even though the tree shape is untouched.
    note_snapshot_dirty(node);
  }
  return true;
}

bool SubscriptionTree::erase(const Xpe& xpe) {
  Node* node = find(xpe);
  if (!node) return false;
  detach_node(node);
  return true;
}

bool SubscriptionTree::covered(const Xpe& xpe) const {
  std::vector<const Node*> stack;
  for (const auto& child : root_->children) stack.push_back(child.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!(node->xpe == xpe) && covers_cached(node->xpe, xpe)) return true;
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return false;
}

IfaceSet SubscriptionTree::match_hops(const Path& path) const {
  IfaceSet hops;
  for (const Node* node : match_nodes(path)) {
    hops.insert(node->hops.begin(), node->hops.end());
  }
  return hops;
}

IfaceSet SubscriptionTree::match_hops_scan(const Path& path) const {
  IfaceSet hops;
  for (const Node* node : match_nodes_scan(path)) {
    hops.insert(node->hops.begin(), node->hops.end());
  }
  return hops;
}

namespace {

/// Serialises `node` and its whole subtree into `bucket` in DFS pre-order
/// (see RootBucket for the entry layout). Returns the number of words
/// emitted for the subtree, so the caller can backpatch its own
/// skip_words header.
std::size_t emit_subtree(SubscriptionTree::Node* node,
                         std::vector<SubscriptionTree::Node*>& nodes,
                         std::vector<std::uint32_t>& words) {
  const std::vector<std::uint32_t>& prog = node->xpe.program();
  const std::size_t header = words.size();
  words.push_back(static_cast<std::uint32_t>(prog.size()));
  words.push_back(0);  // skip_words, backpatched below
  words.push_back(0);  // skip_entries, backpatched below
  words.insert(words.end(), prog.begin(), prog.end());
  nodes.push_back(node);
  const std::size_t entries_before = nodes.size();
  std::size_t sub_words = 0;
  for (const auto& child : node->children) {
    sub_words += emit_subtree(child.get(), nodes, words);
  }
  words[header + 1] = static_cast<std::uint32_t>(sub_words);
  words[header + 2] = static_cast<std::uint32_t>(nodes.size() - entries_before);
  return 3 + prog.size() + sub_words;
}

/// Snapshot flavour of emit_subtree: the same DFS pre-order word stream,
/// but the per-node payload (XPE, hops, merger metadata) is copied into
/// the immutable bucket instead of referenced through Node pointers —
/// the live tree keeps mutating after the snapshot is published.
std::size_t emit_snapshot_subtree(const SubscriptionTree::Node* node,
                                  SnapshotBucket* out) {
  const std::vector<std::uint32_t>& prog = node->xpe.program();
  const std::size_t header = out->words.size();
  out->words.push_back(static_cast<std::uint32_t>(prog.size()));
  out->words.push_back(0);  // skip_words, backpatched below
  out->words.push_back(0);  // skip_entries, backpatched below
  out->words.insert(out->words.end(), prog.begin(), prog.end());
  SnapshotBucket::Entry entry;
  // Payload sharing: the node's XPE (and merger list) is immutable for
  // the node's lifetime, so every recompile hands out the same share —
  // no deep copy, and bucket equality degenerates to pointer compares.
  // Plain shared_ptr, not make_shared: the control block must live on
  // its own cache lines — recompiles bump these refcounts constantly,
  // and a co-located control block would invalidate the payload line
  // the match workers have cached for every touched entry.
  if (!node->snapshot_xpe) {
    node->snapshot_xpe = std::shared_ptr<const Xpe>(new Xpe(node->xpe));
  }
  entry.xpe = node->snapshot_xpe;
  entry.hop_begin = static_cast<std::uint32_t>(out->hops.size());
  out->hops.insert(out->hops.end(), node->hops.begin(), node->hops.end());
  entry.hop_end = static_cast<std::uint32_t>(out->hops.size());
  entry.merger = node->merger;
  if (node->merger) {
    if (!node->snapshot_merged_from) {
      node->snapshot_merged_from = std::shared_ptr<const std::vector<Xpe>>(
          new std::vector<Xpe>(node->merged_from));
    }
    entry.merged_from = node->snapshot_merged_from;
  }
  out->entries.push_back(std::move(entry));
  const std::size_t entries_before = out->entries.size();
  std::size_t sub_words = 0;
  for (const auto& child : node->children) {
    sub_words += emit_snapshot_subtree(child.get(), out);
  }
  out->words[header + 1] = static_cast<std::uint32_t>(sub_words);
  out->words[header + 2] =
      static_cast<std::uint32_t>(out->entries.size() - entries_before);
  return 3 + prog.size() + sub_words;
}

}  // namespace

void SubscriptionTree::compile_snapshot_bucket(std::uint32_t key,
                                               SnapshotBucket* out) const {
  // Same bucket membership and visit order as rebuild_root_index: root
  // children in sibling order, each serialising its whole subtree — so a
  // snapshot scan performs the exact comparison sequence the live index
  // would (determinism contract).
  for (const auto& child : root_->children) {
    if (bucket_key(child->xpe) == key) {
      emit_snapshot_subtree(child.get(), out);
    }
  }
}

std::vector<std::uint32_t> SubscriptionTree::snapshot_bucket_keys() const {
  std::set<std::uint32_t> keys;
  for (const auto& child : root_->children) {
    const std::uint32_t key = bucket_key(child->xpe);
    if (key != SymbolTable::kNoSymbol) keys.insert(key);
  }
  return {keys.begin(), keys.end()};
}

void SubscriptionTree::rebuild_root_index() const {
  roots_by_symbol_.clear();
  unindexed_roots_.nodes.clear();
  unindexed_roots_.words.clear();
  auto add = [](RootBucket& bucket, Node* node) {
    emit_subtree(node, bucket.nodes, bucket.words);
  };
  for (const auto& child : root_->children) {
    Node* node = child.get();
    const std::uint32_t key = bucket_key(node->xpe);
    add(key == SymbolTable::kNoSymbol ? unindexed_roots_
                                      : roots_by_symbol_[key],
        node);
  }
  root_index_dirty_ = false;
}

std::vector<const SubscriptionTree::Node*> SubscriptionTree::match_nodes(
    const Path& path) const {
  if (root_index_dirty_) rebuild_root_index();
  const InternedPath ip(path);
  const PathView view = ip.view();
  std::vector<const Node*> out;
  auto visit = [&out](const Node& node) { out.push_back(&node); };
  scan_root_bucket(unindexed_roots_, view, visit, &comparisons_);
  // Union the buckets of each distinct symbol occurring in the path.
  for (std::size_t i = 0; i < ip.size(); ++i) {
    const std::uint32_t sym = ip[i];
    if (sym == SymbolTable::kNoSymbol) continue;  // element never interned
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (ip[j] == sym) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    auto it = roots_by_symbol_.find(sym);
    if (it == roots_by_symbol_.end()) continue;
    scan_root_bucket(it->second, view, visit, &comparisons_);
  }
  return out;
}

void SubscriptionTree::ensure_root_index() const {
  if (root_index_dirty_) rebuild_root_index();
}

std::vector<const SubscriptionTree::Node*> SubscriptionTree::match_nodes_scan(
    const Path& path) const {
  std::vector<const Node*> out;
  std::vector<const Node*> stack;
  for (const auto& child : root_->children) stack.push_back(child.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++comparisons_;
    if (!matches(path, node->xpe)) {
      // The node covers its whole subtree: nothing below can match either.
      continue;
    }
    out.push_back(node);
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return out;
}

void SubscriptionTree::for_each(
    const std::function<void(const Node&)>& fn) const {
  std::vector<const Node*> stack;
  for (const auto& child : root_->children) stack.push_back(child.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    fn(*node);
    for (const auto& child : node->children) stack.push_back(child.get());
  }
}

std::string SubscriptionTree::validate() const {
  std::size_t seen = 0;
  std::vector<const Node*> stack;
  for (const auto& child : root_->children) {
    if (child->parent != root_.get()) return "root child with bad parent link";
    stack.push_back(child.get());
  }
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++seen;
    auto it = by_xpe_.find(node->xpe);
    if (it == by_xpe_.end() || it->second != node) {
      return "node missing from lookup map: " + node->xpe.to_string();
    }
    if (node->hops.empty() && !node->merger) {
      return "non-merger node without hops: " + node->xpe.to_string();
    }
    for (const Node* target : node->super) {
      // A super target must be covered and must not be a descendant
      // (otherwise the pointer is redundant with the tree edge).
      if (!covers(node->xpe, target->xpe)) {
        return "super pointer without covering: " + node->xpe.to_string() +
               " -> " + target->xpe.to_string();
      }
      for (const Node* walk = target; walk; walk = walk->parent) {
        if (walk == node) {
          return "super pointer into own subtree: " + node->xpe.to_string();
        }
      }
    }
    for (const auto& child : node->children) {
      if (child->parent != node) {
        return "bad parent link under " + node->xpe.to_string();
      }
      if (!covers(node->xpe, child->xpe)) {
        std::ostringstream os;
        os << "parent does not cover child: " << node->xpe.to_string()
           << " !>= " << child->xpe.to_string();
        return os.str();
      }
      stack.push_back(child.get());
    }
  }
  if (seen != by_xpe_.size()) return "lookup map size mismatch";
  // Root signature index: exactly one slot per root child, back-link and
  // signature in sync.
  if (root_nodes_.size() != root_->children.size() ||
      root_sigs_.size() != root_nodes_.size()) {
    return "root signature index size mismatch";
  }
  for (const auto& child : root_->children) {
    const Node* n = child.get();
    if (n->root_slot >= root_nodes_.size() ||
        root_nodes_[n->root_slot] != n) {
      return "root signature index slot mismatch: " + n->xpe.to_string();
    }
    if (root_sigs_[n->root_slot] != n->sig ||
        n->sig != symbol_sig(n->xpe)) {
      return "root signature mismatch: " + n->xpe.to_string();
    }
  }
  return "";
}

}  // namespace xroute
