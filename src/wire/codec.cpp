#include "wire/codec.hpp"

#include <cstring>

namespace xroute::wire {

namespace {

// -- Primitive encoders ------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// -- Bounded reader ----------------------------------------------------------

/// Cursor over one frame's payload. Every read checks bounds; a failed
/// read leaves the cursor poisoned so callers can bail with one status.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  bool u8(std::uint8_t* v) {
    if (p_ == end_) return false;
    *v = *p_++;
    return true;
  }

  bool varint(std::uint64_t* v) {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p_ == end_) return false;
      std::uint8_t byte = *p_++;
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) {
        *v = value;
        return true;
      }
    }
    return false;  // > 10 bytes: not a valid varint
  }

  /// A list/byte count: capped, and never larger than the bytes actually
  /// left in the frame (each encoded item costs >= 1 byte), so a hostile
  /// count cannot drive a large allocation.
  bool count(std::uint64_t* v, std::size_t cap) {
    if (!varint(v)) return false;
    return *v <= cap && *v <= remaining();
  }

  bool str(std::string* out, std::size_t cap = kMaxStringBytes) {
    std::uint64_t len = 0;
    if (!count(&len, cap)) return false;
    out->assign(reinterpret_cast<const char*>(p_),
                static_cast<std::size_t>(len));
    p_ += len;
    return true;
  }

  bool f64(double* v) {
    if (remaining() < 8) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    }
    p_ += 8;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// -- XPE ---------------------------------------------------------------------

void encode_xpe(std::vector<std::uint8_t>& out, const Xpe& xpe) {
  put_u8(out, xpe.relative() ? 1 : 0);
  put_varint(out, xpe.size());
  for (const Step& step : xpe.steps()) {
    put_u8(out, static_cast<std::uint8_t>(step.axis));
    put_string(out, step.name);
    put_varint(out, step.predicates.size());
    for (const Predicate& pred : step.predicates) {
      put_u8(out, static_cast<std::uint8_t>(pred.target));
      put_string(out, pred.name);
      put_u8(out, static_cast<std::uint8_t>(pred.op));
      put_string(out, pred.value);
    }
  }
}

DecodeStatus decode_xpe(Reader& r, Xpe* out) {
  std::uint8_t relative = 0;
  std::uint64_t nsteps = 0;
  if (!r.u8(&relative) || relative > 1 || !r.count(&nsteps, kMaxListItems)) {
    return DecodeStatus::kBadValue;
  }
  std::vector<Step> steps;
  steps.reserve(static_cast<std::size_t>(nsteps));
  for (std::uint64_t i = 0; i < nsteps; ++i) {
    Step step;
    std::uint8_t axis = 0;
    std::uint64_t npreds = 0;
    if (!r.u8(&axis) || axis > 1 || !r.str(&step.name) ||
        !r.count(&npreds, kMaxListItems)) {
      return DecodeStatus::kBadValue;
    }
    step.axis = static_cast<Axis>(axis);
    step.predicates.reserve(static_cast<std::size_t>(npreds));
    for (std::uint64_t j = 0; j < npreds; ++j) {
      Predicate pred;
      std::uint8_t target = 0, op = 0;
      if (!r.u8(&target) || target > 1 || !r.str(&pred.name) || !r.u8(&op) ||
          op > static_cast<std::uint8_t>(Predicate::Op::kGe) ||
          !r.str(&pred.value)) {
        return DecodeStatus::kBadValue;
      }
      pred.target = static_cast<Predicate::Target>(target);
      pred.op = static_cast<Predicate::Op>(op);
      step.predicates.push_back(std::move(pred));
    }
    steps.push_back(std::move(step));
  }
  *out = relative ? Xpe::relative(std::move(steps))
                  : Xpe::absolute(std::move(steps));
  return DecodeStatus::kOk;
}

// -- Advertisement -----------------------------------------------------------

void encode_adv_nodes(std::vector<std::uint8_t>& out,
                      const std::vector<AdvNode>& nodes) {
  put_varint(out, nodes.size());
  for (const AdvNode& node : nodes) {
    put_u8(out, static_cast<std::uint8_t>(node.kind));
    if (node.kind == AdvNode::Kind::kElement) {
      put_string(out, node.name);
    } else {
      encode_adv_nodes(out, node.children);
    }
  }
}

DecodeStatus decode_adv_nodes(Reader& r, std::vector<AdvNode>* out,
                              std::size_t depth) {
  if (depth > kMaxAdvDepth) return DecodeStatus::kDepthExceeded;
  std::uint64_t nnodes = 0;
  if (!r.count(&nnodes, kMaxListItems)) return DecodeStatus::kBadValue;
  out->reserve(static_cast<std::size_t>(nnodes));
  for (std::uint64_t i = 0; i < nnodes; ++i) {
    AdvNode node;
    std::uint8_t kind = 0;
    if (!r.u8(&kind) || kind > 1) return DecodeStatus::kBadValue;
    node.kind = static_cast<AdvNode::Kind>(kind);
    if (node.kind == AdvNode::Kind::kElement) {
      if (!r.str(&node.name)) return DecodeStatus::kBadValue;
    } else {
      DecodeStatus status = decode_adv_nodes(r, &node.children, depth + 1);
      if (status != DecodeStatus::kOk) return status;
      // The advertisement grammar has no empty groups; reject them here so
      // decoded advertisements satisfy the same invariants parsed ones do.
      if (node.children.empty()) return DecodeStatus::kBadValue;
    }
    out->push_back(std::move(node));
  }
  return DecodeStatus::kOk;
}

void encode_advertisement(std::vector<std::uint8_t>& out,
                          const Advertisement& adv, int origin_broker) {
  encode_adv_nodes(out, adv.nodes());
  put_svarint(out, origin_broker);
}

DecodeStatus decode_advertisement(Reader& r, Advertisement* adv, int* origin) {
  std::vector<AdvNode> nodes;
  DecodeStatus status = decode_adv_nodes(r, &nodes, 0);
  if (status != DecodeStatus::kOk) return status;
  std::uint64_t raw = 0;
  if (!r.varint(&raw)) return DecodeStatus::kBadValue;
  std::int64_t value = unzigzag(raw);
  if (value < INT32_MIN || value > INT32_MAX) return DecodeStatus::kBadValue;
  *adv = Advertisement(std::move(nodes));
  *origin = static_cast<int>(value);
  return DecodeStatus::kOk;
}

// -- Path + publication ------------------------------------------------------

void encode_path(std::vector<std::uint8_t>& out, const Path& path) {
  put_varint(out, path.elements.size());
  for (const std::string& element : path.elements) put_string(out, element);
  put_u8(out, path.annotated() ? 1 : 0);
  if (!path.annotated()) return;
  for (const PathNodeData& data : path.data) {
    put_varint(out, data.attributes.size());
    for (const auto& [name, value] : data.attributes) {
      put_string(out, name);
      put_string(out, value);
    }
    put_string(out, data.text);
  }
}

DecodeStatus decode_path(Reader& r, Path* out) {
  std::uint64_t nelems = 0;
  if (!r.count(&nelems, kMaxListItems)) return DecodeStatus::kBadValue;
  out->elements.resize(static_cast<std::size_t>(nelems));
  for (std::string& element : out->elements) {
    if (!r.str(&element)) return DecodeStatus::kBadValue;
  }
  std::uint8_t annotated = 0;
  if (!r.u8(&annotated) || annotated > 1) return DecodeStatus::kBadValue;
  if (!annotated) return DecodeStatus::kOk;
  out->data.resize(static_cast<std::size_t>(nelems));
  for (PathNodeData& data : out->data) {
    std::uint64_t nattrs = 0;
    if (!r.count(&nattrs, kMaxListItems)) return DecodeStatus::kBadValue;
    for (std::uint64_t i = 0; i < nattrs; ++i) {
      std::string name, value;
      if (!r.str(&name) || !r.str(&value)) return DecodeStatus::kBadValue;
      data.attributes.emplace(std::move(name), std::move(value));
    }
    if (!r.str(&data.text)) return DecodeStatus::kBadValue;
  }
  return DecodeStatus::kOk;
}

void encode_publish(std::vector<std::uint8_t>& out, const PublishMsg& pub) {
  encode_path(out, pub.path);
  put_varint(out, pub.doc_id);
  put_varint(out, pub.path_id);
  put_varint(out, pub.doc_bytes);
  put_varint(out, pub.paths_in_doc);
  put_f64(out, pub.publish_time);
}

DecodeStatus decode_publish(Reader& r, PublishMsg* out) {
  DecodeStatus status = decode_path(r, &out->path);
  if (status != DecodeStatus::kOk) return status;
  std::uint64_t path_id = 0, doc_bytes = 0, paths_in_doc = 0;
  if (!r.varint(&out->doc_id) || !r.varint(&path_id) || !r.varint(&doc_bytes) ||
      !r.varint(&paths_in_doc) || !r.f64(&out->publish_time)) {
    return DecodeStatus::kBadValue;
  }
  if (path_id > UINT32_MAX || paths_in_doc > UINT32_MAX) {
    return DecodeStatus::kBadValue;
  }
  out->path_id = static_cast<std::uint32_t>(path_id);
  out->doc_bytes = static_cast<std::size_t>(doc_bytes);
  out->paths_in_doc = static_cast<std::uint32_t>(paths_in_doc);
  return DecodeStatus::kOk;
}

// -- Frame assembly ----------------------------------------------------------

std::vector<std::uint8_t> assemble(FrameKind kind,
                                   const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + 5 + payload.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(kProtocolVersion);
  frame.push_back(static_cast<std::uint8_t>(kind));
  put_varint(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

DecodeStatus decode_payload(FrameKind kind, Reader& r, Decoded* out) {
  switch (kind) {
    case FrameKind::kAdvertise: {
      AdvertiseMsg msg;
      DecodeStatus status =
          decode_advertisement(r, &msg.advertisement, &msg.origin_broker);
      if (status != DecodeStatus::kOk) return status;
      out->message = Message{std::move(msg)};
      return DecodeStatus::kOk;
    }
    case FrameKind::kUnadvertise: {
      UnadvertiseMsg msg;
      DecodeStatus status =
          decode_advertisement(r, &msg.advertisement, &msg.origin_broker);
      if (status != DecodeStatus::kOk) return status;
      out->message = Message{std::move(msg)};
      return DecodeStatus::kOk;
    }
    case FrameKind::kSubscribe: {
      SubscribeMsg msg;
      DecodeStatus status = decode_xpe(r, &msg.xpe);
      if (status != DecodeStatus::kOk) return status;
      out->message = Message{std::move(msg)};
      return DecodeStatus::kOk;
    }
    case FrameKind::kUnsubscribe: {
      UnsubscribeMsg msg;
      DecodeStatus status = decode_xpe(r, &msg.xpe);
      if (status != DecodeStatus::kOk) return status;
      out->message = Message{std::move(msg)};
      return DecodeStatus::kOk;
    }
    case FrameKind::kPublish: {
      PublishMsg msg;
      DecodeStatus status = decode_publish(r, &msg);
      if (status != DecodeStatus::kOk) return status;
      out->message = Message{std::move(msg)};
      return DecodeStatus::kOk;
    }
    case FrameKind::kSyncRequest:
      out->message = Message::sync_request();
      return DecodeStatus::kOk;
    case FrameKind::kSyncState: {
      std::string state;
      if (!r.str(&state, kMaxFrameBytes)) return DecodeStatus::kBadValue;
      out->message = Message::sync_state(std::move(state));
      return DecodeStatus::kOk;
    }
    case FrameKind::kHello: {
      std::uint8_t kind_byte = 0;
      std::uint64_t peer_id = 0;
      std::uint64_t incarnation = 0;
      if (!r.u8(&kind_byte) || kind_byte > 1 || !r.varint(&peer_id) ||
          peer_id > UINT32_MAX || !r.u8(&out->hello.max_version) ||
          !r.varint(&incarnation) || incarnation > UINT32_MAX) {
        return DecodeStatus::kBadValue;
      }
      out->hello.kind = static_cast<Hello::PeerKind>(kind_byte);
      out->hello.peer_id = static_cast<std::uint32_t>(peer_id);
      out->hello.incarnation = static_cast<std::uint32_t>(incarnation);
      return DecodeStatus::kOk;
    }
    case FrameKind::kHeartbeat: {
      if (!r.varint(&out->heartbeat_seq)) return DecodeStatus::kBadValue;
      return DecodeStatus::kOk;
    }
    case FrameKind::kGoodbye:
      return DecodeStatus::kOk;
    case FrameKind::kLeaseGrant: {
      if (!r.f64(&out->lease_ttl_ms)) return DecodeStatus::kBadValue;
      return DecodeStatus::kOk;
    }
  }
  return DecodeStatus::kBadKind;
}

/// Parses one frame from the front of [data, data+size). kNeedMore means a
/// (so far) well-formed prefix; anything else is final for these bytes.
Decoded parse_one(const std::uint8_t* data, std::size_t size) {
  Decoded out;
  // Validate the fixed header byte-by-byte so garbage fails fast even when
  // only a prefix has arrived.
  if (size >= 1 && data[0] != kMagic0) {
    out.status = DecodeStatus::kBadMagic;
    return out;
  }
  if (size >= 2 && data[1] != kMagic1) {
    out.status = DecodeStatus::kBadMagic;
    return out;
  }
  if (size >= 3 && data[2] != kProtocolVersion) {
    out.status = DecodeStatus::kBadVersion;
    return out;
  }
  if (size >= 4) {
    std::uint8_t kind = data[3];
    if (kind >= kMessageTypeCount &&
        kind != static_cast<std::uint8_t>(FrameKind::kHello) &&
        kind != static_cast<std::uint8_t>(FrameKind::kHeartbeat) &&
        kind != static_cast<std::uint8_t>(FrameKind::kGoodbye) &&
        kind != static_cast<std::uint8_t>(FrameKind::kLeaseGrant)) {
      out.status = DecodeStatus::kBadKind;
      return out;
    }
  }
  if (size < kHeaderBytes) {
    out.status = DecodeStatus::kNeedMore;
    return out;
  }
  out.kind = static_cast<FrameKind>(data[3]);

  // Length varint: kMaxFrameBytes fits in 4 varint bytes, so anything
  // needing more than 5 is oversized by construction.
  std::uint64_t length = 0;
  std::size_t cursor = kHeaderBytes;
  bool terminated = false;
  for (int i = 0; i < 5 && cursor < size; ++i, ++cursor) {
    std::uint8_t byte = data[cursor];
    length |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if (!(byte & 0x80)) {
      ++cursor;
      terminated = true;
      break;
    }
  }
  if (!terminated) {
    out.status = (cursor - kHeaderBytes >= 5) ? DecodeStatus::kOversized
                                              : DecodeStatus::kNeedMore;
    return out;
  }
  if (length > kMaxFrameBytes) {
    out.status = DecodeStatus::kOversized;
    return out;
  }
  if (size - cursor < length) {
    out.status = DecodeStatus::kNeedMore;
    return out;
  }

  Reader reader(data + cursor, static_cast<std::size_t>(length));
  DecodeStatus status = decode_payload(out.kind, reader, &out);
  if (status == DecodeStatus::kOk && !reader.done()) {
    status = DecodeStatus::kBadValue;  // payload shorter than its length
  }
  out.status = status;
  if (status == DecodeStatus::kOk) {
    out.consumed = cursor + static_cast<std::size_t>(length);
    out.raw = {data, out.consumed};
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  std::vector<std::uint8_t> payload;
  switch (msg.type()) {
    case MessageType::kAdvertise: {
      const auto& adv = std::get<AdvertiseMsg>(msg.payload);
      encode_advertisement(payload, adv.advertisement, adv.origin_broker);
      break;
    }
    case MessageType::kUnadvertise: {
      const auto& adv = std::get<UnadvertiseMsg>(msg.payload);
      encode_advertisement(payload, adv.advertisement, adv.origin_broker);
      break;
    }
    case MessageType::kSubscribe:
      encode_xpe(payload, std::get<SubscribeMsg>(msg.payload).xpe);
      break;
    case MessageType::kUnsubscribe:
      encode_xpe(payload, std::get<UnsubscribeMsg>(msg.payload).xpe);
      break;
    case MessageType::kPublish:
      encode_publish(payload, std::get<PublishMsg>(msg.payload));
      break;
    case MessageType::kSyncRequest:
      break;
    case MessageType::kSyncState:
      put_string(payload, std::get<SyncStateMsg>(msg.payload).state);
      break;
  }
  return assemble(static_cast<FrameKind>(msg.type()), payload);
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> payload;
  put_u8(payload, static_cast<std::uint8_t>(hello.kind));
  put_varint(payload, hello.peer_id);
  put_u8(payload, hello.max_version);
  put_varint(payload, hello.incarnation);
  return assemble(FrameKind::kHello, payload);
}

std::vector<std::uint8_t> encode_heartbeat(std::uint64_t seq) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, seq);
  return assemble(FrameKind::kHeartbeat, payload);
}

std::vector<std::uint8_t> encode_goodbye() {
  return assemble(FrameKind::kGoodbye, {});
}

std::vector<std::uint8_t> encode_lease_grant(double ttl_ms) {
  std::vector<std::uint8_t> payload;
  put_f64(payload, ttl_ms);
  return assemble(FrameKind::kLeaseGrant, payload);
}

Decoded decode_frame(const std::uint8_t* data, std::size_t size) {
  Decoded out = parse_one(data, size);
  if (out.status == DecodeStatus::kOk && out.consumed < size) {
    out.status = DecodeStatus::kTrailingBytes;
  }
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_ != DecodeStatus::kOk) return;  // stream already condemned
  // Compact the consumed prefix before growing the buffer.
  if (offset_ > 0 && (offset_ >= (64u << 10) || offset_ == buffer_.size())) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Decoded FrameDecoder::next() {
  if (error_ != DecodeStatus::kOk) {
    Decoded out;
    out.status = error_;
    return out;
  }
  Decoded out = parse_one(buffer_.data() + offset_, buffer_.size() - offset_);
  if (out.status == DecodeStatus::kOk) {
    offset_ += out.consumed;
  } else if (out.status != DecodeStatus::kNeedMore) {
    error_ = out.status;  // desynchronised: no resync possible mid-stream
  }
  return out;
}

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kAdvertise: return "advertise";
    case FrameKind::kSubscribe: return "subscribe";
    case FrameKind::kUnsubscribe: return "unsubscribe";
    case FrameKind::kPublish: return "publish";
    case FrameKind::kUnadvertise: return "unadvertise";
    case FrameKind::kSyncRequest: return "sync-request";
    case FrameKind::kSyncState: return "sync-state";
    case FrameKind::kHello: return "hello";
    case FrameKind::kHeartbeat: return "heartbeat";
    case FrameKind::kGoodbye: return "goodbye";
    case FrameKind::kLeaseGrant: return "lease-grant";
  }
  return "unknown";
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadKind: return "bad-kind";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadValue: return "bad-value";
    case DecodeStatus::kDepthExceeded: return "depth-exceeded";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

}  // namespace xroute::wire
