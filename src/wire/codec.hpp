// Versioned binary wire protocol for broker-to-broker and client-to-broker
// links (DESIGN.md "Transport architecture").
//
// Every frame is self-delimiting:
//
//   offset 0   magic      2 bytes, 'X' 'R'
//   offset 2   version    1 byte, kProtocolVersion
//   offset 3   kind       1 byte, FrameKind (message types + session control)
//   offset 4   length     varint, payload byte count (<= kMaxFrameBytes)
//   ...        payload    `length` bytes
//
// Integers are unsigned LEB128 varints (signed fields zigzag first);
// doubles travel as their IEEE-754 bit pattern in a fixed little-endian
// u64; strings are varint-length-prefixed bytes. The payload encodings
// cover the full router Message variant plus the Hello session frame the
// transport exchanges on connect.
//
// Decoding is strict and bounded: every claimed count is validated against
// the bytes actually present before anything is allocated (a 4-byte frame
// cannot demand a gigabyte of elements), nesting depth is capped, and all
// failures are *values* (DecodeStatus), never exceptions — the decoder is
// safe on arbitrary untrusted bytes (fuzz/fuzz_wire.cpp holds it to that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "router/message.hpp"

namespace xroute::wire {

inline constexpr std::uint8_t kMagic0 = 'X';
inline constexpr std::uint8_t kMagic1 = 'R';
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Fixed part of the header (magic + version + kind); the length varint
/// follows.
inline constexpr std::size_t kHeaderBytes = 4;

/// Hard cap on one frame's payload. SyncState transfers (full link-state
/// snapshots) are the largest legitimate frames; 16 MiB leaves them two
/// orders of magnitude of headroom while bounding what a malicious length
/// field can make the decoder buffer.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;
/// Per-string cap inside payloads (element names, predicate values).
inline constexpr std::size_t kMaxStringBytes = 1u << 20;
/// Cap on one list's element count (XPE steps, path elements, attributes).
inline constexpr std::size_t kMaxListItems = 1u << 16;
/// Cap on advertisement group nesting (the parser produces depth <= 3;
/// the cap only exists so crafted input cannot recurse the decoder off
/// the stack).
inline constexpr std::size_t kMaxAdvDepth = 64;

/// Frame kinds. Message kinds mirror MessageType value-for-value; session
/// kinds live above the message range.
enum class FrameKind : std::uint8_t {
  kAdvertise = 0,
  kSubscribe = 1,
  kUnsubscribe = 2,
  kPublish = 3,
  kUnadvertise = 4,
  kSyncRequest = 5,
  kSyncState = 6,
  /// Session handshake: first frame on every connection, both directions.
  kHello = 0x10,
  /// Liveness beacon, exchanged periodically on every established
  /// connection; consumed by the transport's failure detector, never
  /// surfaced to the broker.
  kHeartbeat = 0x11,
  /// Planned departure: the sender is leaving the overlay after flushing
  /// its queues. The receiver withdraws the sender's routes instead of
  /// quarantining them, and stops re-dialing the address.
  kGoodbye = 0x12,
  /// Edge lease acknowledgement: the edge server granted (or renewed) a
  /// subscription lease for the sender's most recent kSubscribe, carrying
  /// the lease TTL the client must beat with heartbeats or re-subscribes.
  /// TCP ordering pairs each grant with its subscribe. Brokers never send
  /// this on core links.
  kLeaseGrant = 0x13,
};

const char* to_string(FrameKind kind);

/// The handshake payload. Version negotiation is min-of-max: each side
/// advertises the highest protocol version it speaks; the connection runs
/// at min(theirs, ours). With a single deployed version this reduces to
/// "header version must equal kProtocolVersion", which decode enforces.
struct Hello {
  enum class PeerKind : std::uint8_t { kBroker = 0, kClient = 1 };

  PeerKind kind = PeerKind::kBroker;
  /// Broker id or client id, as assigned by the deployment.
  std::uint32_t peer_id = 0;
  std::uint8_t max_version = kProtocolVersion;
  /// Restart count of the announcing process. A broker that crashes and
  /// rejoins announces a higher incarnation; a Hello carrying a *lower*
  /// incarnation than the highest one seen for that peer id is a stale
  /// instance (a zombie of a previous life) and is rejected.
  std::uint32_t incarnation = 0;

  friend bool operator==(const Hello&, const Hello&) = default;
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  /// The buffer ends mid-frame; feed more bytes and retry.
  kNeedMore,
  kBadMagic,
  kBadVersion,
  kBadKind,
  /// Claimed payload length exceeds kMaxFrameBytes.
  kOversized,
  /// A payload field claims more bytes/items than the frame carries.
  kBadValue,
  /// Advertisement group nesting beyond kMaxAdvDepth.
  kDepthExceeded,
  /// decode_frame only: bytes follow a complete frame.
  kTrailingBytes,
};

const char* to_string(DecodeStatus status);

/// One decoded frame. `message` is meaningful for message kinds, `hello`
/// for kHello; `consumed` is the encoded size of the frame (header +
/// payload), 0 unless status is kOk or kTrailingBytes.
struct Decoded {
  DecodeStatus status = DecodeStatus::kOk;
  FrameKind kind = FrameKind::kHello;
  Message message;
  Hello hello;
  /// Sender-side sequence number of a kHeartbeat frame.
  std::uint64_t heartbeat_seq = 0;
  /// Granted lease lifetime of a kLeaseGrant frame, milliseconds.
  double lease_ttl_ms = 0.0;
  std::size_t consumed = 0;
  /// The frame's exact wire bytes (header + payload), borrowed from the
  /// decode input: valid until the caller's buffer moves — for
  /// FrameDecoder, until the next feed() (next() only advances the read
  /// offset; feed() may compact). Empty unless status is kOk or
  /// kTrailingBytes. Lets consumers forward a publication without
  /// re-encoding it.
  std::span<const std::uint8_t> raw{};

  bool ok() const { return status == DecodeStatus::kOk; }
  bool is_message() const {
    return static_cast<std::uint8_t>(kind) < kMessageTypeCount;
  }
};

/// Encodes one router message as a complete frame.
std::vector<std::uint8_t> encode_frame(const Message& msg);
/// Encodes a session Hello frame.
std::vector<std::uint8_t> encode_hello(const Hello& hello);
/// Encodes a session Heartbeat frame carrying the sender's beat counter.
std::vector<std::uint8_t> encode_heartbeat(std::uint64_t seq);
/// Encodes a session Goodbye frame (planned leave; empty payload).
std::vector<std::uint8_t> encode_goodbye();
/// Encodes a session LeaseGrant frame carrying the granted TTL.
std::vector<std::uint8_t> encode_lease_grant(double ttl_ms);

/// Decodes exactly one frame occupying the whole buffer. A complete frame
/// followed by extra bytes reports kTrailingBytes (with `consumed` set);
/// a prefix of a frame reports kNeedMore. Never throws.
Decoded decode_frame(const std::uint8_t* data, std::size_t size);
inline Decoded decode_frame(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

/// Incremental frame reassembly over a byte stream (one per connection).
/// feed() appends received bytes; next() peels complete frames off the
/// front. Hard decode errors are sticky — a stream that has desynchronised
/// once cannot be trusted again, so the owning connection must close.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// Next complete frame: kOk with the frame, kNeedMore when the buffer
  /// holds only a partial frame (or nothing), or the sticky error.
  Decoded next();

  /// Sticky error state (kOk when the stream is still healthy).
  DecodeStatus error() const { return error_; }
  std::size_t buffered() const { return buffer_.size() - offset_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix, compacted lazily
  DecodeStatus error_ = DecodeStatus::kOk;
};

}  // namespace xroute::wire
