// Workload synthesis for scenario runs: deterministic publication
// schedules from the scenario's rate/burst/diurnal events, with Zipf skew
// over the path pool.
//
// The schedule is computed up front from the scenario seed — a pure
// function of the script — so a run is reproducible and the runner's
// oracle can classify every document before any socket exists.
#pragma once

#include <cstddef>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace xroute::scenario {

/// Samples ranks with P(i) proportional to 1/(i+1)^s via a precomputed
/// CDF. s = 0 degenerates to uniform; rank 0 is the hottest item —
/// matching the flash-crowd/topic-skew shapes the DSL's `zipf` directive
/// scripts.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Index in [0, n).
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

struct ScheduledDoc {
  double at_ms = 0.0;
  std::size_t path_index = 0;
};

/// Expands the scenario's traffic events into one time-sorted list of
/// publications. Burst events emit `count` docs at one instant; rate
/// events tick at 1000/dps ms; diurnal events integrate a raised-cosine
/// rate curve (zero at the endpoints, `docs_per_sec` at the crest) in
/// small steps with fractional-doc carry so low rates still publish.
std::vector<ScheduledDoc> build_schedule(const Scenario& scenario);

}  // namespace xroute::scenario
