#include "scenario/workload.hpp"

#include <algorithm>
#include <cmath>

namespace xroute::scenario {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<ScheduledDoc> build_schedule(const Scenario& scenario) {
  Rng rng(scenario.seed);
  ZipfSampler sampler(scenario.paths.size(), scenario.zipf_s);
  std::vector<ScheduledDoc> docs;
  auto emit = [&](double at_ms) {
    docs.push_back(ScheduledDoc{at_ms, sampler.sample(rng)});
  };
  for (const ScenarioEvent& event : scenario.events) {
    switch (event.kind) {
      case EventKind::kPublishBurst:
        for (std::size_t i = 0; i < event.count; ++i) emit(event.at_ms);
        break;
      case EventKind::kRate: {
        double step = 1000.0 / event.docs_per_sec;
        for (double t = event.at_ms; t < event.until_ms; t += step) emit(t);
        break;
      }
      case EventKind::kDiurnal: {
        // Integrate the raised-cosine curve in 5 ms steps, carrying the
        // fractional document so the troughs still contribute.
        const double dt = 5.0;
        const double two_pi = 2.0 * 3.14159265358979323846;
        double carry = 0.0;
        for (double t = event.at_ms; t < event.until_ms; t += dt) {
          double phase = (t - event.at_ms) / event.period_ms;
          double rate =
              event.docs_per_sec * 0.5 * (1.0 - std::cos(two_pi * phase));
          carry += rate * dt / 1000.0;
          while (carry >= 1.0) {
            carry -= 1.0;
            emit(t);
          }
        }
        break;
      }
      case EventKind::kKill:
      case EventKind::kRestart:
      case EventKind::kLeave:
      case EventKind::kJoin:
      case EventKind::kChurn:  // expanded by the runner, not the workload
        break;
    }
  }
  std::stable_sort(docs.begin(), docs.end(),
                   [](const ScheduledDoc& a, const ScheduledDoc& b) {
                     return a.at_ms < b.at_ms;
                   });
  return docs;
}

}  // namespace xroute::scenario
