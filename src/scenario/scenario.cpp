#include "scenario/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace xroute::scenario {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ParseError("scenario line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

double parse_double(const std::string& text, std::size_t line,
                    const char* what) {
  try {
    std::size_t used = 0;
    double value = std::stod(text, &used);
    if (used != text.size()) fail(line, std::string(what) + ": '" + text + "'");
    return value;
  } catch (const std::exception&) {
    fail(line, std::string(what) + ": '" + text + "'");
  }
}

std::uint64_t parse_count(const std::string& text, std::size_t line,
                          const char* what) {
  try {
    std::size_t used = 0;
    unsigned long long value = std::stoull(text, &used);
    if (used != text.size() || (!text.empty() && text[0] == '-')) {
      fail(line, std::string(what) + ": '" + text + "'");
    }
    return value;
  } catch (const std::exception&) {
    fail(line, std::string(what) + ": '" + text + "'");
  }
}

int parse_broker_id(const std::string& text, std::size_t line) {
  std::uint64_t id = parse_count(text, line, "bad broker id");
  if (id > 1000000) fail(line, "broker id out of range: '" + text + "'");
  return static_cast<int>(id);
}

std::vector<int> parse_id_list(const std::string& text, std::size_t line) {
  std::vector<int> ids;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current, ',')) {
    if (current.empty()) fail(line, "empty id in list '" + text + "'");
    ids.push_back(parse_broker_id(current, line));
  }
  if (ids.empty()) fail(line, "empty neighbor list");
  return ids;
}

ScenarioEvent parse_event(const std::vector<std::string>& tokens,
                          std::size_t line) {
  // tokens: at <t> <verb> <args...>
  if (tokens.size() < 3) fail(line, "at needs a time and a verb");
  ScenarioEvent event;
  event.at_ms = parse_double(tokens[1], line, "bad event time");
  if (event.at_ms < 0) fail(line, "event time must be >= 0");
  const std::string& verb = tokens[2];
  auto want = [&](std::size_t n, const char* usage) {
    if (tokens.size() != n) fail(line, std::string("usage: ") + usage);
  };
  if (verb == "publish") {
    want(4, "at T publish COUNT");
    event.kind = EventKind::kPublishBurst;
    event.count = static_cast<std::size_t>(
        parse_count(tokens[3], line, "bad publish count"));
  } else if (verb == "rate") {
    want(6, "at T rate DOCS_PER_SEC until T2");
    if (tokens[4] != "until") fail(line, "usage: at T rate DPS until T2");
    event.kind = EventKind::kRate;
    event.docs_per_sec = parse_double(tokens[3], line, "bad rate");
    event.until_ms = parse_double(tokens[5], line, "bad rate end time");
  } else if (verb == "diurnal") {
    want(7, "at T diurnal PEAK_DPS PERIOD_MS until T2");
    if (tokens[5] != "until") {
      fail(line, "usage: at T diurnal PEAK PERIOD until T2");
    }
    event.kind = EventKind::kDiurnal;
    event.docs_per_sec = parse_double(tokens[3], line, "bad diurnal peak");
    event.period_ms = parse_double(tokens[4], line, "bad diurnal period");
    event.until_ms = parse_double(tokens[6], line, "bad diurnal end time");
    if (event.period_ms <= 0) fail(line, "diurnal period must be > 0");
  } else if (verb == "kill" || verb == "restart" || verb == "leave") {
    want(4, "at T kill|restart|leave BROKER");
    event.kind = verb == "kill"      ? EventKind::kKill
                 : verb == "restart" ? EventKind::kRestart
                                     : EventKind::kLeave;
    event.broker = parse_broker_id(tokens[3], line);
  } else if (verb == "join") {
    want(5, "at T join BROKER NEIGHBOR[,NEIGHBOR...]");
    event.kind = EventKind::kJoin;
    event.broker = parse_broker_id(tokens[3], line);
    event.neighbors = parse_id_list(tokens[4], line);
  } else if (verb == "churn") {
    want(7, "at T churn BROKER OPS_PER_SEC until T2");
    if (tokens[5] != "until") {
      fail(line, "usage: at T churn BROKER OPS until T2");
    }
    event.kind = EventKind::kChurn;
    event.broker = parse_broker_id(tokens[3], line);
    event.docs_per_sec = parse_double(tokens[4], line, "bad churn rate");
    event.until_ms = parse_double(tokens[6], line, "bad churn end time");
  } else {
    fail(line, "unknown event verb '" + verb + "'");
  }
  if (event.kind == EventKind::kRate || event.kind == EventKind::kDiurnal ||
      event.kind == EventKind::kChurn) {
    if (event.until_ms <= event.at_ms) {
      fail(line, "'until' must be after the start time");
    }
    if (event.docs_per_sec <= 0) fail(line, "rate must be > 0");
  }
  return event;
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPublishBurst: return "publish";
    case EventKind::kRate: return "rate";
    case EventKind::kDiurnal: return "diurnal";
    case EventKind::kKill: return "kill";
    case EventKind::kRestart: return "restart";
    case EventKind::kLeave: return "leave";
    case EventKind::kJoin: return "join";
    case EventKind::kChurn: return "churn";
  }
  return "?";
}

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    auto want = [&](std::size_t n, const char* usage) {
      if (tokens.size() != n) {
        fail(line_no, std::string("usage: ") + usage);
      }
    };
    if (key == "name") {
      want(2, "name LABEL");
      scenario.name = tokens[1];
    } else if (key == "seed") {
      want(2, "seed N");
      scenario.seed = parse_count(tokens[1], line_no, "bad seed");
    } else if (key == "topology") {
      want(3, "topology tree|chain|star|random SIZE");
      if (tokens[1] != "tree" && tokens[1] != "chain" && tokens[1] != "star" &&
          tokens[1] != "random") {
        fail(line_no, "unknown topology '" + tokens[1] + "'");
      }
      scenario.topology = tokens[1];
      scenario.topology_size = static_cast<std::size_t>(
          parse_count(tokens[2], line_no, "bad topology size"));
      if (scenario.topology_size == 0) {
        fail(line_no, "topology size must be > 0");
      }
    } else if (key == "option") {
      want(3, "option KEY VALUE");
      scenario.options.emplace_back(tokens[1], tokens[2]);
    } else if (key == "subscribers") {
      want(2, "subscribers N");
      scenario.subscribers = static_cast<std::size_t>(
          parse_count(tokens[1], line_no, "bad subscriber count"));
    } else if (key == "xpe") {
      want(2, "xpe EXPR");
      scenario.xpes.push_back(tokens[1]);
    } else if (key == "path") {
      want(2, "path EXPR");
      scenario.paths.push_back(tokens[1]);
    } else if (key == "zipf") {
      want(2, "zipf S");
      scenario.zipf_s = parse_double(tokens[1], line_no, "bad zipf exponent");
      if (scenario.zipf_s < 0) fail(line_no, "zipf exponent must be >= 0");
    } else if (key == "heartbeat") {
      want(4, "heartbeat INTERVAL_MS SUSPECT_MS DOWN_MS");
      scenario.heartbeat_interval_ms =
          parse_double(tokens[1], line_no, "bad heartbeat interval");
      scenario.suspect_after_ms =
          parse_double(tokens[2], line_no, "bad suspect deadline");
      scenario.down_after_ms =
          parse_double(tokens[3], line_no, "bad down deadline");
      if (scenario.heartbeat_interval_ms <= 0 ||
          scenario.suspect_after_ms <= scenario.heartbeat_interval_ms ||
          scenario.down_after_ms <= scenario.suspect_after_ms) {
        fail(line_no, "heartbeat must satisfy interval < suspect < down");
      }
    } else if (key == "warmup") {
      want(2, "warmup MS");
      scenario.warmup_ms = parse_double(tokens[1], line_no, "bad warmup");
    } else if (key == "settle") {
      want(2, "settle MS");
      scenario.settle_ms = parse_double(tokens[1], line_no, "bad settle");
    } else if (key == "timeout") {
      want(3, "timeout WARMUP_MS DRAIN_MS");
      scenario.warmup_timeout_ms =
          parse_double(tokens[1], line_no, "bad warmup timeout");
      scenario.drain_timeout_ms =
          parse_double(tokens[2], line_no, "bad drain timeout");
      if (scenario.warmup_timeout_ms <= 0 || scenario.drain_timeout_ms <= 0) {
        fail(line_no, "timeouts must be > 0");
      }
    } else if (key == "clients") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        fail(line_no, "usage: clients COUNT BROKER [LEASE_TTL_MS]");
      }
      EdgeSwarmSpec swarm;
      swarm.count = static_cast<std::size_t>(
          parse_count(tokens[1], line_no, "bad client count"));
      if (swarm.count == 0) fail(line_no, "client count must be > 0");
      swarm.broker = parse_broker_id(tokens[2], line_no);
      if (tokens.size() == 4) {
        swarm.lease_ttl_ms =
            parse_double(tokens[3], line_no, "bad lease ttl");
        if (swarm.lease_ttl_ms <= 0) fail(line_no, "lease ttl must be > 0");
      }
      scenario.edge_swarms.push_back(swarm);
    } else if (key == "at") {
      scenario.events.push_back(parse_event(tokens, line_no));
    } else {
      fail(line_no, "unknown directive '" + key + "'");
    }
  }
  if (scenario.xpes.empty()) {
    scenario.xpes = {"/a", "/a/b", "//c", "/d//e", "/a//c"};
  }
  if (scenario.paths.empty()) {
    scenario.paths = {"/a/b", "/a/b/c", "/d/x/e", "/q", "/a"};
  }
  std::stable_sort(
      scenario.events.begin(), scenario.events.end(),
      [](const ScenarioEvent& a, const ScenarioEvent& b) {
        return a.at_ms < b.at_ms;
      });
  return scenario;
}

}  // namespace xroute::scenario
