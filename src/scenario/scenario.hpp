// Scenario DSL — scripted day-in-the-life runs over the real transport.
//
// A scenario file composes the pieces the repo already has — overlay
// topologies (net/topology), broker knobs (router/broker_options),
// workload skew and timed membership events — into one declarative,
// line-oriented script the chaos runner (scenario/runner.hpp) executes
// against live TransportBroker processes, asserting delivery correctness
// against a pure matching oracle. The format follows net/fault's fault
// plans: one directive per line, '#' comments, whitespace-separated
// tokens, ParseError with a line number on anything malformed.
//
//   name flash-crowd            # report label
//   seed 7                      # workload determinism
//   topology tree 3             # tree L (2^L-1 brokers) | chain N |
//                               #   star N | random N
//   option covering on          # any apply_broker_option key
//   subscribers 8               # clients, round-robin over brokers
//   xpe /a/b                    # subscription pool (one per line)
//   path /a/b/c                 # publication pool (one per line)
//   zipf 0.9                    # path-pool skew (0 = uniform)
//   heartbeat 50 150 400        # interval / suspect / down, ms
//   warmup 200                  # ms before t=0
//   settle 400                  # quiescence wait after the last event
//   timeout 20000 30000         # warmup / drain quiescence deadline, ms
//   at 0 rate 200 until 1000    # steady publications, docs/sec
//   at 200 publish 50           # flash crowd: a burst at one instant
//   at 0 diurnal 300 2000 until 4000   # sinusoidal rate, peak/period
//   at 500 kill 2               # SIGKILL-equivalent: no goodbye
//   at 900 restart 2            # same port, incarnation+1, resync
//   at 1200 leave 1             # planned: goodbye + route handback
//   at 1500 join 7 0,2          # new broker dials brokers 0 and 2
//   at 0 churn 1 500 until 2000 # live subscribe/unsubscribe churn at a
//                               #   broker, control ops/sec
//   clients 500 0               # edge swarm: 500 leased clients through
//   clients 500 0 2000          #   an EdgeServer on broker 0 (optional
//                               #   lease TTL ms); delivery is asserted
//                               #   against the oracle like any subscriber
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xroute::scenario {

enum class EventKind {
  kPublishBurst,  ///< `count` docs at one instant
  kRate,          ///< steady `docs_per_sec` from at_ms to until_ms
  kDiurnal,       ///< sinusoidal rate, peak docs_per_sec, period_ms
  kKill,          ///< hard stop, no goodbye (peers must detect it)
  kRestart,       ///< relaunch a killed broker: same port, +1 incarnation
  kLeave,         ///< planned leave: goodbye, route handback
  kJoin,          ///< a broker id new to the overlay dials `neighbors`
  kChurn,         ///< control-plane churn: a dedicated client at `broker`
                  ///< alternates subscribe/unsubscribe at `docs_per_sec`
                  ///< control ops/sec until `until_ms`
};

const char* to_string(EventKind kind);

struct ScenarioEvent {
  double at_ms = 0.0;
  EventKind kind = EventKind::kPublishBurst;
  std::size_t count = 0;        ///< kPublishBurst
  double docs_per_sec = 0.0;    ///< kRate / kDiurnal peak
  double until_ms = 0.0;        ///< kRate / kDiurnal end
  double period_ms = 0.0;       ///< kDiurnal
  int broker = -1;              ///< membership events
  std::vector<int> neighbors;   ///< kJoin
};

/// One `clients` directive: an edge swarm of `count` leased client
/// sessions attached to an EdgeServer hosted beside `broker`. The runner
/// folds each edge client into the same delivery oracle as the direct
/// subscribers.
struct EdgeSwarmSpec {
  int broker = 0;
  std::size_t count = 0;
  /// 0 = runner default (derived from the scenario's heartbeat cadence).
  double lease_ttl_ms = 0.0;
};

struct Scenario {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  std::string topology = "tree";
  /// Levels for `tree`, broker count otherwise.
  std::size_t topology_size = 2;
  /// Broker knobs, applied through apply_broker_option. Advertisements
  /// default OFF so the runner's oracle is pure XPE-vs-path matching.
  std::vector<std::pair<std::string, std::string>> options;
  std::size_t subscribers = 4;
  /// Subscription / publication pools; defaults cover the paper's
  /// running-example shapes when a script names none.
  std::vector<std::string> xpes;
  std::vector<std::string> paths;
  /// Zipf exponent over the path pool (0 = uniform, rank 0 hottest).
  double zipf_s = 0.0;
  /// Failure-detector knobs for every broker in the run. Tight defaults:
  /// scenarios live milliseconds, not the transport's multi-second
  /// production defaults.
  double heartbeat_interval_ms = 50.0;
  double suspect_after_ms = 150.0;
  double down_after_ms = 400.0;
  double warmup_ms = 200.0;
  double settle_ms = 400.0;
  /// Quiescence deadlines (previously hard-coded in the runner): how long
  /// the runner waits for the overlay to go quiet after warmup and after
  /// the final drain before declaring the run stuck.
  double warmup_timeout_ms = 20000.0;
  double drain_timeout_ms = 30000.0;
  /// Edge swarms (`clients` directives), in file order.
  std::vector<EdgeSwarmSpec> edge_swarms;
  /// Sorted by at_ms (stable, so same-instant events keep file order).
  std::vector<ScenarioEvent> events;
};

/// Parses a scenario script. Throws xroute::ParseError with a line number
/// on malformed input. Empty xpe/path pools get the default sets.
Scenario parse_scenario(const std::string& text);

}  // namespace xroute::scenario
