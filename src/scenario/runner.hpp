// Chaos runner — executes a parsed Scenario against live TransportBroker
// processes over loopback TCP, injecting the scripted membership events
// (kill / restart / leave / join) into real sockets and asserting
// delivery correctness against a pure matching oracle.
//
// Correctness model. The publication schedule is deterministic
// (scenario/workload.hpp), so every document's matching subscriber set is
// known up front. Documents are classified by when they were published:
//
//   * assured      — published while every overlay broker was up and the
//                    last membership disruption had converged (confirmed
//                    by an end-to-end probe). Every matching subscriber
//                    MUST deliver these; a miss fails the run.
//   * best-effort  — published inside a disruption window (from a
//                    kill/leave until the overlay re-converges, plus a
//                    small in-flight margin before the event). Losses are
//                    counted and reported, not failed: that window is
//                    exactly what the scenario exists to measure.
//
// Two assertions hold unconditionally, chaos or not: no subscriber
// receives a document its subscription does not match, and no subscriber
// receives any document twice.
//
// Convergence after each membership event is measured with probe
// documents on a reserved id range: the event's convergence time is the
// probe round-trip from event injection until every live subscriber holds
// the probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace xroute::scenario {

struct MembershipRecord {
  double at_ms = 0.0;
  std::string kind;
  int broker = -1;
  /// Event injection -> probe convergence, ms (< 0: never converged).
  double convergence_ms = -1.0;
  /// SyncState bytes pulled by the (re)joining broker, when applicable.
  std::uint64_t resync_bytes = 0;
};

struct ScenarioReport {
  std::string name;
  bool ok = true;
  std::vector<std::string> failures;
  double duration_ms = 0.0;

  std::size_t docs_published = 0;
  std::size_t docs_assured = 0;
  std::size_t docs_best_effort = 0;
  /// Best-effort (doc, subscriber) deliveries that did not happen.
  std::size_t best_effort_losses = 0;
  std::size_t duplicates = 0;
  /// Total time the overlay spent inside disruption windows.
  double loss_window_ms = 0.0;

  // -- Transport counters summed over every broker life in the run --------
  std::uint64_t resync_bytes = 0;
  std::uint64_t peer_down_drops = 0;
  std::uint64_t spooled_frames = 0;
  std::uint64_t heartbeat_downs = 0;
  std::uint64_t suspect_events = 0;
  std::uint64_t handshake_timeouts = 0;

  std::vector<MembershipRecord> membership;
};

/// Runs one scenario end to end. Throws xroute::ParseError on scripts
/// that are structurally unrunnable (unknown broker ids, restart without
/// kill); runtime correctness problems land in the report's failures.
ScenarioReport run_scenario(const Scenario& scenario);

/// BENCH_scenarios.json: {"scenarios": [...]} with one object per report.
std::string report_json(const std::vector<ScenarioReport>& reports);

}  // namespace xroute::scenario
