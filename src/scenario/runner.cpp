#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "edge/edge_server.hpp"
#include "match/pub_match.hpp"
#include "net/topology.hpp"
#include "router/broker_options.hpp"
#include "scenario/workload.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "util/error.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute::scenario {

namespace {

using transport::TransportBroker;
using transport::TransportClient;

/// Probe documents live on their own id range so delivery accounting can
/// separate them from workload documents.
constexpr std::uint64_t kProbeBase = std::uint64_t{1} << 40;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Topology build_topology(const Scenario& scenario) {
  Rng rng(scenario.seed ^ 0x746f706fULL);  // independent of the workload
  if (scenario.topology == "tree") {
    return complete_binary_tree(scenario.topology_size);
  }
  if (scenario.topology == "chain") return chain(scenario.topology_size);
  if (scenario.topology == "star") {
    if (scenario.topology_size < 2) {
      throw ParseError("scenario: star topology needs at least 2 brokers");
    }
    return star(scenario.topology_size - 1);
  }
  return random_connected(scenario.topology_size,
                          scenario.topology_size / 4, rng);
}

/// One broker slot. The TransportBroker object survives its own stop()
/// (a scripted kill) so its counters can be harvested before a restart
/// replaces it.
struct Node {
  std::unique_ptr<TransportBroker> broker;
  std::uint16_t port = 0;
  std::uint32_t incarnation = 0;
  bool up = false;
  std::vector<int> neighbors;
};

struct Subscriber {
  std::unique_ptr<TransportClient> client;
  int broker = -1;
  /// True when the client dials an EdgeServer instead of the broker
  /// itself; the delivery oracle is identical either way.
  bool via_edge = false;
  std::string xpe_text;
  Xpe xpe;
  /// Scenario time the subscriber's broker left for good (leave without
  /// restart); documents after this are not expected at this subscriber.
  double detached_at_ms = std::numeric_limits<double>::infinity();
};

struct DocRecord {
  std::uint64_t id = 0;
  std::size_t path_index = 0;
  double at_ms = 0.0;
  bool assured = true;
};

struct TimelineItem {
  enum Kind { kDoc, kEvent, kChurnOp };
  double at_ms = 0.0;
  Kind kind = kDoc;
  std::size_t index = 0;  ///< into docs, scenario.events or churn ops
};

/// One control-plane op of a scripted churn stream: churner `churner`
/// (un)subscribes `xpe_index` of the scenario pool. Expanded from kChurn
/// events before the run so the timeline merge stays one sorted pass.
struct ChurnOp {
  std::size_t churner = 0;
  std::size_t xpe_index = 0;
  bool subscribe = true;
};

/// A dedicated client driving live subscribe/unsubscribe against one
/// broker. Deliberately NOT a Subscriber: the delivery oracle must hold
/// for the stable subscribers *while* these mutate routing state, so
/// churners stay out of verify()'s bookkeeping entirely.
struct Churner {
  std::unique_ptr<TransportClient> client;
  int broker = -1;
};

class Runner {
 public:
  explicit Runner(const Scenario& scenario) : scenario_(scenario) {}

  ScenarioReport run();

 private:
  void build_config();
  TransportBroker::Options broker_options(int id, std::uint16_t port,
                                          std::uint32_t incarnation) const;
  void start_overlay();
  void attach_edge_servers();
  void attach_clients();
  void fail(const std::string& what);
  void harvest(const TransportBroker& broker);

  TransportClient::Options client_options(int id) const;
  bool wait_quiescent(double settle_ms, double timeout_ms);
  /// Publishes a probe and blocks until every attached subscriber on an
  /// up broker delivers it. Returns the round-trip in ms, -1 on timeout.
  double probe_convergence(double timeout_ms);
  bool subscriber_live(const Subscriber& sub) const;
  void resubscribe(Subscriber& sub);

  void open_window();
  void close_window();

  void run_event(const ScenarioEvent& event);
  void do_kill(const ScenarioEvent& event);
  void do_restart(const ScenarioEvent& event);
  void do_leave(const ScenarioEvent& event);
  void do_join(const ScenarioEvent& event);

  void publish_doc(const ScheduledDoc& doc);
  void attach_churners();
  void run_churn_op(const ChurnOp& op);
  void verify();

  const Scenario& scenario_;
  ScenarioReport report_;
  Broker::Config config_;
  Topology topology_;
  std::map<int, Node> nodes_;
  /// Edge session layers, one per broker named by a `clients` directive.
  std::map<int, std::unique_ptr<edge::EdgeServer>> edge_hosts_;
  std::vector<Subscriber> subscribers_;
  std::vector<Churner> churners_;
  std::vector<ChurnOp> churn_ops_;
  std::vector<double> churn_op_times_;
  std::unique_ptr<TransportClient> publisher_;
  int publisher_broker_ = 0;
  std::vector<Path> paths_;
  std::vector<ScheduledDoc> schedule_;
  std::vector<DocRecord> docs_;
  std::uint64_t next_doc_id_ = 1;
  std::uint64_t next_probe_id_ = kProbeBase;
  Clock::time_point t0_;

  /// Disruption window bookkeeping: while any disruption is unresolved,
  /// published documents are best-effort. Disruptions overlap (a second
  /// broker can die before the first recovers), so this is a depth count
  /// — the window closes only when the LAST open disruption resolves.
  /// `window_since_` is scenario time the depth left zero.
  int window_depth_ = 0;
  double window_since_ = 0.0;
};

void Runner::fail(const std::string& what) {
  report_.ok = false;
  report_.failures.push_back(what);
}

void Runner::harvest(const TransportBroker& broker) {
  report_.resync_bytes += broker.resync_bytes_in();
  report_.peer_down_drops += broker.peer_down_drops();
  report_.spooled_frames += broker.spooled_frames();
  report_.heartbeat_downs += broker.heartbeat_downs();
  report_.suspect_events += broker.suspect_events();
  report_.handshake_timeouts += broker.handshake_timeouts();
}

void Runner::build_config() {
  // Advertisements off by default: the oracle is then pure XPE-vs-path
  // matching, independent of advertisement propagation timing. Scripts
  // can still switch them on; delivery assertions stay valid because the
  // runner waits for quiescence before t=0.
  config_.use_advertisements = false;
  for (const auto& [key, value] : scenario_.options) {
    if (std::string err = apply_broker_option(config_, key, value);
        !err.empty()) {
      throw ParseError("scenario option " + key + ": " + err);
    }
  }
  if (std::string err = config_.validate(); !err.empty()) {
    throw ParseError("scenario broker config: " + err);
  }
}

TransportBroker::Options Runner::broker_options(
    int id, std::uint16_t port, std::uint32_t incarnation) const {
  TransportBroker::Options opts;
  opts.id = id;
  opts.config = config_;
  opts.listen_port = port;
  opts.incarnation = incarnation;
  opts.handshake_timeout_ms = 2000.0;
  opts.heartbeat.enabled = true;
  opts.heartbeat.interval_ms = scenario_.heartbeat_interval_ms;
  opts.heartbeat.suspect_after_ms = scenario_.suspect_after_ms;
  opts.heartbeat.down_after_ms = scenario_.down_after_ms;
  // Scenario lifetimes are milliseconds; redial fast so a restarted
  // broker's lower-id neighbours come back within the measured window.
  opts.dial_backoff = BackoffPolicy{25.0, 2.0, 200.0, -1};
  return opts;
}

TransportClient::Options Runner::client_options(int id) const {
  TransportClient::Options opts;
  opts.id = id;
  // Clients must beacon at least as fast as the brokers' detector looks,
  // or an idle subscriber reads as a dead peer.
  opts.heartbeat.interval_ms = scenario_.heartbeat_interval_ms;
  opts.heartbeat.suspect_after_ms = scenario_.suspect_after_ms;
  opts.heartbeat.down_after_ms = scenario_.down_after_ms;
  opts.dial_backoff = BackoffPolicy{25.0, 2.0, 200.0, -1};
  return opts;
}

void Runner::start_overlay() {
  topology_ = build_topology(scenario_);
  for (std::size_t i = 0; i < topology_.num_brokers; ++i) {
    nodes_[static_cast<int>(i)] = Node{};
  }
  for (auto [a, b] : topology_.edges) {
    nodes_[a].neighbors.push_back(b);
    nodes_[b].neighbors.push_back(a);
  }
  for (auto& [id, node] : nodes_) {
    node.broker =
        std::make_unique<TransportBroker>(broker_options(id, 0, 0));
    node.broker->start();
    node.port = node.broker->port();
    node.up = true;
  }
  // One connection per overlay link: the lower id dials the higher.
  for (auto [a, b] : topology_.edges) {
    auto [low, high] = std::minmax(a, b);
    nodes_[low].broker->connect_to("127.0.0.1", nodes_[high].port);
  }
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(15000);
  for (auto& [id, node] : nodes_) {
    while (node.broker->broker_peers() < node.neighbors.size()) {
      if (Clock::now() > deadline) {
        throw ParseError("scenario: overlay handshakes timed out");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

void Runner::attach_edge_servers() {
  if (scenario_.edge_swarms.empty()) return;
  // An edge host cannot be disrupted mid-run: its leased clients would
  // need transparent re-attachment, which the session layer deliberately
  // does not promise (leases lapse, clients re-acquire). Scripts that
  // want both must point the chaos at a different broker.
  std::set<int> disrupted;
  for (const ScenarioEvent& event : scenario_.events) {
    if (event.kind == EventKind::kKill || event.kind == EventKind::kLeave ||
        event.kind == EventKind::kRestart) {
      disrupted.insert(event.broker);
    }
  }
  for (const EdgeSwarmSpec& spec : scenario_.edge_swarms) {
    auto it = nodes_.find(spec.broker);
    if (it == nodes_.end()) {
      throw ParseError("scenario: clients directive targets unknown broker " +
                       std::to_string(spec.broker));
    }
    if (disrupted.count(spec.broker)) {
      throw ParseError(
          "scenario: broker " + std::to_string(spec.broker) +
          " hosts an edge swarm and cannot be killed/restarted/left");
    }
    if (edge_hosts_.count(spec.broker)) continue;  // one edge per broker
    edge::EdgeServer::Options opts;
    // A lapsed lease means a silently lost subscription — exactly what the
    // oracle would flag as a miss — so the default TTL sits far above the
    // client beacon period the scenario runs.
    opts.lease_ttl_ms = spec.lease_ttl_ms > 0
                            ? spec.lease_ttl_ms
                            : scenario_.heartbeat_interval_ms * 20.0;
    opts.sweep_interval_ms = std::min(100.0, opts.lease_ttl_ms / 4.0);
    // Beacon as fast as the brokers do, or the TransportClients' failure
    // detector declares the edge dead between publications.
    opts.heartbeat_interval_ms = scenario_.heartbeat_interval_ms;
    auto server = std::make_unique<edge::EdgeServer>(
        it->second.broker.get(), opts);
    server->start();
    edge_hosts_[spec.broker] = std::move(server);
  }
}

bool Runner::subscriber_live(const Subscriber& sub) const {
  if (!std::isinf(sub.detached_at_ms)) return false;
  auto it = nodes_.find(sub.broker);
  return it != nodes_.end() && it->second.up;
}

void Runner::resubscribe(Subscriber& sub) {
  sub.client->send(Message::subscribe(parse_xpe(sub.xpe_text)));
  sub.client->send(Message::subscribe(parse_xpe("/probe")));
  sub.client->sync();
}

void Runner::attach_clients() {
  Rng rng(scenario_.seed ^ 0x73756273ULL);
  std::vector<int> initial_ids;
  for (const auto& [id, node] : nodes_) initial_ids.push_back(id);
  for (std::size_t i = 0; i < scenario_.subscribers; ++i) {
    Subscriber sub;
    sub.broker = initial_ids[i % initial_ids.size()];
    sub.xpe_text = scenario_.xpes[rng.index(scenario_.xpes.size())];
    sub.xpe = parse_xpe(sub.xpe_text);
    sub.client = std::make_unique<TransportClient>(
        client_options(100 + static_cast<int>(i)));
    sub.client->start("127.0.0.1", nodes_[sub.broker].port);
    if (!sub.client->wait_connected(10000)) {
      throw ParseError("scenario: subscriber handshake timed out");
    }
    resubscribe(sub);
    subscribers_.push_back(std::move(sub));
  }
  // Edge swarms: each `clients` directive adds leased sessions through
  // the broker's EdgeServer. They fold into the same subscribers_ vector,
  // so quiescence, probes and the delivery oracle treat them identically
  // to direct subscribers — the run then proves edge delivery matches
  // broker delivery for free.
  int edge_id = 1000;
  for (const EdgeSwarmSpec& spec : scenario_.edge_swarms) {
    std::uint16_t edge_port = edge_hosts_.at(spec.broker)->port();
    for (std::size_t i = 0; i < spec.count; ++i) {
      Subscriber sub;
      sub.broker = spec.broker;
      sub.via_edge = true;
      sub.xpe_text = scenario_.xpes[rng.index(scenario_.xpes.size())];
      sub.xpe = parse_xpe(sub.xpe_text);
      sub.client = std::make_unique<TransportClient>(client_options(edge_id++));
      sub.client->start("127.0.0.1", edge_port);
      if (!sub.client->wait_connected(10000)) {
        throw ParseError("scenario: edge client handshake timed out");
      }
      resubscribe(sub);
      subscribers_.push_back(std::move(sub));
    }
  }
  // The publisher rides a broker no membership event targets, so the
  // publication stream itself survives the chaos.
  std::set<int> disrupted;
  for (const ScenarioEvent& event : scenario_.events) {
    if (event.kind == EventKind::kKill || event.kind == EventKind::kLeave ||
        event.kind == EventKind::kRestart) {
      disrupted.insert(event.broker);
    }
  }
  publisher_broker_ = initial_ids.front();
  for (int id : initial_ids) {
    if (!disrupted.count(id)) {
      publisher_broker_ = id;
      break;
    }
  }
  publisher_ = std::make_unique<TransportClient>(client_options(99));
  publisher_->start("127.0.0.1", nodes_[publisher_broker_].port);
  if (!publisher_->wait_connected(10000)) {
    throw ParseError("scenario: publisher handshake timed out");
  }
}

void Runner::attach_churners() {
  Rng rng(scenario_.seed ^ 0x6368726eULL);
  for (const ScenarioEvent& event : scenario_.events) {
    if (event.kind != EventKind::kChurn) continue;
    auto it = nodes_.find(event.broker);
    if (it == nodes_.end()) {
      throw ParseError("scenario: churn targets unknown broker " +
                       std::to_string(event.broker));
    }
    Churner churner;
    churner.broker = event.broker;
    churner.client = std::make_unique<TransportClient>(
        client_options(200 + static_cast<int>(churners_.size())));
    churner.client->start("127.0.0.1", it->second.port);
    if (!churner.client->wait_connected(10000)) {
      throw ParseError("scenario: churner handshake timed out");
    }
    // Expand the stream into discrete ops now: a deterministic
    // subscribe/unsubscribe alternation over the scenario's XPE pool, so
    // every subscription the churner adds is withdrawn one op later and
    // the run ends with no residue beyond at most one live entry.
    const std::size_t churner_index = churners_.size();
    double step = 1000.0 / event.docs_per_sec;
    std::size_t op_number = 0;
    for (double t = event.at_ms; t < event.until_ms; t += step) {
      ChurnOp op;
      op.churner = churner_index;
      op.xpe_index = (op_number / 2 + rng.index(scenario_.xpes.size())) %
                     scenario_.xpes.size();
      op.subscribe = op_number % 2 == 0;
      // Unsubscribe must target what the previous op subscribed.
      if (!op.subscribe && !churn_ops_.empty()) {
        op.xpe_index = churn_ops_.back().xpe_index;
      }
      churn_ops_.push_back(op);
      churn_op_times_.push_back(t);
      ++op_number;
    }
    churners_.push_back(std::move(churner));
  }
}

void Runner::run_churn_op(const ChurnOp& op) {
  Churner& churner = churners_[op.churner];
  auto it = nodes_.find(churner.broker);
  if (it == nodes_.end() || !it->second.up) return;  // broker died mid-churn
  const Xpe xpe = parse_xpe(scenario_.xpes[op.xpe_index]);
  churner.client->send(op.subscribe ? Message::subscribe(xpe)
                                    : Message::unsubscribe(xpe));
}

bool Runner::wait_quiescent(double settle_ms, double timeout_ms) {
  auto totals = [&] {
    std::uint64_t frames = 0;
    std::size_t queued = 0;
    for (const auto& [id, node] : nodes_) {
      if (!node.up) continue;
      frames += node.broker->frames_in();
      queued += node.broker->queued_messages();
    }
    for (const Subscriber& sub : subscribers_) {
      frames += sub.client->frames_in();
    }
    for (const Churner& churner : churners_) {
      frames += churner.client->frames_in();
    }
    if (publisher_) frames += publisher_->frames_in();
    return std::make_pair(frames, queued);
  };
  Clock::time_point deadline =
      Clock::now() +
      std::chrono::milliseconds(static_cast<long>(timeout_ms));
  auto [last, queued] = totals();
  Clock::time_point stable_since = Clock::now();
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto [frames, q] = totals();
    if (frames != last || q != 0) {
      last = frames;
      stable_since = Clock::now();
      continue;
    }
    if (std::chrono::duration<double, std::milli>(Clock::now() -
                                                  stable_since)
            .count() >= settle_ms) {
      return true;
    }
  }
  return false;
}

double Runner::probe_convergence(double timeout_ms) {
  std::vector<Subscriber*> targets;
  for (Subscriber& sub : subscribers_) {
    if (subscriber_live(sub)) targets.push_back(&sub);
  }
  if (targets.empty()) return 0.0;
  std::uint64_t probe_id = next_probe_id_++;
  Clock::time_point start = Clock::now();
  Clock::time_point deadline =
      start + std::chrono::milliseconds(static_cast<long>(timeout_ms));
  PublishMsg probe;
  probe.path = parse_path("/probe");
  probe.doc_id = probe_id;
  probe.doc_bytes = 16;
  // Re-publish on a short period: a probe sent while a link is still
  // resynchronising can fall into the disruption it is measuring, and
  // probes are idempotent at the subscriber (dedup by doc id — a repeat
  // counts as a duplicate, so each retry uses a fresh id).
  while (Clock::now() < deadline) {
    publisher_->send(Message{probe});
    Clock::time_point retry =
        Clock::now() + std::chrono::milliseconds(200);
    while (Clock::now() < retry) {
      bool all = std::all_of(
          targets.begin(), targets.end(), [&](Subscriber* sub) {
            return sub->client->delivered_docs().count(probe.doc_id) != 0;
          });
      if (all) return ms_since(start);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe.doc_id = next_probe_id_++;
  }
  return -1.0;
}

void Runner::open_window() {
  double now = ms_since(t0_);
  if (window_depth_++ == 0) window_since_ = now;
  // Documents already in flight when the disruption hit may die with it:
  // retroactively downgrade everything published within the detection
  // horizon (the failure detector's down deadline plus slack). Runs on
  // every open, not just the first — each new disruption has its own
  // in-flight tail.
  double margin = scenario_.down_after_ms + 200.0;
  for (DocRecord& doc : docs_) {
    if (doc.assured && doc.at_ms >= now - margin) {
      doc.assured = false;
    }
  }
}

void Runner::close_window() {
  if (window_depth_ == 0) return;
  if (--window_depth_ == 0) {
    report_.loss_window_ms += ms_since(t0_) - window_since_;
  }
}

void Runner::publish_doc(const ScheduledDoc& doc) {
  DocRecord record;
  record.id = next_doc_id_++;
  record.path_index = doc.path_index;
  record.at_ms = ms_since(t0_);
  record.assured = window_depth_ == 0;
  PublishMsg pub;
  pub.path = paths_[doc.path_index];
  pub.doc_id = record.id;
  pub.doc_bytes = 200;
  publisher_->send(Message{pub});
  docs_.push_back(record);
}

void Runner::do_kill(const ScenarioEvent& event) {
  auto it = nodes_.find(event.broker);
  if (it == nodes_.end() || !it->second.up) {
    throw ParseError("scenario: kill of unknown or down broker " +
                     std::to_string(event.broker));
  }
  open_window();
  // stop() without leave(): no goodbye on the wire, so peers must detect
  // the death through the failure detector — the scripted equivalent of
  // SIGKILL mid-stream.
  it->second.broker->stop();
  it->second.up = false;
  MembershipRecord record;
  record.at_ms = ms_since(t0_);
  record.kind = "kill";
  record.broker = event.broker;
  record.convergence_ms = 0.0;
  report_.membership.push_back(record);
}

void Runner::do_restart(const ScenarioEvent& event) {
  auto it = nodes_.find(event.broker);
  if (it == nodes_.end() || it->second.up || !it->second.broker) {
    throw ParseError("scenario: restart of unknown or running broker " +
                     std::to_string(event.broker));
  }
  Node& node = it->second;
  Clock::time_point start = Clock::now();
  double when = ms_since(t0_);
  harvest(*node.broker);
  node.broker.reset();
  node.incarnation += 1;
  // Same port (so surviving lower-id neighbours redial straight back in),
  // bumped incarnation (so peers accept the rejoin over any zombie state).
  node.broker = std::make_unique<TransportBroker>(
      broker_options(event.broker, node.port, node.incarnation));
  node.broker->start();
  node.up = true;
  std::vector<std::pair<std::string, std::uint16_t>> dials;
  std::size_t live_neighbors = 0;
  for (int neighbor : node.neighbors) {
    auto nit = nodes_.find(neighbor);
    if (nit == nodes_.end() || !nit->second.up) continue;
    ++live_neighbors;
    if (neighbor > event.broker) {
      dials.emplace_back("127.0.0.1", nit->second.port);
    }
  }
  node.broker->join(std::move(dials), live_neighbors);
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(15);
  while (node.broker->resyncs_completed() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (node.broker->resyncs_completed() == 0) {
    fail("restart " + std::to_string(event.broker) +
         ": resync never completed");
  }
  // Edge clients reconnect on their own (the dialer retries), but their
  // subscriptions died with the old incarnation's interfaces: re-issue.
  for (Subscriber& sub : subscribers_) {
    if (sub.broker != event.broker || !std::isinf(sub.detached_at_ms)) {
      continue;
    }
    while (!sub.client->connected() && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!sub.client->connected()) {
      fail("restart " + std::to_string(event.broker) +
           ": subscriber never reconnected");
      continue;
    }
    resubscribe(sub);
  }
  MembershipRecord record;
  record.at_ms = when;
  record.kind = "restart";
  record.broker = event.broker;
  record.resync_bytes = node.broker->resync_bytes_in();
  if (probe_convergence(15000) < 0) {
    fail("restart " + std::to_string(event.broker) +
         ": overlay never reconverged");
    record.convergence_ms = -1.0;
  } else {
    record.convergence_ms = ms_since(start);
    close_window();
  }
  report_.membership.push_back(record);
}

void Runner::do_leave(const ScenarioEvent& event) {
  auto it = nodes_.find(event.broker);
  if (it == nodes_.end() || !it->second.up) {
    throw ParseError("scenario: leave of unknown or down broker " +
                     std::to_string(event.broker));
  }
  open_window();
  Clock::time_point start = Clock::now();
  double when = ms_since(t0_);
  // Subscribers on the leaver go with it: their routes are handed back,
  // and from here on no document is expected at them.
  for (Subscriber& sub : subscribers_) {
    if (sub.broker == event.broker && std::isinf(sub.detached_at_ms)) {
      sub.detached_at_ms = when;
      sub.client->stop();
    }
  }
  bool clean = it->second.broker->leave(5000.0);
  it->second.up = false;
  MembershipRecord record;
  record.at_ms = when;
  record.kind = "leave";
  record.broker = event.broker;
  record.convergence_ms = probe_convergence(15000);
  if (record.convergence_ms < 0) {
    fail("leave " + std::to_string(event.broker) +
         ": overlay never reconverged");
  } else {
    record.convergence_ms = ms_since(start);
    close_window();
  }
  if (!clean) {
    fail("leave " + std::to_string(event.broker) +
         ": send queues missed the flush deadline");
  }
  report_.membership.push_back(record);
}

void Runner::do_join(const ScenarioEvent& event) {
  if (nodes_.count(event.broker)) {
    throw ParseError("scenario: join broker id " +
                     std::to_string(event.broker) + " already exists");
  }
  std::vector<std::pair<std::string, std::uint16_t>> dials;
  for (int neighbor : event.neighbors) {
    auto nit = nodes_.find(neighbor);
    if (nit == nodes_.end() || !nit->second.up) {
      throw ParseError("scenario: join targets unknown or down broker " +
                       std::to_string(neighbor));
    }
    dials.emplace_back("127.0.0.1", nit->second.port);
  }
  Clock::time_point start = Clock::now();
  Node node;
  node.neighbors = event.neighbors;
  node.broker = std::make_unique<TransportBroker>(
      broker_options(event.broker, 0, 0));
  node.broker->start();
  node.port = node.broker->port();
  node.up = true;
  node.broker->join(std::move(dials));
  for (int neighbor : event.neighbors) {
    nodes_[neighbor].neighbors.push_back(event.broker);
  }
  TransportBroker& broker = *node.broker;
  nodes_[event.broker] = std::move(node);
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(15);
  while (broker.resyncs_completed() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  MembershipRecord record;
  record.at_ms = ms_since(t0_);
  record.kind = "join";
  record.broker = event.broker;
  if (broker.resyncs_completed() == 0) {
    fail("join " + std::to_string(event.broker) +
         ": resync never completed");
    record.convergence_ms = -1.0;
  } else {
    record.resync_bytes = broker.resync_bytes_in();
    // A join disrupts nothing — existing routes are untouched — so the
    // probe is a sanity check, not a loss-window close.
    record.convergence_ms = probe_convergence(15000);
    if (record.convergence_ms >= 0) record.convergence_ms = ms_since(start);
  }
  report_.membership.push_back(record);
}

void Runner::run_event(const ScenarioEvent& event) {
  switch (event.kind) {
    case EventKind::kKill: do_kill(event); break;
    case EventKind::kRestart: do_restart(event); break;
    case EventKind::kLeave: do_leave(event); break;
    case EventKind::kJoin: do_join(event); break;
    case EventKind::kPublishBurst:
    case EventKind::kRate:
    case EventKind::kDiurnal:
    case EventKind::kChurn:
      break;  // expanded into the schedule / churn-op stream up front
  }
}

void Runner::verify() {
  // Membership events left open-ended (kill with no restart) keep the
  // window open to the end of the run.
  while (window_depth_ > 0) close_window();
  report_.docs_published = docs_.size();
  for (const DocRecord& doc : docs_) {
    if (doc.assured) {
      ++report_.docs_assured;
    } else {
      ++report_.docs_best_effort;
    }
  }
  for (std::size_t s = 0; s < subscribers_.size(); ++s) {
    const Subscriber& sub = subscribers_[s];
    std::set<std::uint64_t> delivered = sub.client->delivered_docs();
    report_.duplicates += sub.client->duplicate_publications();
    std::set<std::uint64_t> matching;
    // A subscriber detached by a planned leave stops being owed anything
    // published after (or just before) its departure.
    double horizon = std::isinf(sub.detached_at_ms)
                         ? std::numeric_limits<double>::infinity()
                         : sub.detached_at_ms -
                               (scenario_.down_after_ms + 200.0);
    for (const DocRecord& doc : docs_) {
      if (!matches(paths_[doc.path_index], sub.xpe)) continue;
      matching.insert(doc.id);
      if (doc.assured && doc.at_ms < horizon &&
          !delivered.count(doc.id)) {
        fail("subscriber " + std::to_string(s) + " (" + sub.xpe_text +
             ") missed assured doc " + std::to_string(doc.id));
      } else if (!doc.assured && !delivered.count(doc.id) &&
                 doc.at_ms < horizon) {
        ++report_.best_effort_losses;
      }
    }
    for (std::uint64_t id : delivered) {
      if (id >= kProbeBase) continue;  // probes match everyone
      if (!matching.count(id)) {
        fail("subscriber " + std::to_string(s) + " (" + sub.xpe_text +
             ") received non-matching doc " + std::to_string(id));
      }
    }
  }
  if (report_.duplicates != 0) {
    fail("duplicate deliveries: " + std::to_string(report_.duplicates));
  }
}

ScenarioReport Runner::run() {
  report_.name = scenario_.name;
  build_config();
  for (const std::string& text : scenario_.paths) {
    paths_.push_back(parse_path(text));
  }
  schedule_ = build_schedule(scenario_);
  start_overlay();
  attach_edge_servers();
  attach_clients();
  attach_churners();
  if (!wait_quiescent(scenario_.settle_ms, scenario_.warmup_timeout_ms)) {
    fail("warmup: overlay never went quiescent");
  }
  if (probe_convergence(10000) < 0) {
    fail("warmup: initial probe never delivered everywhere");
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      scenario_.warmup_ms));

  // Merge workload and membership into one timeline; same-instant ties
  // publish before they disrupt (the margin reclassifies those anyway).
  std::vector<TimelineItem> timeline;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    timeline.push_back(
        TimelineItem{schedule_[i].at_ms, TimelineItem::kDoc, i});
  }
  for (std::size_t i = 0; i < scenario_.events.size(); ++i) {
    const ScenarioEvent& event = scenario_.events[i];
    if (event.kind == EventKind::kKill || event.kind == EventKind::kRestart ||
        event.kind == EventKind::kLeave || event.kind == EventKind::kJoin) {
      timeline.push_back(TimelineItem{event.at_ms, TimelineItem::kEvent, i});
    }
  }
  for (std::size_t i = 0; i < churn_ops_.size(); ++i) {
    timeline.push_back(
        TimelineItem{churn_op_times_[i], TimelineItem::kChurnOp, i});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineItem& a, const TimelineItem& b) {
                     return a.at_ms < b.at_ms;
                   });

  t0_ = Clock::now();
  for (const TimelineItem& item : timeline) {
    double now = ms_since(t0_);
    if (item.at_ms > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(item.at_ms - now));
    }
    switch (item.kind) {
      case TimelineItem::kEvent:
        run_event(scenario_.events[item.index]);
        break;
      case TimelineItem::kChurnOp:
        run_churn_op(churn_ops_[item.index]);
        break;
      case TimelineItem::kDoc:
        publish_doc(schedule_[item.index]);
        break;
    }
  }
  publisher_->sync();
  if (!wait_quiescent(scenario_.settle_ms, scenario_.drain_timeout_ms)) {
    fail("drain: overlay never went quiescent after the last event");
  }
  verify();
  report_.duration_ms = ms_since(t0_);

  for (Subscriber& sub : subscribers_) sub.client->stop();
  for (Churner& churner : churners_) churner.client->stop();
  publisher_->stop();
  // Edge layers go down before their host brokers (the reverse of
  // startup); late broker deliveries after this are counted drops.
  for (auto& [id, server] : edge_hosts_) server->stop();
  edge_hosts_.clear();
  for (auto& [id, node] : nodes_) {
    if (!node.broker) continue;
    if (node.up) node.broker->stop();
    harvest(*node.broker);
    node.broker.reset();
  }
  return report_;
}

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
}

std::string number(double value) {
  std::ostringstream out;
  out << (std::isfinite(value) ? value : -1.0);
  return out.str();
}

}  // namespace

ScenarioReport run_scenario(const Scenario& scenario) {
  Runner runner(scenario);
  return runner.run();
}

std::string report_json(const std::vector<ScenarioReport>& reports) {
  std::string out = "{\n  \"scenarios\": [";
  bool first_report = true;
  for (const ScenarioReport& report : reports) {
    out += first_report ? "\n" : ",\n";
    first_report = false;
    out += "    {\"name\": \"";
    append_escaped(out, report.name);
    out += "\", \"ok\": ";
    out += report.ok ? "true" : "false";
    out += ", \"duration_ms\": " + number(report.duration_ms);
    out += ", \"docs_published\": " + std::to_string(report.docs_published);
    out += ", \"docs_assured\": " + std::to_string(report.docs_assured);
    out +=
        ", \"docs_best_effort\": " + std::to_string(report.docs_best_effort);
    out += ", \"best_effort_losses\": " +
           std::to_string(report.best_effort_losses);
    out += ", \"duplicates\": " + std::to_string(report.duplicates);
    out += ", \"loss_window_ms\": " + number(report.loss_window_ms);
    out += ", \"resync_bytes\": " + std::to_string(report.resync_bytes);
    out +=
        ", \"peer_down_drops\": " + std::to_string(report.peer_down_drops);
    out += ", \"spooled_frames\": " + std::to_string(report.spooled_frames);
    out += ", \"heartbeat_downs\": " + std::to_string(report.heartbeat_downs);
    out += ", \"suspect_events\": " + std::to_string(report.suspect_events);
    out += ", \"handshake_timeouts\": " +
           std::to_string(report.handshake_timeouts);
    out += ",\n     \"membership\": [";
    bool first_member = true;
    for (const MembershipRecord& record : report.membership) {
      out += first_member ? "" : ", ";
      first_member = false;
      out += "{\"at_ms\": " + number(record.at_ms) + ", \"kind\": \"" +
             record.kind + "\", \"broker\": " +
             std::to_string(record.broker) +
             ", \"convergence_ms\": " + number(record.convergence_ms) +
             ", \"resync_bytes\": " + std::to_string(record.resync_bytes) +
             "}";
    }
    out += "],\n     \"failures\": [";
    bool first_failure = true;
    for (const std::string& failure : report.failures) {
      out += first_failure ? "\"" : ", \"";
      first_failure = false;
      append_escaped(out, failure);
      out += "\"";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace xroute::scenario
