#!/usr/bin/env python3
"""Perf-smoke gate: compare a reduced-scale parallel_match run against the
checked-in baseline (bench/perf_baseline.json) and fail on a >25% per-pub
nanosecond regression.

Only CPU-time figures are compared (worker busy ns/pub, control ns/pub,
stage ns/pub): they are per-publication and immune to preemption, so the
gate survives noisy shared CI runners far better than wall clock would.
Absolute machine-speed differences still shift them, which is why the
tolerance is a generous 25% and the job is a smoke test, not a benchmark.

Usage: perf_smoke_check.py <BENCH_parallel.json> <perf_baseline.json>
"""

import json
import sys

TOLERANCE = 0.25


def sweep_point(doc, threads):
    for point in doc.get("sweep", []):
        if point.get("threads") == threads:
            return point
    raise SystemExit(f"no sweep point for threads={threads}")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    checks = []  # (name, current ns, baseline ns)

    cur4, base4 = sweep_point(current, 4), sweep_point(baseline, 4)
    checks.append(("worker_busy_ns_per_pub@4", cur4["worker_busy_ns_per_pub"],
                   base4["worker_busy_ns_per_pub"]))
    checks.append(("ctl_cpu_ns_per_pub@4", cur4["ctl_cpu_ns_per_pub"],
                   base4["ctl_cpu_ns_per_pub"]))

    cur_stages = current.get("stage_breakdown", {})
    base_stages = baseline.get("stage_breakdown", {})
    for key in ("parse_ns_per_pub", "intern_ns_per_pub", "match_ns_per_pub",
                "merge_ns_per_pub"):
        if key in cur_stages and key in base_stages:
            checks.append((f"stage.{key}", cur_stages[key], base_stages[key]))

    failed = False
    for name, cur, base in checks:
        if base <= 0:
            continue
        ratio = cur / base
        flag = "FAIL" if ratio > 1 + TOLERANCE else "ok"
        if flag == "FAIL":
            failed = True
        print(f"{flag:4} {name}: {cur:.1f} ns vs baseline {base:.1f} ns "
              f"({(ratio - 1) * 100:+.1f}%)")

    if failed:
        print(f"\nperf smoke FAILED: regression beyond "
              f"{TOLERANCE * 100:.0f}% tolerance")
        return 1
    print("\nperf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
