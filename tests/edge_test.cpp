// Edge session layer integration tests (DESIGN.md "Edge session layer"):
// lease lifecycle over real sockets — renewal racing expiry, the
// last-lease upstream withdrawal, idle reap vs heartbeat keepalive,
// re-acquiring a lapsed lease — plus the differential acceptance test:
// a client attached through the edge must see exactly the delivery set
// the broker-side matching oracle owes it, with zero duplicates.
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "edge/edge_server.hpp"
#include "match/pub_match.hpp"
#include "transport/broker_node.hpp"
#include "transport/client.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

using transport::TransportBroker;
using transport::TransportClient;

bool wait_until(const std::function<bool()>& done, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// One broker with an edge session layer beside it.
struct EdgeRig {
  explicit EdgeRig(edge::EdgeServer::Options edge_opts = {}) {
    TransportBroker::Options opts;
    opts.id = 0;
    opts.config.use_advertisements = false;
    broker = std::make_unique<TransportBroker>(opts);
    broker->start();
    // Beacon fast so clients running tight failure detectors stay happy
    // during second-scale tests.
    if (edge_opts.heartbeat_interval_ms == 1000.0) {
      edge_opts.heartbeat_interval_ms = 100.0;
    }
    server = std::make_unique<edge::EdgeServer>(broker.get(), edge_opts);
    port = server->start();
  }

  ~EdgeRig() {
    server->stop();
    broker->stop();
  }

  /// A client dialed at the edge port. `beating` controls whether it
  /// sends keepalive heartbeats (the lease-renewal signal).
  std::unique_ptr<TransportClient> edge_client(int id, bool beating,
                                               double interval_ms = 50.0) {
    TransportClient::Options opts;
    opts.id = id;
    opts.heartbeat.enabled = beating;
    opts.heartbeat.interval_ms = interval_ms;
    opts.dial_backoff.max_attempts = 0;  // reaped/closed stays closed
    auto client = std::make_unique<TransportClient>(std::move(opts));
    client->start("127.0.0.1", port);
    return client;
  }

  /// A publisher attached to the broker directly (not through the edge).
  std::unique_ptr<TransportClient> broker_client(int id) {
    TransportClient::Options opts;
    opts.id = id;
    auto client = std::make_unique<TransportClient>(std::move(opts));
    client->start("127.0.0.1", broker->port());
    return client;
  }

  std::unique_ptr<TransportBroker> broker;
  std::unique_ptr<edge::EdgeServer> server;
  std::uint16_t port = 0;
};

Message publication(std::uint64_t doc_id, const std::string& path) {
  PublishMsg pub;
  pub.path = parse_path(path);
  pub.doc_id = doc_id;
  pub.doc_bytes = 64;
  return Message{pub};
}

TEST(EdgeLeases, HeartbeatRenewalOutracesExpiry) {
  edge::EdgeServer::Options opts;
  opts.lease_ttl_ms = 250.0;
  opts.sweep_interval_ms = 25.0;
  EdgeRig rig(opts);
  auto client = rig.edge_client(1, /*beating=*/true);
  ASSERT_TRUE(client->wait_connected(5000));
  client->send(Message::subscribe(parse_xpe("/a")));
  ASSERT_TRUE(wait_until([&] { return client->lease_grants() >= 1; }, 5000));
  EXPECT_DOUBLE_EQ(client->last_lease_ttl_ms(), 250.0);

  // Four TTLs of heartbeats: the lease must never lapse.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  EXPECT_EQ(rig.server->leases_expired(), 0u);
  EXPECT_EQ(rig.server->upstream_unsubscribes(), 0u);

  // ... and the subscription still routes.
  auto publisher = rig.broker_client(99);
  ASSERT_TRUE(publisher->wait_connected(5000));
  publisher->send(publication(7, "/a"));
  EXPECT_TRUE(wait_until(
      [&] { return client->delivered_docs().count(7) != 0; }, 5000));
  publisher->stop();
  client->stop();
}

TEST(EdgeLeases, LastLapsedLeaseWithdrawsTheUpstreamSubscription) {
  edge::EdgeServer::Options opts;
  opts.lease_ttl_ms = 150.0;
  opts.sweep_interval_ms = 25.0;
  opts.idle_timeout_ms = 60000.0;  // isolate lease expiry from idle reap
  EdgeRig rig(opts);
  // Two silent clients, same interest: one upstream subscribe total.
  auto first = rig.edge_client(1, /*beating=*/false);
  auto second = rig.edge_client(2, /*beating=*/false);
  ASSERT_TRUE(first->wait_connected(5000));
  ASSERT_TRUE(second->wait_connected(5000));
  first->send(Message::subscribe(parse_xpe("/a")));
  second->send(Message::subscribe(parse_xpe("/a")));
  ASSERT_TRUE(wait_until([&] { return rig.server->leases_granted() >= 2; },
                         5000));
  EXPECT_EQ(rig.server->upstream_subscribes(), 1u);
  EXPECT_EQ(rig.server->distinct_interests(), 1u);

  // Nobody beats: both leases lapse, and ONLY the last drop sends the
  // single upstream unsubscribe.
  ASSERT_TRUE(wait_until([&] { return rig.server->leases_expired() >= 2; },
                         5000));
  ASSERT_TRUE(wait_until(
      [&] { return rig.server->upstream_unsubscribes() >= 1; }, 5000));
  EXPECT_EQ(rig.server->upstream_unsubscribes(), 1u);
  EXPECT_EQ(rig.server->distinct_interests(), 0u);

  // The broker no longer routes the xpe to the edge at all.
  auto publisher = rig.broker_client(99);
  ASSERT_TRUE(publisher->wait_connected(5000));
  publisher->send(publication(11, "/a"));
  publisher->sync();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(first->delivered_docs().empty());
  EXPECT_TRUE(second->delivered_docs().empty());
  publisher->stop();
  first->stop();
  second->stop();
}

TEST(EdgeLeases, ReacquiringALapsedLeaseSubscribesExactlyOnceMore) {
  edge::EdgeServer::Options opts;
  opts.lease_ttl_ms = 150.0;
  opts.sweep_interval_ms = 25.0;
  opts.idle_timeout_ms = 60000.0;
  EdgeRig rig(opts);
  auto client = rig.edge_client(1, /*beating=*/false);
  ASSERT_TRUE(client->wait_connected(5000));
  client->send(Message::subscribe(parse_xpe("/a")));
  ASSERT_TRUE(wait_until([&] { return client->lease_grants() >= 1; }, 5000));
  ASSERT_TRUE(wait_until([&] { return rig.server->leases_expired() >= 1; },
                         5000));
  ASSERT_TRUE(wait_until(
      [&] { return rig.server->upstream_unsubscribes() >= 1; }, 5000));

  // Re-subscribe after the lapse: a NEW lease, one more grant, one more
  // upstream subscribe — exactly once each, no double counting.
  client->send(Message::subscribe(parse_xpe("/a")));
  ASSERT_TRUE(wait_until([&] { return client->lease_grants() >= 2; }, 5000));
  EXPECT_EQ(client->lease_grants(), 2u);
  EXPECT_EQ(rig.server->leases_granted(), 2u);
  EXPECT_EQ(rig.server->upstream_subscribes(), 2u);
  EXPECT_EQ(rig.server->upstream_unsubscribes(), 1u);

  // The re-acquired lease routes again.
  auto publisher = rig.broker_client(99);
  ASSERT_TRUE(publisher->wait_connected(5000));
  publisher->send(publication(21, "/a"));
  EXPECT_TRUE(wait_until(
      [&] { return client->delivered_docs().count(21) != 0; }, 5000));
  EXPECT_EQ(client->duplicate_publications(), 0u);
  publisher->stop();
  client->stop();
}

TEST(EdgeSessions, IdleReapTakesTheSilentAndSparesTheBeating) {
  edge::EdgeServer::Options opts;
  opts.lease_ttl_ms = 10000.0;
  opts.sweep_interval_ms = 25.0;
  opts.idle_timeout_ms = 200.0;
  EdgeRig rig(opts);
  // Neither session holds a lease; only the heartbeat separates them.
  auto beating = rig.edge_client(1, /*beating=*/true);
  auto silent = rig.edge_client(2, /*beating=*/false);
  ASSERT_TRUE(beating->wait_connected(5000));
  ASSERT_TRUE(silent->wait_connected(5000));
  ASSERT_TRUE(wait_until([&] { return rig.server->sessions_live() == 2; },
                         5000));

  ASSERT_TRUE(wait_until([&] { return rig.server->idle_reaped() >= 1; },
                         5000));
  ASSERT_TRUE(wait_until([&] { return !silent->connected(); }, 5000));
  // Several idle windows later the beating session is still there.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_TRUE(beating->connected());
  EXPECT_EQ(rig.server->idle_reaped(), 1u);
  EXPECT_EQ(rig.server->sessions_live(), 1u);
  beating->stop();
  silent->stop();
}

TEST(EdgeSessions, ClientPublishesRideTheEdgeIntoTheBroker) {
  EdgeRig rig;
  auto subscriber = rig.broker_client(1);
  ASSERT_TRUE(subscriber->wait_connected(5000));
  subscriber->send(Message::subscribe(parse_xpe("/a")));
  subscriber->sync();
  auto edge_pub = rig.edge_client(2, /*beating=*/true);
  ASSERT_TRUE(edge_pub->wait_connected(5000));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  edge_pub->send(publication(31, "/a"));
  EXPECT_TRUE(wait_until(
      [&] { return subscriber->delivered_docs().count(31) != 0; }, 5000));
  edge_pub->stop();
  subscriber->stop();
}

TEST(EdgeSessions, MetricsExposeSessionLeaseAndSharedByteGauges) {
  EdgeRig rig;
  auto client = rig.edge_client(1, /*beating=*/true);
  ASSERT_TRUE(client->wait_connected(5000));
  client->send(Message::subscribe(parse_xpe("/a")));
  ASSERT_TRUE(wait_until([&] { return client->lease_grants() >= 1; }, 5000));
  std::string json = rig.server->metrics_json();
  EXPECT_NE(json.find("edge.sessions_live"), std::string::npos);
  EXPECT_NE(json.find("edge.leases_expired"), std::string::npos);
  EXPECT_NE(json.find("edge.reactor_sessions"), std::string::npos);
  EXPECT_NE(json.find("transport.send_shared_bytes"), std::string::npos);
  EXPECT_EQ(rig.server->sessions_live(), 1u);
  std::size_t across_reactors = 0;
  for (int r = 0; r < rig.server->reactors(); ++r) {
    across_reactors += rig.server->reactor_sessions(r);
  }
  EXPECT_EQ(across_reactors, 1u);
  client->stop();
}

// The acceptance differential: delivery sets through the edge must equal
// both the matching oracle and a direct broker client with the same
// interest, duplicate-free.
TEST(EdgeDifferential, EdgeDeliverySetsMatchTheBrokerOracle) {
  edge::EdgeServer::Options opts;
  opts.reactors = 2;
  EdgeRig rig(opts);
  const std::vector<std::string> xpes = {"/a", "/a/b", "//c", "/d//e"};
  const std::vector<std::string> paths = {"/a/b", "/a/b/c", "/d/x/e",
                                          "/q",   "/c",     "/a"};

  // Two edge clients per interest (exercising the lease dedup) and one
  // direct broker client per interest (the live oracle).
  std::vector<std::unique_ptr<TransportClient>> edge_clients;
  std::vector<std::unique_ptr<TransportClient>> direct_clients;
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    for (int twin = 0; twin < 2; ++twin) {
      auto client =
          rig.edge_client(100 + static_cast<int>(i) * 2 + twin, true);
      ASSERT_TRUE(client->wait_connected(5000));
      client->send(Message::subscribe(parse_xpe(xpes[i])));
      edge_clients.push_back(std::move(client));
    }
    auto direct = rig.broker_client(200 + static_cast<int>(i));
    ASSERT_TRUE(direct->wait_connected(5000));
    direct->send(Message::subscribe(parse_xpe(xpes[i])));
    direct->sync();
    direct_clients.push_back(std::move(direct));
  }
  ASSERT_TRUE(wait_until(
      [&] { return rig.server->leases_granted() >= 2 * xpes.size(); }, 5000));
  // One upstream subscription per distinct interest, not per client.
  EXPECT_EQ(rig.server->upstream_subscribes(), xpes.size());

  auto publisher = rig.broker_client(99);
  ASSERT_TRUE(publisher->wait_connected(5000));
  for (std::size_t d = 0; d < paths.size(); ++d) {
    publisher->send(publication(d + 1, paths[d]));
  }
  publisher->sync();

  // The oracle: doc d reaches interest i iff matches(path, xpe).
  std::vector<std::set<std::uint64_t>> expected(xpes.size());
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    Xpe xpe = parse_xpe(xpes[i]);
    for (std::size_t d = 0; d < paths.size(); ++d) {
      if (matches(parse_path(paths[d]), xpe)) expected[i].insert(d + 1);
    }
  }
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    ASSERT_TRUE(wait_until(
        [&] {
          return edge_clients[i * 2]->delivered_docs() == expected[i] &&
                 edge_clients[i * 2 + 1]->delivered_docs() == expected[i];
        },
        10000))
        << "edge clients for " << xpes[i] << " never converged on the oracle";
  }
  // Quiesce, then hold the full cross-check: edge == oracle == direct,
  // and nobody saw a frame twice.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (std::size_t i = 0; i < xpes.size(); ++i) {
    EXPECT_EQ(edge_clients[i * 2]->delivered_docs(), expected[i]);
    EXPECT_EQ(edge_clients[i * 2 + 1]->delivered_docs(), expected[i]);
    EXPECT_EQ(direct_clients[i]->delivered_docs(), expected[i]);
    EXPECT_EQ(edge_clients[i * 2]->duplicate_publications(), 0u);
    EXPECT_EQ(edge_clients[i * 2 + 1]->duplicate_publications(), 0u);
  }
  EXPECT_EQ(rig.server->slow_session_drops(), 0u);
  publisher->stop();
  for (auto& client : edge_clients) client->stop();
  for (auto& client : direct_clients) client->stop();
}

}  // namespace
}  // namespace xroute
