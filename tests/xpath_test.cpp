// Unit tests for the XPE model and parser.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xpath/parser.hpp"
#include "xpath/xpe.hpp"

namespace xroute {
namespace {

TEST(XpeParser, AbsoluteSimple) {
  Xpe x = parse_xpe("/a/b/c");
  ASSERT_EQ(x.size(), 3u);
  EXPECT_TRUE(x.anchored());
  EXPECT_FALSE(x.relative());
  EXPECT_FALSE(x.has_descendant());
  EXPECT_FALSE(x.has_wildcard());
  EXPECT_TRUE(x.is_absolute_simple());
  EXPECT_EQ(x.to_string(), "/a/b/c");
}

TEST(XpeParser, Wildcards) {
  Xpe x = parse_xpe("/*/c/*/b/c");
  ASSERT_EQ(x.size(), 5u);
  EXPECT_TRUE(x.step(0).is_wildcard());
  EXPECT_TRUE(x.has_wildcard());
  EXPECT_EQ(x.to_string(), "/*/c/*/b/c");
}

TEST(XpeParser, Relative) {
  Xpe x = parse_xpe("d/a");
  ASSERT_EQ(x.size(), 2u);
  EXPECT_TRUE(x.relative());
  EXPECT_FALSE(x.anchored());
  // Relative form is semantically descendant-led.
  EXPECT_EQ(x.step(0).axis, Axis::kDescendant);
  EXPECT_EQ(x.to_string(), "d/a");
}

TEST(XpeParser, LeadingDescendant) {
  Xpe x = parse_xpe("//a/b");
  EXPECT_FALSE(x.relative());
  EXPECT_FALSE(x.anchored());
  EXPECT_EQ(x.step(0).axis, Axis::kDescendant);
  EXPECT_EQ(x.to_string(), "//a/b");
}

TEST(XpeParser, MixedOperators) {
  Xpe x = parse_xpe("*/a//d/*/c//b");
  ASSERT_EQ(x.size(), 6u);
  EXPECT_TRUE(x.relative());
  EXPECT_EQ(x.step(2).axis, Axis::kDescendant);
  EXPECT_EQ(x.step(3).axis, Axis::kChild);
  EXPECT_EQ(x.step(5).axis, Axis::kDescendant);
  EXPECT_EQ(x.to_string(), "*/a//d/*/c//b");
}

TEST(XpeParser, RelativeEqualsDescendantLed) {
  // "a/b" and "//a/b" match at any position: semantically equal.
  EXPECT_EQ(parse_xpe("a/b"), parse_xpe("//a/b"));
  EXPECT_NE(parse_xpe("a/b"), parse_xpe("/a/b"));
}

TEST(XpeParser, RoundTrip) {
  for (const char* text :
       {"/a", "/a/b/c", "/*/b", "a//b", "//x", "*", "/a/*/c//d/*",
        "item/price", "/root//leaf"}) {
    EXPECT_EQ(parse_xpe(text).to_string(), text) << text;
  }
}

TEST(XpeParser, Errors) {
  EXPECT_THROW(parse_xpe(""), ParseError);
  EXPECT_THROW(parse_xpe("/"), ParseError);
  EXPECT_THROW(parse_xpe("/a/"), ParseError);
  EXPECT_THROW(parse_xpe("/a//"), ParseError);
  EXPECT_THROW(parse_xpe("//"), ParseError);
  EXPECT_THROW(parse_xpe("/a/$"), ParseError);
  EXPECT_THROW(parse_xpe("/a b"), ParseError);
  EXPECT_THROW(parse_xpe("/3a"), ParseError);
}

TEST(XpeParser, NamesWithPunctuation) {
  Xpe x = parse_xpe("/doc-id/date.issue/a_b");
  EXPECT_EQ(x.step(0).name, "doc-id");
  EXPECT_EQ(x.step(1).name, "date.issue");
  EXPECT_EQ(x.step(2).name, "a_b");
}

TEST(XpeSegments, Splitting) {
  Xpe x = parse_xpe("/a/b//c/d//e");
  auto segs = x.segments();
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_TRUE(segs[0].anchored);
  EXPECT_EQ(segs[0].first, 0u);
  EXPECT_EQ(segs[0].length, 2u);
  EXPECT_FALSE(segs[1].anchored);
  EXPECT_EQ(segs[1].first, 2u);
  EXPECT_EQ(segs[1].length, 2u);
  EXPECT_EQ(segs[2].first, 4u);
  EXPECT_EQ(segs[2].length, 1u);
}

TEST(XpeSegments, RelativeFirstSegmentFloats) {
  Xpe x = parse_xpe("a/b/c");
  auto segs = x.segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_FALSE(segs[0].anchored);
}

TEST(XpeHashTest, EqualXpesHashEqual) {
  XpeHash h;
  EXPECT_EQ(h(parse_xpe("a/b")), h(parse_xpe("//a/b")));
  EXPECT_NE(h(parse_xpe("/a/b")), h(parse_xpe("/a/c")));
}

}  // namespace
}  // namespace xroute
