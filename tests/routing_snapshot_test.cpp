// Lifetime and retirement tests for the RCU snapshot machinery
// (router/routing_snapshot.hpp): a pinned snapshot must outlive its
// replacement (no use-after-free under ASan), publish/current must hand
// readers fully built snapshots, retirement must actually free the
// chain (the live gauge stays bounded under churn), and the builder's
// structural sharing must recompile only dirty buckets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "router/broker.hpp"
#include "util/symbols.hpp"
#include "router/match_scheduler.hpp"
#include "router/routing_snapshot.hpp"
#include "router/routing_tables.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

struct DiscardSink : ForwardSink {
  void on_forward(IfaceId, const Message&) override {}
  void on_local_delivery(IfaceId, const Message&) override {}
  void on_suppressed(IfaceId, const Message&) override {}
};

/// First-occurrence deduplicated symbol list, as the scheduler stages it.
std::vector<std::uint32_t> distinct_symbols(const InternedPath& ip) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t sym : ip.symbols) {
    if (sym == SymbolTable::kNoSymbol) continue;
    if (std::find(out.begin(), out.end(), sym) == out.end()) {
      out.push_back(sym);
    }
  }
  return out;
}

std::shared_ptr<const RoutingSnapshot> rebuild(
    SnapshotBuilder& builder, SnapshotStore& store, Prt& prt,
    const IfaceSet& clients,
    const std::map<IfaceId, std::vector<Xpe>>& client_subs,
    bool edge_dirty = false) {
  auto next = builder.build(prt, clients, client_subs, edge_dirty,
                            store.current(), store.gauge());
  prt.clear_snapshot_dirty();
  store.publish(next);
  return next;
}

TEST(SnapshotStore, StartsWithAnEmptyVersionZeroSnapshot) {
  SnapshotStore store;
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.current()->bucket_count(), 0u);
  EXPECT_EQ(store.live(), 1);
}

TEST(SnapshotStore, PinKeepsARetiredSnapshotAlive) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients;
  std::map<IfaceId, std::vector<Xpe>> client_subs;

  prt.insert(parse_xpe("/news/article"), IfaceId{1});
  rebuild(builder, store, prt, clients, client_subs);
  EXPECT_EQ(store.version(), 1u);
  // v0 was dropped when v1 replaced it.
  EXPECT_EQ(store.live(), 1);

  // Pin v1 the way a match epoch does, then retire it twice over.
  std::shared_ptr<const RoutingSnapshot> pinned = store.current();
  prt.insert(parse_xpe("/news/sports"), IfaceId{2});
  rebuild(builder, store, prt, clients, client_subs);
  prt.insert(parse_xpe("/news/weather"), IfaceId{3});
  rebuild(builder, store, prt, clients, client_subs);

  EXPECT_EQ(store.version(), 3u);
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(store.live(), 2);  // current + pinned; v2 already freed

  // The retired snapshot is still fully readable (ASan would flag a
  // use-after-free here if retirement were eager).
  Path path = parse_path("/news/article");
  InternedPath ip(path);
  std::vector<std::uint32_t> symbols = distinct_symbols(ip);
  Prt::ShardMatch match;
  pinned->match_shard(ip.view(), symbols, 0, 1, &match);
  ASSERT_EQ(match.hops.size(), 1u);
  EXPECT_EQ(match.hops[0], IfaceId{1});

  pinned.reset();
  EXPECT_EQ(store.live(), 1);
}

TEST(SnapshotStore, RetirementFreesTheChainUnderChurn) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients;
  std::map<IfaceId, std::vector<Xpe>> client_subs;

  for (int i = 0; i < 100; ++i) {
    Xpe xpe = parse_xpe("/news/item" + std::to_string(i));
    prt.insert(xpe, IfaceId{1});
    rebuild(builder, store, prt, clients, client_subs);
    // No pins: at most the current snapshot and the one being replaced
    // may coexist for an instant; a growing chain would be a leak.
    ASSERT_LE(store.live(), 2) << "after publish " << i;
  }
  EXPECT_EQ(store.version(), 100u);
  EXPECT_EQ(store.live(), 1);
}

TEST(SnapshotBuilder, RecompilesOnlyDirtyBuckets) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients;
  std::map<IfaceId, std::vector<Xpe>> client_subs;

  // Distinct roots => distinct discriminating-symbol buckets.
  prt.insert(parse_xpe("/news/article"), IfaceId{1});
  prt.insert(parse_xpe("/sports/score"), IfaceId{1});
  prt.insert(parse_xpe("/weather/report"), IfaceId{1});
  rebuild(builder, store, prt, clients, client_subs);
  const std::uint64_t rebuilt_initial = builder.buckets_rebuilt();
  ASSERT_GE(store.current()->bucket_count(), 3u);

  // Touch one bucket; the other buckets must be shared, not recompiled.
  prt.insert(parse_xpe("/news/article/body"), IfaceId{2});
  std::shared_ptr<const RoutingSnapshot> prev = store.current();
  rebuild(builder, store, prt, clients, client_subs);
  EXPECT_EQ(builder.buckets_rebuilt() - rebuilt_initial, 1u);
  EXPECT_GE(builder.buckets_shared(), 2u);
  EXPECT_EQ(store.current()->bucket_count(), prev->bucket_count());

  // A clean rebuild request (nothing dirty, edge clean) still produces a
  // well-formed next version sharing every bucket.
  const std::uint64_t rebuilt_before = builder.buckets_rebuilt();
  rebuild(builder, store, prt, clients, client_subs);
  EXPECT_EQ(builder.buckets_rebuilt(), rebuilt_before);
}

// A control window that nets out — a subscribe whose unsubscribe landed
// before the next build — recompiles every dirty bucket back to its
// previous content. build() must return the previous snapshot itself
// (callers skip the publish on pointer equality), so workers keep their
// warm bucket map instead of faulting in a byte-identical copy.
TEST(SnapshotBuilder, NettedOutChurnElidesThePublish) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients;
  std::map<IfaceId, std::vector<Xpe>> client_subs;

  prt.insert(parse_xpe("/news/article"), IfaceId{1});
  prt.insert(parse_xpe("/sports/score"), IfaceId{1});
  rebuild(builder, store, prt, clients, client_subs);
  std::shared_ptr<const RoutingSnapshot> prev = store.current();

  // Net-zero churn since the last build, including a capture: the
  // newcomer covers /news/article, moves it below itself, and the
  // removal splices it back into its original position.
  prt.insert(parse_xpe("/news"), IfaceId{2});
  prt.remove(parse_xpe("/news"), IfaceId{2});
  ASSERT_TRUE(prt.snapshot_dirty());
  const std::uint64_t elided_before = builder.builds_elided();
  auto next = builder.build(prt, clients, client_subs, /*edge_dirty=*/false,
                            store.current(), store.gauge());
  prt.clear_snapshot_dirty();
  EXPECT_EQ(next, prev);
  EXPECT_EQ(builder.builds_elided(), elided_before + 1);

  // A change that does not net out still publishes a fresh version.
  prt.insert(parse_xpe("/weather/report"), IfaceId{2});
  next = builder.build(prt, clients, client_subs, /*edge_dirty=*/false,
                       store.current(), store.gauge());
  prt.clear_snapshot_dirty();
  EXPECT_NE(next, prev);
  EXPECT_EQ(next->version(), prev->version() + 1);
  EXPECT_EQ(builder.builds_elided(), elided_before + 1);
}

TEST(SnapshotBuilder, EdgeStateIsCopiedOnlyWhenDirty) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients{IfaceId{10}};
  std::map<IfaceId, std::vector<Xpe>> client_subs;
  client_subs[IfaceId{10}].push_back(parse_xpe("/news/article"));

  rebuild(builder, store, prt, clients, client_subs, /*edge_dirty=*/true);
  EXPECT_TRUE(store.current()->is_client(IfaceId{10}));
  EXPECT_FALSE(store.current()->is_client(IfaceId{11}));
  ASSERT_NE(store.current()->client_subscriptions(IfaceId{10}), nullptr);
  EXPECT_EQ(store.current()->client_subscriptions(IfaceId{11}), nullptr);

  // The snapshot owns its own view: mutating the live maps afterwards
  // must not leak through.
  std::shared_ptr<const RoutingSnapshot> pinned = store.current();
  clients.insert(IfaceId{11});
  client_subs[IfaceId{10}].push_back(parse_xpe("/news/sports"));
  EXPECT_FALSE(pinned->is_client(IfaceId{11}));
  EXPECT_EQ(pinned->client_subscriptions(IfaceId{10})->size(), 1u);
}

TEST(MatchScheduler, BatchPinHoldsTheSnapshotUntilFinish) {
  SnapshotStore store;
  SnapshotBuilder builder;
  Prt prt(/*covering=*/true);
  IfaceSet clients;
  std::map<IfaceId, std::vector<Xpe>> client_subs;

  prt.insert(parse_xpe("/news/article"), IfaceId{1});
  rebuild(builder, store, prt, clients, client_subs);

  MatchScheduler scheduler(MatchScheduler::Options{2, 4});
  EXPECT_EQ(scheduler.pinned_version(), 0u);

  Path path = parse_path("/news/article");
  std::vector<const Path*> paths{&path};
  scheduler.begin_batch(paths, store.current());
  EXPECT_EQ(scheduler.pinned_version(), 1u);

  // Publish a replacement and drop every other reference to v1 while the
  // epoch is still pinned to it: the pin alone keeps it alive.
  prt.insert(parse_xpe("/news/sports"), IfaceId{2});
  rebuild(builder, store, prt, clients, client_subs);
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.live(), 2);

  std::vector<MatchScheduler::MatchResult> results;
  scheduler.finish_batch(&results);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].hops.size(), 1u);
  // Matched against the pinned v1, not the newer v2.
  EXPECT_EQ(results[0].hops[0], IfaceId{1});
  EXPECT_EQ(scheduler.pinned_version(), 0u);
  EXPECT_EQ(store.live(), 1);
}

TEST(MatchScheduler, DoubleBeginBatchThrows) {
  SnapshotStore store;
  MatchScheduler scheduler(MatchScheduler::Options{2, 4});
  Path path = parse_path("/news/article");
  std::vector<const Path*> paths{&path};
  scheduler.begin_batch(paths, store.current());
  EXPECT_THROW(scheduler.begin_batch(paths, store.current()),
               std::logic_error);
  std::vector<MatchScheduler::MatchResult> results;
  scheduler.finish_batch(&results);
  EXPECT_THROW(scheduler.finish_batch(&results), std::logic_error);
}

TEST(RoutingSnapshotBroker, BrokerPublishesOnControlOpsOnly) {
  Broker::Config config;
  config.use_advertisements = false;
  config.match_threads = 2;
  Broker broker(0, config);
  broker.add_neighbor(IfaceId{1});
  broker.add_client(IfaceId{10});

  DiscardSink sink;
  const std::uint64_t v0 = broker.snapshot_store().version();
  broker.handle(IfaceId{10}, Message::subscribe(parse_xpe("/news/article")),
                sink);
  const std::uint64_t v1 = broker.snapshot_store().version();
  EXPECT_GT(v1, v0);

  // Publications alone never publish a new snapshot.
  PublishMsg pub;
  pub.path = parse_path("/news/article");
  pub.doc_id = 1;
  broker.handle(IfaceId{1}, Message{pub}, sink);
  EXPECT_EQ(broker.snapshot_store().version(), v1);
  EXPECT_LE(broker.snapshot_store().live(), 2);
}

}  // namespace
}  // namespace xroute
