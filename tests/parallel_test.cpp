// Differential tests for the parallel matching engine: a broker at any
// match_threads count must be observationally identical to the sequential
// broker — not just the same delivery sets, but the exact same forward
// sequence, byte for byte (every outgoing message is wire-encoded and the
// streams compared). The workloads are seeded random mixes of control and
// data messages, run through a small fault matrix (duplicated and
// reordered inbound sequences) so determinism holds under the conditions
// the overlay actually produces, and through handle_batch() so the batched
// epoch path is held to the same contract as per-message handling.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dtd/universe.hpp"
#include "router/broker.hpp"
#include "router/match_scheduler.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

constexpr IfaceId kNeighbors[] = {IfaceId{1}, IfaceId{2}, IfaceId{3}};
constexpr IfaceId kClients[] = {IfaceId{10}, IfaceId{11}};

/// Serialises every sink event into one byte stream: a tag byte per event
/// kind, the interface id, and the wire encoding of the message. Equal
/// streams mean equal forwards, equal local deliveries *and* equal
/// suppression decisions, in the same order.
struct RecordingSink : ForwardSink {
  std::vector<std::uint8_t> bytes;

  void record(std::uint8_t tag, IfaceId iface, const Message& msg) {
    bytes.push_back(tag);
    std::uint32_t id = static_cast<std::uint32_t>(iface.value());
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(id >> shift));
    }
    std::vector<std::uint8_t> frame = wire::encode_frame(msg);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  void on_forward(IfaceId iface, const Message& msg) override {
    record(0x01, iface, msg);
  }
  void on_local_delivery(IfaceId client, const Message& msg) override {
    record(0x02, client, msg);
  }
  void on_suppressed(IfaceId client, const Message& msg) override {
    record(0x03, client, msg);
  }
};

using Workload = std::vector<std::pair<IfaceId, Message>>;

/// A seeded random message mix: subscriptions from a DTD covering set
/// (clients and neighbours), publications sampled from the same DTD's
/// path universe (so publications actually hit subscriptions), and
/// unsubscriptions of earlier subscriptions.
Workload make_workload(std::uint64_t seed, std::size_t subscriptions,
                       std::size_t publications) {
  Dtd dtd = corpus_dtd("news");
  CoverSetOptions set_opts;
  set_opts.count = subscriptions;
  set_opts.target_rate = 0.6;
  set_opts.seed = seed;
  CoverSet set = build_covering_set(dtd, set_opts);

  Rng rng(seed * 7919 + 1);
  PathUniverse universe(dtd);
  // Half the publications replay a subscription's own concrete backing
  // path (guaranteed matches, so deliveries and edge-exactness checks are
  // actually exercised), half are uniform universe paths (misses and
  // partial matches).
  std::vector<Path> backing;
  for (const Xpe& xpe : set.xpes) {
    if (!xpe.has_wildcard() && !xpe.has_descendant() && !xpe.relative() &&
        !xpe.has_predicates()) {
      backing.push_back(parse_path(xpe.to_string()));
    }
  }
  std::vector<Path> paths;
  for (std::size_t d = 0; d < publications; ++d) {
    if (!backing.empty() && rng.chance(0.5)) {
      paths.push_back(rng.pick(backing));
    } else {
      paths.push_back(rng.pick(universe.paths()));
    }
  }

  Workload workload;
  std::uint64_t doc_id = 1;
  std::size_t next_sub = 0, next_path = 0;
  std::vector<std::pair<IfaceId, Xpe>> active;
  while (next_sub < set.xpes.size() || next_path < paths.size()) {
    double roll = rng.uniform();
    if (roll < 0.35 && next_sub < set.xpes.size()) {
      IfaceId from = rng.chance(0.5) ? kClients[rng.index(2)]
                                     : kNeighbors[rng.index(3)];
      workload.emplace_back(from, Message::subscribe(set.xpes[next_sub]));
      active.emplace_back(from, set.xpes[next_sub]);
      ++next_sub;
    } else if (roll < 0.40 && !active.empty()) {
      auto [from, xpe] = active[rng.index(active.size())];
      workload.emplace_back(from, Message::unsubscribe(xpe));
    } else if (next_path < paths.size()) {
      PublishMsg msg;
      msg.path = paths[next_path++];
      msg.doc_id = doc_id++;
      workload.emplace_back(kNeighbors[rng.index(3)], Message{msg});
    }
  }
  return workload;
}

/// Fault-matrix perturbations of the inbound sequence: what links actually
/// do to a message stream (duplicate deliveries, reordering windows). Both
/// brokers see the *same* perturbed sequence; the differential says the
/// thread count cannot change how it is handled.
enum class Fault { kClean, kDuplicate, kReorder, kDuplicateReorder };

Workload perturb(const Workload& workload, Fault fault, std::uint64_t seed) {
  Rng rng(seed);
  Workload out;
  for (const auto& item : workload) {
    out.push_back(item);
    if ((fault == Fault::kDuplicate || fault == Fault::kDuplicateReorder) &&
        rng.chance(0.08)) {
      out.push_back(item);  // the link delivered it twice
    }
  }
  if (fault == Fault::kReorder || fault == Fault::kDuplicateReorder) {
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (rng.chance(0.15)) std::swap(out[i - 1], out[i]);
    }
  }
  return out;
}

Broker::Config config_with_threads(std::size_t threads, bool covering = true) {
  Broker::Config config;
  config.use_advertisements = false;
  config.use_covering = covering;
  config.match_threads = threads;
  return config;
}

/// Replays the workload message by message and returns the recorded byte
/// stream plus the summed status counters.
struct Replay {
  std::vector<std::uint8_t> bytes;
  Broker::HandleStatus status;
};

Replay replay(const Workload& workload, const Broker::Config& config) {
  Broker broker(0, config);
  for (IfaceId n : kNeighbors) broker.add_neighbor(n);
  for (IfaceId c : kClients) broker.add_client(c);
  RecordingSink sink;
  Replay result;
  for (const auto& [from, msg] : workload) {
    result.status += broker.handle(from, msg, sink);
  }
  result.bytes = std::move(sink.bytes);
  return result;
}

class ParallelDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Fault>> {};

TEST_P(ParallelDifferential, ForwardStreamIsByteIdenticalAcrossThreadCounts) {
  auto [seed, fault] = GetParam();
  Workload workload =
      perturb(make_workload(seed, /*subscriptions=*/120, /*publications=*/60),
              fault, seed ^ 0xFA17);
  ASSERT_FALSE(workload.empty());

  Replay sequential = replay(workload, config_with_threads(1));
  ASSERT_FALSE(sequential.bytes.empty());
  ASSERT_GT(sequential.status.deliveries, 0u);

  for (std::size_t threads : {2, 4, 8}) {
    Replay parallel = replay(workload, config_with_threads(threads));
    EXPECT_EQ(parallel.bytes, sequential.bytes)
        << "seed " << seed << ", " << threads << " threads";
    EXPECT_EQ(parallel.status.deliveries, sequential.status.deliveries);
    EXPECT_EQ(parallel.status.suppressed_false_positives,
              sequential.status.suppressed_false_positives);
    EXPECT_EQ(parallel.status.merger_false_matches,
              sequential.status.merger_false_matches);
  }
}

TEST_P(ParallelDifferential, FlatTableStreamIsByteIdentical) {
  auto [seed, fault] = GetParam();
  Workload workload =
      perturb(make_workload(seed, /*subscriptions=*/80, /*publications=*/50),
              fault, seed ^ 0xF1A7);
  Replay sequential = replay(workload, config_with_threads(1, false));
  for (std::size_t threads : {2, 4}) {
    Replay parallel = replay(workload, config_with_threads(threads, false));
    EXPECT_EQ(parallel.bytes, sequential.bytes)
        << "seed " << seed << ", " << threads << " threads (flat PRT)";
  }
}

std::string differential_name(
    const ::testing::TestParamInfo<std::tuple<std::uint64_t, Fault>>& info) {
  static const char* kFaultNames[] = {"clean", "dup", "reorder",
                                      "dup_reorder"};
  return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
         kFaultNames[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelDifferential,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(Fault::kClean, Fault::kDuplicate,
                                         Fault::kReorder,
                                         Fault::kDuplicateReorder)),
    differential_name);

// handle_batch must be the concatenation of per-message handling — same
// bytes, same counters — at any thread count and any batch partition.
TEST(ParallelBatch, BatchedHandlingMatchesPerMessage) {
  Workload workload = make_workload(11, /*subscriptions=*/100, /*publications=*/60);
  Replay reference = replay(workload, config_with_threads(1));

  for (std::size_t threads : {1, 4}) {
    for (std::size_t batch_size :
         {std::size_t{3}, std::size_t{16}, workload.size()}) {
      Broker broker(0, config_with_threads(threads));
      for (IfaceId n : kNeighbors) broker.add_neighbor(n);
      for (IfaceId c : kClients) broker.add_client(c);
      RecordingSink sink;
      Broker::HandleStatus status;
      for (std::size_t start = 0; start < workload.size();
           start += batch_size) {
        std::vector<Broker::Inbound> batch;
        for (std::size_t i = start;
             i < std::min(start + batch_size, workload.size()); ++i) {
          batch.push_back(Broker::Inbound{workload[i].first,
                                          &workload[i].second});
        }
        status += broker.handle_batch(batch, sink);
      }
      EXPECT_EQ(sink.bytes, reference.bytes)
          << threads << " threads, batch size " << batch_size;
      EXPECT_EQ(status.deliveries, reference.status.deliveries);
      EXPECT_EQ(status.suppressed_false_positives,
                reference.status.suppressed_false_positives);
    }
  }
}

// The scheduler exists exactly when match_threads > 1, counts its epochs,
// and its per-shard union reproduces the sequential comparison count
// contract (comparisons are folded back into the PRT's counter).
TEST(ParallelScheduler, EpochsRunAndComparisonsFoldBack) {
  Workload workload = make_workload(5, /*subscriptions=*/60, /*publications=*/40);
  Broker sequential(0, config_with_threads(1));
  Broker parallel(0, config_with_threads(4));
  EXPECT_EQ(sequential.scheduler(), nullptr);
  ASSERT_NE(parallel.scheduler(), nullptr);

  for (Broker* b : {&sequential, &parallel}) {
    for (IfaceId n : kNeighbors) b->add_neighbor(n);
    for (IfaceId c : kClients) b->add_client(c);
  }
  RecordingSink seq_sink, par_sink;
  for (const auto& [from, msg] : workload) {
    sequential.handle(from, msg, seq_sink);
    parallel.handle(from, msg, par_sink);
  }
  EXPECT_EQ(par_sink.bytes, seq_sink.bytes);
  EXPECT_GT(parallel.scheduler()->epochs(), 0u);
  EXPECT_GT(parallel.scheduler()->total_tasks(),
            parallel.scheduler()->epochs());
  // Identical work, identical match-test counts: the shard partition may
  // not duplicate or skip index probes.
  EXPECT_EQ(parallel.comparisons(), sequential.comparisons());
}

TEST(ParallelOptions, InvalidCombinationsAreRejected) {
  Broker::Config config;
  config.match_threads = 0;
  EXPECT_THROW(Broker(0, config), std::invalid_argument);
  config.match_threads = 4;
  config.shard_count = 2;  // fewer shards than threads
  EXPECT_THROW(Broker(0, config), std::invalid_argument);
  config.shard_count = 0;
  EXPECT_NO_THROW(Broker(0, config));

  // Stage timings cannot be attributed across workers.
  Broker broker(0, config_with_threads(2));
  broker.add_neighbor(IfaceId{1});
  Broker::StageTimings stages;
  EXPECT_THROW(broker.handle(IfaceId{1},
                             Message::subscribe(parse_xpe("/a")), &stages),
               std::logic_error);
}

TEST(ParallelOptions, ApplyBrokerOptionParsesEveryKnob) {
  BrokerOptions options;
  EXPECT_EQ(apply_broker_option(options, "threads", "4"), "");
  EXPECT_EQ(apply_broker_option(options, "shards", "16"), "");
  EXPECT_EQ(apply_broker_option(options, "covering", "off"), "");
  EXPECT_EQ(apply_broker_option(options, "advertisements=on"), "");
  EXPECT_EQ(options.match_threads, 4u);
  EXPECT_EQ(options.shard_count, 16u);
  EXPECT_FALSE(options.use_covering);
  EXPECT_TRUE(options.use_advertisements);
  EXPECT_NE(apply_broker_option(options, "threads", "zero"), "");
  EXPECT_NE(apply_broker_option(options, "bogus", "1"), "");
  EXPECT_NE(apply_broker_option(options, "no-equals-sign"), "");
}

// A moved-from broker is dead, and the moved-to broker's scheduler must
// match against the *moved* tables (the pool holds the PRT's address).
TEST(ParallelScheduler, MoveRebuildsTheSchedulerAgainstTheNewTables) {
  Broker::Config config = config_with_threads(4);
  Broker source(0, config);
  source.add_neighbor(IfaceId{1});
  source.add_neighbor(IfaceId{2});
  source.handle(IfaceId{2}, Message::subscribe(parse_xpe("/a/b")));

  Broker moved(std::move(source));
  ASSERT_NE(moved.scheduler(), nullptr);
  PublishMsg msg;
  msg.path = parse_path("/a/b");
  msg.doc_id = 99;
  auto result = moved.handle(IfaceId{1}, Message{msg});
  ASSERT_EQ(result.forwards.size(), 1u);
  EXPECT_EQ(result.forwards[0].interface, IfaceId{2});
}

}  // namespace
}  // namespace xroute
