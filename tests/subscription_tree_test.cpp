// Unit tests for the subscription tree (paper §4.1): insertion cases,
// super pointers, pruned matching, removal, and structural invariants.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "index/subscription_tree.hpp"
#include "util/rng.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/xml_gen.hpp"
#include "workload/xpath_gen.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

Xpe X(const char* s) { return parse_xpe(s); }

TEST(SubscriptionTreeTest, InsertChainBuildsDepth) {
  SubscriptionTree tree;
  auto r1 = tree.insert(X("/a"), IfaceId{1});
  EXPECT_TRUE(r1.was_new);
  EXPECT_FALSE(r1.covered_by_existing);

  auto r2 = tree.insert(X("/a/b"), IfaceId{1});
  EXPECT_TRUE(r2.covered_by_existing);
  EXPECT_EQ(r2.node->parent->xpe, X("/a"));

  auto r3 = tree.insert(X("/a/b/c"), IfaceId{1});
  EXPECT_TRUE(r3.covered_by_existing);
  EXPECT_EQ(r3.node->parent->xpe, X("/a/b"));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.validate(), "");
}

TEST(SubscriptionTreeTest, CaseTwoInsertAboveCovered) {
  SubscriptionTree tree;
  tree.insert(X("/a/b/c"), IfaceId{1});
  tree.insert(X("/a/b/d"), IfaceId{1});
  // The newcomer covers both existing top-level subscriptions.
  auto r = tree.insert(X("/a/b"), IfaceId{1});
  EXPECT_FALSE(r.covered_by_existing);
  ASSERT_EQ(r.now_covered.size(), 2u);
  EXPECT_EQ(r.node->children.size(), 2u);
  EXPECT_EQ(tree.root()->children.size(), 1u);
  EXPECT_EQ(tree.validate(), "");
}

TEST(SubscriptionTreeTest, DuplicateInsertAddsHop) {
  SubscriptionTree tree;
  auto r1 = tree.insert(X("/a"), IfaceId{1});
  auto r2 = tree.insert(X("/a"), IfaceId{2});
  EXPECT_TRUE(r1.was_new);
  EXPECT_FALSE(r2.was_new);
  EXPECT_EQ(r1.node, r2.node);
  EXPECT_EQ(r2.node->hops, ifaces({1, 2}));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(SubscriptionTreeTest, SuperPointerAcrossSubtrees) {
  SubscriptionTree tree;
  tree.insert(X("/a/b"), IfaceId{1});   // goes under root
  tree.insert(X("/*/b"), IfaceId{1});   // incomparable order: also under root? no —
                               // /*/b covers /a/b, so Case 2 nests them.
  // Build a genuine DAG: /a covers /a/b but not /*/b; /*/b covers /a/b.
  tree.insert(X("/a"), IfaceId{1});
  EXPECT_EQ(tree.validate(), "");

  // /a/b is covered by both /a (or /*/b) via the tree and the other via a
  // super pointer.
  const SubscriptionTree::Node* ab = tree.find(X("/a/b"));
  ASSERT_NE(ab, nullptr);
  std::size_t coverers = ab->super_sources.size() +
                         (ab->parent != tree.root() ? 1u : 0u);
  EXPECT_GE(coverers, 2u);
}

TEST(SubscriptionTreeTest, CoveredQuery) {
  SubscriptionTree tree;
  tree.insert(X("/a/*"), IfaceId{1});
  EXPECT_TRUE(tree.covered(X("/a/b")));
  EXPECT_TRUE(tree.covered(X("/a/b/c")));
  EXPECT_FALSE(tree.covered(X("/b")));
  // A subscription equal to an existing one is not covered by *itself*.
  EXPECT_FALSE(tree.covered(X("/a/*")));
}

TEST(SubscriptionTreeTest, MatchPrunesButStaysExact) {
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  tree.insert(X("/a/b"), IfaceId{2});
  tree.insert(X("/a/b/c"), IfaceId{3});
  tree.insert(X("/x"), IfaceId{4});

  EXPECT_EQ(tree.match_hops(parse_path("/a/b/c")), ifaces({1, 2, 3}));
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({1, 2}));
  EXPECT_EQ(tree.match_hops(parse_path("/a/z")), ifaces({1}));
  EXPECT_EQ(tree.match_hops(parse_path("/x/y")), ifaces({4}));
  EXPECT_EQ(tree.match_hops(parse_path("/q")), ifaces({}));
}

TEST(SubscriptionTreeTest, RemoveLeafAndInner) {
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  tree.insert(X("/a/b"), IfaceId{1});
  tree.insert(X("/a/b/c"), IfaceId{1});

  // Removing the middle node splices its child to /a.
  EXPECT_TRUE(tree.remove(X("/a/b"), IfaceId{1}));
  EXPECT_EQ(tree.size(), 2u);
  const SubscriptionTree::Node* abc = tree.find(X("/a/b/c"));
  ASSERT_NE(abc, nullptr);
  EXPECT_EQ(abc->parent->xpe, X("/a"));
  EXPECT_EQ(tree.validate(), "");

  EXPECT_FALSE(tree.remove(X("/a/b"), IfaceId{1}));  // already gone
  EXPECT_TRUE(tree.remove(X("/a"), IfaceId{1}));
  EXPECT_TRUE(tree.remove(X("/a/b/c"), IfaceId{1}));
  EXPECT_TRUE(tree.empty());
}

TEST(SubscriptionTreeTest, RemoveOnlyDropsGivenHop) {
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  tree.insert(X("/a"), IfaceId{2});
  EXPECT_TRUE(tree.remove(X("/a"), IfaceId{1}));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.remove(X("/a"), IfaceId{2}));
  EXPECT_TRUE(tree.empty());
}

TEST(SubscriptionTreeTest, SuperPointerCleanupOnRemove) {
  SubscriptionTree tree;
  tree.insert(X("/a/b"), IfaceId{1});
  tree.insert(X("/a"), IfaceId{1});
  tree.insert(X("/*/b"), IfaceId{1});  // super pointer to /a/b
  EXPECT_EQ(tree.validate(), "");
  EXPECT_TRUE(tree.erase(X("/*/b")));
  EXPECT_EQ(tree.validate(), "");
  const SubscriptionTree::Node* ab = tree.find(X("/a/b"));
  ASSERT_NE(ab, nullptr);
  EXPECT_TRUE(ab->super_sources.empty());
}

TEST(SubscriptionTreeTest, RelativeNeverUnderAbsolute) {
  // Paper's "Property of a Relative XPE node".
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  tree.insert(X("a/b"), IfaceId{1});  // relative
  const SubscriptionTree::Node* rel = tree.find(X("a/b"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->parent, tree.root());

  // But an absolute under a relative coverer is fine: "b" covers "/x/b".
  tree.insert(X("b"), IfaceId{1});
  auto r = tree.insert(X("/x/b"), IfaceId{1});
  EXPECT_TRUE(r.covered_by_existing);
  EXPECT_EQ(tree.validate(), "");
}

TEST(SubscriptionTreeTest, NowCoveredOnlyReportsTopLevel) {
  SubscriptionTree tree;
  tree.insert(X("/a/b"), IfaceId{1});
  tree.insert(X("/a/b/c"), IfaceId{1});  // nested under /a/b
  auto r = tree.insert(X("/a"), IfaceId{1});
  // Only /a/b is top-level; /a/b/c was already covered.
  ASSERT_EQ(r.now_covered.size(), 1u);
  EXPECT_EQ(r.now_covered[0], X("/a/b"));
}

TEST(SubscriptionTreeTest, TrackCoveredOffStillCorrect) {
  SubscriptionTree::Options opts;
  opts.track_covered = false;
  SubscriptionTree tree(opts);
  tree.insert(X("/a/b"), IfaceId{1});
  tree.insert(X("/c"), IfaceId{2});
  auto r = tree.insert(X("/*/b"), IfaceId{3});
  // Without tracking, cross-subtree covered subscriptions are not
  // reported, but matching stays exact... /*/b covers /a/b which is a
  // sibling scan at the same level, so Case 2 still nests it.
  EXPECT_EQ(r.now_covered.size(), 1u);
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({1, 3}));
  EXPECT_EQ(tree.validate(), "");
}

TEST(SubscriptionTreeTest, ComparisonsCounterAdvances) {
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  std::size_t before = tree.comparisons();
  tree.insert(X("/a/b"), IfaceId{1});
  EXPECT_GT(tree.comparisons(), before);
}

TEST(SubscriptionTreeTest, MergeChildrenBasics) {
  SubscriptionTree tree;
  tree.insert(X("/a/b/a"), IfaceId{1});
  tree.insert(X("/a/b/b"), IfaceId{2});
  tree.insert(X("/a/b/a/x"), IfaceId{3});  // child of /a/b/a

  std::vector<SubscriptionTree::Node*> originals{tree.find(X("/a/b/a")),
                                                 tree.find(X("/a/b/b"))};
  SubscriptionTree::Node* merger =
      tree.merge_children(tree.root(), originals, X("/a/b/*"));
  ASSERT_NE(merger, nullptr);
  EXPECT_TRUE(merger->merger);
  EXPECT_EQ(merger->hops, ifaces({1, 2}));
  EXPECT_EQ(merger->merged_from.size(), 2u);
  // The original's child now hangs under the merger.
  const SubscriptionTree::Node* grandchild = tree.find(X("/a/b/a/x"));
  ASSERT_NE(grandchild, nullptr);
  EXPECT_EQ(grandchild->parent, merger);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.validate(), "");
  // Matching routes to the merger's (unioned) hops.
  EXPECT_EQ(tree.match_hops(parse_path("/a/b/b")), ifaces({1, 2}));
}

TEST(SubscriptionTreeTest, MergeCollisionReturnsNull) {
  SubscriptionTree tree;
  tree.insert(X("/a/*"), IfaceId{9});
  tree.insert(X("/q/a"), IfaceId{1});
  tree.insert(X("/q/b"), IfaceId{2});
  // Merger XPE already exists elsewhere: merge must be refused.
  std::vector<SubscriptionTree::Node*> originals{tree.find(X("/q/a")),
                                                 tree.find(X("/q/b"))};
  EXPECT_EQ(tree.merge_children(tree.root(), originals, X("/a/*")), nullptr);
  EXPECT_EQ(tree.size(), 3u);
}

// --- Root-index and covering-cache tests (the PR's indexed hot path) ----

/// Canonical form of a match result for set comparison (callers treat
/// match_nodes results as a set; only the membership is the contract).
std::multiset<std::string> match_set(
    const std::vector<const SubscriptionTree::Node*>& nodes) {
  std::multiset<std::string> out;
  for (const SubscriptionTree::Node* node : nodes) {
    out.insert(node->xpe.to_string());
  }
  return out;
}

TEST(SubscriptionTreeTest, IndexedMatchEqualsScanOnRandomChurn) {
  Dtd dtd = corpus_dtd("news");
  XpathGenOptions gen;
  gen.count = 300;
  gen.wildcard_prob = 0.2;
  gen.descendant_prob = 0.2;
  gen.relative_prob = 0.2;

  Rng rng(7);
  std::vector<Path> probes;
  for (int d = 0; d < 4; ++d) {
    XmlDocument doc = generate_document(dtd, rng);
    for (Path& p : extract_paths(doc)) probes.push_back(std::move(p));
  }
  ASSERT_FALSE(probes.empty());

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen.seed = seed;
    std::vector<Xpe> xpes = generate_xpaths(dtd, gen);
    SubscriptionTree tree;
    // Insert everything, interleaving removals of every third XPE so the
    // index sees root-set churn (splice-to-root on detach included).
    for (std::size_t i = 0; i < xpes.size(); ++i) {
      tree.insert(xpes[i], IfaceId{static_cast<int>(i % 16)});
      if (i % 3 == 2) tree.remove(xpes[i - 1], IfaceId{static_cast<int>((i - 1) % 16)});
    }
    ASSERT_EQ(tree.validate(), "");
    for (const Path& p : probes) {
      EXPECT_EQ(match_set(tree.match_nodes(p)),
                match_set(tree.match_nodes_scan(p)))
          << "path " << p.to_string() << " seed " << seed;
      EXPECT_EQ(tree.match_hops(p), tree.match_hops_scan(p))
          << "path " << p.to_string() << " seed " << seed;
    }
  }
}

TEST(SubscriptionTreeTest, IndexedMatchSeesMutationsImmediately) {
  SubscriptionTree tree;
  tree.insert(X("/a/b"), IfaceId{1});
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({1}));
  // Root-set mutation after a match (index built): new root must be found.
  tree.insert(X("/x"), IfaceId{2});
  EXPECT_EQ(tree.match_hops(parse_path("/x")), ifaces({2}));
  // Removal must drop it again.
  tree.remove(X("/x"), IfaceId{2});
  EXPECT_EQ(tree.match_hops(parse_path("/x")), ifaces({}));
  // Detaching a root splices its children to the root: still matched.
  tree.insert(X("/a"), IfaceId{3});
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({1, 3}));
  tree.remove(X("/a"), IfaceId{3});
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({1}));
}

TEST(SubscriptionTreeTest, CoverCacheServesRepeatsWithoutStaleResults) {
  SubscriptionTree tree;
  // insert → query: /a covers /a/b, so the newcomer is absorbed.
  tree.insert(X("/a"), IfaceId{1});
  auto first = tree.insert(X("/a/b"), IfaceId{2});
  EXPECT_TRUE(first.covered_by_existing);
  EXPECT_TRUE(tree.covered(X("/a/b")));

  // remove → query: the coverer is gone; a stale cache entry would keep
  // reporting /a/b as covered. Uids bind XPE values, so the memo stays
  // valid across the mutation by construction.
  tree.erase(X("/a"));
  EXPECT_FALSE(tree.covered(X("/a/b")));
  EXPECT_EQ(tree.match_hops(parse_path("/a/b")), ifaces({2}));

  // re-insert → query: same value, same uids, same (still correct) verdict.
  auto again = tree.insert(X("/a"), IfaceId{1});
  EXPECT_FALSE(again.covered_by_existing);
  EXPECT_TRUE(tree.covered(X("/a/b")));
  // The repeats above were answered from the memo at least once.
  EXPECT_GT(tree.cover_cache_hits(), 0u);
  EXPECT_GT(tree.cover_cache_size(), 0u);
}

TEST(SubscriptionTreeTest, CoverCacheHitsStillCountAsComparisons) {
  SubscriptionTree tree;
  tree.insert(X("/a"), IfaceId{1});
  std::size_t before = tree.comparisons();
  EXPECT_TRUE(tree.covered(X("/a/b")));
  std::size_t cold = tree.comparisons() - before;
  std::size_t hits_before = tree.cover_cache_hits();
  EXPECT_TRUE(tree.covered(X("/a/b")));
  // Same number of covering requests, now memo-served: the experiment
  // counter is unchanged by the cache.
  EXPECT_EQ(tree.comparisons() - before, 2 * cold);
  EXPECT_GT(tree.cover_cache_hits(), hits_before);
}

}  // namespace
}  // namespace xroute
