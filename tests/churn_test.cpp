// Churn differential suite: the RCU snapshot control plane
// (router/routing_snapshot.hpp) must leave the broker observationally
// identical to the sequential oracle while subscribe/unsubscribe/
// advertise churn interleaves with publications — the exact property the
// quiesce barrier used to buy. Every workload here is a seeded random
// interleaving of control and data messages replayed per-message and
// through handle_batch() (whose batched epochs now *pipeline* control
// ops into the match window), and the serialised sink streams must be
// byte-identical at every thread count. On mismatch the failure is
// shrunk to the shortest failing workload prefix so the diverging
// message is named directly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dtd/universe.hpp"
#include "router/broker.hpp"
#include "router/match_scheduler.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "workload/dtd_corpus.hpp"
#include "workload/set_builder.hpp"
#include "xml/paths.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

constexpr IfaceId kNeighbors[] = {IfaceId{1}, IfaceId{2}, IfaceId{3}};
constexpr IfaceId kClients[] = {IfaceId{10}, IfaceId{11}};

/// Serialises every sink event into one byte stream (tag, interface,
/// wire frame) — equal streams mean equal forwards, deliveries and
/// suppressions in the same order.
struct RecordingSink : ForwardSink {
  std::vector<std::uint8_t> bytes;

  void record(std::uint8_t tag, IfaceId iface, const Message& msg) {
    bytes.push_back(tag);
    std::uint32_t id = static_cast<std::uint32_t>(iface.value());
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(id >> shift));
    }
    std::vector<std::uint8_t> frame = wire::encode_frame(msg);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  void on_forward(IfaceId iface, const Message& msg) override {
    record(0x01, iface, msg);
  }
  void on_local_delivery(IfaceId client, const Message& msg) override {
    record(0x02, client, msg);
  }
  void on_suppressed(IfaceId client, const Message& msg) override {
    record(0x03, client, msg);
  }
};

using Workload = std::vector<std::pair<IfaceId, Message>>;

struct ChurnOptions {
  std::size_t subscriptions = 120;
  std::size_t publications = 80;
  bool advertisements = false;
};

/// A seeded interleaving heavy on control-plane churn: subscriptions
/// from a DTD covering set, early unsubscriptions of still-active ones,
/// advertisements built from the subscriptions' own concrete steps (so
/// they actually overlap), and publications half-drawn from subscription
/// backing paths.
Workload make_churn_workload(std::uint64_t seed, const ChurnOptions& opts) {
  Dtd dtd = corpus_dtd("news");
  CoverSetOptions set_opts;
  set_opts.count = opts.subscriptions;
  set_opts.target_rate = 0.6;
  set_opts.seed = seed;
  CoverSet set = build_covering_set(dtd, set_opts);

  Rng rng(seed * 6007 + 13);
  PathUniverse universe(dtd);
  std::vector<Path> backing;
  std::vector<std::vector<std::string>> alphabets;
  for (const Xpe& xpe : set.xpes) {
    if (!xpe.has_wildcard() && !xpe.has_descendant() && !xpe.relative() &&
        !xpe.has_predicates()) {
      backing.push_back(parse_path(xpe.to_string()));
    }
    std::set<std::string> names;
    for (const Step& step : xpe.steps()) {
      if (!step.is_wildcard()) names.insert(step.name);
    }
    if (!names.empty()) {
      alphabets.emplace_back(names.begin(), names.end());
    }
  }
  std::vector<Path> paths;
  for (std::size_t d = 0; d < opts.publications; ++d) {
    if (!backing.empty() && rng.chance(0.5)) {
      paths.push_back(rng.pick(backing));
    } else {
      paths.push_back(rng.pick(universe.paths()));
    }
  }

  Workload workload;
  std::uint64_t doc_id = 1;
  std::size_t next_sub = 0, next_path = 0, next_adv = 0;
  std::vector<std::pair<IfaceId, Xpe>> active;
  while (next_sub < set.xpes.size() || next_path < paths.size()) {
    double roll = rng.uniform();
    if (roll < 0.30 && next_sub < set.xpes.size()) {
      IfaceId from = rng.chance(0.5) ? kClients[rng.index(2)]
                                     : kNeighbors[rng.index(3)];
      workload.emplace_back(from, Message::subscribe(set.xpes[next_sub]));
      active.emplace_back(from, set.xpes[next_sub]);
      ++next_sub;
    } else if (roll < 0.42 && !active.empty()) {
      std::size_t pick = rng.index(active.size());
      auto [from, xpe] = active[pick];
      workload.emplace_back(from, Message::unsubscribe(xpe));
      active.erase(active.begin() + pick);
    } else if (roll < 0.50 && opts.advertisements &&
               next_adv < alphabets.size()) {
      workload.emplace_back(
          kNeighbors[rng.index(3)],
          Message::advertise(
              Advertisement::from_elements(alphabets[next_adv]),
              static_cast<int>(next_adv)));
      ++next_adv;
    } else if (next_path < paths.size()) {
      PublishMsg msg;
      msg.path = paths[next_path++];
      msg.doc_id = doc_id++;
      workload.emplace_back(kNeighbors[rng.index(3)], Message{msg});
    }
  }
  return workload;
}

Broker::Config make_config(std::size_t threads, bool covering,
                           bool advertisements) {
  Broker::Config config;
  config.use_advertisements = advertisements;
  config.use_covering = covering;
  config.match_threads = threads;
  return config;
}

Broker make_broker(const Broker::Config& config) {
  Broker broker(0, config);
  for (IfaceId n : kNeighbors) broker.add_neighbor(n);
  for (IfaceId c : kClients) broker.add_client(c);
  return broker;
}

struct Replay {
  std::vector<std::uint8_t> bytes;
  Broker::HandleStatus status;
};

/// Per-message replay of the first `count` workload items.
Replay replay_prefix(const Workload& workload, const Broker::Config& config,
                     std::size_t count) {
  Broker broker = make_broker(config);
  RecordingSink sink;
  Replay result;
  for (std::size_t i = 0; i < count && i < workload.size(); ++i) {
    result.status += broker.handle(workload[i].first, workload[i].second,
                                   sink);
  }
  result.bytes = std::move(sink.bytes);
  return result;
}

Replay replay(const Workload& workload, const Broker::Config& config) {
  return replay_prefix(workload, config, workload.size());
}

/// Replay through handle_batch() in fixed-size windows: runs of
/// consecutive publications become pipelined epochs with the following
/// control messages handled mid-flight.
Replay replay_batched(const Workload& workload, const Broker::Config& config,
                      std::size_t batch_size) {
  Broker broker = make_broker(config);
  RecordingSink sink;
  Replay result;
  for (std::size_t start = 0; start < workload.size(); start += batch_size) {
    std::vector<Broker::Inbound> batch;
    for (std::size_t i = start;
         i < std::min(start + batch_size, workload.size()); ++i) {
      batch.push_back(Broker::Inbound{workload[i].first,
                                      &workload[i].second});
    }
    result.status += broker.handle_batch(batch, sink);
  }
  result.bytes = std::move(sink.bytes);
  return result;
}

/// Shrinker: per-message streams are append-only, so the first diverging
/// message index is the smallest prefix length whose replays differ —
/// found by binary search, then reported so the failure names one
/// concrete message instead of a 200-op workload.
std::string shrink_divergence(const Workload& workload,
                              const Broker::Config& oracle,
                              const Broker::Config& subject) {
  std::size_t lo = 1, hi = workload.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (replay_prefix(workload, oracle, mid).bytes ==
        replay_prefix(workload, subject, mid).bytes) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo > workload.size()) return "streams diverge only in counters";
  const auto& [from, msg] = workload[lo - 1];
  return "first divergence at op " + std::to_string(lo - 1) + "/" +
         std::to_string(workload.size()) + " (from iface " +
         std::to_string(from.value()) + ", msg type " +
         std::to_string(static_cast<int>(msg.type())) + ")";
}

struct ChurnCase {
  std::uint64_t seed;
  bool covering;
  bool advertisements;
};

class ChurnDifferential : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnDifferential, PerMessageStreamIsByteIdenticalAcrossThreads) {
  const ChurnCase& c = GetParam();
  ChurnOptions opts;
  opts.advertisements = c.advertisements;
  Workload workload = make_churn_workload(c.seed, opts);
  ASSERT_FALSE(workload.empty());

  Broker::Config oracle = make_config(1, c.covering, c.advertisements);
  Replay sequential = replay(workload, oracle);
  ASSERT_FALSE(sequential.bytes.empty());
  ASSERT_GT(sequential.status.deliveries, 0u);

  for (std::size_t threads : {2, 4, 8}) {
    Broker::Config config = make_config(threads, c.covering,
                                        c.advertisements);
    Replay parallel = replay(workload, config);
    EXPECT_EQ(parallel.bytes, sequential.bytes)
        << "seed " << c.seed << ", " << threads << " threads: "
        << shrink_divergence(workload, oracle, config);
    EXPECT_EQ(parallel.status.deliveries, sequential.status.deliveries);
    EXPECT_EQ(parallel.status.suppressed_false_positives,
              sequential.status.suppressed_false_positives);
    EXPECT_EQ(parallel.status.merger_false_matches,
              sequential.status.merger_false_matches);
  }
}

TEST_P(ChurnDifferential, PipelinedBatchesMatchThePerMessageOracle) {
  const ChurnCase& c = GetParam();
  ChurnOptions opts;
  opts.advertisements = c.advertisements;
  Workload workload = make_churn_workload(c.seed, opts);
  Replay sequential =
      replay(workload, make_config(1, c.covering, c.advertisements));

  for (std::size_t threads : {1, 2, 4, 8}) {
    Broker::Config config = make_config(threads, c.covering,
                                        c.advertisements);
    for (std::size_t batch_size :
         {std::size_t{2}, std::size_t{7}, std::size_t{32},
          workload.size()}) {
      Replay batched = replay_batched(workload, config, batch_size);
      EXPECT_EQ(batched.bytes, sequential.bytes)
          << "seed " << c.seed << ", " << threads << " threads, batch "
          << batch_size;
      EXPECT_EQ(batched.status.deliveries, sequential.status.deliveries);
      EXPECT_EQ(batched.status.suppressed_false_positives,
                sequential.status.suppressed_false_positives);
      EXPECT_EQ(batched.status.merger_false_matches,
                sequential.status.merger_false_matches);
    }
  }
}

std::string churn_name(const ::testing::TestParamInfo<ChurnCase>& info) {
  return "seed" + std::to_string(info.param.seed) +
         (info.param.covering ? "_covering" : "_flat") +
         (info.param.advertisements ? "_adv" : "");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChurnDifferential,
    ::testing::Values(ChurnCase{1, true, false}, ChurnCase{2, true, false},
                      ChurnCase{3, true, true}, ChurnCase{4, false, false},
                      ChurnCase{5, false, true}),
    churn_name);

// The snapshot shard partition may not duplicate or skip match probes:
// under churn the folded-back comparison counts stay in lockstep with
// the sequential tables'.
TEST(ChurnScheduler, ComparisonCountsStayInLockstepUnderChurn) {
  ChurnOptions opts;
  Workload workload = make_churn_workload(7, opts);
  Broker sequential = make_broker(make_config(1, true, false));
  Broker parallel = make_broker(make_config(4, true, false));
  RecordingSink seq_sink, par_sink;
  for (const auto& [from, msg] : workload) {
    sequential.handle(from, msg, seq_sink);
    parallel.handle(from, msg, par_sink);
  }
  EXPECT_EQ(par_sink.bytes, seq_sink.bytes);
  EXPECT_EQ(parallel.comparisons(), sequential.comparisons());
  // Churn means the snapshot store actually turned over.
  EXPECT_GT(parallel.snapshot_store().version(), 1u);
  EXPECT_GT(parallel.snapshot_builder().builds(), 1u);
}

// Control ops must complete while a batch epoch is in flight: a batch
// whose publication run is followed by control messages processes those
// messages inside the epoch. Publication coalesces — no epoch can pin
// mid-window, so the window's ops ride a single snapshot build,
// published when the next epoch pins — and that next epoch must already
// match against the mid-epoch subscriptions.
TEST(ChurnScheduler, ControlOpsCompleteMidEpoch) {
  Broker broker = make_broker(make_config(4, true, false));
  RecordingSink sink;
  const Xpe sub = parse_xpe("/news/article");
  broker.handle(kClients[0], Message::subscribe(sub), sink);
  const std::uint64_t version_before = broker.snapshot_store().version();

  PublishMsg pub;
  pub.path = parse_path("/news/article");
  pub.doc_id = 100;
  Message pub_msg{pub};
  Message sub2 = Message::subscribe(parse_xpe("/news/sports"));
  Message sub3 = Message::subscribe(parse_xpe("/news/weather"));
  std::vector<Broker::Inbound> batch{
      Broker::Inbound{kNeighbors[0], &pub_msg},
      Broker::Inbound{kClients[1], &sub2},
      Broker::Inbound{kClients[1], &sub3},
  };
  Broker::HandleStatus status = broker.handle_batch(batch, sink);
  EXPECT_EQ(status.deliveries, 1u);

  // The next batch pins the coalesced snapshot: exactly one version
  // ahead, and the subscription that arrived mid-epoch is live for
  // matching.
  PublishMsg pub2;
  pub2.path = parse_path("/news/sports");
  pub2.doc_id = 101;
  Message pub2_msg{pub2};
  std::vector<Broker::Inbound> batch2{
      Broker::Inbound{kNeighbors[0], &pub2_msg},
  };
  status = broker.handle_batch(batch2, sink);
  EXPECT_EQ(status.deliveries, 1u);
  EXPECT_EQ(broker.snapshot_store().version(), version_before + 1);
}

}  // namespace
}  // namespace xroute
