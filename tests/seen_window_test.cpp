// SeenWindow tests: the duplicate-suppression window's generation
// mechanics. Rotation retires a table by bumping its stamp rather than
// clearing it, so the interesting behaviour sits at the boundaries — a
// slot written two generations ago must read as empty even though its
// bytes are still in the table, and membership must span exactly the
// current and previous generations.
#include <cstdint>

#include <gtest/gtest.h>

#include "router/seen_window.hpp"

namespace xroute {
namespace {

TEST(SeenWindow, FirstInsertRecordsDuplicateRejected) {
  SeenWindow window;
  EXPECT_TRUE(window.insert(42, 7));
  EXPECT_TRUE(window.contains(42, 7));
  EXPECT_FALSE(window.insert(42, 7));
  // Same doc on a different path id is a distinct publication.
  EXPECT_TRUE(window.insert(42, 8));
  EXPECT_FALSE(window.contains(43, 7));
}

TEST(SeenWindow, MembershipSurvivesOneRotation) {
  SeenWindow window;
  ASSERT_TRUE(window.insert(1, 0));
  // kWindow - 1 more inserts end the generation: entry (1, 0) moves to
  // the previous table but must still be remembered.
  for (std::uint64_t doc = 2; doc <= SeenWindow::kWindow; ++doc) {
    ASSERT_TRUE(window.insert(doc, 0));
  }
  EXPECT_TRUE(window.contains(1, 0));
  EXPECT_FALSE(window.insert(1, 0));
}

TEST(SeenWindow, StampRotationEmptiesTheReusedTable) {
  SeenWindow window;
  ASSERT_TRUE(window.insert(1, 0));
  // Two full generations of fresh entries push (1, 0) two rotations
  // back. Its slot bytes still sit in the table now serving as current,
  // but the stamp no longer matches — it must read as forgotten, and
  // re-inserting it must succeed (true), not probe forever or collide
  // with its own stale slot.
  for (std::uint64_t doc = 2; doc <= 2 * SeenWindow::kWindow; ++doc) {
    ASSERT_TRUE(window.insert(doc, 0));
  }
  EXPECT_FALSE(window.contains(1, 0));
  EXPECT_TRUE(window.insert(1, 0));
  EXPECT_TRUE(window.contains(1, 0));
}

TEST(SeenWindow, RecentWindowAlwaysRemembered) {
  // Guarantee under sustained traffic: the most recent kWindow inserts
  // are always members, wherever the generation boundary falls.
  SeenWindow window;
  std::uint64_t doc = 0;
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t i = 0; i < SeenWindow::kWindow / 2; ++i) {
      ASSERT_TRUE(window.insert(++doc, 3));
    }
    std::uint64_t oldest = doc > SeenWindow::kWindow
                               ? doc - SeenWindow::kWindow + 1
                               : 1;
    for (std::uint64_t probe = oldest; probe <= doc;
         probe += SeenWindow::kWindow / 64) {
      EXPECT_TRUE(window.contains(probe, 3)) << "doc " << probe;
    }
  }
}

}  // namespace
}  // namespace xroute
