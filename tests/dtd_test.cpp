// Unit tests for the DTD parser, element graph and path universe.
#include <gtest/gtest.h>

#include <algorithm>

#include "dtd/dtd.hpp"
#include "dtd/graph.hpp"
#include "dtd/parser.hpp"
#include "dtd/universe.hpp"
#include "util/error.hpp"
#include "xpath/parser.hpp"

namespace xroute {
namespace {

const char kToyDtd[] = R"(
<!-- toy -->
<!ELEMENT root (a, b?, c*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (a | c)+>
<!ELEMENT c EMPTY>
<!ATTLIST root version CDATA "1">
)";

TEST(DtdParser, Declarations) {
  Dtd dtd = parse_dtd(kToyDtd);
  EXPECT_EQ(dtd.size(), 4u);
  EXPECT_EQ(dtd.root(), "root");
  EXPECT_TRUE(dtd.has_element("a"));
  EXPECT_TRUE(dtd.undeclared_references().empty());
}

TEST(DtdParser, ContentModels) {
  Dtd dtd = parse_dtd(kToyDtd);
  const ElementDecl& root = dtd.element("root");
  EXPECT_EQ(root.content.kind, ContentParticle::Kind::kSequence);
  ASSERT_EQ(root.content.children.size(), 3u);
  EXPECT_EQ(root.content.children[1].occurrence, Occurrence::kOptional);
  EXPECT_EQ(root.content.children[2].occurrence, Occurrence::kZeroOrMore);
  auto kids = root.child_elements();
  EXPECT_EQ(kids, (std::vector<std::string>{"a", "b", "c"}));

  const ElementDecl& b = dtd.element("b");
  EXPECT_EQ(b.content.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(b.content.occurrence, Occurrence::kOneOrMore);
}

TEST(DtdParser, MixedContent) {
  Dtd dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | strong)*>"
                      "<!ELEMENT em (#PCDATA)><!ELEMENT strong (#PCDATA)>");
  const ElementDecl& p = dtd.element("p");
  EXPECT_EQ(p.content.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(p.content.occurrence, Occurrence::kZeroOrMore);
  EXPECT_EQ(p.child_elements(), (std::vector<std::string>{"em", "strong"}));
  EXPECT_TRUE(p.may_be_childless());
}

TEST(DtdParser, Errors) {
  EXPECT_THROW(parse_dtd(""), ParseError);
  EXPECT_THROW(parse_dtd("<!ELEMENT a>"), ParseError);
  EXPECT_THROW(parse_dtd("<!ELEMENT a (b,>"), ParseError);
  EXPECT_THROW(parse_dtd("<!ELEMENT a (b | c, d)>"), ParseError);  // mixed seps
  EXPECT_THROW(parse_dtd("<!ELEMENT a (%ent;)>"), ParseError);
  EXPECT_THROW(parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>"),
               std::invalid_argument);
  EXPECT_THROW(parse_dtd("<!WRONG a EMPTY>"), ParseError);
  EXPECT_THROW(parse_dtd("<!ELEMENT p (#PCDATA | em)>"), ParseError);
}

TEST(DtdModel, MayBeChildless) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (a, b)>
<!ELEMENT a (b?, c*)>
<!ELEMENT b (c)+>
<!ELEMENT c EMPTY>
)");
  EXPECT_FALSE(dtd.element("r").may_be_childless());
  EXPECT_TRUE(dtd.element("a").may_be_childless());
  EXPECT_FALSE(dtd.element("b").may_be_childless());
  EXPECT_TRUE(dtd.element("c").may_be_childless());
  EXPECT_TRUE(dtd.element("c").is_leaf());
}

TEST(ElementGraphTest, ChildrenAndLeaves) {
  Dtd dtd = parse_dtd(kToyDtd);
  ElementGraph graph(dtd);
  EXPECT_EQ(graph.children("root"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(graph.is_leaf("a"));
  EXPECT_TRUE(graph.is_leaf("c"));
  EXPECT_FALSE(graph.is_leaf("root"));
  EXPECT_FALSE(graph.is_recursive());
  EXPECT_EQ(graph.reachable().size(), 4u);
}

TEST(ElementGraphTest, SelfRecursion) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (block)*>
<!ELEMENT block (p | block)*>
<!ELEMENT p (#PCDATA)>
)");
  ElementGraph graph(dtd);
  EXPECT_TRUE(graph.is_recursive());
  EXPECT_TRUE(graph.is_cyclic("block"));
  EXPECT_FALSE(graph.is_cyclic("r"));
  EXPECT_FALSE(graph.is_cyclic("p"));
}

TEST(ElementGraphTest, MutualRecursion) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)*>
<!ELEMENT x (y)*>
<!ELEMENT y (x)*>
)");
  ElementGraph graph(dtd);
  EXPECT_TRUE(graph.is_recursive());
  EXPECT_TRUE(graph.is_cyclic("x"));
  EXPECT_TRUE(graph.is_cyclic("y"));
}

TEST(ElementGraphTest, UnreachableCycleIgnored) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (a)>
<!ELEMENT a EMPTY>
<!ELEMENT loop (loop)*>
)");
  ElementGraph graph(dtd);
  EXPECT_FALSE(graph.is_recursive());
}

TEST(PathUniverseTest, NonRecursiveEnumeration) {
  Dtd dtd = parse_dtd(kToyDtd);
  PathUniverse universe(dtd);
  // Terminal paths: /root (b?,c* optional but a required -> root cannot be
  // childless), /root/a, /root/b/a, /root/b/c, /root/c.
  std::vector<std::string> got;
  for (const Path& p : universe.paths()) got.push_back(p.to_string());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"/root/a", "/root/b/a", "/root/b/c",
                                           "/root/c"}));
  EXPECT_FALSE(universe.truncated());
}

TEST(PathUniverseTest, RecursiveDepthCap) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (block)*>
<!ELEMENT block (p | block)*>
<!ELEMENT p (#PCDATA)>
)");
  PathUniverse::Options opts;
  opts.max_depth = 4;
  PathUniverse universe(dtd, opts);
  // /r, /r/block, /r/block/p, /r/block/block, /r/block/block/p,
  // /r/block/block/block (cap).
  EXPECT_EQ(universe.paths().size(), 6u);
  for (const Path& p : universe.paths()) {
    EXPECT_LE(p.size(), 4u);
  }
}

TEST(PathUniverseTest, CountMatching) {
  Dtd dtd = parse_dtd(kToyDtd);
  PathUniverse universe(dtd);
  EXPECT_EQ(universe.count_matching(parse_xpe("/root")), 4u);
  EXPECT_EQ(universe.count_matching(parse_xpe("/root/b")), 2u);
  EXPECT_EQ(universe.count_matching(parse_xpe("//a")), 2u);
  EXPECT_EQ(universe.count_matching(parse_xpe("/root/b/c")), 1u);
  EXPECT_EQ(universe.count_matching(parse_xpe("/nothing")), 0u);
  EXPECT_DOUBLE_EQ(universe.selectivity(parse_xpe("/root/b")), 0.5);
}

TEST(PathUniverseTest, TruncationCap) {
  Dtd dtd = parse_dtd(R"(
<!ELEMENT r (x)*>
<!ELEMENT x (x | y)*>
<!ELEMENT y EMPTY>
)");
  PathUniverse::Options opts;
  opts.max_depth = 12;
  opts.max_paths = 10;
  PathUniverse universe(dtd, opts);
  EXPECT_TRUE(universe.truncated());
  EXPECT_EQ(universe.paths().size(), 10u);
}

}  // namespace
}  // namespace xroute
